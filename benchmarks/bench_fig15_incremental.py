"""Figure 15: speedup of incremental MapReduce vs % input change.

For each application (Word-Count, Co-occurrence Matrix, K-means) and each
change percentage, uploads the base input to Inc-HDFS with Shredder
chunking, primes the Incoop memo server, mutates the given percentage of
records, re-uploads, and measures the incremental run's speedup over a
from-scratch run on the 20-node cluster model.

Expected shape (paper's log-scale 1-100 figure): all three curves decay
as the change percentage grows; K-means sits highest at small changes
(most compute per record), Co-occurrence lowest (shuffle-heavy).
"""

from __future__ import annotations

from repro.core.chunking import ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import IncoopRuntime
from repro.mapreduce.applications import cooccurrence_job, kmeans_job, wordcount_job
from repro.workloads import generate_points, generate_text, mutate_records

PERCENTS = [0, 5, 10, 15, 20, 25]
CHUNKER = ChunkerConfig(mask_bits=10, marker=0x2AB, min_size=256, max_size=2048)
UPLOAD = ShredderConfig.gpu_streams_memory(chunker=CHUNKER)
CENTROIDS = tuple((0.1 * i, 0.9 - 0.1 * i) for i in range(8))


def _upload(cluster: HDFSCluster, data: bytes, path: str) -> None:
    with Shredder(UPLOAD) as shredder:
        cluster.client.copy_from_local_gpu(data, path, shredder=shredder)


def _speedup_curve(job, data: bytes, kind: str) -> list[float]:
    speedups = []
    for pct in PERCENTS:
        cluster = HDFSCluster()
        _upload(cluster, data, "/base")
        incoop = IncoopRuntime(cluster.client)
        incoop.run_incremental(job, "/base")  # prime the memo server
        changed = mutate_records(data, pct, seed=100 + pct, kind=kind)
        _upload(cluster, changed, "/changed")
        _, speedup = incoop.speedup_vs_full(job, "/changed")
        speedups.append(speedup)
    return speedups


def test_fig15(benchmark, report):
    text = generate_text(500_000, seed=61)
    points = generate_points(25_000, seed=62)
    table = report(
        "Figure 15: Incremental-computation speedup vs % input change",
        ["Change %", "Word-Count", "Co-occurrence", "K-means"],
        paper_note="log-scale decay from ~10-40x toward ~1-3x at 25% changes",
    )

    def run():
        return {
            "wordcount": _speedup_curve(wordcount_job(), text, "text"),
            "cooccurrence": _speedup_curve(cooccurrence_job(), text, "text"),
            "kmeans": _speedup_curve(kmeans_job(CENTROIDS), points, "points"),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for i, pct in enumerate(PERCENTS):
        table.add(pct, curves["wordcount"][i], curves["cooccurrence"][i],
                  curves["kmeans"][i])

    for name, curve in curves.items():
        assert curve[0] > 5.0, f"{name}: 0% change should show large speedup"
        assert curve[0] > curve[-1], f"{name}: speedup must decay with changes"
        assert curve[-1] > 1.0, f"{name}: incremental should still win at 25%"
    # Application ordering at small change percentages.
    assert curves["kmeans"][0] > curves["wordcount"][0] > curves["cooccurrence"][0]
