"""Index backends: batched hit/miss probe cost, memory vs disk.

The ROADMAP asked for a multi-backend dedup index "to model realistic
index-miss costs": §7.3 charges a miss ~6x a hit precisely because the
unoptimized store walks an *on-disk* index.  With the ChunkBackend seam
in place this bench measures it instead of assuming it, sweeping index
size x backend x probe mix:

* **hits** — digests present in the index (memtable or sorted runs);
* **misses** — fresh digests; on the disk backend these are mostly
  absorbed by the per-run Bloom filters, the RVH-style hash front-end
  that keeps the LSM read path from paying one binary search per run.

Acceptance: both backends answer every probe correctly; on the disk
backend the per-run Bloom filters absorb most run probes for missing
digests (so misses do not degrade toward O(runs) searches).

Run standalone for the CI smoke:
``python benchmarks/bench_index_backends.py --quick``.
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.bench.reporting import ResultTable, format_table
from repro.core.hashing import chunk_hash
from repro.store.backend import MemoryBackend, PersistentBackend

PROBE_COUNT = 2048
PUT_BATCH = 1024


def make_digests(n: int, salt: bytes = b"") -> list[bytes]:
    return [chunk_hash(salt + i.to_bytes(8, "big")) for i in range(n)]


def build_backend(kind: str, digests: list[bytes], workdir: str):
    if kind == "memory":
        backend = MemoryBackend()
    else:
        # A memtable well below the index size forces real runs, so the
        # probe path exercises Bloom filters + per-run binary search.
        backend = PersistentBackend(
            f"{workdir}/{kind}-{len(digests)}", memtable_limit=4096
        )
    value = b"\x00" * 8  # offsets, as the dedup index stores them
    for start in range(0, len(digests), PUT_BATCH):
        backend.put_batch(
            [(d, value) for d in digests[start : start + PUT_BATCH]]
        )
    backend.flush()
    return backend


def probe_cost_us(backend, digests: list[bytes], repeats: int = 3) -> float:
    """Best-of-N per-digest cost of one batched contains probe."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        backend.contains_batch(digests)
        best = min(best, time.perf_counter() - t0)
    return best / len(digests) * 1e6


def sweep(sizes, workdir: str):
    """[(size, kind, hit_us, miss_us, bloom_skips_per_miss)].

    ``bloom_skips_per_miss`` counts run lookups a filter absorbed per
    missing digest — it can exceed 1.0 when several runs exist, since
    each run's filter is charged separately.
    """
    rows = []
    for size in sizes:
        stored = make_digests(size)
        hit_probe = stored[:: max(1, size // PROBE_COUNT)][:PROBE_COUNT]
        miss_probe = make_digests(min(PROBE_COUNT, size), salt=b"miss")
        for kind in ("memory", "disk"):
            backend = build_backend(kind, stored, workdir)
            assert all(backend.contains_batch(hit_probe)), "hit probe lied"
            assert not any(backend.contains_batch(miss_probe)), "miss probe lied"
            before = backend.stats.bloom_negatives
            hit_us = probe_cost_us(backend, hit_probe)
            miss_us = probe_cost_us(backend, miss_probe)
            absorbed = (backend.stats.bloom_negatives - before) / max(
                1, len(miss_probe)
            )
            rows.append((size, kind, hit_us, miss_us, absorbed))
            backend.close()
    return rows


def check_acceptance(rows) -> None:
    for size, kind, hit_us, miss_us, absorbed in rows:
        assert hit_us > 0 and miss_us > 0
        if kind == "disk" and size > 4096:
            # Runs exist at these sizes: the per-run filters must absorb
            # most of the miss traffic (fp target is 1%; allow slack for
            # multi-run probes each charging their own filter).
            assert absorbed > 0.5, (
                f"size={size}: only {absorbed:.2f} Bloom-absorbed run "
                "lookups per missing digest"
            )


def build_tables(report, sizes):
    with tempfile.TemporaryDirectory(prefix="repro-bench-idx-") as workdir:
        rows = sweep(sizes, workdir)
    t = report(
        "Batched index probe cost by backend [us/digest, lower is better]",
        ["Index size", "Backend", "Hit", "Miss", "Bloom skips/miss"],
        paper_note="the 'unoptimized index lookup' of §7.3, measured: "
        "disk misses ride the per-run Bloom front-end",
    )
    for size, kind, hit_us, miss_us, absorbed in rows:
        t.add(size, kind, f"{hit_us:.3f}", f"{miss_us:.3f}", f"{absorbed:.2f}")
    check_acceptance(rows)
    return rows


def test_index_backend_probe_cost(benchmark, report):
    benchmark.pedantic(
        lambda: build_tables(report, sizes=(2048, 16384)),
        rounds=1,
        iterations=1,
    )


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    tables: list[ResultTable] = []

    def report(title, headers, paper_note=""):
        table = ResultTable(title=title, headers=headers, paper_note=paper_note)
        tables.append(table)
        return table

    sizes = (2048, 16384) if quick else (2048, 16384, 65536, 262144)
    build_tables(report, sizes)
    for table in tables:
        print(format_table(table))
        print()
    print("acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
