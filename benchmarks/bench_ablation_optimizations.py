"""Ablation: contribution of each Shredder optimization (DESIGN.md §5).

Starts from the basic design and adds optimizations one at a time,
reporting modeled 1 GB throughput after each step.  This decomposes the
overall >5x of Fig. 12 into its per-technique contributions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.shredder import Shredder, ShredderConfig

GB = 1 << 30

STEPS = [
    ("basic (serialized, pageable, naive memory)", ShredderConfig.gpu_basic()),
    ("+ double buffering + pinned ring", replace(
        ShredderConfig.gpu_basic(), double_buffering=True, pinned_ring=True)),
    ("+ 4-stage streaming pipeline", ShredderConfig.gpu_streams()),
    ("+ memory coalescing", ShredderConfig.gpu_streams_memory()),
]


def test_optimization_ablation(benchmark, report):
    table = report(
        "Ablation: cumulative effect of Shredder optimizations [GBps, 1 GB]",
        ["Configuration", "Throughput", "Gain vs basic"],
        paper_note="decomposes the Fig. 12 >5x into per-technique steps",
    )

    def run():
        out = []
        for name, cfg in STEPS:
            with Shredder(cfg) as shredder:
                out.append((name, shredder.simulate(GB).throughput_bps))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0][1]
    for name, bps in rows:
        table.add(name, bps / 1e9, bps / base)

    throughputs = [bps for _, bps in rows]
    # Monotonically non-decreasing as optimizations accumulate.
    for earlier, later in zip(throughputs, throughputs[1:]):
        assert later >= earlier * 0.99
    assert throughputs[-1] > 3 * throughputs[0]


def test_ring_slot_ablation(benchmark, report):
    """Pipeline depth is bounded by ring slots (in-flight buffers)."""
    table = report(
        "Ablation: pinned-ring depth vs pipelined throughput [GBps]",
        ["Ring slots", "Throughput"],
        paper_note="ring depth must cover pipeline stages (§4.1.2)",
    )

    def run():
        out = []
        for slots in (1, 2, 3, 4, 6):
            cfg = replace(ShredderConfig.gpu_streams_memory(), ring_slots=slots)
            with Shredder(cfg) as shredder:
                out.append((slots, shredder.simulate(GB).throughput_bps))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for slots, bps in rows:
        table.add(slots, bps / 1e9)
    by_slots = dict(rows)
    assert by_slots[4] > by_slots[1]
