"""Service throughput: remote wire backups vs the in-process data path.

The asyncio front-end (:mod:`repro.service`) puts a length-prefixed
protocol, per-tenant dedup decisions, and a bounded ingest queue between
the chunker and the store.  This bench measures what that costs: the
same snapshot stream is backed up through an in-process
:class:`BackupServer` (no wire) and through concurrent
:class:`AsyncBackupClient` sessions against one loopback
:class:`BackupService`, at 1 / 4 / 16 clients.

Reported per client count:

* **in-process MiB/s** — the serial no-wire baseline over the same
  total bytes;
* **remote MiB/s** — aggregate ingest rate across the concurrent
  sessions (wall clock from first byte to last FINISH_OK);
* **remote/in-proc** — the wire efficiency ratio;
* **dedup fraction** — duplicate chunks over total, proving the wire
  path makes the same source-side dedup decisions as the local one;
* **throttles / sheds** — overload-protection interventions during the
  run (THROTTLE pacing hints, RETRY_LATER refusals, admission
  rejections).  Both columns must be 0 for an unlimited run; with
  ``--rate-limit`` they show what the reported MiB/s actually paid, so
  a paced run can never pass off shed traffic as free throughput.

Acceptance (both modes): every remote restore is bit-identical to the
data that was backed up.

Run standalone:  python benchmarks/bench_service_throughput.py
                   [--quick] [--rate-limit BYTES_PER_S]
CI smoke:        python benchmarks/bench_service_throughput.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable
from repro.bench.reporting import ResultTable, format_table
from repro.service import AsyncBackupClient, BackupService, ServiceConfig

MB = 1 << 20


def make_jobs(n_clients: int, size_mb: int, seed: int = 47):
    """Per client: (tenant, [(snapshot_id, data), ...]) — two generations.

    Each client backs up a base image then a churned second generation,
    so its tenant-scoped index sees realistic incremental duplication.
    All clients derive from one master, so the shared payload store also
    dedups across tenants while each tenant keeps its own decisions.
    """
    image = MasterImage(size=size_mb * MB, segment_size=32 * 1024, seed=seed)
    table = SimilarityTable.uniform(0.35, image.n_segments)
    return [
        (
            f"tenant{i}",
            [
                (f"snap-{i}-g1", image.snapshot(table, 2 * i + 1)),
                (f"snap-{i}-g2", image.snapshot(table, 2 * i + 2)),
            ],
        )
        for i in range(n_clients)
    ]


def run_in_process(jobs) -> float:
    """Serial no-wire baseline: aggregate MiB/s over all jobs."""
    total = sum(len(data) for _, gens in jobs for _, data in gens)
    server = BackupServer(BackupConfig())
    t0 = time.perf_counter()
    for _, gens in jobs:
        for snapshot_id, data in gens:
            server.backup_snapshot(data, snapshot_id)
    elapsed = time.perf_counter() - t0
    server.close()
    return total / MB / elapsed


async def _run_remote(
    jobs, queue_depth: int, rate_bytes_per_s: float | None = None
) -> tuple[float, float, dict]:
    """(aggregate MiB/s, dedup fraction, overload counters) for
    concurrent wire backups."""
    total = sum(len(data) for _, gens in jobs for _, data in gens)
    config = ServiceConfig(
        port=0,
        max_sessions=max(16, len(jobs)),
        queue_depth=queue_depth,
        rate_bytes_per_s=rate_bytes_per_s,
        # Pace rather than shed: a bench client has nowhere to retry to,
        # and a paced run is exactly what the table should show.
        shed_debt_s=600.0 if rate_bytes_per_s is not None else 5.0,
    )
    async with BackupService(config) as service:

        async def one(tenant: str, gens):
            out = []
            async with await AsyncBackupClient.connect(
                "127.0.0.1", service.port, tenant=tenant
            ) as client:
                for snapshot_id, data in gens:
                    report = await client.backup(data, snapshot_id)
                    restored = await client.restore(snapshot_id)
                    assert restored == data, f"restore mismatch {snapshot_id}"
                    out.append(report)
            return out

        t0 = time.perf_counter()
        per_client = await asyncio.gather(
            *(one(tenant, gens) for tenant, gens in jobs)
        )
        elapsed = time.perf_counter() - t0
        metrics = service.metrics
        overload = {
            "throttles": metrics.throttles_sent,
            "sheds": metrics.retry_later_sent + metrics.sessions_rejected,
        }
    reports = [r for group in per_client for r in group]
    n_chunks = sum(r.n_chunks for r in reports)
    dups = sum(r.duplicate_chunks for r in reports)
    return total / MB / elapsed, dups / max(1, n_chunks), overload


def run_remote(
    jobs, queue_depth: int = 4, rate_bytes_per_s: float | None = None
) -> tuple[float, float, dict]:
    return asyncio.run(_run_remote(jobs, queue_depth, rate_bytes_per_s))


def build_table(
    report, client_counts, size_mb: int,
    rate_bytes_per_s: float | None = None,
) -> None:
    limited = (
        f", rate-limited {rate_bytes_per_s / MB:.1f} MiB/s/tenant"
        if rate_bytes_per_s is not None
        else ""
    )
    table = report(
        title=(
            f"Remote vs in-process backup throughput "
            f"({size_mb} MiB/client{limited})"
        ),
        headers=[
            "clients", "in-proc MiB/s", "remote MiB/s",
            "remote/in-proc", "dedup frac", "throttles", "sheds",
        ],
        paper_note=(
            "wire front-end overhead and concurrency scaling over the "
            "paper's single-host backup path; throttles/sheds expose "
            "any overload-protection tax on the reported rate"
        ),
    )
    for n in client_counts:
        jobs = make_jobs(n, size_mb)
        local = run_in_process(jobs)
        remote, dedup, overload = run_remote(
            jobs, rate_bytes_per_s=rate_bytes_per_s
        )
        if rate_bytes_per_s is None and (
            overload["throttles"] or overload["sheds"]
        ):
            raise AssertionError(
                f"unlimited run reported overload interventions: {overload}"
            )
        table.rows.append([
            n,
            f"{local:.1f}",
            f"{remote:.1f}",
            f"{remote / local:.2f}",
            f"{dedup:.2f}",
            overload["throttles"],
            overload["sheds"],
        ])


def test_service_throughput(benchmark, report):
    benchmark.pedantic(
        lambda: build_table(report, client_counts=(1, 4), size_mb=2),
        rounds=1,
        iterations=1,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--rate-limit", type=float, default=None, metavar="BYTES_PER_S",
        help="per-tenant service rate limit; the throttles/sheds columns "
        "then show what pacing cost the reported MiB/s",
    )
    args = parser.parse_args(argv)
    tables: list[ResultTable] = []

    def report(title, headers, paper_note=""):
        table = ResultTable(title=title, headers=headers, paper_note=paper_note)
        tables.append(table)
        return table

    if args.quick:
        build_table(
            report, client_counts=(1, 4), size_mb=2,
            rate_bytes_per_s=args.rate_limit,
        )
    else:
        build_table(
            report, client_counts=(1, 4, 16), size_mb=8,
            rate_bytes_per_s=args.rate_limit,
        )
    for table in tables:
        print(format_table(table))
        print()
    print("acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
