"""Figure 6: allocation overhead, pageable vs pinned memory regions.

Compares pinned allocation against pageable allocation plus the
pageable-to-pinned memcpy, across buffer sizes, and shows the ring
buffer's amortized cost.  Expected shape: pinned allocation roughly an
order of magnitude above the pageable path; the ring (allocate once,
reuse round-robin) reduces the per-transfer cost to ~the memcpy alone.
"""

from __future__ import annotations

from repro.core.buffers import PinnedRingBuffer
from repro.gpu import HostMemoryModel

MB = 1 << 20
SIZES = [16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB]
TRANSFERS = 64


def test_fig6(benchmark, report):
    table = report(
        "Figure 6: Allocation overhead, pageable vs pinned [ms]",
        ["Buffer", "PinnedAlloc", "PageableAlloc", "Memcpy P2P", "Ring/transfer"],
        paper_note="pinned alloc most expensive; ring approach ~an order of magnitude cheaper",
    )

    def run():
        rows = []
        for size in SIZES:
            mem = HostMemoryModel()
            pinned = mem.alloc_pinned(size).alloc_seconds
            pageable = mem.alloc_pageable(size).alloc_seconds
            memcpy = mem.memcpy_time(size)
            ring_mem = HostMemoryModel()
            ring = PinnedRingBuffer(ring_mem, size, num_slots=4)
            per_transfer = ring.amortized_cost(TRANSFERS) + ring.staging_copy_time(size)
            rows.append(
                (f"{size // MB}M", pinned * 1e3, pageable * 1e3, memcpy * 1e3,
                 per_transfer * 1e3)
            )
        return rows

    rows = benchmark(run)
    for row in rows:
        table.add(*row)

    for _, pinned_ms, pageable_ms, memcpy_ms, ring_ms in rows:
        assert pinned_ms > pageable_ms + memcpy_ms  # why the ring exists
        assert pinned_ms > 5 * ring_ms  # ~order of magnitude with reuse
