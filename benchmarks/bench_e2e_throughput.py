"""End-to-end chunk + hash + dedup throughput: the perf trajectory seed.

Measures the real (wall-clock) data path — marker scan, boundary
selection, chunk hashing, dedup index probes — sweeping input size x
engine x dedup backend, and writes ``BENCH_e2e.json`` so every future PR
has a committed trajectory to beat.

Two pipelines per configuration:

``reference``
    The pre-optimization shape: untiled full-buffer gather scan,
    pure-Python min/max selection, one eager ``bytes`` copy + SHA call
    per chunk, one index probe per digest.

``fast``
    The zero-copy path: striped vector scan running the fused
    multi-step roll kernel on the self-tuned per-host geometry
    (``repro.core.autotune``), vectorized ``select_cuts_fast``, lazy
    view chunks with one batched hashing pass, batched index/cluster
    lookups.  Rows carry the scan's kernel-dispatch counters
    (dispatches/MiB, bytes/dispatch, geometry) so dispatch reduction is
    visible in the committed trajectory, and the result records the
    ``tuned_geometry`` used.

Acceptance (enforced in full mode): the fast path is >= 3x the reference
on a 64 MiB input (VectorEngine, batched lookups) and its chunks and
digests are bit-identical to SerialEngine output.

The regression gate (``--check BENCH_e2e.json``, used by CI with
``--quick``) compares the measured fast/reference *speedup ratio* — not
absolute MiB/s, which varies with the host — against the committed
baseline and fails on a >30% regression.

Run standalone:  python benchmarks/bench_e2e_throughput.py [--quick]
                 [--out BENCH_e2e.json] [--check BENCH_e2e.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import ResultTable, format_table
from repro.core import (
    Chunk,
    Chunker,
    ChunkerConfig,
    DedupIndex,
    SerialEngine,
    VectorEngine,
    default_engine,
    ensure_digests,
    get_threads,
    reset_scan_counters,
    scan_counters,
    select_cuts,
    set_threads,
)
from repro.core.autotune import autotune_enabled, describe, get_geometry
from repro.store.cluster import ChunkStoreCluster
from repro.workloads import seeded_bytes

MB = 1 << 20
TARGET_SPEEDUP = 3.0
#: Fused-kernel dispatch acceptance: at roll_steps=8 the scan must issue
#: at least this factor fewer kernel dispatches per MiB than the 1-step
#: reference on the same geometry (ISSUE 4 bar: >= 4x at S=8).
TARGET_DISPATCH_REDUCTION = 4.0
#: Thread-sweep acceptance: 4 scan/hash workers must beat 1 by this
#: factor on the fast path — only asserted on hosts with >= 4 CPUs
#: (thread scaling cannot be demonstrated on a 1-2 core runner; the
#: sweep rows are still recorded so the curve is visible either way).
TARGET_THREAD_SPEEDUP = 1.5
REGRESSION_TOLERANCE = 0.30
#: Speedup ratios are only recorded (and gated) for sizes at least this
#: large: sub-4 MiB runs finish in tens of milliseconds, where co-tenant
#: noise on shared CI runners skews the two pipelines differently and
#: the ratio stops being host-independent.
GATE_MIN_BYTES = 4 * MB

#: The acceptance configuration: paper defaults (8 KiB expected chunks).
CONFIG = ChunkerConfig()


def _label(size: int, engine: str, backend: str) -> str:
    return f"{size // MB}MiB/{engine}/{backend}" if size >= MB else (
        f"{size // 1024}KiB/{engine}/{backend}"
    )


# ----------------------------------------------------------------------
# pipelines
# ----------------------------------------------------------------------


def reference_candidate_cuts(engine, data: bytes, mask: int, marker: int) -> list[int]:
    """The pre-optimization scan: untiled gather over the whole buffer."""
    d = np.frombuffer(data, dtype=np.uint8)
    w = engine.window_size
    if d.size < w:
        return []
    if mask <= 0xFFFF:
        fps = engine._low_fingerprints(d)
        hits = np.nonzero((fps & np.uint16(mask)) == np.uint16(marker))[0]
    else:
        fps = engine.fingerprints(d)
        hits = np.nonzero((fps & np.uint64(mask)) == np.uint64(marker))[0]
    return [int(i) + w for i in hits]


def reference_pipeline(data: bytes, config: ChunkerConfig, engine) -> tuple[list, DedupIndex]:
    """Pre-optimization end-to-end path (scan -> select -> copy+hash -> probe)."""
    candidates = reference_candidate_cuts(engine, data, config.mask, config.marker)
    cuts = select_cuts(candidates, len(data), config.min_size, config.max_size)
    chunks = []
    prev = 0
    for cut in cuts:
        chunks.append(Chunk.from_bytes(prev, data[prev:cut]))  # copy + hash
        prev = cut
    index = DedupIndex()
    for chunk in chunks:  # one Python probe per digest (batch of one)
        index.lookup_or_insert_batch([chunk])
    return chunks, index


def fast_pipeline(data, chunker: Chunker, backend: str):
    """Zero-copy end-to-end path with batched hashing and lookups."""
    chunks = chunker.chunk(data)  # striped scan, lazy views, batched digests
    if backend == "cluster":
        cluster = ChunkStoreCluster(n_nodes=4, batch_size=256)
        hit_map, _ = cluster.lookup_chunks(chunks)
        for chunk in chunks:
            if not hit_map[chunk.digest]:
                cluster.put_chunk(chunk.digest, chunk.data)
        return chunks, cluster
    index = DedupIndex()
    ensure_digests(chunks)
    index.lookup_or_insert_batch(chunks)
    return chunks, index


def serial_pipeline(data, config: ChunkerConfig):
    """Pure-Python rolling scan end to end (tiny inputs only)."""
    chunker = Chunker(config, SerialEngine(chunker_fingerprinter()))
    chunks = chunker.chunk(data)
    index = DedupIndex()
    index.lookup_or_insert_batch(chunks)
    return chunks, index


def chunker_fingerprinter():
    return default_engine().fingerprinter


def timed(fn, *args, repeats: int = 1) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def run_sweep(quick: bool) -> dict:
    if quick:
        vector_sizes = [1 * MB, 4 * MB]
        serial_sizes = [64 * 1024]
        acceptance_size = None
    else:
        # Includes both quick-mode sizes so the CI gate always finds its
        # keys in the committed full-mode baseline.
        vector_sizes = [1 * MB, 4 * MB, 16 * MB, 64 * MB]
        serial_sizes = [256 * 1024]
        acceptance_size = 64 * MB

    engine = default_engine()
    chunker = Chunker(CONFIG, engine)
    # Warm up tables and NumPy dispatch outside the timed regions.
    fast_pipeline(seeded_bytes(MB, seed=99), chunker, "single")

    rows: list[dict] = []
    speedups: dict[str, float] = {}

    def record(size, eng, backend, path, seconds, n_chunks, threads=1, runs=1):
        row = {
            "size_bytes": size,
            "engine": eng,
            "backend": backend,
            "path": path,
            "threads": threads,
            "seconds": round(seconds, 6),
            "mib_per_s": round(size / MB / seconds, 3),
            "n_chunks": n_chunks,
        }
        # Scan instrumentation accumulated since the last reset: kernel
        # dispatches per MiB and payload bytes per dispatch make the
        # fused kernel's dispatch reduction visible in BENCH_e2e.json.
        counters = scan_counters()
        if counters.dispatches and runs:
            row["scan_dispatches"] = counters.dispatches // runs
            row["dispatches_per_mib"] = round(counters.dispatches_per_mib, 2)
            row["bytes_per_dispatch"] = round(counters.bytes_per_dispatch)
            row["scan_geometry"] = counters.geometry
        rows.append(row)
        reset_scan_counters()

    acceptance: dict = {"target_speedup": TARGET_SPEEDUP}
    reset_scan_counters()
    for size in vector_sizes:
        data = seeded_bytes(size, seed=size & 0xFFFF)
        repeats = 3 if size <= 4 * MB else 1
        for backend in ("single", "cluster"):
            fast_s, (fast_chunks, _) = timed(
                fast_pipeline, data, chunker, backend, repeats=repeats
            )
            record(size, "vector", backend, "fast", fast_s, len(fast_chunks),
                   threads=get_threads(), runs=repeats)
            if backend == "single":
                ref_s, (ref_chunks, _) = timed(
                    reference_pipeline, data, CONFIG, engine, repeats=repeats
                )
                record(size, "vector", backend, "reference", ref_s, len(ref_chunks))
                identical = [(c.offset, c.length, c.digest) for c in fast_chunks] == [
                    (c.offset, c.length, c.digest) for c in ref_chunks
                ]
                if not identical:
                    raise AssertionError(
                        f"fast path diverged from reference at {size} bytes"
                    )
                if size >= GATE_MIN_BYTES:
                    speedups[_label(size, "vector", backend)] = round(ref_s / fast_s, 3)
                if size == acceptance_size:
                    acceptance["speedup_64mib"] = round(ref_s / fast_s, 3)

    for size in serial_sizes:
        data = seeded_bytes(size, seed=size & 0xFFFF)
        serial_s, (serial_chunks, _) = timed(serial_pipeline, data, CONFIG)
        record(size, "serial", "single", "fast", serial_s, len(serial_chunks))
        fast_chunks, _ = fast_pipeline(data, chunker, "single")
        if [(c.offset, c.digest) for c in fast_chunks] != [
            (c.offset, c.digest) for c in serial_chunks
        ]:
            raise AssertionError("vector path diverged from SerialEngine")

    # -- thread sweep: the multi-core scaling curve ---------------------
    # The sweep input must span one 4 MiB scan tile *per worker* or the
    # engine rightly refuses to fan that wide: 16 MiB is the floor for
    # an honest 4-thread row (8 MiB would silently run 2 workers).
    # Affinity-aware count: on cgroup/affinity-limited runners
    # os.cpu_count() overstates the parallelism actually available, and
    # the scaling gate below must not demand speedups the kernel won't
    # schedule.
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    ) or 1
    sweep_size = 16 * MB
    # On a 1-CPU host a multi-thread sweep can only produce a flat (or
    # noise-inverted) curve: record *why* there is no scaling data
    # instead of committing a silently flat curve that reads like a
    # regression.
    if cpus < 2:
        thread_counts = [1]
        sweep_skip_reason = (
            f"host exposes {cpus} CPU(s); thread scaling is not "
            "demonstrable, sweep limited to the 1-thread row"
        )
    else:
        thread_counts = sorted({1, 2, 4, cpus})
        sweep_skip_reason = None
    data = seeded_bytes(sweep_size, seed=sweep_size & 0xFFFF)
    sweep_mibs: dict[int, float] = {}
    reference_shape = None
    try:
        for t in thread_counts:
            set_threads(t)
            seconds, (sweep_chunks, _) = timed(
                fast_pipeline, data, chunker, "single", repeats=2
            )
            shape = [(c.offset, c.length, c.digest) for c in sweep_chunks]
            if reference_shape is None:
                reference_shape = shape
            elif shape != reference_shape:
                raise AssertionError(
                    f"threaded scan at {t} threads diverged from 1 thread"
                )
            record(sweep_size, "vector", "single", "fast", seconds,
                   len(sweep_chunks), threads=t, runs=2)
            sweep_mibs[t] = round(sweep_size / MB / seconds, 3)
    finally:
        set_threads(None)
    thread_sweep = {
        "size_bytes": sweep_size,
        "cpus": cpus,
        "mib_per_s": {str(t): v for t, v in sweep_mibs.items()},
    }
    if sweep_skip_reason is not None:
        thread_sweep["skip_reason"] = sweep_skip_reason
    if 4 in sweep_mibs:
        thread_sweep["speedup_4_vs_1"] = round(sweep_mibs[4] / sweep_mibs[1], 3)
        acceptance["thread_speedup_4v1"] = thread_sweep["speedup_4_vs_1"]
        if not quick and cpus >= 4 and (
            thread_sweep["speedup_4_vs_1"] < TARGET_THREAD_SPEEDUP
        ):
            raise AssertionError(
                f"4-thread fast path only {thread_sweep['speedup_4_vs_1']:.2f}x "
                f"the 1-thread rate (target >= {TARGET_THREAD_SPEEDUP}x on a "
                f"{cpus}-CPU host)"
            )

    # -- fused-kernel dispatch reduction --------------------------------
    # Same geometry, roll_steps 1 vs 8: the fused kernel must amortize
    # per-launch cost by >= TARGET_DISPATCH_REDUCTION (asserted in full
    # mode; recorded always).
    geometry = get_geometry()
    dispatch_data = seeded_bytes(4 * MB, seed=0x5EED)
    per_mib: dict[int, float] = {}
    for steps in (1, 8):
        probe = VectorEngine(
            lanes=geometry.lanes, tile_bytes=geometry.tile_bytes,
            threads=1, roll_steps=steps,
        )
        reset_scan_counters()
        probe.candidate_cut_array(dispatch_data, CONFIG.mask, CONFIG.marker)
        per_mib[steps] = scan_counters().dispatches_per_mib
    reset_scan_counters()
    acceptance["dispatches_per_mib_s1"] = round(per_mib[1], 2)
    acceptance["dispatches_per_mib_s8"] = round(per_mib[8], 2)
    dispatch_reduction = per_mib[1] / per_mib[8] if per_mib[8] else 0.0
    acceptance["dispatch_reduction_s8"] = round(dispatch_reduction, 2)
    if not quick and dispatch_reduction < TARGET_DISPATCH_REDUCTION:
        raise AssertionError(
            f"fused kernel at S=8 only cut dispatches/MiB by "
            f"{dispatch_reduction:.2f}x (target >= "
            f"{TARGET_DISPATCH_REDUCTION}x)"
        )

    if acceptance_size is not None:
        # Bit-identical to the pure-Python reference engine on the full
        # acceptance input (slow: SerialEngine rolls 64 Mi windows).
        data = seeded_bytes(acceptance_size, seed=acceptance_size & 0xFFFF)
        serial_chunks = Chunker(CONFIG, SerialEngine(chunker_fingerprinter())).chunk(data)
        fast_chunks, _ = fast_pipeline(data, chunker, "single")
        acceptance["serial_identical"] = [
            (c.offset, c.length, c.digest) for c in serial_chunks
        ] == [(c.offset, c.length, c.digest) for c in fast_chunks]
        if not acceptance["serial_identical"]:
            raise AssertionError("fast path diverged from SerialEngine at 64 MiB")
        if acceptance["speedup_64mib"] < TARGET_SPEEDUP:
            raise AssertionError(
                f"end-to-end speedup {acceptance['speedup_64mib']:.2f}x below "
                f"the {TARGET_SPEEDUP}x acceptance bar"
            )

    return {
        "bench": "e2e_throughput",
        "mode": "quick" if quick else "full",
        "chunker": {
            "window_size": CONFIG.window_size,
            "mask_bits": CONFIG.mask_bits,
            "marker": CONFIG.marker,
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            # CPUs this process may actually use (cgroup/affinity-aware);
            # the honest parallelism ceiling on containerized runners.
            "cpus_available": (
                len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity")
                else os.cpu_count()
            ),
        },
        # The self-tuned scan geometry this run used (satellite of the
        # fused-kernel issue): future readers can attribute throughput
        # moves to geometry changes instead of guessing.
        "tuned_geometry": {
            **describe(geometry),
            "autotune_enabled": autotune_enabled(),
        },
        "rows": rows,
        "speedups": speedups,
        "thread_sweep": thread_sweep,
        "acceptance": acceptance,
    }


# ----------------------------------------------------------------------
# reporting / regression gate
# ----------------------------------------------------------------------


def build_table(result: dict) -> ResultTable:
    table = ResultTable(
        "End-to-end chunk+hash+dedup throughput",
        ["Size", "Engine", "Backend", "Path", "Thr", "Seconds", "MiB/s"],
        paper_note="fast = zero-copy striped scan + batched hash/lookup; "
        "reference = pre-optimization per-chunk path; Thr = worker threads",
    )
    for row in result["rows"]:
        size = row["size_bytes"]
        label = f"{size // MB} MiB" if size >= MB else f"{size // 1024} KiB"
        table.add(
            label, row["engine"], row["backend"], row["path"],
            row.get("threads", 1),
            f"{row['seconds']:.3f}", f"{row['mib_per_s']:.1f}",
        )
    return table


def check_regression(result: dict, baseline_path: Path) -> list[str]:
    """Compare fast/reference speedup ratios against the committed baseline.

    Ratios are host-independent (both pipelines run on the same machine),
    so this gate travels across CI runners; absolute MiB/s is recorded
    for trend reading but not gated.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    base_speedups = baseline.get("speedups", {})
    matched = 0
    for key, measured in result["speedups"].items():
        expected = base_speedups.get(key)
        if expected is None:
            failures.append(
                f"{key}: measured but absent from baseline — regenerate "
                f"{baseline_path} with a full run so the gate covers it"
            )
            continue
        matched += 1
        floor = (1.0 - REGRESSION_TOLERANCE) * expected
        if measured < floor:
            failures.append(
                f"{key}: speedup {measured:.2f}x < {floor:.2f}x "
                f"(baseline {expected:.2f}x - {REGRESSION_TOLERANCE:.0%})"
            )
    if matched == 0:
        failures.append(
            "no speedup keys shared with the baseline — the gate checked "
            "nothing; regenerate the committed BENCH_e2e.json"
        )
    return failures


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def test_e2e_throughput(benchmark, report):
    """pytest-benchmark entry: quick sweep, table into the suite summary."""
    result = benchmark.pedantic(lambda: run_sweep(quick=True), rounds=1, iterations=1)
    table = report(
        "End-to-end chunk+hash+dedup throughput [quick]",
        ["Size", "Engine", "Backend", "Path", "Seconds", "MiB/s"],
        paper_note="see benchmarks/bench_e2e_throughput.py",
    )
    for row in result["rows"]:
        table.add(
            f"{row['size_bytes'] // 1024} KiB", row["engine"], row["backend"],
            row["path"], f"{row['seconds']:.3f}", f"{row['mib_per_s']:.1f}",
        )
    for key, speedup in result["speedups"].items():
        assert speedup > 1.0, f"{key}: fast path not faster than reference"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes only (CI smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the result JSON (default: "
                        "BENCH_e2e.json in full mode, bench-e2e-quick.json "
                        "in --quick mode so smoke runs never clobber the "
                        "committed baseline)")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate speedup regressions against")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = Path("bench-e2e-quick.json" if args.quick else "BENCH_e2e.json")

    result = run_sweep(quick=args.quick)
    print(format_table(build_table(result)))
    if result["speedups"]:
        print("\nfast-path speedup vs pre-optimization reference:")
        for key, speedup in result["speedups"].items():
            print(f"  {key:24s} {speedup:5.2f}x")
    geometry = result.get("tuned_geometry", {})
    if geometry:
        print(
            f"\ntuned geometry [{geometry.get('source')}]: "
            f"lanes={geometry.get('lanes')} "
            f"tile={geometry.get('tile_bytes', 0) // MB} MiB "
            f"roll_steps={geometry.get('roll_steps')} "
            f"threads={geometry.get('threads')}"
        )
    acc = result["acceptance"]
    if "dispatch_reduction_s8" in acc:
        print(
            f"fused kernel dispatches/MiB: {acc['dispatches_per_mib_s1']:.0f} "
            f"at S=1 -> {acc['dispatches_per_mib_s8']:.0f} at S=8 "
            f"({acc['dispatch_reduction_s8']:.1f}x reduction)"
        )
    sweep = result.get("thread_sweep", {})
    if sweep.get("mib_per_s"):
        label = f"{sweep['size_bytes'] // MB} MiB"
        print(f"\nthread sweep on {label} ({sweep['cpus']} CPU host):")
        for t, mibs in sweep["mib_per_s"].items():
            print(f"  {t:>3s} thread(s)  {mibs:8.1f} MiB/s")
        if "speedup_4_vs_1" in sweep:
            print(f"  4-thread vs 1-thread: {sweep['speedup_4_vs_1']:.2f}x")
        if "skip_reason" in sweep:
            print(f"  ({sweep['skip_reason']})")
    if "speedup_64mib" in result["acceptance"]:
        print(f"\nacceptance: {result['acceptance']['speedup_64mib']:.2f}x on 64 MiB "
              f"(target >= {TARGET_SPEEDUP}x), serial-identical: "
              f"{result['acceptance'].get('serial_identical')}")

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check is not None:
        if not args.check.exists():
            print(f"no baseline at {args.check}; skipping regression gate")
            return 0
        failures = check_regression(result, args.check)
        if failures:
            print("\nREGRESSION against committed baseline:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("regression gate passed (speedups within "
              f"{REGRESSION_TOLERANCE:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
