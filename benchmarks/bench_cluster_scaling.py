"""Cluster scaling: node count x batch size x replication vs single node.

§7.3 charges every digest an individual index lookup (hits 2 us, misses
12 us) — the "unoptimized" stage the paper blames for backup bandwidth
collapsing as snapshot similarity drops.  The sharded chunk-store
cluster replaces it with batched, Bloom-filtered lookups.  This bench
sweeps the three cluster knobs against the single-node baseline:

* **batch size** — the per-batch dispatch cost amortizes as 1/B; the
  acceptance bar is the batched stage strictly below the per-digest
  baseline for B >= 64;
* **node count** — shard occupancy stays balanced (consistent hashing
  with virtual nodes) while lookup cost stays flat;
* **replication factor** — physical bytes scale with r, the price of
  surviving r-1 node losses (verified by a failure + repair drill);
* **redundancy scheme** — replication vs erasure coding head to head:
  storage overhead (r x for replicas, (k+m)/k + framing for EC),
  healthy vs degraded restore cost (EC decodes through parity after a
  node loss), and repair traffic per failed node (EC rebuilds ship
  1/k-size fragments instead of whole chunks).

Run standalone for the CI smoke: ``python benchmarks/bench_cluster_scaling.py --quick``.
"""

from __future__ import annotations

import sys
import time

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable
from repro.bench.reporting import ResultTable, format_table

MB = 1 << 20


def make_stream(size_mb: int, generations: int = 2, p: float = 0.15):
    image = MasterImage(size=size_mb * MB, segment_size=32 * 1024, seed=91)
    table = SimilarityTable.uniform(p, image.n_segments)
    return [("master", image.data)] + [
        (f"gen{i}", image.snapshot(table, i)) for i in range(1, generations + 1)
    ]


def run_stream(config: BackupConfig, stream) -> tuple[float, "BackupServer"]:
    """Total index+network seconds over the stream; returns open server."""
    server = BackupServer(config)
    total = 0.0
    for snapshot_id, data in stream:
        report = server.backup_snapshot(data, snapshot_id)
        assert server.agent.restore(snapshot_id) == data
        total += report.stage_seconds["index+network"]
    return total, server


def sweep_batch_size(stream, batch_sizes, nodes=4, replication=2):
    """[(batch_size, cluster_seconds)], baseline_seconds."""
    baseline, server = run_stream(BackupConfig(store_backend="single"), stream)
    server.close()
    rows = []
    for batch in batch_sizes:
        seconds, server = run_stream(
            BackupConfig(
                store_backend="cluster",
                cluster_nodes=nodes,
                replication=replication,
                lookup_batch_size=batch,
            ),
            stream,
        )
        server.close()
        rows.append((batch, seconds))
    return rows, baseline


def sweep_nodes(stream, node_counts, batch=128):
    """[(nodes, seconds, max/mean shard occupancy)]."""
    rows = []
    for n in node_counts:
        seconds, server = run_stream(
            BackupConfig(
                store_backend="cluster",
                cluster_nodes=n,
                replication=min(2, n),
                lookup_batch_size=batch,
            ),
            stream,
        )
        counts = [node.chunk_count for node in server.cluster.nodes.values()]
        balance = max(counts) / (sum(counts) / len(counts))
        server.close()
        rows.append((n, seconds, balance))
    return rows


def sweep_replication(stream, factors, nodes=4, batch=128):
    """[(r, seconds, physical/logical bytes, repair_ok)]."""
    rows = []
    for r in factors:
        seconds, server = run_stream(
            BackupConfig(
                store_backend="cluster",
                cluster_nodes=nodes,
                replication=r,
                lookup_batch_size=batch,
            ),
            stream,
        )
        cluster = server.cluster
        overhead = cluster.stored_bytes / cluster.unique_bytes
        cluster.fail_node("node-0")
        repair_ok = cluster.repair().healthy
        if repair_ok:
            for snapshot_id, data in stream:
                assert cluster.restore(snapshot_id) == data
        server.close()
        rows.append((r, seconds, overhead, repair_ok))
    return rows


def sweep_redundancy(stream, schemes, nodes=8, batch=128):
    """[(label, overhead, healthy_s, degraded_s, repair_bytes)].

    Each scheme restores the full stream twice — once healthy, once
    after ``node-0`` is killed (degraded: replicas fall back to
    surviving copies, EC decodes through parity) — then repairs and
    reports how many bytes the rebuild shipped.
    """
    rows = []
    for label, kwargs in schemes:
        _, server = run_stream(
            BackupConfig(
                store_backend="cluster",
                cluster_nodes=nodes,
                lookup_batch_size=batch,
                **kwargs,
            ),
            stream,
        )
        cluster = server.cluster
        overhead = cluster.stored_bytes / cluster.unique_bytes
        t0 = time.perf_counter()
        for snapshot_id, data in stream:
            assert cluster.restore(snapshot_id) == data
        healthy_s = time.perf_counter() - t0
        cluster.fail_node("node-0")
        t0 = time.perf_counter()
        for snapshot_id, data in stream:
            assert cluster.restore(snapshot_id) == data
        degraded_s = time.perf_counter() - t0
        repair = cluster.repair()
        assert repair.healthy, f"{label}: repair left chunks lost"
        server.close()
        rows.append((label, overhead, healthy_s, degraded_s, repair.bytes_copied))
    return rows


def check_acceptance(batch_rows, baseline) -> None:
    """Batched/Bloom-filtered stage strictly below baseline for B >= 64."""
    for batch, seconds in batch_rows:
        if batch >= 64:
            assert seconds < baseline, (
                f"batch={batch}: cluster stage {seconds:.6f}s not below "
                f"per-digest baseline {baseline:.6f}s"
            )


def build_tables(report, size_mb, batch_sizes, node_counts, replications,
                 redundancy_schemes=()):
    stream = make_stream(size_mb)

    batch_rows, baseline = sweep_batch_size(stream, batch_sizes)
    t1 = report(
        "Cluster lookup stage vs batch size [ms, lower is better]",
        ["Batch size", "index+network", "vs per-digest baseline"],
        paper_note="batched+Bloom beats the §7.3 per-digest stage for B >= 64",
    )
    for batch, seconds in batch_rows:
        t1.add(batch, seconds * 1e3, f"{seconds / baseline:.2f}x")
    t1.add("baseline", baseline * 1e3, "1.00x")
    check_acceptance(batch_rows, baseline)

    node_rows = sweep_nodes(stream, node_counts)
    t2 = report(
        "Cluster lookup stage vs node count [ms]",
        ["Nodes", "index+network", "max/mean shard occupancy"],
        paper_note="cost flat with node count; vnode hashing keeps shards balanced",
    )
    for n, seconds, balance in node_rows:
        t2.add(n, seconds * 1e3, balance)
        assert balance < 2.0, f"shard imbalance {balance:.2f} at {n} nodes"

    repl_rows = sweep_replication(stream, replications)
    t3 = report(
        "Replication factor: cost vs durability",
        ["Replicas", "index+network [ms]", "physical/logical bytes",
         "survives node loss"],
        paper_note="r copies cost ~r x storage; r >= 2 survives the repair drill",
    )
    for r, seconds, overhead, repair_ok in repl_rows:
        t3.add(r, seconds * 1e3, overhead, "yes" if repair_ok else "NO")
        assert overhead > r - 0.5
        assert repair_ok == (r >= 2)

    if redundancy_schemes:
        red_rows = sweep_redundancy(stream, redundancy_schemes)
        t4 = report(
            "Replication vs erasure coding (one node failed + repaired)",
            ["Scheme", "physical/logical bytes", "healthy restore [ms]",
             "degraded restore [ms]", "repair traffic [KiB]"],
            paper_note="EC stores ~(k+m)/k x and repairs ship 1/k-size "
                       "fragments; degraded reads pay the decode",
        )
        by_label = {}
        for label, overhead, healthy_s, degraded_s, repair_bytes in red_rows:
            t4.add(label, overhead, healthy_s * 1e3, degraded_s * 1e3,
                   repair_bytes / 1024)
            by_label[label] = (overhead, repair_bytes)
        if "replicated r=2" in by_label and "ec 4+2" in by_label:
            r2_overhead, r2_repair = by_label["replicated r=2"]
            ec_overhead, ec_repair = by_label["ec 4+2"]
            # (k+m)/k + per-fragment framing stays below whole-copy r=2.
            assert ec_overhead < r2_overhead, (
                f"ec overhead {ec_overhead:.2f}x not below "
                f"r=2 overhead {r2_overhead:.2f}x"
            )
            # Rebuilds ship 1/k-size fragments, not whole chunks.
            assert ec_repair < r2_repair, (
                f"ec repair traffic {ec_repair}B not below "
                f"replicated {r2_repair}B"
            )


REDUNDANCY_FULL = (
    ("replicated r=2", dict(replication=2)),
    ("replicated r=3", dict(replication=3)),
    ("ec 4+2", dict(placement="ec", ec_k=4, ec_m=2)),
)
REDUNDANCY_QUICK = (
    ("replicated r=2", dict(replication=2)),
    ("ec 4+2", dict(placement="ec", ec_k=4, ec_m=2)),
)


def test_cluster_scaling(benchmark, report):
    benchmark.pedantic(
        lambda: build_tables(
            report,
            size_mb=4,
            batch_sizes=(1, 16, 64, 256),
            node_counts=(1, 2, 4, 8),
            replications=(1, 2, 3),
            redundancy_schemes=REDUNDANCY_FULL,
        ),
        rounds=1,
        iterations=1,
    )


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    tables: list[ResultTable] = []

    def report(title, headers, paper_note=""):
        table = ResultTable(title=title, headers=headers, paper_note=paper_note)
        tables.append(table)
        return table

    if quick:
        build_tables(report, size_mb=2, batch_sizes=(1, 64),
                     node_counts=(1, 4), replications=(1, 2),
                     redundancy_schemes=REDUNDANCY_QUICK)
    else:
        build_tables(report, size_mb=4, batch_sizes=(1, 16, 64, 256),
                     node_counts=(1, 2, 4, 8), replications=(1, 2, 3),
                     redundancy_schemes=REDUNDANCY_FULL)
    for table in tables:
        print(format_table(table))
        print()
    print("acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
