"""Table 1: performance characteristics of the GPU (NVidia Tesla C2050).

Regenerates the paper's Table 1 from the simulator's spec constants and
cross-checks the two derived quantities the paper's argument rests on:
device-memory bandwidth is an order of magnitude above PCIe, and PCIe is
above the 2 GBps reader.
"""

from __future__ import annotations

from repro.gpu import DMAModel, TESLA_C2050, XEON_X5650_HOST, table1_rows

MB = 1 << 20


def test_table1(benchmark, report):
    table = report(
        "Table 1: Performance characteristics of the GPU (NVidia Tesla C2050)",
        ["Parameter", "Value"],
        paper_note="values quoted directly from Table 1 of the paper",
    )
    rows = benchmark(table1_rows)
    for parameter, value in rows:
        table.add(parameter, value)

    as_dict = dict(rows)
    assert as_dict["GPU Processing Capacity"] == "1030 GFlops"
    assert as_dict["Device Memory Bandwidth"] == "144 GBps"

    # Derived sanity: the bandwidth hierarchy driving the paper's design.
    dma = DMAModel(TESLA_C2050)
    pcie = dma.bandwidth(64 * MB)
    assert TESLA_C2050.device_memory_bandwidth > 10 * pcie
    assert pcie > XEON_X5650_HOST.reader_bandwidth
