"""Ablation: chunking parameters — mask width, min/max limits, dedup effect.

Explores the design space §2.1 describes: expected chunk size (marker
mask width) against dedup effectiveness under a fixed edit workload, and
the effect of min/max limits on the chunk-size distribution.
"""

from __future__ import annotations

import statistics

from repro.core import Chunker, ChunkerConfig, dedup_ratio
from repro.workloads import mutate, seeded_bytes

MB = 1 << 20


def test_mask_bits_vs_dedup(benchmark, report):
    """Smaller chunks dedup better but cost more index entries."""
    data = seeded_bytes(2 * MB, seed=71)
    edited = mutate(data, 5, mode="replace", seed=72, edit_size=4096)
    table = report(
        "Ablation: expected chunk size vs dedup of a 5%-edited stream",
        ["Mask bits", "Mean chunk B", "Chunks", "Dedup ratio"],
        paper_note="small chunks improve dedup; metadata overhead motivates min sizes (§2.1)",
    )

    def run():
        rows = []
        for bits in (8, 10, 12, 14):
            chunker = Chunker(ChunkerConfig(mask_bits=bits, marker=0x2A & ((1 << bits) - 1) | 1))
            chunks = chunker.chunk(data) + chunker.chunk(edited)
            ratio = dedup_ratio(chunks)
            own = chunker.chunk(data)
            rows.append((bits, statistics.mean(c.length for c in own), len(own), ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    # Dedup ratio decreases (or stays flat) as chunks grow.
    ratios = [r[3] for r in rows]
    assert ratios[0] >= ratios[-1]
    # Two near-identical copies approach the 50% dedup ceiling.
    assert all(0.30 < r < 0.55 for r in ratios)


def test_min_max_vs_size_distribution(benchmark, report):
    """min/max trades dedup stability for bounded metadata and buffers."""
    data = seeded_bytes(2 * MB, seed=73)
    base = ChunkerConfig(mask_bits=11, marker=0x2AB)
    table = report(
        "Ablation: min/max chunk-size limits vs size distribution",
        ["Limits", "Mean B", "CoV", "Min B", "Max B"],
        paper_note="min bounds index overhead, max bounds RAM buffers (§2.1)",
    )

    def run():
        rows = []
        for label, cfg in [
            ("none", base),
            ("min=1K", base.with_limits(1024, None)),
            ("max=4K", base.with_limits(0, 4096)),
            ("1K..4K", base.with_limits(1024, 4096)),
        ]:
            sizes = [c.length for c in Chunker(cfg).chunk(data)]
            mean = statistics.mean(sizes)
            cov = statistics.pstdev(sizes) / mean
            rows.append((label, mean, cov, min(sizes), max(sizes)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    by_label = {r[0]: r for r in rows}
    assert by_label["max=4K"][4] <= 4096
    assert by_label["1K..4K"][2] < by_label["none"][2]  # tighter distribution


def test_engine_scaling(benchmark, report):
    """Real wall-clock scaling of the vector engine across window sizes."""
    from repro.core.engines import VectorEngine
    from repro.core.rabin import RabinFingerprinter

    data = seeded_bytes(1 * MB, seed=74)
    table = report(
        "Ablation: window size vs vector-engine scan rate [MB/s, real]",
        ["Window", "MB/s"],
        paper_note="scan cost grows with window width (more table XORs)",
    )
    import time

    def run():
        rows = []
        for window in (16, 32, 48, 64):
            engine = VectorEngine(RabinFingerprinter(window_size=window))
            start = time.perf_counter()
            engine.candidate_cuts(data, (1 << 13) - 1, 0x1A2B)
            elapsed = time.perf_counter() - start
            rows.append((window, 1.0 / elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)
    assert rows[0][1] > rows[-1][1]  # narrower window scans faster
