"""Figure 5: overlap of communication with computation, 1 GB data.

For each buffer size, schedules 1 GB of chunking through the unoptimized
(naive-memory) kernel either serialized or with double buffering.
Expected shape: concurrent total ~15% below serialized, bounded below by
the kernel (compute) time alone — "the total time is now dictated solely
by the compute time".
"""

from __future__ import annotations

from repro.core.chunking import ChunkerConfig
from repro.gpu import (
    ChunkingKernel,
    Direction,
    DMAModel,
    GPUDevice,
    MemoryType,
    PhaseCosts,
    double_buffered_schedule,
    serialized_schedule,
)

MB, GB = 1 << 20, 1 << 30
SIZES = [16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB]


def test_fig5(benchmark, report):
    device = GPUDevice()
    dma = DMAModel()
    kernel = ChunkingKernel(ChunkerConfig())
    table = report(
        "Figure 5: Serialized vs concurrent copy+execution for 1 GB [ms]",
        ["Buffer", "Transfer", "Kernel", "Serialized", "Concurrent", "Overlap%"],
        paper_note="~30% time overlap, ~15% total reduction; compute-bound after",
    )

    def run():
        rows = []
        for size in SIZES:
            n_buffers = GB // size
            transfer = dma.transfer_time(size, Direction.HOST_TO_DEVICE, MemoryType.PINNED)
            kern = kernel.estimate(
                device, size, boundary_count=size // 8192, coalesced=False
            ).kernel_seconds
            phases = [PhaseCosts(0.0, transfer, kern, 0.0)] * n_buffers
            serial = serialized_schedule(phases)
            conc = double_buffered_schedule(phases)
            rows.append(
                (
                    f"{size // MB}M",
                    transfer * n_buffers * 1e3,
                    kern * n_buffers * 1e3,
                    serial.total_seconds * 1e3,
                    conc.total_seconds * 1e3,
                    100 * conc.overlap_seconds / serial.total_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    for _, transfer_ms, kernel_ms, serial_ms, conc_ms, _ in rows:
        assert conc_ms <= serial_ms
        assert conc_ms >= kernel_ms - 1e-6  # dictated by compute time
        reduction = 1 - conc_ms / serial_ms
        assert 0.05 < reduction < 0.35  # paper: ~15%
