"""The paper's §9 future-work directions, quantified.

1. Parallel min/max selection ([31, 33]) — removes the Store thread's
   sequential post-filter limitation that capped the backup case study
   at 2.5x.
2. GPUDirect packet I/O ([4]) — NIC-to-GPU DMA removes the 2 GBps SAN
   reader from the data path.
3. Multi-GPU scaling — data-parallel chunking across devices.
4. RE middleboxes ([11]) — WAN bandwidth savings from Shredder chunking.
"""

from __future__ import annotations

import time

from repro.core import Chunker, ChunkerConfig, select_cuts
from repro.core.parallel_minmax import parallel_select_cuts
from repro.core.shredder import Shredder, ShredderConfig
from repro.netre import REConfig, RETunnel, TrafficConfig, TrafficGenerator
from repro.workloads import seeded_bytes

GB = 1 << 30
MB = 1 << 20


def test_parallel_minmax(benchmark, report):
    """Parallel jump-table min/max selection vs sequential greedy."""
    data = seeded_bytes(4 * MB, seed=81)
    chunker = Chunker(ChunkerConfig(mask_bits=10, marker=0x2AB))
    candidates = chunker.candidate_cuts(data)
    table = report(
        "Future work: parallel min/max selection (equivalence + wall time)",
        ["Selector", "Cuts", "Wall ms"],
        paper_note="§9: incorporate parallel chunking with min/max [31, 33]",
    )

    def run():
        t0 = time.perf_counter()
        seq = select_cuts(candidates, len(data), 2048, 16384)
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        par = parallel_select_cuts(candidates, len(data), 2048, 16384, workers=4)
        t_par = time.perf_counter() - t0
        assert par == seq
        return seq, t_seq, par, t_par

    seq, t_seq, par, t_par = benchmark(run)
    table.add("sequential greedy", len(seq), t_seq * 1e3)
    table.add("parallel jump table", len(par), t_par * 1e3)


def test_gpu_direct_and_multi_gpu(benchmark, report):
    table = report(
        "Future work: GPUDirect + multi-GPU throughput [GBps, 1 GB modeled]",
        ["Configuration", "Throughput", "Bottleneck"],
        paper_note="§9: GPUDirect removes the host from the ingest path",
    )

    def run():
        rows = []
        for name, cfg in [
            ("baseline (SAN reader @2GBps)", ShredderConfig.gpu_streams_memory()),
            ("+ GPUDirect (IB @4GBps)", ShredderConfig.gpu_streams_memory(gpu_direct=True)),
            ("+ GPUDirect + 2 GPUs", ShredderConfig.gpu_streams_memory(gpu_direct=True, num_gpus=2)),
            ("+ GPUDirect + 4 GPUs", ShredderConfig.gpu_streams_memory(gpu_direct=True, num_gpus=4)),
        ]:
            with Shredder(cfg) as shredder:
                rep = shredder.simulate(GB)
            rows.append((name, rep.throughput_bps, rep.bottleneck()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, bps, bottleneck in rows:
        table.add(name, bps / 1e9, bottleneck)
    throughputs = [r[1] for r in rows]
    assert throughputs[1] > 1.5 * throughputs[0]  # GPUDirect lifts reader wall
    assert throughputs[-1] >= throughputs[1]      # GPUs never hurt


def test_re_middlebox(benchmark, report):
    table = report(
        "Future work: RE middlebox WAN savings vs traffic redundancy",
        ["Update probability", "Savings %"],
        paper_note="§9: middleboxes for bandwidth reduction via RE [11]",
    )

    def run():
        rows = []
        for update_p in (0.0, 0.2, 0.5, 1.0):
            tunnel = RETunnel(REConfig(use_gpu=False))
            gen = TrafficGenerator(
                TrafficConfig(n_objects=25, object_size=16 * 1024,
                              update_probability=update_p, seed=83)
            )
            savings = tunnel.send_all(gen.requests(80))
            rows.append((update_p, savings * 100))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for update_p, savings in rows:
        table.add(update_p, savings)
    # More updates -> less redundancy -> smaller savings, monotone-ish.
    assert rows[0][1] > rows[-1][1]
    assert rows[0][1] > 50.0  # repeated objects dedup heavily


def test_samplebyte_tradeoff(benchmark, report):
    """SampleByte [9]: fast but dedup degrades as chunks grow (§2.1)."""
    from repro.core import dedup_ratio
    from repro.core.baselines import SampleByteChunker
    from repro.core.baselines import SampleByteConfig
    from repro.workloads import mutate

    data = seeded_bytes(1 * MB, seed=84)
    edited = mutate(data, 4, mode="replace", seed=85, edit_size=1024)
    table = report(
        "Baseline: Rabin vs SampleByte dedup of a 4%-edited stream",
        ["Expected chunk", "Rabin dedup", "SampleByte dedup"],
        paper_note="sampling suits only small chunks; skipping loses dedup (§2.1)",
    )

    def run():
        rows = []
        for bits, expected in ((8, 256), (10, 1024), (12, 4096)):
            rabin = Chunker(ChunkerConfig(mask_bits=bits, marker=0x55 & ((1 << bits) - 1) | 1))
            sample = SampleByteChunker(SampleByteConfig(expected_size=expected))
            r = dedup_ratio(rabin.chunk(data) + rabin.chunk(edited))
            s = dedup_ratio(sample.chunk(data) + sample.chunk(edited))
            rows.append((expected, r, s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)
    # Rabin at least matches SampleByte everywhere.
    assert all(r >= s * 0.95 for _, r, s in rows)
