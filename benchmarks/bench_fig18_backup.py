"""Figure 18: backup bandwidth vs image similarity.

Backs up snapshots derived from a master image with per-segment change
probabilities 5-25%, through both the pthreads-CPU pipeline and the
Shredder-GPU pipeline (min/max chunk sizes enabled, as in §7.3).

Expected shape: Shredder keeps bandwidth near the 10 Gbps generation
target (declining as dissimilarity raises index/network costs); the CPU
baseline is chunking-bound around 2.5-3 Gbps; the GPU advantage is
~2.5-3x (capped by the unoptimized min/max handling).
"""

from __future__ import annotations

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable

MB = 1 << 20
PROBABILITIES = [0.05, 0.10, 0.15, 0.20, 0.25]


def test_fig18(benchmark, report):
    image = MasterImage(size=8 * MB, segment_size=32 * 1024, seed=91)
    table = report(
        "Figure 18: Backup bandwidth vs segment-change probability [Gbps]",
        ["P(change)", "Pthreads-CPU", "Shredder-GPU", "GPU/CPU"],
        paper_note="GPU ~2.5x CPU, near the 10 Gbps target, declining with dissimilarity",
    )

    def run():
        curves = {}
        for engine in ("cpu", "gpu"):
            bws = []
            with BackupServer(BackupConfig(engine=engine)) as server:
                server.backup_snapshot(image.data, "master")
                for i, p in enumerate(PROBABILITIES):
                    t = SimilarityTable.uniform(p, image.n_segments)
                    snap = image.snapshot(t, generation=i + 1)
                    rep = server.backup_snapshot(snap, f"{engine}-{i}")
                    # Integrity: the agent must be able to rebuild the image.
                    assert server.agent.restore(f"{engine}-{i}") == snap
                    bws.append(rep.backup_bandwidth_gbps)
            curves[engine] = bws
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for i, p in enumerate(PROBABILITIES):
        cpu, gpu = curves["cpu"][i], curves["gpu"][i]
        table.add(f"{int(p * 100)}%", cpu, gpu, gpu / cpu)

    for cpu, gpu in zip(curves["cpu"], curves["gpu"]):
        assert 1.8 < gpu / cpu < 4.5  # paper: ~2.5x
        assert gpu < 10.0  # bounded by the 10 Gbps generation rate
    assert curves["gpu"][-1] <= curves["gpu"][0]  # declines with dissimilarity
    assert max(curves["cpu"]) - min(curves["cpu"]) < 1.0  # CPU flat, chunking-bound
