"""Figure 3: bandwidth test between host and device.

Sweeps buffer sizes from 4 KB to 64 MB for pageable vs pinned host
buffers in both transfer directions, reporting effective throughput.
Expected shape: small buffers expensive; pinned saturates by ~256 KB,
pageable by ~32 MB; at large sizes the gap is insignificant; peak ~5 GBps.
"""

from __future__ import annotations

from repro.gpu import DMAModel, Direction, MemoryType

KB, MB = 1024, 1 << 20
SIZES = [4 * KB, 16 * KB, 32 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 32 * MB, 64 * MB]


def _label(size: int) -> str:
    return f"{size // MB}M" if size >= MB else f"{size // KB}K"


def test_fig3(benchmark, report):
    dma = DMAModel()
    table = report(
        "Figure 3: Host/device DMA bandwidth vs buffer size [MB/s]",
        ["Buffer", "H2D-Pageable", "H2D-Pinned", "D2H-Pageable", "D2H-Pinned"],
        paper_note="pinned saturates ~256KB, pageable ~32MB; peaks 5.406/5.129 GBps",
    )

    def sweep():
        rows = []
        for size in SIZES:
            rows.append(
                (
                    _label(size),
                    dma.bandwidth(size, Direction.HOST_TO_DEVICE, MemoryType.PAGEABLE) / 1e6,
                    dma.bandwidth(size, Direction.HOST_TO_DEVICE, MemoryType.PINNED) / 1e6,
                    dma.bandwidth(size, Direction.DEVICE_TO_HOST, MemoryType.PAGEABLE) / 1e6,
                    dma.bandwidth(size, Direction.DEVICE_TO_HOST, MemoryType.PINNED) / 1e6,
                )
            )
        return rows

    for row in benchmark(sweep):
        table.add(*row)

    # Shape assertions (the paper's four "highlights").
    small_pinned = dma.bandwidth(4 * KB)
    assert small_pinned < 0.2 * dma.gpu.h2d_bandwidth
    assert dma.bandwidth(256 * KB) > 0.8 * dma.gpu.h2d_bandwidth
    big_pinned = dma.bandwidth(64 * MB)
    big_pageable = dma.bandwidth(64 * MB, memory_type=MemoryType.PAGEABLE)
    assert (big_pinned - big_pageable) / big_pinned < 0.15
    assert 4e9 < big_pinned < 6e9
