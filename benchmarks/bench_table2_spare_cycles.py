"""Table 2: host spare cycles per core during asynchronous device work.

For each buffer size: device execution time (async copy + kernel), the
host's kernel-launch time, total, and idle RDTSC ticks at 2.67 GHz.
Expected shape: launch time negligible (~0.03-0.09 ms); spare ticks grow
linearly with buffer size into the 1e7-1e8 range.
"""

from __future__ import annotations

from repro.core.chunking import ChunkerConfig
from repro.gpu import (
    ChunkingKernel,
    Direction,
    DMAModel,
    GPUDevice,
    MemoryType,
    XEON_X5650_HOST,
    spare_host_cycles,
)

MB = 1 << 20
SIZES = [16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB]


def test_table2(benchmark, report):
    device = GPUDevice()
    dma = DMAModel()
    kernel = ChunkingKernel(ChunkerConfig())
    table = report(
        "Table 2: Host spare cycles per core (async transfer + kernel launch)",
        ["Buffer", "DeviceExec ms", "Launch ms", "Total ms", "RDTSC ticks @2.67GHz"],
        paper_note="paper: 11.4-171.5 ms device exec, 0.03-0.09 ms launch, 3.0e7-5.3e8 ticks",
    )

    def run():
        rows = []
        for size in SIZES:
            copy = dma.transfer_time(size, Direction.HOST_TO_DEVICE, MemoryType.PINNED)
            kern = kernel.estimate(
                device, size, boundary_count=size // 8192, coalesced=False
            ).kernel_seconds
            device_exec = max(copy, kern)  # async copy overlaps execution
            launch = device.spec.kernel_launch_overhead_s
            ticks = spare_host_cycles(device_exec + launch, launch, XEON_X5650_HOST)
            rows.append(
                (f"{size // MB}M", device_exec * 1e3, launch * 1e3,
                 (device_exec + launch) * 1e3, f"{ticks:.1e}")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    # Launch time negligible vs device execution (the Table 2 takeaway).
    for _, device_ms, launch_ms, total_ms, _ in rows:
        assert launch_ms < 0.01 * device_ms
        assert total_ms >= device_ms
    # Ticks in the paper's order of magnitude at 256 MB (5.3e8).
    assert 1e8 < float(rows[-1][4]) < 2e9
