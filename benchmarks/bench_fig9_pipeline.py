"""Figure 9: speedup of the multi-stage streaming pipeline.

Schedules 1 GB of work through 2-, 3- and 4-stage pipelines and reports
speedup over serialized execution.  Expected shape: speedup grows with
stage count but stays well under the theoretical 4x because stage costs
are unequal — the paper measures ~2x for the full pipeline.
"""

from __future__ import annotations

from repro.core.chunking import ChunkerConfig
from repro.gpu import (
    ChunkingKernel,
    Direction,
    DMAModel,
    GPUDevice,
    MemoryType,
    PhaseCosts,
    XEON_X5650_HOST,
    pipeline_schedule,
)

MB, GB = 1 << 20, 1 << 30
SIZES = [16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB]


def test_fig9(benchmark, report):
    device = GPUDevice()
    dma = DMAModel()
    kernel = ChunkingKernel(ChunkerConfig())
    host = XEON_X5650_HOST
    table = report(
        "Figure 9: Streaming-pipeline speedup over serialized execution",
        ["Buffer", "2-stage", "3-stage", "4-stage"],
        paper_note="full 4-stage pipeline reaches ~2x (stages have unequal cost)",
    )

    def phases_for(size: int) -> list[PhaseCosts]:
        n = max(2, GB // size)
        read = size / host.reader_bandwidth
        transfer = dma.transfer_time(size, Direction.HOST_TO_DEVICE, MemoryType.PINNED)
        kern = kernel.estimate(
            device, size, boundary_count=size // 8192, coalesced=False
        ).kernel_seconds
        store = device.download_time((size // 8192) * 8) + (size // 8192) * 0.5e-6
        return [PhaseCosts(read, transfer, kern, store)] * n

    def run():
        rows = []
        for size in SIZES:
            phases = phases_for(size)
            serial = pipeline_schedule(phases, stages=1).total_seconds
            speedups = [
                serial / pipeline_schedule(phases, stages=s).total_seconds
                for s in (2, 3, 4)
            ]
            rows.append((f"{size // MB}M", *speedups))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    for _, s2, s3, s4 in rows:
        assert 1.0 < s2 <= s3 <= s4 < 4.0
        assert 1.4 < s4 < 3.0  # paper: ~2x
