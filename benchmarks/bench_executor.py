"""Real threaded host-driver execution (the §5.2.1 pipeline, live).

Measures wall-clock throughput of the 3-stage threaded executor
(Transfer/Kernel/Store threads over the simulated device) against the
single-threaded reference chunker, and verifies output equivalence.
This is an honest Python-level number, not a modeled one.
"""

from __future__ import annotations

from repro.core.chunking import Chunker, ChunkerConfig
from repro.core.executor import ShredderExecutor
from repro.core.shredder import ShredderConfig
from repro.workloads import seeded_bytes

MB = 1 << 20
CHUNKER = ChunkerConfig(mask_bits=12, marker=0xABC)


def test_executor_throughput(benchmark, report):
    data = seeded_bytes(4 * MB, seed=95)
    executor = ShredderExecutor(
        ShredderConfig.gpu_streams_memory(chunker=CHUNKER, buffer_size=MB)
    )
    table = report(
        "Threaded executor: real wall-clock scan rate",
        ["Path", "MB/s (wall)"],
        paper_note="integration measurement; modeled GPU numbers are separate",
    )

    chunks, _ = benchmark(executor.run, data)
    reference = Chunker(CHUNKER).chunk(data)
    assert [(c.offset, c.digest) for c in chunks] == [
        (c.offset, c.digest) for c in reference
    ]
    seconds = benchmark.stats.stats.mean
    table.add("threaded 3-stage executor", 4 / seconds)
