"""Figure 12: content-based chunking throughput, CPU vs GPU versions.

The five bars: pthreads CPU without/with the Hoard allocator, GPU Basic
(no optimizations), GPU Streams (double buffering + ring + 4-stage
pipeline), GPU Streams + Memory (adds coalescing).  Modeled over a 1 GB
stream.  Expected shape: GPU Basic ~2x the optimized CPU; the fully
optimized version >5x.

Also measures the *real* wall-clock throughput of this library's
vectorized chunking engine on in-memory data, so the repo reports an
honest Python-level number alongside the modeled hardware numbers.
"""

from __future__ import annotations

from repro.core.shredder import Shredder, ShredderConfig
from repro.workloads import seeded_bytes

MB, GB = 1 << 20, 1 << 30

CONFIGS = [
    ("CPU w/o Hoard", ShredderConfig.cpu(hoard=False)),
    ("CPU w/ Hoard", ShredderConfig.cpu(hoard=True)),
    ("GPU Basic", ShredderConfig.gpu_basic()),
    ("GPU Streams", ShredderConfig.gpu_streams()),
    ("GPU Streams + Memory", ShredderConfig.gpu_streams_memory()),
]


def test_fig12_modeled(benchmark, report):
    table = report(
        "Figure 12: Chunking throughput by configuration [GBps, modeled]",
        ["Configuration", "Throughput", "Speedup vs CPU w/ Hoard", "Bottleneck"],
        paper_note="GPU basic ~2x host-only; all optimizations >5x (§5.3)",
    )

    def run():
        rows = {}
        for name, cfg in CONFIGS:
            with Shredder(cfg) as shredder:
                rep = shredder.simulate(GB)
            bottleneck = rep.bottleneck() if rep.backend == "gpu" else "chunking"
            rows[name] = (rep.throughput_bps, bottleneck)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cpu_hoard = rows["CPU w/ Hoard"][0]
    for name, _ in CONFIGS:
        bps, bottleneck = rows[name]
        table.add(name, bps / 1e9, bps / cpu_hoard, bottleneck)

    assert rows["CPU w/o Hoard"][0] < rows["CPU w/ Hoard"][0]
    assert 1.3 < rows["GPU Basic"][0] / cpu_hoard < 2.6
    assert rows["GPU Streams"][0] > rows["GPU Basic"][0]
    assert rows["GPU Streams + Memory"][0] / cpu_hoard > 5.0
    assert rows["GPU Streams + Memory"][1] == "read"  # reader-bound at last


def test_fig12_real_engine(benchmark, report):
    """Honest wall-clock throughput of the NumPy chunking engine."""
    data = seeded_bytes(4 * MB, seed=55)
    table = report(
        "Figure 12 (companion): real Python engine wall-clock throughput",
        ["Engine", "MB/s"],
        paper_note="not a paper figure; Python-level honesty check",
    )
    from repro.core import Chunker

    chunker = Chunker()

    result = benchmark(chunker.candidate_cuts, data)
    assert result  # boundaries found
    seconds = benchmark.stats.stats.mean
    table.add("VectorEngine (48B window, 13-bit mask)", 4 / seconds)
