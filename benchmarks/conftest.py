"""Benchmark-suite plumbing: collect experiment tables, print at the end.

Each bench regenerates one of the paper's tables/figures as rows via the
`report` fixture; everything collected is printed in the terminal summary
(visible even with captured output) so `pytest benchmarks/ --benchmark-only`
emits the full paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ResultTable, format_table

_TABLES: list[ResultTable] = []


@pytest.fixture()
def report():
    """Factory: report(title, headers, paper_note="") -> ResultTable."""

    def _make(title: str, headers, paper_note: str = "") -> ResultTable:
        table = ResultTable(title=title, headers=headers, paper_note=paper_note)
        _TABLES.append(table)
        return table

    return _make


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    tr = terminalreporter
    tr.section("Shredder reproduction: regenerated tables and figures")
    for table in _TABLES:
        tr.write_line("")
        for line in format_table(table).splitlines():
            tr.write_line(line)
