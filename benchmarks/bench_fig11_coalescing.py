"""Figure 11: chunking-kernel time with and without memory coalescing.

Normalized to 1 GB of data for each buffer size, comparing the naive
per-thread strided access ("Device Memory") against the half-warp
cooperative fetch ("Memory Coalescing").  Expected shape: ~8x improvement
from reduced bank conflicts, roughly flat across buffer sizes.
"""

from __future__ import annotations

from repro.core.chunking import ChunkerConfig
from repro.gpu import ChunkingKernel, GPUDevice

MB, GB = 1 << 20, 1 << 30
SIZES = [16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB]


def test_fig11(benchmark, report):
    device = GPUDevice()
    kernel = ChunkingKernel(ChunkerConfig())
    table = report(
        "Figure 11: Chunking-kernel time for 1 GB, naive vs coalesced [ms]",
        ["Buffer", "Device Memory", "Memory Coalescing", "Speedup", "Conflict rate"],
        paper_note="paper measures ~8x improvement by reducing bank conflicts",
    )

    def run():
        rows = []
        for size in SIZES:
            n = GB // size
            naive = kernel.estimate(
                device, size, boundary_count=size // 8192, coalesced=False
            )
            coal = kernel.estimate(
                device, size, boundary_count=size // 8192, coalesced=True
            )
            rows.append(
                (
                    f"{size // MB}M",
                    naive.kernel_seconds * n * 1e3,
                    coal.kernel_seconds * n * 1e3,
                    naive.kernel_seconds / coal.kernel_seconds,
                    naive.bank_conflict_rate,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)

    for _, naive_ms, coal_ms, speedup, conflict in rows:
        assert 5.0 < speedup < 14.0  # paper: ~8x
        assert conflict > 0.9  # naive pattern thrashes the banks
    # Roughly flat across buffer sizes (coalescing granularity is the
    # 48 KB shared-memory tile, not the buffer).
    coal_times = [r[2] for r in rows]
    assert max(coal_times) / min(coal_times) < 1.6
