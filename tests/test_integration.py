"""Cross-subsystem integration scenarios.

Each test drives several packages together the way a deployment would:
Shredder feeding Inc-HDFS feeding Incoop; the backup server rotating
snapshots with retention; the threaded executor as the HDFS upload
engine; RE tunnels carrying backup traffic.
"""

from __future__ import annotations

import pytest

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable
from repro.core.chunking import ChunkerConfig
from repro.core.executor import ShredderExecutor
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import AffinityScheduler, IncoopRuntime, MemoServer
from repro.mapreduce.applications import (
    kmeans_iterate,
    wordcount_job,
    wordcount_reference,
)
from repro.netre import REConfig, RETunnel
from repro.workloads import generate_points, generate_text, mutate_records

CHUNKER = ChunkerConfig(mask_bits=9, marker=0x155, min_size=128, max_size=2048)
UPLOAD = ShredderConfig.gpu_streams_memory(chunker=CHUNKER, buffer_size=1 << 20)


class TestThreeDayPipeline:
    """Simulates three daily crawls through the whole Case-Study-I stack."""

    def test_daily_incremental_wordcount(self):
        cluster = HDFSCluster()
        memo = MemoServer()
        incoop = IncoopRuntime(cluster.client, memo=memo,
                               scheduler=AffinityScheduler())
        job = wordcount_job()

        text = generate_text(150_000, seed=71)
        reuse_history = []
        for day in range(3):
            if day:
                text = mutate_records(text, 4, seed=80 + day)
            with Shredder(UPLOAD) as shredder:
                cluster.client.copy_from_local_gpu(
                    text, f"/crawl/day{day}", shredder=shredder
                )
            result = incoop.run_incremental(job, f"/crawl/day{day}")
            assert result.output == wordcount_reference(text)
            reuse_history.append(result.stats.reuse_fraction)
        assert reuse_history[0] == 0.0
        assert reuse_history[1] > 0.5 and reuse_history[2] > 0.5
        assert memo.hit_rate > 0.3

    def test_memo_survives_restart(self, tmp_path):
        """Persist the memo server between 'cluster restarts'."""
        cluster = HDFSCluster()
        text = generate_text(80_000, seed=72)
        with Shredder(UPLOAD) as shredder:
            cluster.client.copy_from_local_gpu(text, "/in", shredder=shredder)
        job = wordcount_job()

        first = IncoopRuntime(cluster.client)
        first.run_incremental(job, "/in")
        first.memo.save(tmp_path / "memo.pkl")

        restarted = IncoopRuntime(
            cluster.client, memo=MemoServer.load(tmp_path / "memo.pkl")
        )
        rerun = restarted.run_incremental(job, "/in")
        assert rerun.stats.map_tasks_run == 0
        assert rerun.output == wordcount_reference(text)


class TestIterativeKMeansOverCluster:
    def test_kmeans_convergence_with_reuse(self):
        cluster = HDFSCluster()
        points = generate_points(8000, seed=73)
        with Shredder(UPLOAD) as shredder:
            cluster.client.copy_from_local_gpu(points, "/pts", shredder=shredder)
        incoop = IncoopRuntime(cluster.client)
        centroids = tuple((0.25 * i, 1.0 - 0.25 * i) for i in range(4))
        final_a, runs_a = kmeans_iterate(incoop, "/pts", centroids, iterations=3)
        final_b, runs_b = kmeans_iterate(incoop, "/pts", centroids, iterations=3)
        assert final_a == final_b  # deterministic fixed-point path
        assert all(r.stats.map_tasks_run == 0 for r in runs_b)  # full reuse


class TestBackupRetention:
    def test_weekly_rotation_with_gc(self):
        image = MasterImage(size=2 << 20, segment_size=32 * 1024, seed=74)
        table = SimilarityTable.uniform(0.1, image.n_segments)
        with BackupServer(BackupConfig(engine="gpu")) as server:
            server.backup_snapshot(image.data, "gen0")
            for gen in range(1, 5):
                snap = image.snapshot(table, gen)
                server.backup_snapshot(snap, f"gen{gen}")
            store = server.agent.store
            before = store.stored_bytes
            # Retention: keep only the last two snapshots.
            for gen in range(0, 3):
                store.delete_recipe(f"gen{gen}")
            freed = store.garbage_collect()
            assert freed > 0
            assert store.stored_bytes < before
            # Remaining snapshots still restore byte-exact.
            assert server.agent.restore("gen4") == image.snapshot(table, 4)
            assert server.agent.restore("gen3") == image.snapshot(table, 3)

    def test_gc_never_breaks_live_recipes(self):
        image = MasterImage(size=1 << 20, segment_size=16 * 1024, seed=75)
        table = SimilarityTable.uniform(0.3, image.n_segments)
        with BackupServer(BackupConfig(engine="cpu")) as server:
            snaps = {}
            for gen in range(4):
                snaps[gen] = image.snapshot(table, gen)
                server.backup_snapshot(snaps[gen], f"g{gen}")
            server.agent.store.garbage_collect()  # no recipes deleted: no-op
            for gen in range(4):
                assert server.agent.restore(f"g{gen}") == snaps[gen]


class TestExecutorAsUploadEngine:
    def test_executor_chunks_feed_hdfs(self):
        """The threaded executor can drive the Inc-HDFS upload path."""
        cluster = HDFSCluster()
        text = generate_text(120_000, seed=76)
        executor = ShredderExecutor(UPLOAD)
        chunks, totals = executor.run(text)
        # Store the executor's chunks as blocks directly.
        meta = cluster.namenode.create_file("/exec", content_based=True)
        for chunk in chunks:
            block = cluster.namenode.allocate_block(
                "/exec", chunk.length, chunk.digest
            )
            for node_id in block.replicas:
                cluster.namenode.get_datanode(node_id).store_block(
                    block.block_id, chunk.data
                )
        cluster.namenode.complete_file("/exec")
        assert cluster.client.read("/exec") == text
        assert totals.buffers >= 1


class TestBackupOverRETunnel:
    def test_offsite_replication_traffic_savings(self):
        """Ship the same snapshot to a second site through an RE tunnel:
        the tunnel dedups what the backup already shipped once."""
        image = MasterImage(size=1 << 20, segment_size=16 * 1024, seed=77)
        table = SimilarityTable.uniform(0.05, image.n_segments)
        tunnel = RETunnel(REConfig(use_gpu=False))
        first = image.snapshot(table, 1)
        second = image.snapshot(table, 2)  # highly similar to first
        tunnel.send(first)
        saved_before = tunnel.savings
        tunnel.send(second)
        assert tunnel.savings > saved_before
        assert tunnel.savings > 0.3
        tunnel.close()
