"""Tests for the redundancy-elimination middlebox subsystem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import chunk_hash
from repro.netre import (
    ChunkCache,
    Decoder,
    Encoder,
    REConfig,
    RETunnel,
    Shim,
    TrafficConfig,
    TrafficGenerator,
)
from repro.workloads import seeded_bytes

CPU_CFG = REConfig(use_gpu=False)  # faster for unit tests; GPU covered once


class TestChunkCache:
    def test_insert_get(self):
        cache = ChunkCache(1024)
        d = chunk_hash(b"abc")
        cache.insert(d, b"abc")
        assert cache.get(d) == b"abc"
        assert d in cache

    def test_lru_eviction(self):
        cache = ChunkCache(100)
        items = [(chunk_hash(bytes([i]) * 40), bytes([i]) * 40) for i in range(3)]
        for d, data in items:
            cache.insert(d, data)
        assert items[0][0] not in cache  # evicted
        assert items[1][0] in cache and items[2][0] in cache
        assert cache.evictions == 1

    def test_touch_protects_from_eviction(self):
        cache = ChunkCache(100)
        items = [(chunk_hash(bytes([i]) * 40), bytes([i]) * 40) for i in range(3)]
        cache.insert(*items[0])
        cache.insert(*items[1])
        cache.get(items[0][0])  # touch: 1 becomes LRU
        cache.insert(*items[2])
        assert items[0][0] in cache
        assert items[1][0] not in cache

    def test_oversized_chunk_not_cached(self):
        cache = ChunkCache(10)
        cache.insert(chunk_hash(b"x" * 20), b"x" * 20)
        assert len(cache) == 0

    def test_reinsert_is_touch(self):
        cache = ChunkCache(1000)
        d = chunk_hash(b"abc")
        cache.insert(d, b"abc")
        cache.insert(d, b"abc")
        assert cache.used_bytes == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ChunkCache(0)

    @given(sizes=st.lists(st.integers(1, 50), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, sizes):
        cache = ChunkCache(200)
        for i, size in enumerate(sizes):
            data = bytes([i % 256]) * size
            cache.insert(chunk_hash(data), data)
            assert cache.used_bytes <= 200


class TestTunnel:
    def test_roundtrip(self):
        tunnel = RETunnel(CPU_CFG)
        payload = seeded_bytes(50_000, seed=1)
        assert tunnel.send(payload) == payload

    def test_repeat_transfer_mostly_shims(self):
        tunnel = RETunnel(CPU_CFG)
        payload = seeded_bytes(50_000, seed=2)
        tunnel.send(payload)
        encoded = tunnel.encoder.encode(payload)
        shims = sum(isinstance(i, Shim) for i in encoded.items)
        assert shims / len(encoded.items) > 0.95
        assert encoded.savings > 0.9

    def test_savings_accumulate(self):
        tunnel = RETunnel(CPU_CFG)
        payload = seeded_bytes(30_000, seed=3)
        tunnel.send(payload)
        first = tunnel.savings
        tunnel.send(payload)
        assert tunnel.savings > first

    def test_unique_traffic_no_savings(self):
        tunnel = RETunnel(CPU_CFG)
        tunnel.send(seeded_bytes(30_000, seed=4))
        assert tunnel.savings < 0.05

    def test_caches_stay_synchronized(self):
        tunnel = RETunnel(CPU_CFG)
        gen = TrafficGenerator(TrafficConfig(n_objects=10, object_size=8 * 1024))
        for payload in gen.requests(40):
            tunnel.send(payload)
            assert (
                tunnel.encoder.cache.state_digest()
                == tunnel.decoder.cache.state_digest()
            )

    def test_desync_detected(self):
        encoder = Encoder(CPU_CFG)
        decoder = Decoder(CPU_CFG)
        payload = seeded_bytes(20_000, seed=5)
        encoder.encode(payload)  # primes only the encoder cache
        second = encoder.encode(payload)  # now full of shims
        with pytest.raises(KeyError, match="desync"):
            decoder.decode(second)

    def test_gpu_and_cpu_encoders_equivalent(self):
        payload = seeded_bytes(40_000, seed=6)
        cpu = Encoder(REConfig(use_gpu=False)).encode(payload)
        gpu_encoder = Encoder(REConfig(use_gpu=True))
        gpu = gpu_encoder.encode(payload)
        gpu_encoder.close()
        assert [
            i.digest if isinstance(i, Shim) else chunk_hash(i) for i in cpu.items
        ] == [i.digest if isinstance(i, Shim) else chunk_hash(i) for i in gpu.items]

    def test_eviction_pressure_keeps_correctness(self):
        """Tiny caches force constant eviction; payloads still roundtrip."""
        cfg = REConfig(use_gpu=False, cache_bytes=16 * 1024)
        tunnel = RETunnel(cfg)
        gen = TrafficGenerator(TrafficConfig(n_objects=8, object_size=4 * 1024))
        tunnel.send_all(gen.requests(50))
        assert tunnel.encoder.cache.evictions > 0


class TestTraffic:
    def test_deterministic(self):
        a = list(TrafficGenerator(TrafficConfig(seed=9)).requests(10))
        b = list(TrafficGenerator(TrafficConfig(seed=9)).requests(10))
        assert a == b

    def test_popular_objects_repeat(self):
        gen = TrafficGenerator(TrafficConfig(n_objects=20, update_probability=0.0))
        seen = list(gen.requests(50))
        assert len({bytes(p) for p in seen}) < 30  # repeats happen

    def test_updates_mutate(self):
        gen = TrafficGenerator(
            TrafficConfig(n_objects=1, update_probability=1.0, object_size=4096)
        )
        a = gen.request()
        b = gen.request()
        assert a != b and len(a) == len(b)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrafficConfig(n_objects=0)
        with pytest.raises(ValueError):
            TrafficConfig(update_probability=2.0)
