"""Self-tuning scan geometry: cache round-trip, env gates, wiring.

The tuner itself is a micro-benchmark, so these tests never assert on
*which* geometry wins — only that resolution, persistence, validation,
and the plumbing into ``VectorEngine`` / ``pipeline_chunks`` /
``get_threads`` behave, and that a broken cache or tuner can never
poison the scan path.
"""

from __future__ import annotations

import json

import pytest

from repro.core import VectorEngine, get_threads, set_default_threads, set_threads
from repro.core import autotune
from repro.core.autotune import (
    DEFAULT_GEOMETRY,
    ScanGeometry,
    clear_geometry,
    get_geometry,
    host_key,
    load_cached,
    save_cached,
    set_geometry,
    tune,
)
from repro.core.chunking import ChunkerConfig, _resolve_batch_chunks

MB = 1 << 20


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    """Private cache file + clean resolution state around every test."""
    monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "autotune.json"))
    monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
    clear_geometry()
    set_default_threads(None)
    yield
    clear_geometry()
    set_default_threads(None)
    set_threads(None)


class TestResolution:
    def test_disabled_returns_static_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_AUTOTUNE", "0")
        assert get_geometry() == DEFAULT_GEOMETRY
        assert not (tmp_path / "autotune.json").exists()  # no file I/O

    def test_cached_geometry_wins_over_tuning(self):
        saved = ScanGeometry(
            lanes=2048, tile_bytes=MB, roll_steps=16, threads=1,
            source="tuned-quick", mib_per_s=50.0,
        )
        save_cached(saved, mode="quick")
        clear_geometry()

        def boom(**kw):  # the tuner must not run when a cache hit exists
            raise AssertionError("tune() called despite cache hit")

        orig, autotune.tune = autotune.tune, boom
        try:
            resolved = get_geometry()
        finally:
            autotune.tune = orig
        assert (resolved.lanes, resolved.tile_bytes, resolved.roll_steps) == (
            2048, MB, 16,
        )
        assert resolved.source == "cache"

    def test_tuner_failure_degrades_to_defaults(self):
        def boom(**kw):
            raise RuntimeError("synthetic tuner crash")

        orig, autotune.tune = autotune.tune, boom
        try:
            resolved = get_geometry()
        finally:
            autotune.tune = orig
        assert resolved.lanes == DEFAULT_GEOMETRY.lanes
        assert resolved.roll_steps == DEFAULT_GEOMETRY.roll_steps
        assert "tune-failed" in resolved.source

    def test_set_geometry_installs_and_clears(self):
        g = ScanGeometry(lanes=512, tile_bytes=2 * MB, roll_steps=4)
        set_geometry(g)
        assert get_geometry() is g
        clear_geometry()  # next resolution starts over (env says enabled)

    def test_memoized_after_first_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "0")
        assert get_geometry() is get_geometry()


class TestCacheFile:
    def test_round_trip(self):
        g = ScanGeometry(
            lanes=8192, tile_bytes=2 * MB, roll_steps=24, threads=2,
            source="tuned-full", mib_per_s=61.5,
        )
        path = save_cached(g, mode="full")
        assert path.exists()
        loaded = load_cached()
        assert (loaded.lanes, loaded.tile_bytes, loaded.roll_steps, loaded.threads) == (
            8192, 2 * MB, 24, 2,
        )
        assert loaded.source == "cache"
        assert loaded.mib_per_s == 61.5

    def test_missing_file_returns_none(self):
        assert load_cached() is None

    def test_corrupt_file_returns_none(self, tmp_path):
        (tmp_path / "autotune.json").write_text("{not json")
        assert load_cached() is None

    def test_wrong_host_entry_ignored(self, tmp_path):
        payload = {"version": 1, "hosts": {"some-other-host": {
            "lanes": 1, "tile_bytes": 1, "roll_steps": 1, "threads": None,
        }}}
        (tmp_path / "autotune.json").write_text(json.dumps(payload))
        assert load_cached() is None

    def test_invalid_cached_values_rejected(self, tmp_path):
        payload = {"version": 1, "hosts": {host_key(): {
            "lanes": 0, "tile_bytes": 2 * MB, "roll_steps": 8, "threads": None,
        }}}
        (tmp_path / "autotune.json").write_text(json.dumps(payload))
        assert load_cached() is None  # fails validate(), not the scan path

    def test_save_preserves_other_hosts(self, tmp_path):
        other = {"lanes": 4096, "tile_bytes": MB, "roll_steps": 8, "threads": 4}
        (tmp_path / "autotune.json").write_text(
            json.dumps({"version": 1, "hosts": {"other-host": other}})
        )
        save_cached(ScanGeometry(lanes=2048, tile_bytes=MB, roll_steps=2), "quick")
        raw = json.loads((tmp_path / "autotune.json").read_text())
        assert raw["hosts"]["other-host"] == other
        assert raw["hosts"][host_key()]["lanes"] == 2048


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(lanes=0),
        dict(tile_bytes=0),
        dict(roll_steps=0),
        dict(threads=-1),
    ])
    def test_rejects_degenerate_geometry(self, bad):
        with pytest.raises(ValueError):
            ScanGeometry(**bad).validate()
        with pytest.raises(ValueError):
            set_geometry(ScanGeometry(**bad))


class TestWiring:
    def test_engine_defaults_follow_geometry(self):
        set_geometry(ScanGeometry(lanes=123, tile_bytes=45678, roll_steps=3))
        engine = VectorEngine()
        assert (engine.lanes, engine.tile_bytes, engine.roll_steps) == (123, 45678, 3)

    def test_explicit_engine_args_beat_geometry(self):
        set_geometry(ScanGeometry(lanes=123, tile_bytes=45678, roll_steps=3))
        engine = VectorEngine(lanes=64, tile_bytes=4096, roll_steps=1)
        assert (engine.lanes, engine.tile_bytes, engine.roll_steps) == (64, 4096, 1)

    def test_tuned_threads_become_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        set_threads(None)
        set_geometry(ScanGeometry(threads=2))
        assert get_threads() == 2
        # Explicit knobs still win over the tuned default.
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert get_threads() == 3
        set_threads(5)
        assert get_threads() == 5

    def test_pipeline_batch_follows_tile(self):
        config = ChunkerConfig()  # 8 KiB expected chunks
        set_geometry(ScanGeometry(tile_bytes=2 * MB))
        assert _resolve_batch_chunks(config) == (2 * MB) // config.expected_chunk_size
        set_geometry(ScanGeometry(tile_bytes=64 * MB))
        assert _resolve_batch_chunks(config) == 4096  # clamped
        set_geometry(ScanGeometry(tile_bytes=1))
        assert _resolve_batch_chunks(config) == 32  # clamped


class TestTuner:
    def test_quick_tune_returns_valid_persisted_geometry(self, tmp_path):
        lines = []
        g = tune(quick=True, persist=True, data_bytes=256 * 1024, log=lines.append)
        assert g.validate() is g
        assert g.source == "tuned-quick"
        assert g.mib_per_s and g.mib_per_s > 0
        assert lines  # the grid was actually walked
        assert (tmp_path / "autotune.json").exists()
        cached = load_cached()
        assert (cached.lanes, cached.tile_bytes, cached.roll_steps) == (
            g.lanes, g.tile_bytes, g.roll_steps,
        )
