"""Tests for the fault-injection package (plan parsing, the faulty
backend decorator, and the wire-level injector)."""

from __future__ import annotations

import pytest

from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    WireFaultInjector,
)
from repro.store.backend import MemoryBackend


def wrapped(spec: str, name: str = "node-0"):
    plan = FaultPlan.parse(spec)
    backend = plan.wrap_backend(MemoryBackend(), name)
    return plan, backend


# ----------------------------------------------------------------------
# plan parsing
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=9,backend.io_error=0.5,backend.latency=0.25:0.002,"
            "backend.torn_write=0.1,backend.bit_flip=0.05,"
            "wire.drop=0.2,wire.stall=0.1:0.5,wire.garble=0.3,"
            "node.kill=node-2:17"
        )
        assert plan.seed == 9
        assert plan.backend.io_error == 0.5
        assert plan.backend.latency == 0.25
        assert plan.backend.latency_s == 0.002
        assert plan.backend.torn_write == 0.1
        assert plan.backend.bit_flip == 0.05
        assert plan.wire.drop == 0.2
        assert plan.wire.stall == 0.1
        assert plan.wire.stall_s == 0.5
        assert plan.wire.garble == 0.3
        assert plan.kill is not None
        assert plan.kill.node_id == "node-2"
        assert plan.kill.at_op == 17

    def test_parse_multiple_kills(self):
        plan = FaultPlan.parse(
            "seed=1,node.kill=node-1:10,node.kill=node-4:25"
        )
        assert [(k.node_id, k.at_op) for k in plan.kills] == [
            ("node-1", 10),
            ("node-4", 25),
        ]
        # Legacy single-kill accessor yields the first scheduled kill.
        assert plan.kill is not None and plan.kill.node_id == "node-1"
        with pytest.raises(ValueError):
            FaultPlan.parse("node.kill=node-1:10,node.kill=node-1:20")

    def test_multi_kill_wraps_each_named_backend(self):
        plan = FaultPlan.parse("node.kill=node-0:1,node.kill=node-1:2")
        first = plan.wrap_backend(MemoryBackend(), "node-0")
        second = plan.wrap_backend(MemoryBackend(), "node-1")
        spared = plan.wrap_backend(MemoryBackend(), "node-2")
        assert isinstance(first, FaultyBackend)
        assert isinstance(second, FaultyBackend)
        assert not isinstance(spared, FaultyBackend)
        with pytest.raises(InjectedFault):
            first.contains_batch([b"a"])
        second.contains_batch([b"a"])
        with pytest.raises(InjectedFault):
            second.contains_batch([b"b"])
        assert plan.stats.kills == 2

    def test_parse_rejects_bad_keys_and_values(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus.key=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("backend.io_error=nope")
        with pytest.raises(ValueError):
            FaultPlan.parse("backend.io_error=1.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("node.kill=missing-op")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, "seed=5,backend.io_error=0.1")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.seed == 5

    def test_seeded_determinism(self):
        spec = "seed=42,backend.io_error=0.3"
        a = FaultPlan.parse(spec).rng("x")
        b = FaultPlan.parse(spec).rng("x")
        assert [a.random() for _ in range(32)] == [
            b.random() for _ in range(32)
        ]
        # A different component draws a different stream.
        c = FaultPlan.parse(spec).rng("y")
        assert [c.random() for _ in range(8)] != [
            FaultPlan.parse(spec).rng("x").random() for _ in range(8)
        ]

    def test_wrap_backend_is_identity_without_backend_faults(self):
        plan = FaultPlan.parse("seed=1,wire.drop=0.5")
        inner = MemoryBackend()
        assert plan.wrap_backend(inner, "node-0") is inner

    def test_wire_injector_none_without_wire_faults(self):
        plan = FaultPlan.parse("seed=1,backend.io_error=0.5")
        assert plan.wire_injector("conn-1") is None


# ----------------------------------------------------------------------
# FaultyBackend
# ----------------------------------------------------------------------


class TestFaultyBackend:
    def test_passthrough_when_quiet(self):
        plan, backend = wrapped("seed=1,backend.io_error=0.0001")
        assert isinstance(backend, FaultyBackend)
        assert backend.put_batch([(b"k", b"v")]) == [True]
        assert backend.get_batch([b"k"]) == [b"v"]
        assert backend.contains_batch([b"k", b"x"]) == [True, False]
        assert len(backend) == 1
        assert backend.value_bytes == 1

    def test_io_errors_are_oserrors_and_counted(self):
        plan, backend = wrapped("seed=2,backend.io_error=1.0")
        with pytest.raises(OSError):
            backend.put_batch([(b"k", b"v")])
        with pytest.raises(InjectedFault):
            backend.get_batch([b"k"])
        assert plan.stats.io_errors == 2

    def test_deterministic_fault_sequence(self):
        outcomes = []
        for _ in range(2):
            plan, backend = wrapped("seed=3,backend.io_error=0.3")
            run = []
            for i in range(40):
                try:
                    backend.contains_batch([bytes([i])])
                    run.append(True)
                except InjectedFault:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]

    def test_torn_write_applies_strict_prefix(self):
        plan, backend = wrapped("seed=4,backend.torn_write=1.0")
        items = [(bytes([i]), bytes([i]) * 4) for i in range(8)]
        with pytest.raises(InjectedFault):
            backend.put_batch(items)
        assert plan.stats.torn_writes == 1
        stored = sum(1 for k, _ in items if (k in backend.inner._data))
        assert 1 <= stored < len(items)

    def test_bit_flip_corrupts_one_read(self):
        plan, backend = wrapped("seed=5,backend.bit_flip=1.0")
        backend.inner.put_batch([(b"k", b"payload")])
        (value,) = backend.get_batch([b"k"])
        assert value != b"payload"
        assert len(value) == len(b"payload")
        assert plan.stats.bit_flips_injected == 1
        assert plan.stats.bit_flips_detected == 0

    def test_kill_at_op_threshold(self):
        plan = FaultPlan.parse("seed=6,node.kill=node-0:3,backend.io_error=0")
        backend = plan.wrap_backend(MemoryBackend(), "node-0")
        assert isinstance(backend, FaultyBackend)
        other = plan.wrap_backend(MemoryBackend(), "node-1")
        assert not isinstance(other, FaultyBackend)
        backend.contains_batch([b"a"])
        backend.contains_batch([b"b"])
        with pytest.raises(InjectedFault):
            backend.contains_batch([b"c"])
        assert backend.dead
        assert plan.stats.kills == 1
        with pytest.raises(InjectedFault):
            backend.get_batch([b"a"])
        # clear/close stay callable so StoreNode.fail() can reap it.
        backend.clear()
        backend.close()

    def test_latency_counts(self):
        plan, backend = wrapped(
            "seed=7,backend.latency=1.0:0.0001"
        )
        backend.contains_batch([b"a"])
        assert plan.stats.latencies == 1


# ----------------------------------------------------------------------
# wire injector
# ----------------------------------------------------------------------


class TestWireInjector:
    def test_actions_and_stats(self):
        plan = FaultPlan.parse("seed=8,wire.drop=0.2,wire.garble=0.2")
        inj = plan.wire_injector("conn-1")
        assert isinstance(inj, WireFaultInjector)
        actions = [inj.frame_action() for _ in range(300)]
        drops = sum(1 for a in actions if a and a[0] == "drop")
        garbles = sum(1 for a in actions if a and a[0] == "garble")
        assert drops > 0 and garbles > 0
        assert plan.stats.wire_drops == drops
        assert plan.stats.wire_garbles == garbles

    def test_stall_carries_duration(self):
        plan = FaultPlan.parse("seed=9,wire.stall=1.0:0.25")
        inj = plan.wire_injector("conn-1")
        action = inj.frame_action()
        assert action == ("stall", 0.25)

    def test_garble_flips_exactly_one_bit(self):
        plan = FaultPlan.parse("seed=10,wire.garble=1.0")
        inj = plan.wire_injector("conn-1")
        payload = bytes(range(64))
        garbled = inj.garble(payload)
        assert len(garbled) == len(payload)
        diff = [
            (a ^ b) for a, b in zip(payload, garbled) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1
        assert inj.garble(b"") == b""

    def test_per_connection_streams_differ(self):
        plan = FaultPlan.parse("seed=11,wire.drop=0.5")
        a = plan.wire_injector("conn-1")
        b = plan.wire_injector("conn-2")
        seq_a = [a.frame_action() is not None for _ in range(64)]
        seq_b = [b.frame_action() is not None for _ in range(64)]
        assert seq_a != seq_b
