"""Zero-copy fast path: differential fuzz, laziness, caches, batching.

Covers the streaming/vectorized data path end to end:

* differential fuzz of SerialEngine vs VectorEngine vs the zero-copy
  ``stream_chunks`` across input types, odd buffer splits, all-zero runs
  and sub-window buffers — cuts and digests must be bit-identical;
* the O(N) guarantee of the streaming scan (regression test for the
  quadratic carry re-concatenation);
* lazy ``Chunk`` semantics (on-demand data/digest, release, pickling);
* the vectorized ``select_cuts_fast`` vs the Python reference;
* module-level table caches (Rabin position tables, engine pair tables);
* batched hashing (``digest_chunks`` / ``ensure_digests``).
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2
from repro.core.chunking import (
    Chunk,
    Chunker,
    ChunkerConfig,
    ensure_digests,
    select_cuts,
    select_cuts_fast,
    stream_chunks,
)
from repro.core.engines import (
    SerialEngine,
    VectorEngine,
    as_uint8,
    engine_tables,
    fused_roll_tables,
)
from repro.core.stats import reset_scan_counters, scan_counters
from repro.core.hashing import chunk_hash, digest_chunks, digest_many
from repro.core.rabin import RabinFingerprinter
from tests.conftest import seeded_bytes

# Small window/mask so random test inputs contain many boundaries.
SMALL_POLY = gf2.find_irreducible(19, seed=3)
SMALL_FP = RabinFingerprinter(SMALL_POLY, window_size=8)
SMALL_MASK = (1 << 5) - 1
SMALL_MARKER = 0x0B


def small_config(**kw) -> ChunkerConfig:
    return ChunkerConfig(
        window_size=8, mask_bits=5, marker=SMALL_MARKER, polynomial=SMALL_POLY, **kw
    )


def split_buffers(data: bytes, sizes):
    """Split ``data`` into buffers with the (cycled) given sizes."""
    out, pos, i = [], 0, 0
    while pos < len(data):
        size = sizes[i % len(sizes)]
        out.append(data[pos : pos + size])
        pos += size
        i += 1
    return out


class TestDifferentialFuzz:
    """Serial vs vector vs zero-copy streaming: bit-identical everything."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("kind", ["bytes", "bytearray", "memoryview", "ndarray"])
    def test_engines_agree_across_input_types(self, seed, kind):
        raw = random.Random(seed).randbytes(4096 + seed * 997)
        data = {
            "bytes": raw,
            "bytearray": bytearray(raw),
            "memoryview": memoryview(raw),
            "ndarray": np.frombuffer(raw, dtype=np.uint8),
        }[kind]
        serial = SerialEngine(SMALL_FP).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)
        vector = VectorEngine(SMALL_FP).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)
        assert serial == vector

    def test_striped_path_matches_gather_path(self):
        """Inputs past the lane threshold exercise the striped rolling scan."""
        data = seeded_bytes(256 * 1024, seed=5)
        wide = VectorEngine(SMALL_FP)
        tiny = VectorEngine(SMALL_FP, lanes=64, tile_bytes=4096)  # many tiles
        serial = SerialEngine(SMALL_FP)
        expect = serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)
        assert wide.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == expect
        assert tiny.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == expect

    def test_striped_path_wide_mask(self):
        """Masks wider than 16 bits roll with full-width fingerprints."""
        data = seeded_bytes(128 * 1024, seed=6)
        mask = (1 << 17) - 1
        eng = VectorEngine(SMALL_FP, lanes=128, tile_bytes=8192)
        assert eng.candidate_cuts(data, mask, 3) == SerialEngine(SMALL_FP).candidate_cuts(
            data, mask, 3
        )

    def test_all_zero_runs(self):
        data = bytes(16 * 1024) + seeded_bytes(1024, seed=7) + bytes(8 * 1024)
        eng = VectorEngine(SMALL_FP, lanes=64, tile_bytes=2048)
        assert eng.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == SerialEngine(
            SMALL_FP
        ).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    @pytest.mark.parametrize(
        "sizes",
        [
            [1],  # every buffer below the window
            [3, 5, 7],  # odd sizes straddling windows
            [8192, 13, 1, 999],  # mixed large/tiny
        ],
    )
    def test_stream_matches_whole_buffer(self, sizes):
        data = seeded_bytes(20000, seed=11)
        chunker = Chunker(small_config())
        whole = chunker.chunk(data)
        streamed = list(chunker.chunk_stream(split_buffers(data, sizes)))
        assert [(c.offset, c.length) for c in streamed] == [
            (c.offset, c.length) for c in whole
        ]
        assert [c.digest for c in streamed] == [c.digest for c in whole]
        assert b"".join(c.data for c in streamed) == data

    @pytest.mark.parametrize("kind", ["bytearray", "memoryview", "ndarray"])
    def test_stream_buffer_protocol_inputs(self, kind):
        data = seeded_bytes(10000, seed=13)
        wrap = {
            "bytearray": lambda b: bytearray(b),
            "memoryview": lambda b: memoryview(b),
            "ndarray": lambda b: np.frombuffer(b, dtype=np.uint8),
        }[kind]
        chunker = Chunker(small_config())
        whole = chunker.chunk(data)
        pieces = [wrap(p) for p in split_buffers(data, [777, 41, 2048])]
        streamed = list(chunker.chunk_stream(pieces))
        assert [c.digest for c in streamed] == [c.digest for c in whole]

    @given(
        seed=st.integers(0, 1000),
        split=st.lists(st.integers(1, 3000), min_size=1, max_size=8),
        min_size=st.sampled_from([0, 16, 100]),
        max_size=st.sampled_from([None, 256, 1024]),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_fuzz_minmax(self, seed, split, min_size, max_size):
        data = seeded_bytes(sum(split), seed=seed)
        cfg = small_config(min_size=min_size, max_size=max_size)
        chunker = Chunker(cfg)
        whole = chunker.chunk(data)
        pieces, pos = [], 0
        for s in split:
            pieces.append(data[pos : pos + s])
            pos += s
        streamed = list(chunker.chunk_stream(pieces))
        assert [(c.offset, c.length, c.digest) for c in streamed] == [
            (c.offset, c.length, c.digest) for c in whole
        ]

    def test_kernel_runs_serial_engine(self):
        """Odd windows select SerialEngine; the GPU kernel must still run
        (candidate_cut_array has a base-class fallback)."""
        from repro.core import ShredderConfig, ShredderExecutor

        data = seeded_bytes(8 * 1024, seed=53)
        config = ShredderConfig(
            chunker=ChunkerConfig(window_size=47, mask_bits=5, marker=SMALL_MARKER),
            buffer_size=4096,
        )
        executor = ShredderExecutor(config)
        chunks, _ = executor.run(data)
        assert b"".join(c.data for c in chunks) == data

    def test_serial_engine_stream_agrees(self):
        """The streaming layer is engine-agnostic: serial == vector."""
        data = seeded_bytes(6000, seed=17)
        cfg = small_config()
        serial = Chunker(cfg, SerialEngine(SMALL_FP))
        vector = Chunker(cfg, VectorEngine(SMALL_FP))
        pieces = split_buffers(data, [501, 7, 1999])
        a = list(serial.chunk_stream(pieces))
        b = list(vector.chunk_stream(pieces))
        assert [(c.offset, c.digest) for c in a] == [(c.offset, c.digest) for c in b]


class TestFusedRollKernel:
    """Fused S-step roll vs the 1-step reference: bit-identical always.

    ``roll_steps=1`` runs the original striped loop (the differential
    reference the ISSUE requires we keep); every fused setting must
    reproduce it — and the pure-Python SerialEngine — exactly, across
    padding boundaries, degenerate geometries, zero runs, and wide
    masks.
    """

    @pytest.mark.parametrize("steps", [1, 2, 8, 32])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_differential_fuzz_vs_one_step_and_serial(self, steps, seed):
        data = random.Random(seed).randbytes(48 * 1024 + seed * 1237)
        expect = SerialEngine(SMALL_FP).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)
        one = VectorEngine(SMALL_FP, lanes=64, tile_bytes=4096, roll_steps=1)
        fused = VectorEngine(SMALL_FP, lanes=64, tile_bytes=4096, roll_steps=steps)
        assert one.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == expect
        assert fused.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == expect

    @pytest.mark.parametrize("steps", [2, 8, 32])
    @pytest.mark.parametrize(
        "size_fn",
        [
            lambda lanes, steps: 2 * lanes + 1,  # barely past the gather path
            lambda lanes, steps: lanes * steps * 3,  # exact launch multiple
            lambda lanes, steps: lanes * steps * 3 + 1,  # one over
            lambda lanes, steps: lanes * steps * 3 - 1,  # one under
            lambda lanes, steps: lanes * steps + steps - 1,  # partial last block
        ],
    )
    def test_padding_boundaries(self, steps, size_fn):
        lanes = 32
        size = size_fn(lanes, steps) + SMALL_FP.window_size - 1
        data = random.Random(steps * size).randbytes(size)
        fused = VectorEngine(SMALL_FP, lanes=lanes, tile_bytes=2048, roll_steps=steps)
        assert fused.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == SerialEngine(
            SMALL_FP
        ).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    @pytest.mark.parametrize("steps", [2, 8, 32])
    def test_window_larger_than_tile(self, steps):
        """Tiles smaller than the window still roll seam-exact."""
        data = random.Random(11).randbytes(4096)
        fused = VectorEngine(SMALL_FP, lanes=2, tile_bytes=4, roll_steps=steps)
        assert fused.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == SerialEngine(
            SMALL_FP
        ).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    @pytest.mark.parametrize("steps", [2, 8, 32])
    def test_lanes_exceed_buffer(self, steps):
        """More lanes than window positions: lanes clamp, pads filter."""
        serial = SerialEngine(SMALL_FP)
        fused = VectorEngine(SMALL_FP, lanes=4096, tile_bytes=1 << 20, roll_steps=steps)
        for size in (SMALL_FP.window_size - 1, 100, 3000, 2 * 4096 + 7):
            data = random.Random(size).randbytes(size)
            assert fused.candidate_cuts(
                data, SMALL_MASK, SMALL_MARKER
            ) == serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    def test_all_zero_runs_fused(self):
        data = bytes(16 * 1024) + seeded_bytes(1024, seed=7) + bytes(8 * 1024)
        fused = VectorEngine(SMALL_FP, lanes=64, tile_bytes=2048, roll_steps=8)
        assert fused.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == SerialEngine(
            SMALL_FP
        ).candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    def test_wide_mask_fused(self):
        """Masks past 16 bits take the uint64 history path of the kernel."""
        data = seeded_bytes(128 * 1024, seed=6)
        mask = (1 << 17) - 1
        fused = VectorEngine(SMALL_FP, lanes=128, tile_bytes=8192, roll_steps=8)
        assert fused.candidate_cuts(data, mask, 3) == SerialEngine(
            SMALL_FP
        ).candidate_cuts(data, mask, 3)

    def test_default_window_48(self):
        """The production 48-byte window, default polynomial."""
        data = seeded_bytes(96 * 1024, seed=12)
        mask, marker = (1 << 13) - 1, 0x1A2B & ((1 << 13) - 1)
        serial = SerialEngine()
        for steps in (2, 8, 32):
            fused = VectorEngine(lanes=256, tile_bytes=16384, roll_steps=steps)
            assert fused.candidate_cuts(data, mask, marker) == serial.candidate_cuts(
                data, mask, marker
            )

    def test_roll_steps_validation(self):
        with pytest.raises(ValueError, match="roll_steps"):
            VectorEngine(SMALL_FP, lanes=8, tile_bytes=1024, roll_steps=0)

    def test_fused_table_cache_shared(self):
        """Composite roll tables are built once per (polynomial, window)."""
        a = fused_roll_tables(RabinFingerprinter(SMALL_POLY, window_size=8))
        b = fused_roll_tables(RabinFingerprinter(SMALL_POLY, window_size=8))
        assert a is b
        other = fused_roll_tables(RabinFingerprinter(SMALL_POLY, window_size=10))
        assert other is not a

    def test_dispatch_counters_report_reduction(self):
        """S=8 issues >= 4x fewer kernel dispatches per MiB than S=1."""
        data = seeded_bytes(1 << 20, seed=3)
        rates = {}
        for steps in (1, 8):
            engine = VectorEngine(
                lanes=1024, tile_bytes=1 << 18, roll_steps=steps, threads=1
            )
            reset_scan_counters()
            engine.candidate_cut_array(data, (1 << 13) - 1, 0x0123)
            counters = scan_counters()
            assert counters.dispatches > 0
            assert counters.scanned_bytes == len(data)
            assert counters.geometry["roll_steps"] == steps
            rates[steps] = counters.dispatches_per_mib
        reset_scan_counters()
        assert rates[1] / rates[8] >= 4.0


class TestStreamLinearity:
    """Regression test for the quadratic carry re-concatenation."""

    def test_markerless_stream_scans_linear_bytes(self):
        # Zero bytes never match the nonzero marker, so nothing is ever
        # emitted mid-stream: the old implementation re-scanned (and
        # re-copied) the whole growing carry for every buffer — O(N^2).
        cfg = ChunkerConfig(mask_bits=13, marker=0x1A2B)
        chunker = Chunker(cfg)
        n_buffers, buf_size = 64, 8192
        scanned = 0

        def counting(data):
            nonlocal scanned
            scanned += len(data)
            return chunker.candidate_cuts(data)

        pieces = [bytes(buf_size)] * n_buffers
        chunks = list(stream_chunks(counting, cfg, pieces, carry_limit=1 << 30))
        total = n_buffers * buf_size
        assert sum(c.length for c in chunks) == total
        # Each buffer is scanned once, plus a <=2(w-1)-byte boundary splice.
        assert scanned <= total + n_buffers * 2 * cfg.window_size
        # The quadratic path would have scanned sum(i * buf) ~ N^2 / 2.
        assert scanned < total * 2

    def test_stream_chunks_are_lazy_views(self):
        cfg = small_config()
        chunker = Chunker(cfg)
        data = seeded_bytes(32 * 1024, seed=19)
        chunks = list(chunker.chunk_stream(split_buffers(data, [4096])))
        assert all(c._data is None for c in chunks)  # nothing materialized
        ensure_digests(chunks)
        assert all(c._data is None for c in chunks)  # hashing didn't copy
        assert b"".join(c.data for c in chunks) == data


class TestLazyChunk:
    def test_digest_without_materializing_data(self):
        payload = seeded_bytes(4096, seed=23)
        chunk = Chunk(0, 4096, views=(memoryview(payload),))
        assert chunk._data is None
        assert chunk.digest == chunk_hash(payload)
        assert chunk._data is None
        assert chunk.data == payload

    def test_multi_view_chunk(self):
        a, b = b"hello ", b"world"
        chunk = Chunk(10, 11, views=(memoryview(a), memoryview(b)))
        assert chunk.data == b"hello world"
        assert chunk.digest == chunk_hash(b"hello world")

    def test_equality_and_hash(self):
        payload = b"x" * 100
        eager = Chunk.from_bytes(5, payload)
        lazy = Chunk(5, 100, views=(memoryview(payload),))
        assert eager == lazy
        assert hash(eager) == hash(lazy)
        assert eager != Chunk.from_bytes(6, payload)

    def test_release_keeps_digest_drops_data(self):
        payload = b"y" * 64
        chunk = Chunk(0, 64, views=(memoryview(payload),))
        chunk.release()
        assert chunk.digest == chunk_hash(payload)
        with pytest.raises(ValueError, match="released"):
            chunk.data

    def test_pickle_materializes(self):
        payload = seeded_bytes(512, seed=29)
        chunk = Chunk(7, 512, views=(memoryview(payload),))
        clone = pickle.loads(pickle.dumps(chunk))
        assert clone == chunk
        assert clone.data == payload

    def test_requires_some_payload_source(self):
        with pytest.raises(ValueError, match="needs"):
            Chunk(0, 10)

    def test_constructor_keyword_compat(self):
        data = b"z" * 32
        chunk = Chunk(offset=1, length=32, data=data, digest=chunk_hash(data))
        assert chunk.data == data


class TestSelectCutsFast:
    @given(
        candidates=st.lists(st.integers(1, 499), max_size=40).map(sorted),
        min_size=st.integers(0, 60),
        max_size=st.sampled_from([None, 60, 100, 200]),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, candidates, min_size, max_size):
        if max_size is not None and max_size < min_size:
            min_size, max_size = max_size, min_size
        assert select_cuts_fast(candidates, 500, min_size, max_size) == select_cuts(
            candidates, 500, min_size, max_size
        )

    def test_empty(self):
        assert select_cuts_fast([], 0) == []
        assert select_cuts_fast([], 100) == [100]

    def test_beyond_length_raises(self):
        with pytest.raises(ValueError, match="beyond"):
            select_cuts_fast([200], 100)

    def test_accepts_ndarray_candidates(self):
        cand = np.array([10, 30, 70], dtype=np.int64)
        assert select_cuts_fast(cand, 100) == [10, 30, 70, 100]


class TestTableCaches:
    def test_engine_pair_tables_shared(self):
        a = VectorEngine(RabinFingerprinter(SMALL_POLY, window_size=8))
        b = VectorEngine(RabinFingerprinter(SMALL_POLY, window_size=8))
        assert a._pair_tables is b._pair_tables
        assert a._low_tables is b._low_tables
        assert a._out_table is b._out_table

    def test_position_tables_shared(self):
        a = RabinFingerprinter(SMALL_POLY, window_size=8)
        b = RabinFingerprinter(SMALL_POLY, window_size=8)
        assert a.position_tables() is b.position_tables()

    def test_cache_keyed_by_polynomial_and_window(self):
        base = engine_tables(RabinFingerprinter(SMALL_POLY, window_size=8))
        other_w = engine_tables(RabinFingerprinter(SMALL_POLY, window_size=10))
        assert base is not other_w
        other_poly = engine_tables(
            RabinFingerprinter(gf2.find_irreducible(21, seed=9), window_size=8)
        )
        assert base is not other_poly

    def test_fresh_chunkers_share_default_tables(self):
        a = Chunker(ChunkerConfig(mask_bits=12, marker=0xABC, min_size=1024, max_size=16384))
        b = Chunker(ChunkerConfig())
        assert a.engine._pair_tables is b.engine._pair_tables


class TestBatchedHashing:
    def test_digest_chunks_matches_per_chunk(self):
        data = seeded_bytes(64 * 1024, seed=31)
        cuts = [1000, 5000, 5001, 40000, len(data)]
        expect = []
        prev = 0
        for cut in cuts:
            expect.append(chunk_hash(data[prev:cut]))
            prev = cut
        assert digest_chunks(data, cuts) == expect
        assert digest_chunks(memoryview(data), cuts, parallel=True) == expect

    def test_digest_many_parallel_identical(self):
        pieces = [seeded_bytes(3000 + i, seed=i) for i in range(50)]
        assert digest_many(pieces, parallel=True) == digest_many(pieces, parallel=False)

    def test_ensure_digests_fills_only_missing(self):
        data = seeded_bytes(8192, seed=37)
        precomputed = Chunk.from_bytes(0, data[:4096])
        lazy = Chunk(4096, 4096, views=(memoryview(data)[4096:],))
        marker = precomputed._digest
        ensure_digests([precomputed, lazy])
        assert precomputed._digest is marker
        assert lazy._digest == chunk_hash(data[4096:])

    def test_as_uint8_zero_copy(self):
        raw = bytearray(b"abcdef" * 100)
        arr = as_uint8(raw)
        assert np.shares_memory(arr, np.frombuffer(memoryview(raw), dtype=np.uint8))
        raw[0] = 0x7A  # view reflects mutation: no copy was made
        assert arr[0] == 0x7A

    def test_non_contiguous_buffers(self):
        """Strided views can't be zero-copy viewed; Shredder flattens them."""
        from repro.core import Shredder, ShredderConfig
        from repro.core.engines import as_byte_view

        data = seeded_bytes(16 * 1024, seed=41)
        strided = memoryview(data)[::2]
        with pytest.raises(BufferError):
            as_byte_view(strided)
        with Shredder(ShredderConfig.cpu()) as shredder:
            chunks, _ = shredder.process(strided)
        assert b"".join(c.data for c in chunks) == bytes(strided)

    def test_non_contiguous_ndarray(self):
        """N-D strided arrays raise BufferError too, so the Shredder
        fallback (one-time flatten) fires instead of misrouting."""
        from repro.core import Shredder, ShredderConfig
        from repro.core.engines import as_byte_view

        arr = np.frombuffer(seeded_bytes(8192, seed=43), dtype=np.uint8)
        strided_2d = arr.reshape(64, 128)[:, ::2]
        with pytest.raises(BufferError):
            as_byte_view(strided_2d)
        with Shredder(ShredderConfig.cpu()) as shredder:
            chunks, _ = shredder.process(strided_2d)
        assert b"".join(c.data for c in chunks) == strided_2d.tobytes()

    def test_stream_snapshots_recycled_writable_buffers(self):
        """A producer that refills one bytearray between yields (the
        classic read-into-buffer loop) must still produce correct chunks:
        writable buffers are snapshotted, never aliased."""
        data = seeded_bytes(96 * 1024, seed=47)
        chunker = Chunker(small_config())
        whole = chunker.chunk(data)

        def recycling_producer(piece_size=8192):
            scratch = bytearray(piece_size)
            for pos in range(0, len(data), piece_size):
                piece = data[pos : pos + piece_size]
                scratch[: len(piece)] = piece
                yield memoryview(scratch)[: len(piece)]

        streamed = list(chunker.chunk_stream(recycling_producer()))
        assert [(c.offset, c.length, c.digest) for c in streamed] == [
            (c.offset, c.length, c.digest) for c in whole
        ]
