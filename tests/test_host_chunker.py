"""Tests for the SPMD host-parallel chunker (§5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import ChunkerConfig
from repro.core.host_chunker import HOARD, MALLOC, HostParallelChunker
from tests.conftest import seeded_bytes

CFG = ChunkerConfig(mask_bits=6, marker=0x2A)


@pytest.fixture(scope="module")
def chunker() -> HostParallelChunker:
    return HostParallelChunker(CFG, threads=4)


class TestParallelCorrectness:
    """§5.1 step 3: merged parallel results == sequential results."""

    def test_candidates_match_sequential(self, chunker, data_64k):
        from repro.core.chunking import Chunker

        sequential = Chunker(CFG).candidate_cuts(data_64k)
        assert chunker.candidate_cuts(data_64k) == sequential

    @given(n=st.integers(0, 4000), threads=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_thread_count_invariance(self, n, threads):
        data = seeded_bytes(n, seed=31)
        reference = HostParallelChunker(CFG, threads=1).candidate_cuts(data)
        parallel = HostParallelChunker(CFG, threads=threads).candidate_cuts(data)
        assert parallel == reference

    def test_chunks_reassemble(self, chunker, data_64k):
        chunks = chunker.chunk(data_64k)
        assert b"".join(c.data for c in chunks) == data_64k

    def test_chunks_match_sequential_reference(self, chunker, data_64k):
        parallel = chunker.chunk(data_64k)
        sequential = chunker.sequential_reference(data_64k)
        assert [(c.offset, c.digest) for c in parallel] == [
            (c.offset, c.digest) for c in sequential
        ]

    def test_with_min_max(self, data_64k):
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A, min_size=64, max_size=512)
        hc = HostParallelChunker(cfg, threads=5)
        chunks = hc.chunk(data_64k)
        assert all(c.length <= 512 for c in chunks)
        assert all(c.length >= 64 for c in chunks[:-1])
        assert b"".join(c.data for c in chunks) == data_64k

    def test_empty(self, chunker):
        assert chunker.candidate_cuts(b"") == []
        assert chunker.chunk(b"") == []

    def test_region_smaller_than_window(self):
        """More threads than window-sized regions still correct."""
        data = seeded_bytes(100, seed=37)
        hc = HostParallelChunker(CFG, threads=8)
        assert hc.candidate_cuts(data) == HostParallelChunker(CFG, threads=1).candidate_cuts(data)


class TestAllocatorModel:
    def test_malloc_contention_grows_with_threads(self):
        assert MALLOC.contention(12) > MALLOC.contention(1) == 1.0

    def test_hoard_nearly_flat(self):
        assert HOARD.contention(12) < 1.2

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            MALLOC.contention(0)


class TestCostModel:
    def test_hoard_faster(self):
        malloc = HostParallelChunker(threads=12, allocator=MALLOC)
        hoard = HostParallelChunker(threads=12, allocator=HOARD)
        assert hoard.throughput_bps() > malloc.throughput_bps()

    def test_fig12_cpu_calibration(self):
        """CPU bars of Fig. 12: w/o Hoard ~0.25-0.30, w/ Hoard ~0.30-0.40 GBps."""
        malloc_bps = HostParallelChunker(threads=12, allocator=MALLOC).throughput_bps()
        hoard_bps = HostParallelChunker(threads=12, allocator=HOARD).throughput_bps()
        assert 0.20e9 < malloc_bps < 0.32e9
        assert 0.30e9 < hoard_bps < 0.45e9

    def test_throughput_scales_with_threads(self):
        t1 = HostParallelChunker(threads=1).throughput_bps()
        t12 = HostParallelChunker(threads=12).throughput_bps()
        assert 6 < t12 / t1 <= 12.5

    def test_estimate_monotone_in_bytes(self):
        hc = HostParallelChunker(threads=12)
        assert hc.estimate_seconds(1 << 30) > hc.estimate_seconds(1 << 20)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            HostParallelChunker(threads=0)
