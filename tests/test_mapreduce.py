"""Tests for the MapReduce runtime, memoization, and Incoop reuse."""

from __future__ import annotations

import pytest

from repro.core.chunking import ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import (
    ClusterModel,
    IncoopRuntime,
    MapReduceJob,
    MapReduceRuntime,
    MemoServer,
    memo_key,
    partition_of,
)
from repro.mapreduce.applications import (
    cooccurrence_job,
    cooccurrence_reference,
    kmeans_iterate,
    kmeans_job,
    quantize_centroids,
    wordcount_job,
    wordcount_reference,
)
from repro.mapreduce.applications.kmeans import assign_reference
from repro.workloads import generate_points, generate_text, mutate_records

CHUNKER = ChunkerConfig(mask_bits=9, marker=0x155, min_size=128, max_size=2048)
UPLOAD_CFG = ShredderConfig.gpu_streams_memory(chunker=CHUNKER, buffer_size=1 << 20)


def fresh_cluster_with(data: bytes, path: str = "/input") -> HDFSCluster:
    cluster = HDFSCluster()
    with Shredder(UPLOAD_CFG) as sh:
        cluster.client.copy_from_local_gpu(data, path, shredder=sh)
    return cluster


@pytest.fixture(scope="module")
def text() -> bytes:
    return generate_text(120_000, seed=21)


@pytest.fixture(scope="module")
def points() -> bytes:
    return generate_points(6000, seed=22)


CENTROIDS = tuple((0.2 * i, 1.0 - 0.2 * i) for i in range(5))


class TestPartitioner:
    def test_stable(self):
        assert partition_of(b"word", 4) == partition_of(b"word", 4)

    def test_range(self):
        for key in (b"a", "b", ("t", "u"), 42):
            assert 0 <= partition_of(key, 7) < 7

    def test_spreads_keys(self):
        parts = {partition_of(f"key{i}".encode(), 8) for i in range(100)}
        assert len(parts) == 8


class TestClusterModel:
    def test_makespan_single_slot(self):
        m = ClusterModel()
        assert m.makespan([1.0, 2.0, 3.0], slots=1) == pytest.approx(6.0)

    def test_makespan_parallel(self):
        m = ClusterModel()
        assert m.makespan([1.0] * 10, slots=10) == pytest.approx(1.0)

    def test_makespan_lower_bounds(self):
        m = ClusterModel()
        tasks = [0.5, 1.5, 2.0, 0.7, 0.9]
        span = m.makespan(tasks, slots=2)
        assert span >= max(tasks)
        assert span >= sum(tasks) / 2

    def test_makespan_empty(self):
        assert ClusterModel().makespan([], 4) == 0.0

    def test_default_is_paper_cluster(self):
        assert ClusterModel().nodes == 20


class TestWordCount:
    def test_output_matches_reference(self, text):
        cluster = fresh_cluster_with(text)
        result = MapReduceRuntime(cluster.client).run(wordcount_job(), "/input")
        assert result.output == wordcount_reference(text)

    def test_reducer_count_invariance(self, text):
        cluster = fresh_cluster_with(text)
        r2 = MapReduceRuntime(cluster.client).run(wordcount_job(n_reducers=2), "/input")
        r8 = MapReduceRuntime(cluster.client).run(wordcount_job(n_reducers=8), "/input")
        assert r2.output == r8.output

    def test_stats_accounting(self, text):
        cluster = fresh_cluster_with(text)
        result = MapReduceRuntime(cluster.client).run(wordcount_job(), "/input")
        s = result.stats
        assert s.map_tasks_run == s.n_splits > 10
        assert s.map_tasks_reused == 0
        assert s.makespan_seconds > 0


class TestCooccurrence:
    def test_output_matches_reference(self, text):
        cluster = fresh_cluster_with(text)
        result = MapReduceRuntime(cluster.client).run(cooccurrence_job(), "/input")
        assert result.output == cooccurrence_reference(text)

    def test_window_param(self):
        data = b"a b c d\n"
        cluster = fresh_cluster_with(data)
        r1 = MapReduceRuntime(cluster.client).run(cooccurrence_job(window=1), "/input")
        assert r1.output == {(b"a", b"b"): 1, (b"b", b"c"): 1, (b"c", b"d"): 1}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            cooccurrence_job(window=0)


class TestKMeans:
    def test_single_iteration_matches_reference(self, points):
        cluster = fresh_cluster_with(points)
        job = kmeans_job(CENTROIDS)
        result = MapReduceRuntime(cluster.client).run(job, "/input")
        expected = assign_reference(points, quantize_centroids(CENTROIDS))
        assert set(result.output) == set(expected)
        for k, (x, y) in expected.items():
            rx, ry = result.output[k]
            assert rx == pytest.approx(x, abs=1e-9)
            assert ry == pytest.approx(y, abs=1e-9)

    def test_iterations_converge(self, points):
        cluster = fresh_cluster_with(points)
        runtime = MapReduceRuntime(cluster.client)
        final, results = kmeans_iterate(runtime, "/input", CENTROIDS, iterations=3)
        assert len(results) == 3
        assert len(final) == len(CENTROIDS)

    def test_quantization_stabilizes_keys(self):
        a = quantize_centroids(((0.10002, 0.5), (0.3, 0.7)))
        b = quantize_centroids(((0.10049, 0.5), (0.3, 0.7)))
        assert a == b


class TestMemoServer:
    def test_hit_miss_accounting(self):
        memo = MemoServer()
        assert memo.get("k") is None
        memo.put("k", 42)
        assert memo.get("k") == 42
        assert memo.hits == 1 and memo.misses == 1
        assert memo.hit_rate == 0.5

    def test_invalidate_prefix(self):
        memo = MemoServer()
        memo.put("map:a:1", 1)
        memo.put("map:a:2", 2)
        memo.put("map:b:1", 3)
        assert memo.invalidate("map:a") == 2
        assert "map:b:1" in memo

    def test_memo_key_sensitivity(self):
        k1 = memo_key("job", (1,), "abc")
        assert k1 == memo_key("job", (1,), "abc")
        assert k1 != memo_key("job", (2,), "abc")
        assert k1 != memo_key("job", (1,), "abd")
        assert k1 != memo_key("other", (1,), "abc")


class TestIncoopCorrectness:
    """The central invariant: incremental output == from-scratch output."""

    @pytest.mark.parametrize("pct", [0, 5, 20])
    def test_wordcount_incremental_equals_full(self, text, pct):
        changed = mutate_records(text, pct, seed=30 + pct)
        cluster = fresh_cluster_with(text, "/base")
        with Shredder(UPLOAD_CFG) as sh:
            cluster.client.copy_from_local_gpu(changed, "/changed", shredder=sh)
        inc = IncoopRuntime(cluster.client)
        job = wordcount_job()
        inc.run_incremental(job, "/base")
        result = inc.run_incremental(job, "/changed")
        assert result.output == wordcount_reference(changed)

    def test_cooccurrence_incremental_equals_full(self, text):
        changed = mutate_records(text, 10, seed=31)
        cluster = fresh_cluster_with(text, "/base")
        with Shredder(UPLOAD_CFG) as sh:
            cluster.client.copy_from_local_gpu(changed, "/changed", shredder=sh)
        inc = IncoopRuntime(cluster.client)
        job = cooccurrence_job()
        inc.run_incremental(job, "/base")
        result = inc.run_incremental(job, "/changed")
        assert result.output == cooccurrence_reference(changed)

    def test_kmeans_incremental_equals_full(self, points):
        changed = mutate_records(points, 10, seed=32, kind="points")
        cluster = fresh_cluster_with(points, "/base")
        with Shredder(UPLOAD_CFG) as sh:
            cluster.client.copy_from_local_gpu(changed, "/changed", shredder=sh)
        inc = IncoopRuntime(cluster.client)
        job = kmeans_job(CENTROIDS)
        inc.run_incremental(job, "/base")
        result = inc.run_incremental(job, "/changed")
        full = MapReduceRuntime(cluster.client).run(job, "/changed")
        assert set(result.output) == set(full.output)
        for k in full.output:
            assert result.output[k][0] == pytest.approx(full.output[k][0], abs=1e-9)
            assert result.output[k][1] == pytest.approx(full.output[k][1], abs=1e-9)


class TestIncoopReuse:
    def test_identical_rerun_reuses_everything(self, text):
        cluster = fresh_cluster_with(text)
        inc = IncoopRuntime(cluster.client)
        job = wordcount_job()
        first = inc.run_incremental(job, "/input")
        second = inc.run_incremental(job, "/input")
        assert first.stats.map_tasks_run == first.stats.n_splits
        assert second.stats.map_tasks_run == 0
        assert second.stats.map_tasks_reused == second.stats.n_splits
        assert second.stats.combine_nodes_run == 0

    def test_small_change_reuses_most(self, text):
        changed = mutate_records(text, 5, seed=33)
        cluster = fresh_cluster_with(text, "/base")
        with Shredder(UPLOAD_CFG) as sh:
            cluster.client.copy_from_local_gpu(changed, "/changed", shredder=sh)
        inc = IncoopRuntime(cluster.client)
        job = wordcount_job()
        inc.run_incremental(job, "/base")
        result = inc.run_incremental(job, "/changed")
        assert result.stats.reuse_fraction > 0.5

    def test_different_params_no_reuse(self, points):
        cluster = fresh_cluster_with(points)
        inc = IncoopRuntime(cluster.client)
        inc.run_incremental(kmeans_job(CENTROIDS), "/input")
        other = tuple((c[0] + 0.5, c[1]) for c in CENTROIDS)
        result = inc.run_incremental(kmeans_job(other), "/input")
        assert result.stats.map_tasks_reused == 0

    def test_speedup_decreases_with_change(self, text):
        speedups = []
        for pct in (0, 15):
            changed = mutate_records(text, pct, seed=40 + pct)
            cluster = fresh_cluster_with(text, "/base")
            with Shredder(UPLOAD_CFG) as sh:
                cluster.client.copy_from_local_gpu(changed, "/changed", shredder=sh)
            inc = IncoopRuntime(cluster.client)
            job = wordcount_job()
            inc.run_incremental(job, "/base")
            _, speedup = inc.speedup_vs_full(job, "/changed")
            speedups.append(speedup)
        assert speedups[0] > speedups[1] > 1.0

    def test_incremental_kmeans_iterations_reuse(self, points):
        cluster = fresh_cluster_with(points)
        inc = IncoopRuntime(cluster.client)
        # Two identical iterate calls: the second reuses everything.
        kmeans_iterate(inc, "/input", CENTROIDS, iterations=2)
        _, results = kmeans_iterate(inc, "/input", CENTROIDS, iterations=2)
        for r in results:
            assert r.stats.map_tasks_run == 0


class TestJobValidation:
    def test_needs_name(self):
        with pytest.raises(ValueError):
            MapReduceJob(name="", map_fn=lambda r: [], reduce_fn=lambda k, v: None)

    def test_needs_positive_reducers(self):
        with pytest.raises(ValueError):
            MapReduceJob(
                name="x", map_fn=lambda r: [], reduce_fn=lambda k, v: None, n_reducers=0
            )

    def test_compute_weight_positive(self):
        with pytest.raises(ValueError):
            MapReduceJob(
                name="x",
                map_fn=lambda r: [],
                reduce_fn=lambda k, v: None,
                compute_weight=0,
            )
