"""Differential and property tests for the chunking engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2
from repro.core.engines import SerialEngine, VectorEngine, default_engine
from repro.core.rabin import RabinFingerprinter

# Small window/mask so random test inputs contain many boundaries.
SMALL_FP = RabinFingerprinter(gf2.find_irreducible(19, seed=3), window_size=8)
SMALL_MASK = (1 << 5) - 1
SMALL_MARKER = 0x0B


@pytest.fixture(scope="module")
def small_serial():
    return SerialEngine(SMALL_FP)


@pytest.fixture(scope="module")
def small_vector():
    return VectorEngine(SMALL_FP)


class TestSerialEngine:
    def test_empty(self, small_serial):
        assert small_serial.candidate_cuts(b"", SMALL_MASK, SMALL_MARKER) == []

    def test_shorter_than_window(self, small_serial):
        assert small_serial.candidate_cuts(b"abc", SMALL_MASK, SMALL_MARKER) == []

    def test_cut_range(self, small_serial, data_64k):
        cuts = small_serial.candidate_cuts(data_64k[:2048], SMALL_MASK, SMALL_MARKER)
        assert all(8 <= c <= 2048 for c in cuts)
        assert cuts == sorted(cuts)

    def test_expected_density(self, small_serial, data_64k):
        """~1/32 of windows match a 5-bit mask on random data."""
        data = data_64k[:8192]
        cuts = small_serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)
        expected = len(data) / 32
        assert 0.5 * expected < len(cuts) < 1.5 * expected


class TestVectorMatchesSerial:
    @given(data=st.binary(min_size=0, max_size=512))
    @settings(max_examples=150, deadline=None)
    def test_equivalence_random(self, data):
        serial = SerialEngine(SMALL_FP)
        vector = VectorEngine(SMALL_FP)
        assert serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == \
            vector.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    def test_equivalence_large(self, small_serial, small_vector, data_64k):
        a = small_serial.candidate_cuts(data_64k, SMALL_MASK, SMALL_MARKER)
        b = small_vector.candidate_cuts(data_64k, SMALL_MASK, SMALL_MARKER)
        assert a == b

    def test_equivalence_default_window(self, serial_engine, vector_engine, data_64k):
        mask, marker = (1 << 10) - 1, 0x11F
        data = data_64k[:16384]
        assert serial_engine.candidate_cuts(data, mask, marker) == \
            vector_engine.candidate_cuts(data, mask, marker)

    def test_equivalence_wide_mask(self, small_serial, small_vector, data_64k):
        """Masks wider than 16 bits exercise the full-fingerprint path."""
        mask = (1 << 17) - 1
        data = data_64k
        assert small_serial.candidate_cuts(data, mask, 3) == \
            small_vector.candidate_cuts(data, mask, 3)

    def test_zero_data(self, small_serial, small_vector):
        data = bytes(4096)
        assert small_serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == \
            small_vector.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)

    def test_repeating_pattern(self, small_serial, small_vector):
        data = b"abcdef" * 700
        assert small_serial.candidate_cuts(data, SMALL_MASK, SMALL_MARKER) == \
            small_vector.candidate_cuts(data, SMALL_MASK, SMALL_MARKER)


class TestVectorEngine:
    def test_rejects_odd_window(self):
        fp = RabinFingerprinter(gf2.find_irreducible(19, seed=3), window_size=9)
        with pytest.raises(ValueError, match="even window"):
            VectorEngine(fp)

    def test_fingerprints_match_rolling(self, small_vector):
        data = bytes(range(256))
        fps = small_vector.fingerprints(data)
        for start, fp_val in SMALL_FP.sliding_fingerprints(data):
            assert int(fps[start]) == fp_val

    def test_fingerprints_accept_ndarray(self, small_vector, data_64k):
        arr = np.frombuffer(data_64k[:1024], dtype=np.uint8)
        assert np.array_equal(
            small_vector.fingerprints(arr), small_vector.fingerprints(data_64k[:1024])
        )

    def test_low_fingerprints_consistent(self, small_vector, data_64k):
        """The 16-bit fast path agrees with the low bits of full fingerprints."""
        data = data_64k[:4096]
        full = small_vector.fingerprints(data)
        d = np.frombuffer(data, dtype=np.uint8)
        low = small_vector._low_fingerprints(d)
        assert np.array_equal(low, (full & np.uint64(0xFFFF)).astype(np.uint16))

    def test_default_engine_singleton(self):
        assert default_engine() is default_engine()

    def test_locality(self, small_vector):
        """Cuts far from an edit are unchanged (content-defined chunking's
        central promise, §6.2)."""
        base = bytearray(SerialEngine(SMALL_FP).fingerprinter.window_size * 500)
        rng = np.random.default_rng(9)
        base[:] = rng.integers(0, 256, len(base), dtype=np.uint8).tobytes()
        edited = bytearray(base)
        edit_at = 2000
        edited[edit_at] ^= 0xFF
        w = SMALL_FP.window_size
        cuts_a = set(small_vector.candidate_cuts(bytes(base), SMALL_MASK, SMALL_MARKER))
        cuts_b = set(small_vector.candidate_cuts(bytes(edited), SMALL_MASK, SMALL_MARKER))
        affected = set(range(edit_at, edit_at + w + 1))
        assert {c for c in cuts_a ^ cuts_b} <= affected
