"""Tests for the in-process HDFS cluster and Inc-HDFS uploads."""

from __future__ import annotations

import pytest

from repro.core.chunking import ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import (
    DataNodeDown,
    FileAlreadyExists,
    FileNotFoundInHDFS,
    HDFSCluster,
    NoDataNodes,
    snap_cuts_to_records,
    split_records,
)
from repro.workloads import generate_text, mutate_records, seeded_bytes

SMALL = ChunkerConfig(mask_bits=8, marker=0x55)


def make_shredder():
    return Shredder(ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=1 << 20))


@pytest.fixture()
def cluster() -> HDFSCluster:
    return HDFSCluster(num_datanodes=5, replication=2)


class TestFixedSizeUpload:
    def test_roundtrip(self, cluster):
        data = seeded_bytes(300_000, seed=1)
        cluster.client.copy_from_local(data, "/f", block_size=64 * 1024)
        assert cluster.client.read("/f") == data

    def test_block_count(self, cluster):
        data = seeded_bytes(300_000, seed=1)
        up = cluster.client.copy_from_local(data, "/f", block_size=64 * 1024)
        assert up.n_blocks == 5  # ceil(300000 / 65536)

    def test_duplicate_path_rejected(self, cluster):
        cluster.client.copy_from_local(b"abc", "/f")
        with pytest.raises(FileAlreadyExists):
            cluster.client.copy_from_local(b"xyz", "/f")

    def test_missing_file(self, cluster):
        with pytest.raises(FileNotFoundInHDFS):
            cluster.client.read("/nope")

    def test_replication(self, cluster):
        data = seeded_bytes(100_000, seed=2)
        cluster.client.copy_from_local(data, "/f", block_size=32 * 1024)
        for block in cluster.namenode.get_file("/f").blocks:
            assert len(block.replicas) == 2
            for node_id in block.replicas:
                assert cluster.namenode.get_datanode(node_id).has_block(block.block_id)

    def test_placement_balances_load(self, cluster):
        data = seeded_bytes(500_000, seed=3)
        cluster.client.copy_from_local(data, "/f", block_size=16 * 1024)
        used = [n.used_bytes for n in cluster.datanodes]
        assert max(used) < 3 * (sum(used) / len(used))

    def test_delete(self, cluster):
        cluster.client.copy_from_local(b"abc" * 100, "/f")
        cluster.client.delete("/f")
        assert not cluster.namenode.exists("/f")
        assert all(n.block_count == 0 for n in cluster.datanodes)


class TestContentBasedUpload:
    def test_roundtrip(self, cluster):
        data = generate_text(150_000, seed=4)
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(data, "/f", shredder=sh)
        assert cluster.client.read("/f") == data

    def test_roundtrip_without_semantic(self, cluster):
        data = seeded_bytes(150_000, seed=4)
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(
                data, "/f", shredder=sh, record_delimiter=None
            )
        assert cluster.client.read("/f") == data

    def test_splits_have_stable_digests(self, cluster):
        """The Inc-HDFS property (§6.2): most split digests survive edits."""
        text = generate_text(200_000, seed=5)
        edited = mutate_records(text, 5, seed=6)
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(text, "/a", shredder=sh)
            cluster.client.copy_from_local_gpu(edited, "/b", shredder=sh)
        a = {s.digest for s in cluster.client.get_splits("/a")}
        b = {s.digest for s in cluster.client.get_splits("/b")}
        assert len(a & b) > 0.6 * len(a)

    def test_fixed_size_unstable_under_insertion(self, cluster):
        """Stock HDFS splits shift after an insertion — the motivation for
        content-based chunking in §6.2."""
        text = generate_text(200_000, seed=5)
        edited = b"new leading record\n" + text
        cluster.client.copy_from_local(text, "/a", block_size=8 * 1024)
        cluster.client.copy_from_local(edited, "/b", block_size=8 * 1024)
        a = {s.digest for s in cluster.client.get_splits("/a")}
        b = {s.digest for s in cluster.client.get_splits("/b")}
        assert len(a & b) <= 1  # at most the tail block matches by luck

    def test_content_splits_stable_under_insertion(self, cluster):
        text = generate_text(200_000, seed=5)
        edited = b"new leading record\n" + text
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(text, "/a", shredder=sh)
            cluster.client.copy_from_local_gpu(edited, "/b", shredder=sh)
        a = {s.digest for s in cluster.client.get_splits("/a")}
        b = {s.digest for s in cluster.client.get_splits("/b")}
        assert len(a & b) > 0.8 * len(a)

    def test_semantic_splits_are_record_aligned(self, cluster):
        text = generate_text(120_000, seed=7)
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(text, "/f", shredder=sh)
        for split in cluster.client.get_splits("/f")[:-1]:
            data = cluster.client.read_split(split)
            assert data.endswith(b"\n"), "split must end at a record boundary"

    def test_split_offsets_contiguous(self, cluster):
        text = generate_text(100_000, seed=8)
        with make_shredder() as sh:
            cluster.client.copy_from_local_gpu(text, "/f", shredder=sh)
        pos = 0
        for s in cluster.client.get_splits("/f"):
            assert s.offset == pos
            pos += s.length
        assert pos == len(text)


class TestFailures:
    def test_read_uses_surviving_replica(self, cluster):
        data = seeded_bytes(100_000, seed=9)
        cluster.client.copy_from_local(data, "/f", block_size=32 * 1024)
        cluster.datanodes[0].fail()
        assert cluster.client.read("/f") == data

    def test_read_fails_when_all_replicas_down(self, cluster):
        data = seeded_bytes(50_000, seed=9)
        cluster.client.copy_from_local(data, "/f", block_size=32 * 1024)
        for node in cluster.datanodes:
            node.fail()
        with pytest.raises(RuntimeError, match="replica"):
            cluster.client.read("/f")

    def test_recovered_node_serves(self, cluster):
        data = seeded_bytes(50_000, seed=9)
        cluster.client.copy_from_local(data, "/f", block_size=32 * 1024)
        for node in cluster.datanodes:
            node.fail()
        for node in cluster.datanodes:
            node.recover()
        assert cluster.client.read("/f") == data

    def test_datanode_down_rejects_io(self, cluster):
        node = cluster.datanodes[0]
        node.fail()
        with pytest.raises(DataNodeDown):
            node.store_block(1, b"x")

    def test_no_datanodes(self):
        from repro.hdfs import NameNode, HDFSClient

        nn = NameNode()
        client = HDFSClient(nn)
        with pytest.raises(NoDataNodes):
            client.copy_from_local(b"abc", "/f")


class TestSemanticChunking:
    def test_snap_moves_forward_to_delimiter(self):
        data = b"aaaa\nbbbb\ncccc\n"
        assert snap_cuts_to_records(data, [2, 7, 15]) == [5, 10, 15]

    def test_snap_preserves_end(self):
        data = b"aaaa\nbb"  # unterminated tail
        assert snap_cuts_to_records(data, [3, 7]) == [5, 7]

    def test_snap_merges_collapsing_cuts(self):
        data = b"aaaaaaaaaa\nbb\n"
        # Both cuts snap to 11.
        assert snap_cuts_to_records(data, [2, 5, 14]) == [11, 14]

    def test_snap_empty(self):
        assert snap_cuts_to_records(b"", []) == []

    def test_cut_already_after_delimiter_stays(self):
        data = b"aaaa\nbbbb\n"
        # A cut exactly after a delimiter is already record-aligned.
        assert snap_cuts_to_records(data, [5, 10]) == [5, 10]

    def test_split_records_handles_missing_final_newline(self):
        assert split_records(b"a\nb") == [b"a", b"b"]
        assert split_records(b"a\nb\n") == [b"a", b"b"]
        assert split_records(b"") == []
