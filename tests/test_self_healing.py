"""Tests for the self-healing cluster: failure detector, heartbeat,
auto-repair on detector-declared death, degraded reads, and repair
racing in-flight batched lookups."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.hashing import chunk_hash
from repro.faults import FaultPlan, InjectedFault
from repro.store import ChunkStoreCluster, ReplicatedPlacement
from repro.store.health import FailureDetector, HealthPolicy, NodeState


def make_items(n: int, salt: bytes = b"") -> list[tuple[bytes, bytes]]:
    items = []
    for i in range(n):
        data = salt + i.to_bytes(4, "big") * 64
        items.append((chunk_hash(data), data))
    return items


def make_cluster(**kwargs) -> ChunkStoreCluster:
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("scheme", ReplicatedPlacement(2))
    kwargs.setdefault("fault_plan", None)  # isolate from REPRO_FAULTS
    return ChunkStoreCluster(**kwargs)


def put_with_replay(cluster, items, attempts: int = 5) -> None:
    """Store chunks the way a resilient client does: strict puts raise
    while the detector is still deciding, and the replay is a cheap
    content-addressed no-op for the copies that landed."""
    for digest, data in items:
        for _ in range(attempts):
            try:
                cluster.put_chunk(digest, data)
                break
            except InjectedFault:
                continue
        else:
            raise AssertionError(
                f"put of {digest.hex()[:16]} never succeeded"
            )


# ----------------------------------------------------------------------
# failure detector
# ----------------------------------------------------------------------


class TestFailureDetector:
    def test_escalation_ladder(self):
        det = FailureDetector(HealthPolicy(suspect_after=2, dead_after=4))
        assert det.observe("n", ok=False) is None
        assert det.observe("n", ok=False) is NodeState.SUSPECT
        assert det.observe("n", ok=False) is None
        assert det.observe("n", ok=False) is NodeState.DEAD
        assert det.state("n") is NodeState.DEAD

    def test_success_resets_error_run(self):
        det = FailureDetector(HealthPolicy(suspect_after=2, dead_after=4))
        det.observe("n", ok=False)
        det.observe("n", ok=False)
        assert det.state("n") is NodeState.SUSPECT
        assert det.observe("n", ok=True) is NodeState.ALIVE
        assert det.error_run("n") == 0
        # The ladder starts over.
        det.observe("n", ok=False)
        assert det.state("n") is NodeState.ALIVE

    def test_dead_is_sticky(self):
        det = FailureDetector(HealthPolicy(suspect_after=1, dead_after=2))
        det.observe("n", ok=False)
        det.observe("n", ok=False)
        assert det.state("n") is NodeState.DEAD
        assert det.observe("n", ok=True) is None
        assert det.state("n") is NodeState.DEAD
        det.forget("n")
        assert det.state("n") is NodeState.ALIVE

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(suspect_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(suspect_after=4, dead_after=2)


# ----------------------------------------------------------------------
# detector-driven membership + auto-repair
# ----------------------------------------------------------------------


class TestSelfHealing:
    def test_kill_detected_and_auto_repaired(self):
        from repro.backup import SnapshotRecipe

        # Kill threshold far past the put traffic: the snapshot is fully
        # stored and its recipe recorded before node-1 dies, so the
        # auto-repair that fires on detector-declared death can re-copy
        # every chunk the recipe references.
        plan = FaultPlan.parse("seed=21,node.kill=node-1:5000")
        cluster = make_cluster(fault_plan=plan)
        items = make_items(60)
        put_with_replay(cluster, items)
        digests = tuple(d for d, _ in items)
        total = sum(len(data) for _, data in items)
        cluster.put_recipe(SnapshotRecipe("snap", digests, total_bytes=total))
        # Drive heartbeats until the kill threshold trips and the
        # detector declares the node dead from failed pings alone.
        for _ in range(6000):
            cluster.heartbeat()
            if not cluster.nodes["node-1"].alive:
                break
        assert not cluster.nodes["node-1"].alive
        assert cluster.stats.nodes_died == 1
        assert cluster.stats.repairs_auto >= 1
        for digest, data in items:
            assert cluster.get_chunk(digest) == data
        # Survivors hold everything at full replication.
        for digest, _ in items:
            holders = sum(
                1
                for node in cluster.nodes.values()
                if node.alive and node.has_chunk(digest)
            )
            assert holders == 2

    def test_heartbeat_alone_detects_death(self):
        plan = FaultPlan.parse("seed=22,node.kill=node-2:1")
        cluster = make_cluster(fault_plan=plan)
        states = None
        for _ in range(6):  # dead_after=4 consecutive failed pings
            states = cluster.heartbeat()
        assert states["node-2"] is NodeState.DEAD
        assert not cluster.nodes["node-2"].alive
        assert cluster.stats.heartbeats >= 6

    def test_explicit_fail_node_does_not_auto_repair(self):
        cluster = make_cluster()
        items = make_items(30)
        for digest, data in items:
            cluster.put_chunk(digest, data)
        cluster.fail_node("node-0")
        assert cluster.stats.repairs_auto == 0  # operator drives repair
        report = cluster.repair()
        assert report.healthy

    def test_degraded_read_falls_through_to_clean_replica(self):
        cluster = make_cluster(verify_reads=True)
        items = make_items(40)
        for digest, data in items:
            cluster.put_chunk(digest, data)
        # Corrupt every read from one node only: the other replica is
        # clean, so reads degrade instead of failing.
        plan = FaultPlan.parse("seed=23,backend.bit_flip=1.0")
        node = cluster.nodes["node-0"]
        node._backend = plan.wrap_backend(node._backend, "node-0")
        for digest, data in items:
            assert cluster.get_chunk(digest) == data
        assert cluster.stats.corrupt_reads > 0
        assert cluster.stats.degraded_reads > 0
        assert cluster.nodes["node-0"].stats.degraded_reads > 0

    def test_io_error_read_degrades(self):
        cluster = make_cluster()
        items = make_items(40)
        for digest, data in items:
            cluster.put_chunk(digest, data)
        plan = FaultPlan.parse("seed=24,backend.io_error=1.0")
        node = cluster.nodes["node-1"]
        node._backend = plan.wrap_backend(node._backend, "node-1")
        for digest, data in items:
            assert cluster.get_chunk(digest) == data
        assert cluster.stats.degraded_reads > 0

    def test_put_retries_transient_io_errors(self):
        cluster = make_cluster()
        # ~30% failure per op: with one retry per target the put path
        # should absorb every blip (P[two in a row] per target is small
        # but non-zero, hence the generous detector thresholds).
        plan = FaultPlan.parse("seed=25,backend.io_error=0.2")
        node = cluster.nodes["node-0"]
        node._backend = plan.wrap_backend(node._backend, "node-0")
        stored = 0
        for digest, data in make_items(50):
            try:
                cluster.put_chunk(digest, data)
                stored += 1
            except OSError:
                pass
        assert stored >= 45  # most writes survive injected errors
        assert plan.stats.io_errors > 0

    def test_health_snapshot_shape(self):
        cluster = make_cluster()
        snap = cluster.health_snapshot()
        assert snap["nodes_total"] == 3
        assert snap["nodes_alive"] == 3
        assert set(snap["nodes"]) == {"node-0", "node-1", "node-2"}
        for key in (
            "degraded_reads",
            "corrupt_reads",
            "nodes_died",
            "repairs_auto",
            "heartbeats",
        ):
            assert key in snap

    def test_recovery_rejoin_after_death(self):
        plan = FaultPlan.parse("seed=26,node.kill=node-1:30")
        cluster = make_cluster(fault_plan=plan)
        items = make_items(50)
        put_with_replay(cluster, items)
        assert not cluster.nodes["node-1"].alive
        # Rejoin under a fresh id (the detector forgets it on add) and
        # rebalance the ring back to 3 members.
        cluster.add_node("node-3")
        cluster.rebalance()
        cluster.repair()
        for digest, data in items:
            assert cluster.get_chunk(digest) == data


# ----------------------------------------------------------------------
# repair racing in-flight batched lookups
# ----------------------------------------------------------------------


class TestRepairVsLookup:
    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_repair_during_inflight_lookup(self, backend, tmp_path):
        """repair() interleaving with a suspended lookup stays correct.

        The batched lookup yields control between node sub-batches;
        driving repair() at that suspension point interleaves the two
        operations the same way a live server would.
        """
        kwargs = {"backend": backend}
        if backend == "disk":
            kwargs["data_dir"] = tmp_path / "cluster"
        cluster = make_cluster(batch_size=8, **kwargs)
        items = make_items(64)
        for digest, data in items:
            cluster.put_chunk(digest, data)
        cluster.fail_node("node-2")
        digests = [d for d, _ in items]

        async def drive():
            task = asyncio.create_task(
                cluster.lookup.lookup_batch_async(digests)
            )
            await asyncio.sleep(0)  # let the lookup start and suspend
            report = cluster.repair()
            hit_map, stats = await task
            return report, hit_map, stats

        report, hit_map, stats = asyncio.run(drive())
        assert report.healthy
        assert all(hit_map[d] for d in digests)
        assert stats.n_digests == len(digests)
        # And a fresh lookup after the repair sees everything too.
        hit_map2, _ = cluster.lookup.lookup_batch(digests)
        assert all(hit_map2[d] for d in digests)
        cluster.close()

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_lookup_during_repair_of_killed_node(self, backend, tmp_path):
        """Detector-killed node mid-lookup: surviving replicas answer."""
        kwargs = {"backend": backend}
        if backend == "disk":
            kwargs["data_dir"] = tmp_path / "cluster"
        plan = FaultPlan.parse("seed=27,node.kill=node-0:200")
        cluster = make_cluster(batch_size=8, fault_plan=plan, **kwargs)
        items = make_items(64)
        for digest, data in items:
            cluster.put_chunk(digest, data)
        digests = [d for d, _ in items]
        # Keep probing until the kill threshold trips mid-stream.
        hit_map = None
        for _ in range(8):
            hit_map, stats = cluster.lookup.lookup_batch(digests)
            if not cluster.nodes["node-0"].alive:
                break
        assert not cluster.nodes["node-0"].alive
        assert hit_map is not None and all(hit_map[d] for d in digests)
        cluster.close()
