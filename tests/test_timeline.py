"""Tests for serialized / double-buffered / pipelined schedules (§4.1-4.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.timeline import (
    PhaseCosts,
    double_buffered_schedule,
    pipeline_schedule,
    serialized_schedule,
    spare_host_cycles,
)

durations = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)
phase_lists = st.lists(
    st.builds(PhaseCosts, durations, durations, durations, durations),
    min_size=1,
    max_size=12,
)


class TestSerialized:
    def test_sum(self):
        phases = [PhaseCosts(1, 2, 3, 4)] * 3
        assert serialized_schedule(phases).total_seconds == pytest.approx(30)

    def test_empty(self):
        assert serialized_schedule([]).total_seconds == 0


class TestDoubleBuffered:
    def test_single_buffer_no_gain(self):
        phases = [PhaseCosts(1, 2, 3, 4)]
        r = double_buffered_schedule(phases)
        assert r.total_seconds == pytest.approx(10)

    def test_copy_hidden_behind_kernel(self):
        """With kernel >> transfer, total is governed by compute (§4.1.1:
        'the total time is now dictated solely by the compute time')."""
        phases = [PhaseCosts(0.0, 0.2, 1.0, 0.0)] * 8
        r = double_buffered_schedule(phases)
        serial = serialized_schedule(phases).total_seconds
        assert r.total_seconds < serial
        # All but the first copy overlap: total ~= first copy + 8 kernels.
        assert r.total_seconds == pytest.approx(0.2 + 8 * 1.0, rel=0.05)

    @given(phases=phase_lists)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, phases):
        """max(resource totals) <= concurrent <= serialized."""
        r = double_buffered_schedule(phases)
        serial = serialized_schedule(phases).total_seconds
        assert r.total_seconds <= serial + 1e-9
        kernel_total = sum(p.kernel for p in phases)
        copy_total = sum(p.transfer for p in phases)
        assert r.total_seconds >= max(kernel_total, copy_total) - 1e-9

    @given(phases=phase_lists)
    @settings(max_examples=50, deadline=None)
    def test_overlap_consistent(self, phases):
        r = double_buffered_schedule(phases)
        serial = serialized_schedule(phases).total_seconds
        assert r.overlap_seconds == pytest.approx(serial - r.total_seconds)

    def test_invalid_buffer_count(self):
        with pytest.raises(ValueError):
            double_buffered_schedule([PhaseCosts(1, 1, 1, 1)], device_buffers=0)


class TestPipeline:
    def test_one_stage_is_serial(self):
        phases = [PhaseCosts(1, 1, 1, 1)] * 4
        r = pipeline_schedule(phases, stages=1)
        assert r.total_seconds == pytest.approx(16)

    def test_four_stage_steady_state(self):
        """Equal-cost stages: n buffers take ~(n + stages - 1) stage-times."""
        phases = [PhaseCosts(1, 1, 1, 1)] * 10
        r = pipeline_schedule(phases, stages=4, max_in_flight=4)
        assert r.total_seconds == pytest.approx(4 + 9 * 1, rel=0.2)

    def test_speedup_increases_with_stages(self):
        phases = [PhaseCosts(0.25, 0.18, 0.5, 0.05)] * 16
        totals = [
            pipeline_schedule(phases, stages=s).total_seconds for s in (1, 2, 3, 4)
        ]
        assert totals[0] > totals[1] > totals[2] >= totals[3]

    def test_speedup_below_stage_count(self):
        """Fig. 9: unequal stage costs keep speedup under the theoretical
        maximum of 4x (paper measures ~2x)."""
        phases = [PhaseCosts(0.25, 0.18, 0.5, 0.05)] * 32
        serial = pipeline_schedule(phases, stages=1).total_seconds
        full = pipeline_schedule(phases, stages=4).total_seconds
        speedup = serial / full
        assert 1.5 < speedup < 4.0

    @given(phases=phase_lists, stages=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_bottleneck_bound(self, phases, stages):
        """Pipelined time is at least the largest per-resource total."""
        r = pipeline_schedule(phases, stages=stages)
        resource_totals = [0.0] * stages
        for p in phases:
            for phase_idx, cost in enumerate(p.as_tuple()):
                resource_totals[min(phase_idx, stages - 1)] += cost
        assert r.total_seconds >= max(resource_totals) - 1e-9
        assert r.total_seconds <= serialized_schedule(phases).total_seconds + 1e-9

    @given(phases=phase_lists)
    @settings(max_examples=50, deadline=None)
    def test_more_in_flight_never_slower(self, phases):
        a = pipeline_schedule(phases, stages=4, max_in_flight=1).total_seconds
        b = pipeline_schedule(phases, stages=4, max_in_flight=4).total_seconds
        assert b <= a + 1e-9

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            pipeline_schedule([PhaseCosts(1, 1, 1, 1)], stages=5)


class TestSpareCycles:
    def test_table2_magnitude(self):
        """256 MB buffer: ~171 ms device time -> ~5e8 ticks @2.67 GHz."""
        ticks = spare_host_cycles(171.4e-3, 0.09e-3)
        assert ticks == pytest.approx(4.57e8, rel=0.05)

    def test_launch_subtracted(self):
        assert spare_host_cycles(1.0, 1.0) == 0.0

    def test_never_negative(self):
        assert spare_host_cycles(0.1, 0.5) == 0.0
