"""Tests for GF(2) polynomial arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2

polys = st.integers(min_value=0, max_value=(1 << 64) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestDegree:
    def test_zero(self):
        assert gf2.degree(0) == -1

    def test_one(self):
        assert gf2.degree(1) == 0

    def test_x(self):
        assert gf2.degree(0b10) == 1

    def test_high(self):
        assert gf2.degree(1 << 53) == 53


class TestMultiply:
    def test_by_zero(self):
        assert gf2.multiply(0b1011, 0) == 0

    def test_by_one(self):
        assert gf2.multiply(0b1011, 1) == 0b1011

    def test_by_x_is_shift(self):
        assert gf2.multiply(0b1011, 0b10) == 0b10110

    def test_known_product(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2) (cross terms cancel).
        assert gf2.multiply(0b11, 0b11) == 0b101

    @given(a=polys, b=polys)
    @settings(max_examples=50)
    def test_commutative(self, a, b):
        assert gf2.multiply(a, b) == gf2.multiply(b, a)

    @given(a=polys, b=polys, c=polys)
    @settings(max_examples=50)
    def test_distributive(self, a, b, c):
        assert gf2.multiply(a, b ^ c) == gf2.multiply(a, b) ^ gf2.multiply(a, c)

    @given(a=polys, b=polys)
    @settings(max_examples=50)
    def test_degree_additive(self, a, b):
        if a and b:
            assert gf2.degree(gf2.multiply(a, b)) == gf2.degree(a) + gf2.degree(b)


class TestMod:
    def test_mod_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf2.mod(0b101, 0)

    def test_smaller_unchanged(self):
        assert gf2.mod(0b101, 0b10000) == 0b101

    @given(a=polys, m=nonzero_polys)
    @settings(max_examples=100)
    def test_residue_degree(self, a, m):
        assert gf2.degree(gf2.mod(a, m)) < gf2.degree(m) or gf2.mod(a, m) == 0

    @given(a=polys, m=nonzero_polys)
    @settings(max_examples=100)
    def test_idempotent(self, a, m):
        r = gf2.mod(a, m)
        assert gf2.mod(r, m) == r

    @given(a=polys, b=polys, m=nonzero_polys)
    @settings(max_examples=50)
    def test_mod_is_linear(self, a, b, m):
        assert gf2.mod(a ^ b, m) == gf2.mod(a, m) ^ gf2.mod(b, m)


class TestPowMod:
    def test_power_zero(self):
        assert gf2.pow_mod(0b10, 0, 0b1011) == 1

    def test_power_one(self):
        assert gf2.pow_mod(0b10, 1, 0b1011) == 0b10

    @given(e1=st.integers(0, 200), e2=st.integers(0, 200), m=st.integers(4, 1 << 60))
    @settings(max_examples=50)
    def test_exponent_additive(self, e1, e2, m):
        x = 0b10
        lhs = gf2.pow_mod(x, e1 + e2, m)
        rhs = gf2.multiply_mod(gf2.pow_mod(x, e1, m), gf2.pow_mod(x, e2, m), m)
        assert lhs == rhs


class TestGcd:
    def test_gcd_self(self):
        assert gf2.gcd(0b1011, 0b1011) == 0b1011

    def test_gcd_with_zero(self):
        assert gf2.gcd(0b1011, 0) == 0b1011

    @given(a=nonzero_polys, b=nonzero_polys)
    @settings(max_examples=50)
    def test_gcd_divides(self, a, b):
        g = gf2.gcd(a, b)
        assert gf2.mod(a, g) == 0
        assert gf2.mod(b, g) == 0


class TestIrreducibility:
    def test_known_irreducible(self):
        # x^3 + x + 1 is irreducible over GF(2).
        assert gf2.is_irreducible(0b1011)

    def test_known_reducible(self):
        # x^2 + 1 = (x + 1)^2.
        assert not gf2.is_irreducible(0b101)

    def test_x_squared_plus_x_reducible(self):
        assert not gf2.is_irreducible(0b110)  # x(x+1)

    def test_degree_zero_not_irreducible(self):
        assert not gf2.is_irreducible(1)

    def test_exhaustive_degree_4(self):
        # The irreducible degree-4 polynomials over GF(2) are known:
        # x^4+x+1, x^4+x^3+1, x^4+x^3+x^2+x+1.
        found = sorted(
            p for p in range(1 << 4, 1 << 5) if gf2.is_irreducible(p)
        )
        assert found == [0b10011, 0b11001, 0b11111]

    def test_find_irreducible_is_irreducible(self):
        poly = gf2.find_irreducible(16, seed=99)
        assert gf2.degree(poly) == 16
        assert gf2.is_irreducible(poly)

    def test_find_irreducible_deterministic(self):
        assert gf2.find_irreducible(20, seed=5) == gf2.find_irreducible(20, seed=5)

    def test_default_degree_53(self):
        poly = gf2.find_irreducible(seed=2012)
        assert gf2.degree(poly) == 53
        assert gf2.is_irreducible(poly)
