"""Tests for content-defined append on Inc-HDFS."""

from __future__ import annotations

import pytest

from repro.core.chunking import ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import IncoopRuntime
from repro.mapreduce.applications import wordcount_job, wordcount_reference
from repro.workloads import generate_text

SMALL = ChunkerConfig(mask_bits=8, marker=0x55)
CFG = ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=1 << 20)


def upload(cluster, data, path):
    with Shredder(CFG) as shredder:
        return cluster.client.copy_from_local_gpu(data, path, shredder=shredder)


def append(cluster, data, path):
    with Shredder(CFG) as shredder:
        return cluster.client.append_gpu(data, path, shredder=shredder)


@pytest.fixture()
def cluster():
    return HDFSCluster(num_datanodes=5)


class TestAppend:
    def test_read_after_append(self, cluster):
        a = generate_text(60_000, seed=81)
        b = generate_text(30_000, seed=82)
        upload(cluster, a, "/log")
        append(cluster, b, "/log")
        assert cluster.client.read("/log") == a + b

    def test_multiple_appends(self, cluster):
        parts = [generate_text(20_000, seed=83 + i) for i in range(4)]
        upload(cluster, parts[0], "/log")
        for part in parts[1:]:
            append(cluster, part, "/log")
        assert cluster.client.read("/log") == b"".join(parts)

    def test_append_to_empty_like_upload(self, cluster):
        upload(cluster, b"", "/log")
        data = generate_text(30_000, seed=85)
        append(cluster, data, "/log")
        assert cluster.client.read("/log") == data

    def test_prefix_blocks_untouched(self, cluster):
        """Only the tail block may change: the Inc-HDFS append guarantee."""
        a = generate_text(80_000, seed=86)
        upload(cluster, a, "/log")
        before = [s.digest for s in cluster.client.get_splits("/log")]
        append(cluster, generate_text(40_000, seed=87), "/log")
        after = [s.digest for s in cluster.client.get_splits("/log")]
        assert after[: len(before) - 1] == before[:-1]

    def test_append_rejected_on_fixed_size_file(self, cluster):
        cluster.client.copy_from_local(b"abc" * 1000, "/fixed")
        with pytest.raises(ValueError, match="content-based"):
            append(cluster, b"more", "/fixed")

    def test_appended_data_memoizes_incrementally(self, cluster):
        """Appending a day's records re-runs only tail + new map tasks."""
        a = generate_text(100_000, seed=88)
        upload(cluster, a, "/log")
        incoop = IncoopRuntime(cluster.client)
        job = wordcount_job()
        incoop.run_incremental(job, "/log")
        b = generate_text(20_000, seed=89)
        append(cluster, b, "/log")
        result = incoop.run_incremental(job, "/log")
        assert result.output == wordcount_reference(a + b)
        assert result.stats.map_tasks_reused > 0.7 * result.stats.n_splits

    def test_append_equivalent_to_reupload(self, cluster):
        """Append produces the same bytes and near-identical splits as a
        from-scratch upload of the concatenation."""
        a = generate_text(60_000, seed=90)
        b = generate_text(30_000, seed=91)
        upload(cluster, a, "/appended")
        append(cluster, b, "/appended")
        upload(cluster, a + b, "/whole")
        appended = {s.digest for s in cluster.client.get_splits("/appended")}
        whole = {s.digest for s in cluster.client.get_splits("/whole")}
        # Record snapping from a different tail start can shift a couple
        # of boundaries; the overwhelming majority must coincide.
        assert len(appended & whole) > 0.9 * len(whole)
