"""Tests for parallel min/max boundary selection (§9 future work)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import Chunker, ChunkerConfig, select_cuts
from repro.core.parallel_minmax import compute_jumps, parallel_select_cuts
from tests.conftest import seeded_bytes


class TestEquivalenceWithSequential:
    """The central invariant: identical output to ``select_cuts``."""

    @given(
        candidates=st.lists(st.integers(1, 999), max_size=60),
        min_size=st.integers(0, 80),
        max_gap=st.integers(80, 400) | st.none(),
        workers=st.integers(1, 4),
    )
    @settings(max_examples=300, deadline=None)
    def test_random_equivalence(self, candidates, min_size, max_gap, workers):
        length = 1000
        cands = sorted(set(candidates))
        expected = select_cuts(cands, length, min_size, max_gap)
        actual = parallel_select_cuts(cands, length, min_size, max_gap, workers)
        assert actual == expected

    def test_empty(self):
        assert parallel_select_cuts([], 0) == []
        assert parallel_select_cuts([], 100) == [100]

    def test_no_limits_passthrough(self):
        assert parallel_select_cuts([10, 20], 50) == [10, 20, 50]

    def test_forced_runs(self):
        assert parallel_select_cuts([], 100, max_size=30) == select_cuts(
            [], 100, 0, 30
        )

    def test_candidate_at_length(self):
        assert parallel_select_cuts([50, 100], 100, min_size=10) == [50, 100]

    def test_real_chunking_candidates(self):
        """Drive with real Rabin candidates at realistic density."""
        data = seeded_bytes(256 * 1024, seed=51)
        chunker = Chunker(ChunkerConfig(mask_bits=8, marker=0x55))
        cands = chunker.candidate_cuts(data)
        for min_s, max_s in [(0, None), (128, 1024), (256, 2048), (64, 300)]:
            assert parallel_select_cuts(cands, len(data), min_s, max_s) == \
                select_cuts(cands, len(data), min_s, max_s)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            parallel_select_cuts([30, 10], 100)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="beyond"):
            parallel_select_cuts([300], 100)


class TestJumps:
    def test_jump_table_covers_origin_and_candidates(self):
        jumps = compute_jumps([10, 25, 60], 100, min_size=5, max_size=50)
        assert set(jumps) == {0, 10, 25, 60}

    def test_forced_progression_recorded(self):
        jumps = compute_jumps([95], 100, min_size=0, max_size=30)
        origin = jumps[0]
        assert origin.forced == (30, 60, 90)
        assert origin.target == 95

    def test_unreachable_candidate_skipped_by_min(self):
        # Candidate at 8 < min 10 is never a target from 0.
        jumps = compute_jumps([8], 100, min_size=10, max_size=None)
        assert jumps[0].target is None

    def test_worker_count_invariance(self):
        cands = list(range(7, 5000, 13))
        one = parallel_select_cuts(cands, 5000, 20, 200, workers=1)
        four = parallel_select_cuts(cands, 5000, 20, 200, workers=4)
        assert one == four
