"""Tests for the cloud-backup case study (§7)."""

from __future__ import annotations

import pytest

from repro.backup import (
    BackupConfig,
    BackupServer,
    ChunkStore,
    MasterImage,
    ShredderAgent,
    SimilarityTable,
    SnapshotRecipe,
)
from repro.core.hashing import chunk_hash

MB = 1 << 20


@pytest.fixture(scope="module")
def image() -> MasterImage:
    return MasterImage(size=3 * MB, segment_size=32 * 1024, seed=77)


class TestSimilarityTable:
    def test_uniform(self):
        t = SimilarityTable.uniform(0.2, 10)
        assert len(t) == 10 and all(p == 0.2 for p in t.probabilities)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SimilarityTable((0.5, 1.5))


class TestMasterImage:
    def test_segment_count(self, image):
        assert image.n_segments == 96

    def test_snapshot_deterministic(self, image):
        t = SimilarityTable.uniform(0.2, image.n_segments)
        assert image.snapshot(t, 1) == image.snapshot(t, 1)

    def test_generations_differ(self, image):
        t = SimilarityTable.uniform(0.2, image.n_segments)
        assert image.snapshot(t, 1) != image.snapshot(t, 2)

    def test_zero_probability_identity(self, image):
        t = SimilarityTable.uniform(0.0, image.n_segments)
        assert image.snapshot(t, 1) == image.data

    def test_one_probability_replaces_everything(self, image):
        t = SimilarityTable.uniform(1.0, image.n_segments)
        snap = image.snapshot(t, 1)
        assert len(snap) == image.size
        # No segment equal to the master's.
        same = sum(
            image.segment(i) == snap[i * 32 * 1024 : (i + 1) * 32 * 1024]
            for i in range(image.n_segments)
        )
        assert same == 0

    def test_change_fraction_tracks_probability(self, image):
        t = SimilarityTable.uniform(0.3, image.n_segments)
        snap = image.snapshot(t, 3)
        changed = sum(
            image.segment(i) != snap[i * 32 * 1024 : (i + 1) * 32 * 1024]
            for i in range(image.n_segments)
        )
        assert 0.15 < changed / image.n_segments < 0.45
        assert image.expected_change_fraction(t) == pytest.approx(0.3)

    def test_table_size_mismatch(self, image):
        with pytest.raises(ValueError):
            image.snapshot(SimilarityTable.uniform(0.5, 3), 1)


class TestChunkStore:
    def test_put_dedups(self):
        store = ChunkStore()
        d = chunk_hash(b"data")
        assert store.put_chunk(d, b"data") is True
        assert store.put_chunk(d, b"data") is False
        assert store.chunk_count == 1

    def test_recipe_requires_chunks(self):
        store = ChunkStore()
        with pytest.raises(ValueError, match="missing"):
            store.put_recipe(SnapshotRecipe("s", (chunk_hash(b"x"),), 1))

    def test_duplicate_recipe_rejected(self):
        store = ChunkStore()
        d = chunk_hash(b"x")
        store.put_chunk(d, b"x")
        store.put_recipe(SnapshotRecipe("s", (d,), 1))
        with pytest.raises(ValueError, match="already"):
            store.put_recipe(SnapshotRecipe("s", (d,), 1))

    def test_restore_order(self):
        store = ChunkStore()
        da, db = chunk_hash(b"aa"), chunk_hash(b"bb")
        store.put_chunk(da, b"aa")
        store.put_chunk(db, b"bb")
        store.put_recipe(SnapshotRecipe("s", (db, da, db), 6))
        assert store.restore("s") == b"bbaabb"


class TestAgentProtocol:
    def test_roundtrip(self):
        agent = ShredderAgent()
        agent.begin_snapshot("s1")
        agent.receive_chunk("s1", b"hello ")
        agent.receive_chunk("s1", b"world")
        log = agent.finish_snapshot("s1")
        assert log.chunks_received == 2 and log.pointers_received == 0
        assert agent.restore("s1") == b"hello world"

    def test_pointers_reference_existing(self):
        agent = ShredderAgent()
        agent.begin_snapshot("s1")
        agent.receive_chunk("s1", b"shared")
        agent.finish_snapshot("s1")
        agent.begin_snapshot("s2")
        agent.receive_pointer("s2", chunk_hash(b"shared"))
        log = agent.finish_snapshot("s2")
        assert log.pointers_received == 1 and log.bytes_received == 0
        assert agent.restore("s2") == b"shared"

    def test_pointer_to_unknown_chunk_rejected(self):
        agent = ShredderAgent()
        agent.begin_snapshot("s1")
        with pytest.raises(KeyError):
            agent.receive_pointer("s1", chunk_hash(b"never sent"))

    def test_unopened_snapshot_rejected(self):
        agent = ShredderAgent()
        with pytest.raises(ValueError):
            agent.receive_chunk("nope", b"x")

    def test_double_open_rejected(self):
        agent = ShredderAgent()
        agent.begin_snapshot("s")
        with pytest.raises(ValueError):
            agent.begin_snapshot("s")


class TestBackupEndToEnd:
    @pytest.fixture(scope="class")
    def server(self, image):
        with BackupServer(BackupConfig(engine="gpu")) as server:
            server.backup_snapshot(image.data, "master")
            yield server

    def test_restore_equals_snapshot(self, image, server):
        t = SimilarityTable.uniform(0.2, image.n_segments)
        snap = image.snapshot(t, 5)
        server.backup_snapshot(snap, "gen5")
        assert server.agent.restore("gen5") == snap

    def test_master_restore(self, image, server):
        assert server.agent.restore("master") == image.data

    def test_dedup_saves_transfer(self, image, server):
        t = SimilarityTable.uniform(0.1, image.n_segments)
        snap = image.snapshot(t, 6)
        report = server.backup_snapshot(snap, "gen6")
        assert report.shipped_bytes < 0.4 * report.total_bytes
        assert report.dedup_fraction > 0.6

    def test_chunk_sizes_respect_min_max(self, image, server):
        cfg = server.config.chunker
        recipe = server.agent.store.get_recipe("master")
        sizes = [len(server.agent.store.get_chunk(d)) for d in recipe.digests]
        assert all(s <= cfg.max_size for s in sizes)
        assert all(s >= cfg.min_size for s in sizes[:-1])

    def test_store_holds_each_chunk_once(self, image, server):
        store = server.agent.store
        assert store.stored_bytes <= sum(
            store.get_recipe(s).total_bytes
            for s in ("master",)
        ) * 2  # far below sum over all snapshots


class TestBackupBandwidthShape:
    """Fig. 18 behaviours."""

    @pytest.fixture(scope="class")
    def curves(self, image):
        out = {}
        for engine in ("cpu", "gpu"):
            bws = []
            with BackupServer(BackupConfig(engine=engine)) as server:
                server.backup_snapshot(image.data, "master")
                for i, p in enumerate((0.05, 0.25)):
                    t = SimilarityTable.uniform(p, image.n_segments)
                    snap = image.snapshot(t, 10 + i)
                    rep = server.backup_snapshot(snap, f"{engine}{i}")
                    bws.append(rep.backup_bandwidth_gbps)
            out[engine] = bws
        return out

    def test_gpu_beats_cpu(self, curves):
        """§7.3: 'a speedup of only 2.5X in backup bandwidth compared to
        the pthread implementation' (min/max costs cap the gain)."""
        for g, c in zip(curves["gpu"], curves["cpu"]):
            assert 1.8 < g / c < 4.5

    def test_gpu_near_10gbps_target(self, curves):
        assert 6.0 < curves["gpu"][0] < 10.0

    def test_bandwidth_declines_with_dissimilarity(self, curves):
        assert curves["gpu"][1] <= curves["gpu"][0]

    def test_cpu_chunking_bound(self, image):
        """For similar snapshots the CPU pipeline is chunking-bound — the
        bottleneck Shredder exists to remove."""
        with BackupServer(BackupConfig(engine="cpu")) as server:
            server.backup_snapshot(image.data, "m")
            t = SimilarityTable.uniform(0.2, image.n_segments)
            rep = server.backup_snapshot(snap := image.snapshot(t, 20), "s")
        assert rep.bottleneck == "chunking"

    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            BackupConfig(engine="fpga")

    def test_invalid_storage_backend(self):
        with pytest.raises(ValueError):
            BackupConfig(backend="tape")
