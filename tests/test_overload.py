"""Tests for the client-side overload drivers (connection flood,
slowloris) and the fault-plan grammar that configures them, plus an
in-process overload drill against a fully armed service."""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.faults import FaultPlan, OverloadSpec, drive_overload, flood, slowloris
from repro.service import (
    AsyncBackupClient,
    BackupService,
    ServiceConfig,
    auth_token,
)
from repro.service.protocol import Err, RemoteError


def run_service(fn, **config):
    async def main():
        async with BackupService(ServiceConfig(**config)) as service:
            return await fn(service)

    return asyncio.run(main())


# ----------------------------------------------------------------------
# fault-plan grammar
# ----------------------------------------------------------------------


class TestOverloadSpecParsing:
    def test_flood_defaults(self):
        plan = FaultPlan.parse("wire.flood=8")
        assert plan.overload == OverloadSpec(flood_conns=8, flood_s=2.0)
        assert plan.overload.active

    def test_flood_with_duration(self):
        plan = FaultPlan.parse("wire.flood=4:0.5")
        assert plan.overload.flood_conns == 4
        assert plan.overload.flood_s == 0.5

    def test_slowloris(self):
        plan = FaultPlan.parse("client.slowloris=6:1.5")
        assert plan.overload.slowloris_conns == 6
        assert plan.overload.slowloris_s == 1.5
        assert plan.overload.flood_conns == 0

    def test_composes_with_other_clauses(self):
        plan = FaultPlan.parse(
            "seed=9,wire.drop=0.1,wire.flood=3,client.slowloris=2"
        )
        assert plan.seed == 9
        assert plan.wire.drop == 0.1
        assert plan.overload.flood_conns == 3
        assert plan.overload.slowloris_conns == 2

    def test_inactive_by_default(self):
        assert not FaultPlan.parse("seed=1").overload.active

    @pytest.mark.parametrize(
        "spec",
        [
            "wire.flood=0",
            "wire.flood=oops",
            "wire.flood=2:0",
            "wire.flood=2:fast",
            "client.slowloris=-1",
        ],
    )
    def test_bad_clauses_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_unknown_key_error_lists_overload_knobs(self):
        with pytest.raises(ValueError, match="wire.flood"):
            FaultPlan.parse("wire.tsunami=3")

    def test_stats_fields_exist(self):
        stats = FaultPlan.parse("wire.flood=1").stats
        doc = stats.as_dict()
        assert doc["flood_conns"] == 0
        assert doc["slowloris_conns"] == 0


# ----------------------------------------------------------------------
# drivers against a live service
# ----------------------------------------------------------------------


class TestDriversAgainstService:
    def test_flood_gets_typed_errors_not_crashes(self):
        plan = FaultPlan.parse("seed=5,wire.flood=4:0.3")

        async def scenario(service):
            unhandled = []
            asyncio.get_running_loop().set_exception_handler(
                lambda _l, ctx: unhandled.append(ctx)
            )
            n = await flood(
                "127.0.0.1", service.port, plan.overload,
                seed=plan.seed, stats=plan.stats,
            )
            # The service is still fully usable afterwards.
            client = await AsyncBackupClient.connect(
                "127.0.0.1", service.port, tenant="t"
            )
            await client.backup(b"d" * 30_000, "after")
            restored = await client.restore("after")
            await client.close()
            asyncio.get_running_loop().set_exception_handler(None)
            return n, restored, unhandled, service.metrics

        n, restored, unhandled, metrics = run_service(
            scenario, hello_timeout_s=0.5
        )
        assert n == 4 and plan.stats.flood_conns == 4
        assert restored == b"d" * 30_000
        assert unhandled == []
        # Garbage after the magic answers with an ERROR frame (or the
        # pre-auth deadline fires first) — every flood connection was
        # classified, none crashed a task.
        assert metrics.errors_sent + metrics.preauth_evictions >= 4
        assert metrics.sessions_total == 1  # no flood conn became a session

    def test_slowloris_evicted_by_preauth_deadline(self):
        plan = FaultPlan.parse("seed=5,client.slowloris=4:1.0")

        async def scenario(service):
            started = asyncio.get_running_loop().time()
            n = await slowloris(
                "127.0.0.1", service.port, plan.overload,
                seed=plan.seed, stats=plan.stats,
            )
            elapsed = asyncio.get_running_loop().time() - started
            return n, elapsed, service.metrics

        n, elapsed, metrics = run_service(scenario, hello_timeout_s=0.15)
        assert n == 4 and plan.stats.slowloris_conns == 4
        assert metrics.preauth_evictions == 4
        # Eviction cut the holds short: the drill did not sit out the
        # full 1 s duration per connection.
        assert metrics.sessions_total == 0

    def test_drive_overload_runs_both(self):
        plan = FaultPlan.parse("wire.flood=2:0.2,client.slowloris=2:0.2")

        async def scenario(service):
            return await drive_overload("127.0.0.1", service.port, plan)

        counts = run_service(scenario, hello_timeout_s=0.1)
        assert counts == {"flood_conns": 2, "slowloris_conns": 2}
        assert plan.stats.flood_conns == 2
        assert plan.stats.slowloris_conns == 2


# ----------------------------------------------------------------------
# the drill, in process
# ----------------------------------------------------------------------


class TestOverloadDrill:
    def test_greedy_clients_vs_armed_service(self, tmp_path):
        """More clients than slots + flood + slowloris: the service
        stays responsive on /health, refuses with typed errors only,
        and every admitted backup restores byte-exact."""
        auth = tmp_path / "auth"
        auth.write_text("t0: s\nt1: s\n")

        async def scenario(service):
            unhandled = []
            asyncio.get_running_loop().set_exception_handler(
                lambda _l, ctx: unhandled.append(ctx)
            )
            plan = FaultPlan.parse(
                "seed=2,wire.flood=4:0.4,client.slowloris=4:0.4"
            )
            finished, refused, failed = [], [], []

            async def greedy(i):
                tenant = f"t{i % 2}"
                data = bytes([i]) * 40_000
                for _ in range(20):
                    try:
                        client = await AsyncBackupClient.connect(
                            "127.0.0.1", service.port, tenant=tenant,
                            auth=auth_token("s", tenant),
                        )
                    except RemoteError as exc:
                        if exc.code is Err.BUSY:
                            await asyncio.sleep(0.05)
                            continue
                        refused.append(exc.code)
                        return
                    try:
                        await client.backup(data, f"snap-{i}")
                        finished.append((i, tenant, data))
                    except RemoteError as exc:
                        refused.append(exc.code)
                    finally:
                        await client.close()
                    return
                refused.append(Err.BUSY)

            async def health():
                return await asyncio.to_thread(
                    lambda: json.load(
                        urllib.request.urlopen(
                            f"http://127.0.0.1:{service.port}/health",
                            timeout=2,
                        )
                    )
                )

            results = await asyncio.gather(
                drive_overload("127.0.0.1", service.port, plan),
                health(),
                *(greedy(i) for i in range(8)),
                return_exceptions=True,
            )
            failed = [r for r in results if isinstance(r, BaseException)]
            probe = results[1]
            for i, tenant, data in finished:
                restorer = await AsyncBackupClient.connect(
                    "127.0.0.1", service.port, tenant=tenant,
                    auth=auth_token("s", tenant), purpose=1,
                )
                assert await restorer.restore(f"snap-{i}") == data
                await restorer.close()
            asyncio.get_running_loop().set_exception_handler(None)
            return finished, refused, failed, probe, unhandled, service.metrics

        finished, refused, failed, probe, unhandled, metrics = run_service(
            scenario,
            auth_file=str(auth),
            max_sessions=2,
            restore_reserve=1,
            hello_timeout_s=0.2,
            quota_bytes=120_000,
        )
        assert failed == [] and unhandled == []
        assert probe["status"] == "ok"
        assert len(finished) >= 1
        assert all(code in (Err.BUSY, Err.QUOTA_EXCEEDED) for code in refused)
        assert metrics.preauth_evictions >= 1  # slowloris holds evicted
        assert metrics.sessions_rejected >= 1  # admission shed the excess

    def test_drill_script_passes(self):
        """The CI drill script itself, at reduced scale."""
        script = Path(__file__).parent.parent / "examples" / "overload_drill.py"
        proc = subprocess.run(
            [
                sys.executable, str(script),
                "--clients", "8", "--max-sessions", "2", "--seconds", "0.4",
            ],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
