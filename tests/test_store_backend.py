"""Tests for the pluggable storage backends (``src/repro/store/backend``)."""

from __future__ import annotations

import shutil

import pytest

from repro.core.hashing import chunk_hash
from repro.store.backend import (
    _FRAME,
    BACKEND_KINDS,
    MemoryBackend,
    PersistentBackend,
    RecipeStore,
    STORE_BACKEND_ENV,
    STORE_TMP_ENV,
    make_backend,
    resolve_backend,
)
from repro.backup.store import SnapshotRecipe


def make_items(n: int, salt: bytes = b"") -> list[tuple[bytes, bytes]]:
    return [
        (chunk_hash(salt + i.to_bytes(4, "big")), salt + b"value-%d-" % i * 3)
        for i in range(n)
    ]


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        b = MemoryBackend()
    else:
        b = PersistentBackend(tmp_path / "b", memtable_limit=16, compact_fanout=3)
    yield b
    b.close()


class TestProtocolConformance:
    """Both implementations answer the batched surface identically."""

    def test_put_is_insert_if_absent(self, backend):
        items = make_items(5)
        assert backend.put_batch(items) == [True] * 5
        assert backend.put_batch(items[:2]) == [False, False]
        # A re-put never overwrites: the first value is canonical.
        k = items[0][0]
        assert backend.put_batch([(k, b"other")]) == [False]
        assert backend.get_batch([k]) == [items[0][1]]

    def test_contains_get_delete(self, backend):
        items = make_items(10)
        backend.put_batch(items)
        keys = [k for k, _ in items]
        assert backend.contains_batch(keys + [chunk_hash(b"absent")]) == (
            [True] * 10 + [False]
        )
        assert backend.get_batch(keys[:3]) == [v for _, v in items[:3]]
        assert backend.get_batch([chunk_hash(b"absent")]) == [None]
        freed = backend.delete_batch([keys[0], chunk_hash(b"absent"), keys[1]])
        assert freed == [len(items[0][1]), 0, len(items[1][1])]
        assert backend.contains_batch(keys[:2]) == [False, False]
        assert len(backend) == 8

    def test_len_value_bytes_keys(self, backend):
        items = make_items(7)
        backend.put_batch(items)
        assert len(backend) == 7
        assert backend.value_bytes == sum(len(v) for _, v in items)
        assert sorted(backend.keys()) == sorted(k for k, _ in items)
        backend.delete_batch([items[0][0]])
        assert backend.value_bytes == sum(len(v) for _, v in items[1:])
        assert sorted(backend.keys()) == sorted(k for k, _ in items[1:])

    def test_clear(self, backend):
        backend.put_batch(make_items(6))
        backend.clear()
        assert len(backend) == 0
        assert backend.value_bytes == 0
        assert list(backend.keys()) == []
        # Cleared, not closed: the backend keeps working.
        assert backend.put_batch(make_items(2)) == [True, True]

    def test_values_detached_from_caller_buffers(self, backend):
        buf = bytearray(b"mutable-payload!")
        key = chunk_hash(bytes(buf))
        backend.put_batch([(key, memoryview(buf))])
        buf[:7] = b"XXXXXXX"
        assert backend.get_batch([key]) == [b"mutable-payload!"]

    def test_stats_counters(self, backend):
        items = make_items(4)
        backend.put_batch(items)
        backend.contains_batch([items[0][0]])
        backend.get_batch([items[0][0]])
        backend.delete_batch([items[0][0]])
        s = backend.stats
        assert s.puts == 4 and s.contains == 1 and s.gets == 1 and s.deletes == 1
        assert s.batches == 4


class TestPersistence:
    def test_close_reopen_round_trip(self, tmp_path):
        items = make_items(200)
        with PersistentBackend(tmp_path / "b", memtable_limit=32) as b:
            b.put_batch(items)
            b.delete_batch([items[5][0], items[6][0]])
        with PersistentBackend(tmp_path / "b") as b:
            assert b.recovery.clean
            assert len(b) == 198
            keys = [k for k, _ in items]
            got = b.get_batch(keys)
            for i, (value, (_, expected)) in enumerate(zip(got, items)):
                assert value == (None if i in (5, 6) else expected)

    def test_crash_reopen_replays_log(self, tmp_path):
        """No close(): the memtable is lost, the log has everything."""
        b = PersistentBackend(tmp_path / "b", memtable_limit=10_000)
        items = make_items(50)
        b.put_batch(items)
        b.flush()  # records reach the OS; memtable never spilled
        shutil.copytree(tmp_path / "b", tmp_path / "crashed")
        b.close()
        with PersistentBackend(tmp_path / "crashed") as b2:
            assert b2.recovery.replayed_records == 50
            assert len(b2) == 50
            assert b2.get_batch([items[17][0]]) == [items[17][1]]

    def test_runs_flush_and_compact(self, tmp_path):
        b = PersistentBackend(tmp_path / "b", memtable_limit=8, compact_fanout=3)
        for start in range(0, 80, 8):
            b.put_batch(make_items(8, salt=b"%d-" % start))
        assert b.stats.memtable_flushes >= 8
        assert b.stats.compactions >= 2
        runs = list((tmp_path / "b").glob("run-*.run"))
        assert 0 < len(runs) < 3  # tiers collapsed, not accumulated
        # Everything still answers, through memtable or runs alike.
        for start in range(0, 80, 8):
            items = make_items(8, salt=b"%d-" % start)
            assert b.get_batch([k for k, _ in items]) == [v for _, v in items]
        # Absent keys are mostly absorbed by the per-run Bloom filters.
        before = b.stats.bloom_negatives
        b.contains_batch([chunk_hash(b"miss-%d" % i) for i in range(200)])
        assert b.stats.bloom_negatives > before
        b.close()

    def test_log_compaction_reclaims_dead_records(self, tmp_path):
        b = PersistentBackend(tmp_path / "b", memtable_limit=16)
        items = make_items(60)
        b.put_batch(items)
        b.delete_batch([k for k, _ in items[:40]])
        b.flush()
        before = (tmp_path / "b" / "chunks.log").stat().st_size
        reclaimed = b.compact()
        after = (tmp_path / "b" / "chunks.log").stat().st_size
        assert reclaimed == before - after > 0
        assert b.stats.log_compactions == 1
        assert len(b) == 20
        assert b.get_batch([items[45][0]]) == [items[45][1]]
        b.close()
        # The compacted state is what reopens.
        with PersistentBackend(tmp_path / "b") as b2:
            assert len(b2) == 20
            assert b2.get_batch([items[45][0]]) == [items[45][1]]

    def test_interrupted_compact_recovers_from_either_log(self, tmp_path):
        """compact() deletes runs before publishing the rewritten log,
        so a crash at its worst points leaves (old log, no runs) or
        (new log, no runs) — both replay correctly, never stale runs
        dereferencing into a rewritten log."""
        with PersistentBackend(tmp_path / "b", memtable_limit=4) as b:
            # Non-sorted insert order, so the compacted (key-sorted) log
            # would re-shuffle offsets — the stale-run poison scenario.
            items = make_items(19)
            for item in reversed(items):
                b.put_batch([item])
            b.flush()
            shutil.copytree(tmp_path / "b", tmp_path / "pre")
        # Crash point A: runs unlinked, old log still in place (the tmp
        # rewrite never published).
        work = tmp_path / "crash-a"
        shutil.copytree(tmp_path / "pre", work)
        for run in work.glob("run-*.run"):
            run.unlink()
        (work / "chunks.compact").write_bytes(b"partial rewrite")
        with PersistentBackend(work) as b2:
            assert sorted(b2.keys()) == sorted(k for k, _ in items)
            assert b2.get_batch([items[3][0]]) == [items[3][1]]
            assert not (work / "chunks.compact").exists()  # tmp swept
        # Crash point B: new log published, runs gone (crash before the
        # fresh run was written) — full replay of the compacted log.
        work = tmp_path / "crash-b"
        shutil.copytree(tmp_path / "pre", work)
        with PersistentBackend(work) as b3:
            b3.delete_batch([items[0][0]])
            b3.compact()
        for run in work.glob("run-*.run"):
            run.unlink()
        with PersistentBackend(work) as b4:
            assert b4.recovery.replayed_from == 0
            assert sorted(b4.keys()) == sorted(k for k, _ in items[1:])
            assert b4.get_batch([items[7][0]]) == [items[7][1]]

    def test_corrupt_run_file_falls_back_to_log_replay(self, tmp_path):
        with PersistentBackend(tmp_path / "b", memtable_limit=8) as b:
            items = make_items(40)
            b.put_batch(items[:20])  # two separate memtable flushes ->
            b.put_batch(items[20:])  # two runs, below the merge fanout
        runs = sorted((tmp_path / "b").glob("run-*.run"))
        assert len(runs) >= 2  # corrupt an *early* run, later ones valid
        raw = bytearray(runs[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        runs[0].write_bytes(bytes(raw))
        with PersistentBackend(tmp_path / "b") as b2:
            assert b2.recovery.replayed_from == 0  # full replay, no trust
            assert len(b2) == 40
            assert b2.get_batch([items[33][0]]) == [items[33][1]]
            # Every old run file was dropped — the corrupt one must not
            # fail the next open, and a stale survivor must never outrank
            # runs written after the sequence counter restarted.
            for old in runs:
                assert not old.exists()
        # Close spilled a fresh run; the state reopens clean.
        with PersistentBackend(tmp_path / "b") as b3:
            assert b3.recovery.clean and len(b3) == 40

    def test_run_watermark_past_log_end_discards_runs(self, tmp_path):
        """A run published after the log's durable tail was lost (we
        flush, not fsync) must not serve offsets past EOF."""
        with PersistentBackend(tmp_path / "b", memtable_limit=8) as b:
            items = make_items(24)
            b.put_batch(items)
            b.flush()
        log_path = tmp_path / "b" / "chunks.log"
        offsets = frame_offsets(log_path.read_bytes())
        cut = offsets[10]  # lose the tail: only 10 records remain durable
        with open(log_path, "r+b") as fh:
            fh.truncate(cut)
        with PersistentBackend(tmp_path / "b") as b2:
            # Runs outran the surviving log: discarded, full replay.
            assert b2.recovery.replayed_from == 0
            assert len(b2) == 10
            surviving = [k for k, _ in items[:10]]
            values = b2.get_batch(surviving)
            assert values == [v for _, v in items[:10]]  # no short reads
            assert b2.contains_batch([items[20][0]]) == [False]

    def test_put_known_absent_skips_reprobe(self, tmp_path):
        b = PersistentBackend(tmp_path / "b", memtable_limit=4)
        items = make_items(12)  # several runs: run probes are the cost
        b.put_batch(items)
        fresh = make_items(3, salt=b"fresh")
        before = b.stats.bloom_negatives
        assert b.put_batch(fresh, known_absent=True) == [True, True, True]
        assert b.stats.bloom_negatives == before  # no run probes paid
        assert b.get_batch([fresh[0][0]]) == [fresh[0][1]]
        # The pledge only covers run state; a memtable duplicate is
        # still refused rather than double-counted.
        b2 = PersistentBackend(tmp_path / "b2", memtable_limit=100)
        b2.put_batch(items[:1])
        assert b2.put_batch(items[:1], known_absent=True) == [False]
        b.close()
        b2.close()


def frame_offsets(log: bytes) -> list[int]:
    """Start offset of every record frame in a log image."""
    offsets, pos = [], 0
    while pos + _FRAME.size <= len(log):
        _, _, klen, vlen = _FRAME.unpack_from(log, pos)
        offsets.append(pos)
        pos += _FRAME.size + klen + vlen
    return offsets


class TestTornLogRecovery:
    """The ISSUE's crash fuzz: truncate at every byte of the last frame."""

    @pytest.fixture()
    def crash_image(self, tmp_path):
        b = PersistentBackend(tmp_path / "b", memtable_limit=10_000)
        items = make_items(8, salt=b"torn")
        b.put_batch(items)
        b.flush()
        shutil.copytree(tmp_path / "b", tmp_path / "image")
        b.close()
        log = (tmp_path / "image" / "chunks.log").read_bytes()
        return tmp_path, items, log

    def test_truncate_every_byte_of_last_frame(self, crash_image):
        tmp_path, items, log = crash_image
        last_start = frame_offsets(log)[-1]
        prefix_keys = sorted(k for k, _ in items[:-1])
        for cut in range(last_start, len(log)):
            work = tmp_path / f"cut-{cut}"
            shutil.copytree(tmp_path / "image", work)
            with open(work / "chunks.log", "r+b") as fh:
                fh.truncate(cut)
            with PersistentBackend(work) as b:
                # Exactly the prefix survives; the torn tail is gone.
                assert sorted(b.keys()) == prefix_keys
                assert b.recovery.truncated_bytes == cut - last_start
                assert b.stats.truncated_bytes == cut - last_start
                assert b.recovery.valid_bytes == last_start
                # The log was physically truncated back to the prefix...
                assert (work / "chunks.log").stat().st_size == last_start
                # ...and the store accepts new writes immediately.
                assert b.put_batch([(chunk_hash(b"new"), b"new")]) == [True]
            shutil.rmtree(work)

    def test_full_final_frame_is_kept(self, crash_image):
        tmp_path, items, log = crash_image
        work = tmp_path / "intact"
        shutil.copytree(tmp_path / "image", work)
        with PersistentBackend(work) as b:
            assert b.recovery.clean
            assert sorted(b.keys()) == sorted(k for k, _ in items)

    def test_bit_flip_in_last_frame_detected(self, crash_image):
        tmp_path, items, log = crash_image
        last_start = frame_offsets(log)[-1]
        work = tmp_path / "flip"
        shutil.copytree(tmp_path / "image", work)
        raw = bytearray(log)
        raw[last_start + _FRAME.size + 2] ^= 0x40  # corrupt the key bytes
        (work / "chunks.log").write_bytes(bytes(raw))
        with PersistentBackend(work) as b:
            assert sorted(b.keys()) == sorted(k for k, _ in items[:-1])
            assert b.recovery.truncated_bytes == len(log) - last_start


class TestConstruction:
    def test_resolve_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv(STORE_BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "memory"
        assert resolve_backend("disk") == "disk"
        assert resolve_backend(None, data_dir="/somewhere") == "disk"
        monkeypatch.setenv(STORE_BACKEND_ENV, "disk")
        assert resolve_backend(None) == "disk"
        with pytest.raises(ValueError, match="unknown storage backend"):
            resolve_backend("tape")
        assert set(BACKEND_KINDS) == {"memory", "disk"}

    def test_memory_with_data_dir_rejected(self, tmp_path):
        """'Persist to memory' is a lie; fail loudly at every owner."""
        from repro.backup import BackupConfig, ChunkStore
        from repro.store import ChunkStoreCluster

        with pytest.raises(ValueError, match="cannot persist"):
            resolve_backend("memory", data_dir=tmp_path)
        with pytest.raises(ValueError, match="cannot persist"):
            ChunkStore(backend="memory", data_dir=tmp_path)
        with pytest.raises(ValueError, match="cannot persist"):
            ChunkStoreCluster(n_nodes=2, backend="memory", data_dir=tmp_path)
        with pytest.raises(ValueError, match="cannot persist"):
            BackupConfig(backend="memory", data_dir=str(tmp_path))

    def test_make_backend_kinds(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_BACKEND_ENV, raising=False)
        assert isinstance(make_backend(), MemoryBackend)
        disk = make_backend("disk", tmp_path / "d")
        assert isinstance(disk, PersistentBackend)
        disk.close()

    def test_ephemeral_disk_cleans_up_on_close(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_TMP_ENV, str(tmp_path / "eph"))
        b = make_backend("disk")
        directory = b.directory
        assert directory.exists()
        assert str(directory).startswith(str(tmp_path / "eph"))
        b.put_batch(make_items(3))
        b.close()
        assert not directory.exists()

    def test_ephemeral_disk_cleans_up_on_gc(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_TMP_ENV, str(tmp_path / "eph"))
        b = make_backend("disk")
        directory = b.directory
        finalizer = b._finalizer
        del b  # abandoned without close: the finalizer must collect it
        finalizer()  # deterministic stand-in for GC/interpreter exit
        assert not directory.exists()

    def test_closed_backend_refuses_operations(self, tmp_path):
        b = PersistentBackend(tmp_path / "b")
        b.close()
        with pytest.raises(ValueError, match="closed"):
            b.put_batch(make_items(1))

    def test_bad_options_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PersistentBackend(tmp_path / "a", memtable_limit=0)
        with pytest.raises(ValueError):
            PersistentBackend(tmp_path / "b", compact_fanout=1)


class TestRecipeStore:
    @pytest.fixture(params=["memory", "disk"])
    def recipes(self, request, tmp_path):
        if request.param == "memory":
            store = RecipeStore(MemoryBackend())
        else:
            store = RecipeStore(PersistentBackend(tmp_path / "r"))
        yield store
        store.close()

    def test_round_trip(self, recipes):
        digests = tuple(chunk_hash(bytes([i])) for i in range(5))
        recipes.put(SnapshotRecipe("snap-1", digests, 12345))
        assert "snap-1" in recipes and len(recipes) == 1
        got = recipes.get("snap-1")
        assert got == SnapshotRecipe("snap-1", digests, 12345)
        assert recipes.live_digests() == set(digests)
        assert [r.snapshot_id for r in recipes] == ["snap-1"]

    def test_duplicate_and_missing(self, recipes):
        recipes.put(SnapshotRecipe("s", (chunk_hash(b"x"),), 1))
        with pytest.raises(ValueError, match="already stored"):
            recipes.put(SnapshotRecipe("s", (), 0))
        with pytest.raises(KeyError, match="no snapshot"):
            recipes.get("absent")
        with pytest.raises(KeyError, match="no snapshot"):
            recipes.delete("absent")
        recipes.delete("s")
        assert len(recipes) == 0

    def test_empty_recipe(self, recipes):
        recipes.put(SnapshotRecipe("empty", (), 0))
        assert recipes.get("empty").digests == ()

    def test_persistent_recipes_survive_reopen(self, tmp_path):
        digests = tuple(chunk_hash(bytes([i]) * 3) for i in range(9))
        store = RecipeStore(PersistentBackend(tmp_path / "r"))
        store.put(SnapshotRecipe("gen", digests, 999))
        store.close()
        store2 = RecipeStore(PersistentBackend(tmp_path / "r"))
        assert store2.get("gen") == SnapshotRecipe("gen", digests, 999)
        store2.close()
