"""The repro lint framework: every rule fires on a seeded violation,
stays quiet on the clean twin, and the shipped tree itself is clean.

Fixture trees are built under ``tmp_path`` with the directory shapes
the rules key on (``core/``, ``service/``, ``store/``); the mutation
test copies a real hot-path module and seeds a violation into the copy.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.model import Finding, apply_baseline, load_baseline
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


def lint(root: Path, *, rules: list[str] | None = None, paths=None):
    return run_lint(paths or [root], root=root, rules=rules)


def rules_of(result) -> list[str]:
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# zero-copy


class TestZeroCopy:
    def test_fires_on_bytes_materialization_in_hot_path(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                )
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        assert rules_of(result) == ["zero-copy"]
        assert result.findings[0].line == 2
        assert "bytes(" in result.findings[0].message

    def test_fires_on_tobytes_and_concat(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/buffers.py": (
                    "def f(arr, acc):\n"
                    "    x = arr.tobytes()\n"
                    "    y = acc + b'tail'\n"
                    "    acc += b'tail'\n"
                    "    return x, y, acc\n"
                )
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        assert len(result.findings) == 3

    def test_quiet_outside_hot_path_and_on_clean_module(self, tmp_path):
        write_tree(
            tmp_path,
            {
                # Same copy, but not a hot-path module: out of scope.
                "core/util.py": "def payload(view):\n    return bytes(view)\n",
                # Hot-path module without a copy: clean.
                "core/pipeline.py": (
                    "def passthrough(view):\n"
                    "    return memoryview(view)\n"
                ),
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        assert result.findings == []

    def test_bare_bytes_constructor_without_args_allowed(self, tmp_path):
        write_tree(
            tmp_path,
            {"core/engines.py": "def empty():\n    return bytes()\n"},
        )
        assert lint(tmp_path, rules=["zero-copy"]).findings == []


# ---------------------------------------------------------------------------
# batched-api


class TestBatchedApi:
    def test_fires_on_per_item_call_in_loop(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "store/caller.py": (
                    "def presence(store, digests):\n"
                    "    out = []\n"
                    "    for d in digests:\n"
                    "        out.append(store.has_chunk(d))\n"
                    "    return out\n"
                )
            },
        )
        result = lint(tmp_path, rules=["batched-api"])
        assert rules_of(result) == ["batched-api"]
        assert "has_chunks" in result.findings[0].message

    def test_fires_inside_comprehension(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "store/caller.py": (
                    "def presence(index, keys):\n"
                    "    return [index.lookup(k) for k in keys]\n"
                )
            },
        )
        assert rules_of(lint(tmp_path, rules=["batched-api"])) == [
            "batched-api"
        ]

    def test_quiet_inside_the_batch_twin_itself(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "store/backendish.py": (
                    "class Store:\n"
                    "    def has_chunk(self, d):\n"
                    "        return True\n"
                    "    def has_chunks(self, digests):\n"
                    "        return [self.has_chunk(d) for d in digests]\n"
                )
            },
        )
        assert lint(tmp_path, rules=["batched-api"]).findings == []

    def test_quiet_outside_loops(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "store/caller.py": (
                    "def one(store, d):\n"
                    "    return store.has_chunk(d)\n"
                )
            },
        )
        assert lint(tmp_path, rules=["batched-api"]).findings == []


# ---------------------------------------------------------------------------
# async-blocking


class TestAsyncBlocking:
    def test_fires_on_time_sleep_in_async_def(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/app.py": (
                    "import time\n"
                    "async def handler():\n"
                    "    time.sleep(0.1)\n"
                )
            },
        )
        result = lint(tmp_path, rules=["async-blocking"])
        assert rules_of(result) == ["async-blocking"]
        assert "time.sleep" in result.findings[0].message

    def test_fires_on_open_and_lock_acquire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "store/async_io.py": (
                    "async def handler(lock):\n"
                    "    fh = open('x')\n"
                    "    lock.acquire()\n"
                    "    return fh\n"
                )
            },
        )
        assert len(lint(tmp_path, rules=["async-blocking"]).findings) == 2

    def test_nested_sync_def_is_a_thread_target(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/app.py": (
                    "import time\n"
                    "async def handler():\n"
                    "    def worker():\n"
                    "        time.sleep(0.1)\n"
                    "    return worker\n"
                )
            },
        )
        assert lint(tmp_path, rules=["async-blocking"]).findings == []

    def test_quiet_outside_service_and_store(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/app.py": (
                    "import time\n"
                    "async def handler():\n"
                    "    time.sleep(0.1)\n"
                )
            },
        )
        assert lint(tmp_path, rules=["async-blocking"]).findings == []


# ---------------------------------------------------------------------------
# lock-discipline


class TestLockDiscipline:
    def test_fires_on_unlocked_mutation(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/threads.py": (
                    "import threading\n"
                    "_lock = threading.Lock()\n"
                    "_cache = {}\n"
                    "def put(k, v):\n"
                    "    _cache[k] = v\n"
                )
            },
        )
        result = lint(tmp_path, rules=["lock-discipline"])
        assert rules_of(result) == ["lock-discipline"]
        assert "_cache" in result.findings[0].message

    def test_fires_when_module_has_state_but_no_lock(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/engines.py": (
                    "_cache = {}\n"
                    "def put(k, v):\n"
                    "    _cache[k] = v\n"
                )
            },
        )
        result = lint(tmp_path, rules=["lock-discipline"])
        assert rules_of(result) == ["lock-discipline"]
        assert "no" in result.findings[0].message.lower()

    def test_fires_on_global_rebind_outside_lock(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/threads.py": (
                    "import threading\n"
                    "_lock = threading.Lock()\n"
                    "_tuned = None\n"
                    "def set_tuned(n):\n"
                    "    global _tuned\n"
                    "    _tuned = n\n"
                )
            },
        )
        assert rules_of(lint(tmp_path, rules=["lock-discipline"])) == [
            "lock-discipline"
        ]

    def test_quiet_when_mutation_is_under_the_lock(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/threads.py": (
                    "import threading\n"
                    "_lock = threading.Lock()\n"
                    "_cache = {}\n"
                    "def put(k, v):\n"
                    "    with _lock:\n"
                    "        _cache[k] = v\n"
                )
            },
        )
        assert lint(tmp_path, rules=["lock-discipline"]).findings == []

    def test_fires_on_reversed_lock_order(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/threads.py": (
                    "import threading\n"
                    "_a = threading.Lock()\n"
                    "_b = threading.Lock()\n"
                    "def forward():\n"
                    "    with _a:\n"
                    "        with _b:\n"
                    "            pass\n"
                    "def backward():\n"
                    "    with _b:\n"
                    "        with _a:\n"
                    "            pass\n"
                )
            },
        )
        result = lint(tmp_path, rules=["lock-discipline"])
        assert rules_of(result) == ["lock-discipline"]
        assert "order" in result.findings[0].message

    def test_module_level_initialization_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/threads.py": (
                    "import threading\n"
                    "_lock = threading.Lock()\n"
                    "_cache = {}\n"
                    "_cache['warm'] = True\n"
                )
            },
        )
        assert lint(tmp_path, rules=["lock-discipline"]).findings == []


# ---------------------------------------------------------------------------
# protocol


_PROTOCOL_OK = (
    "class Msg:\n"
    "    HELLO = 1\n"
    "    THROTTLE = 2\n"
    "class Err:\n"
    "    BAD = 1\n"
    "def encode_hello(x):\n"
    "    return b''\n"
    "def decode_hello(x):\n"
    "    return x\n"
    "def encode_throttle(x):\n"
    "    return b''\n"
    "def decode_throttle(x):\n"
    "    return x\n"
)

_SERVER_OK = (
    "from proto import Msg, Err\n"
    "class Server:\n"
    "    def dispatch(self, op):\n"
    "        if op == Msg.HELLO:\n"
    "            return 'hi'\n"
    "        if self.peer_version >= 3:\n"
    "            self.send(Msg.THROTTLE)\n"
    "        return Err.BAD\n"
)

_CLIENT_OK = (
    "from proto import Msg, Err\n"
    "def handle(op):\n"
    "    return {Msg.HELLO: 'hi', Msg.THROTTLE: 'slow', Err.BAD: 'bad'}[op]\n"
)


class TestProtocol:
    def _tree(self, protocol=_PROTOCOL_OK, server=_SERVER_OK, client=_CLIENT_OK):
        return {
            "service/protocol.py": protocol,
            "service/server.py": server,
            "service/client.py": client,
        }

    def test_clean_plumbing_is_quiet(self, tmp_path):
        write_tree(tmp_path, self._tree())
        assert lint(tmp_path, rules=["protocol"]).findings == []

    def test_fires_on_missing_codec(self, tmp_path):
        protocol = _PROTOCOL_OK.replace(
            "def encode_throttle(x):\n    return b''\n", ""
        )
        write_tree(tmp_path, self._tree(protocol=protocol))
        result = lint(tmp_path, rules=["protocol"])
        assert any("encode_throttle" in f.message for f in result.findings)

    def test_fires_on_unhandled_opcode_and_error(self, tmp_path):
        server = (
            "from proto import Msg\n"
            "class Server:\n"
            "    def dispatch(self, op):\n"
            "        if self.peer_version >= 3:\n"
            "            self.send(Msg.THROTTLE)\n"
        )
        client = "from proto import Msg\n" "def handle(op):\n" "    return Msg.THROTTLE\n"
        write_tree(tmp_path, self._tree(server=server, client=client))
        result = lint(tmp_path, rules=["protocol"])
        messages = " | ".join(f.message for f in result.findings)
        assert "Msg.HELLO has no server dispatch arm" in messages
        assert "Msg.HELLO has no client handler" in messages
        assert "Err.BAD is never handled" in messages

    def test_fires_on_ungated_v3_frame(self, tmp_path):
        server = (
            "from proto import Msg, Err\n"
            "class Server:\n"
            "    def dispatch(self, op):\n"
            "        if op == Msg.HELLO:\n"
            "            return 'hi'\n"
            "        self.send(Msg.THROTTLE)\n"
            "        return Err.BAD\n"
        )
        write_tree(tmp_path, self._tree(server=server))
        result = lint(tmp_path, rules=["protocol"])
        assert any("v3-only" in f.message for f in result.findings)
        assert result.findings[0].path == "service/server.py"


# ---------------------------------------------------------------------------
# metrics


_METRICS_OK = (
    "class ServiceMetrics:\n"
    "    frames: int = 0\n"
    "    def __init__(self):\n"
    "        self.latency = {'decide': object()}\n"
)


class TestMetrics:
    def test_fires_on_undeclared_counter_kwarg(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/metrics.py": _METRICS_OK,
                "service/server.py": (
                    "class S:\n"
                    "    def f(self):\n"
                    "        self.metrics.add(frames=1, bogus=2)\n"
                ),
            },
        )
        result = lint(tmp_path, rules=["metrics"])
        assert rules_of(result) == ["metrics"]
        assert "bogus" in result.findings[0].message

    def test_fires_on_unknown_latency_series(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/metrics.py": _METRICS_OK,
                "service/server.py": (
                    "class S:\n"
                    "    def f(self):\n"
                    "        self.metrics.observe_latency('nope', 1.0)\n"
                ),
            },
        )
        result = lint(tmp_path, rules=["metrics"])
        assert any("nope" in f.message for f in result.findings)

    def test_fires_on_undeclared_tenant_counter(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/metrics.py": _METRICS_OK,
                "service/tenant.py": (
                    "class TenantCounters:\n"
                    "    bytes_in: int = 0\n"
                ),
                "service/server.py": (
                    "def bump(t):\n"
                    "    t.counters.bytes_out += 1\n"
                ),
            },
        )
        result = lint(tmp_path, rules=["metrics"])
        assert any("bytes_out" in f.message for f in result.findings)

    def test_declared_counters_are_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "service/metrics.py": _METRICS_OK,
                "service/tenant.py": (
                    "class TenantCounters:\n"
                    "    bytes_in: int = 0\n"
                ),
                "service/server.py": (
                    "class S:\n"
                    "    def f(self, t):\n"
                    "        self.metrics.add(frames=1)\n"
                    "        self.metrics.observe_latency('decide', 1.0)\n"
                    "        t.counters.bytes_in += 1\n"
                ),
            },
        )
        assert lint(tmp_path, rules=["metrics"]).findings == []


# ---------------------------------------------------------------------------
# dead-code


class TestDeadCode:
    def test_fires_on_unreferenced_private_helper(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def _orphan():\n"
                    "    return 1\n"
                    "def used():\n"
                    "    return 2\n"
                ),
                "pkg/other.py": "from pkg.mod import used\nused()\n",
            },
        )
        result = lint(tmp_path, rules=["dead-code"])
        assert rules_of(result) == ["dead-code"]
        assert "_orphan" in result.findings[0].message

    def test_fires_on_export_never_used_outside(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "__all__ = ['shiny']\n"
                    "def shiny():\n"
                    "    return 1\n"
                )
            },
        )
        result = lint(tmp_path, rules=["dead-code"])
        assert rules_of(result) == ["dead-code"]
        assert "'shiny'" in result.findings[0].message

    def test_referenced_helper_and_export_are_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "__all__ = ['shiny']\n"
                    "def _helper():\n"
                    "    return 1\n"
                    "def shiny():\n"
                    "    return _helper()\n"
                ),
                "pkg/other.py": "from pkg.mod import shiny\nshiny()\n",
            },
        )
        assert lint(tmp_path, rules=["dead-code"]).findings == []

    def test_getattr_string_counts_as_a_use(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/mod.py": "def _maybe():\n    return 1\n",
                "pkg/other.py": (
                    "import pkg.mod\n"
                    "fn = getattr(pkg.mod, '_maybe', None)\n"
                ),
            },
        )
        assert lint(tmp_path, rules=["dead-code"]).findings == []

    def test_decorated_def_is_never_dead(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def deco(f):\n"
                    "    return f\n"
                    "@deco\n"
                    "def _routed():\n"
                    "    return 1\n"
                    "deco\n"
                ),
            },
        )
        assert lint(tmp_path, rules=["dead-code"]).findings == []


# ---------------------------------------------------------------------------
# suppressions, baseline, runner plumbing


class TestSuppression:
    def test_same_line_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)  # repro: lint-ok[zero-copy] the API\n"
                )
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_above_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    # repro: lint-ok[zero-copy] the API\n"
                    "    return bytes(view)\n"
                )
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        assert result.findings == []
        assert result.suppressed == 1

    def test_star_suppresses_any_rule(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)  # repro: lint-ok[*]\n"
                )
            },
        )
        assert lint(tmp_path, rules=["zero-copy"]).findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)  # repro: lint-ok[batched-api]\n"
                )
            },
        )
        assert rules_of(lint(tmp_path, rules=["zero-copy"])) == ["zero-copy"]


class TestBaseline:
    def _violation(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                )
            },
        )

    def test_baselined_finding_is_forgiven(self, tmp_path):
        self._violation(tmp_path)
        first = lint(tmp_path, rules=["zero-copy"])
        assert len(first.findings) == 1
        baseline = tmp_path / "lint-baseline.json"
        baseline.write_text(
            json.dumps([f.to_dict() for f in first.findings])
        )
        second = run_lint(
            [tmp_path], root=tmp_path, rules=["zero-copy"],
            baseline_path=baseline,
        )
        assert second.findings == []
        assert second.baselined == 1

    def test_default_baseline_at_root_is_picked_up(self, tmp_path):
        self._violation(tmp_path)
        first = lint(tmp_path, rules=["zero-copy"])
        (tmp_path / "lint-baseline.json").write_text(
            json.dumps([f.to_dict() for f in first.findings])
        )
        second = lint(tmp_path, rules=["zero-copy"])
        assert second.findings == []
        assert second.baselined == 1

    def test_baseline_matches_ignore_line_numbers(self):
        finding = Finding("zero-copy", "core/chunking.py", 99, "copied")
        baseline = [("zero-copy", "core/chunking.py", "copied")]
        fresh, matched = apply_baseline([finding], baseline)
        assert fresh == [] and matched == 1

    def test_one_entry_forgives_one_finding(self):
        f1 = Finding("zero-copy", "core/chunking.py", 1, "copied")
        f2 = Finding("zero-copy", "core/chunking.py", 9, "copied")
        fresh, matched = apply_baseline(
            [f1, f2], [("zero-copy", "core/chunking.py", "copied")]
        )
        assert matched == 1
        assert fresh == [f2]

    def test_malformed_baseline_is_an_error(self, tmp_path):
        self._violation(tmp_path)
        bad = tmp_path / "lint-baseline.json"
        bad.write_text('{"not": "a list"}')
        result = lint(tmp_path, rules=["zero-copy"])
        assert result.exit_code == 2
        assert any("baseline" in e for e in result.errors)


class TestRunner:
    def test_unknown_rule_is_exit_2(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        result = lint(tmp_path, rules=["bogus"])
        assert result.exit_code == 2
        assert any("unknown rule" in e for e in result.errors)

    def test_syntax_error_is_exit_2_not_a_crash(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "def broken(:\n"})
        result = lint(tmp_path)
        assert result.exit_code == 2
        assert any("failed to parse" in e for e in result.errors)

    def test_missing_path_is_exit_2(self, tmp_path):
        result = run_lint([tmp_path / "nope"], root=tmp_path)
        assert result.exit_code == 2

    def test_findings_only_for_requested_paths(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                ),
                "clean/mod.py": "x = 1\n",
            },
        )
        result = run_lint(
            [tmp_path / "clean"], root=tmp_path, rules=["zero-copy"]
        )
        assert result.findings == []

    def test_findings_sorted_by_path_line_rule(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/buffers.py": (
                    "def f(a, b):\n"
                    "    return bytes(a), bytes(b)\n"
                ),
                "core/chunking.py": (
                    "def g(v):\n"
                    "    return bytes(v)\n"
                ),
            },
        )
        result = lint(tmp_path, rules=["zero-copy"])
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)


# ---------------------------------------------------------------------------
# mutation test: seed a violation into a copy of a real module


class TestMutation:
    def test_seeded_violation_in_real_module_fires(self, tmp_path):
        real = REPO_ROOT / "src" / "repro" / "core" / "chunking.py"
        target = tmp_path / "core" / "chunking.py"
        target.parent.mkdir(parents=True)
        shutil.copy(real, target)
        source = target.read_text()
        # Seed: force a copy at the top of the hot loop's home module.
        source += (
            "\n\ndef _seeded_violation(view):\n"
            "    return bytes(view)\n"
        )
        target.write_text(source)
        result = lint(tmp_path, rules=["zero-copy"])
        assert [f.rule for f in result.findings] == ["zero-copy"]
        assert result.findings[0].line > 0

    def test_unmutated_copy_stays_clean(self, tmp_path):
        real = REPO_ROOT / "src" / "repro" / "core" / "chunking.py"
        target = tmp_path / "core" / "chunking.py"
        target.parent.mkdir(parents=True)
        shutil.copy(real, target)
        result = lint(tmp_path, rules=["zero-copy"])
        assert result.findings == []
        # The real module's own justified copies carry suppressions —
        # they must survive the copy byte-for-byte.
        assert result.suppressed > 0


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_exit_zero_and_human_output_on_clean_tree(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py"]) == 0
        out = capsys.readouterr().out
        assert "1 files checked, 0 finding(s)" in out

    def test_exit_one_with_clickable_findings(self, tmp_path, capsys, monkeypatch):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                )
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "core"]) == 1
        out = capsys.readouterr().out
        assert "core/chunking.py:2: [zero-copy]" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "no/such/dir"]) == 2

    def test_json_output(self, tmp_path, capsys, monkeypatch):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                )
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "core", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["findings"] == 1
        assert doc["findings"][0]["rule"] == "zero-copy"

    def test_out_file(self, tmp_path, capsys, monkeypatch):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "mod.py", "--out", "report.json"]) == 0
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["counts"]["checked_files"] == 1

    def test_rule_filter(self, tmp_path, capsys, monkeypatch):
        write_tree(
            tmp_path,
            {
                "core/chunking.py": (
                    "def payload(view):\n"
                    "    return bytes(view)\n"
                )
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "core", "--rule", "batched-api"]) == 0


# ---------------------------------------------------------------------------
# the shipped tree is clean


class TestRepoIsClean:
    @pytest.mark.parametrize("subdir", ["src", "benchmarks", "examples"])
    def test_shipped_tree_has_no_findings(self, subdir):
        path = REPO_ROOT / subdir
        if not path.exists():
            pytest.skip(f"{subdir} not present")
        result = run_lint([path], root=REPO_ROOT)
        assert result.errors == []
        assert [f.format() for f in result.findings] == []

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert baseline == []
