"""Tests for the affinity scheduler and the GPUDirect/multi-GPU extensions."""

from __future__ import annotations

import pytest

from repro.core.shredder import Shredder, ShredderConfig
from repro.mapreduce.scheduler import AffinityScheduler

GB = 1 << 30


class TestAffinityScheduler:
    def test_first_run_all_remote(self):
        sched = AffinityScheduler(nodes=4, slots_per_node=1)
        outcome = sched.schedule([(f"t{i}", 1.0) for i in range(8)])
        assert outcome.remote_tasks == 8
        assert outcome.local_tasks == 0

    def test_second_run_mostly_local(self):
        sched = AffinityScheduler(nodes=4, slots_per_node=1)
        tasks = [(f"t{i}", 1.0) for i in range(8)]
        sched.schedule(tasks)
        second = sched.schedule(tasks)
        assert second.locality_rate > 0.7

    def test_locality_saves_time(self):
        """Balanced remembered locations beat a hot-spotted memo layout,
        which pays remote-fetch penalties."""
        tasks = [(f"t{i}", 1.0) for i in range(16)]
        balanced = AffinityScheduler(nodes=4, slots_per_node=1, slack_s=0.0)
        balanced.schedule(tasks)
        warm = balanced.schedule(tasks)
        hot = AffinityScheduler(nodes=4, slots_per_node=1, slack_s=0.0)
        hot._locations = {t: 0 for t, _ in tasks}  # everything memoized on node 0
        skewed = hot.schedule(tasks)
        assert skewed.remote_tasks > 0
        assert skewed.makespan_seconds > warm.makespan_seconds

    def test_deterministic_default_placement(self):
        sched = AffinityScheduler(nodes=10)
        assert sched.default_node("abc") == sched.default_node("abc")

    def test_makespan_bounds(self):
        sched = AffinityScheduler(nodes=2, slots_per_node=1)
        outcome = sched.schedule([("a", 3.0), ("b", 1.0), ("c", 1.0)])
        assert outcome.makespan_seconds >= 3.0
        assert outcome.makespan_seconds <= 5.0 + sched.remote_fetch_s * 3

    def test_assignments_recorded(self):
        sched = AffinityScheduler(nodes=4)
        outcome = sched.schedule([("x", 1.0)])
        assert "x" in outcome.assignments
        assert sched.location_of("x") == outcome.assignments["x"]

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            AffinityScheduler(nodes=0)


class TestIncoopWithScheduler:
    def test_scheduled_incremental_run(self):
        from repro.core.chunking import ChunkerConfig
        from repro.hdfs import HDFSCluster
        from repro.mapreduce import IncoopRuntime
        from repro.mapreduce.applications import wordcount_job, wordcount_reference
        from repro.workloads import generate_text

        text = generate_text(80_000, seed=65)
        cluster = HDFSCluster()
        cfg = ShredderConfig.gpu_streams_memory(
            chunker=ChunkerConfig(mask_bits=9, marker=0x155)
        )
        with Shredder(cfg) as sh:
            cluster.client.copy_from_local_gpu(text, "/in", shredder=sh)
        incoop = IncoopRuntime(cluster.client, scheduler=AffinityScheduler())
        first = incoop.run_incremental(wordcount_job(), "/in")
        assert first.output == wordcount_reference(text)
        assert incoop.last_schedule is not None
        second = incoop.run_incremental(wordcount_job(), "/in")
        assert second.output == first.output
        # Re-run finds every memoized result where it was left.
        assert incoop.last_schedule.locality_rate > 0.7
        assert second.stats.makespan_seconds < first.stats.makespan_seconds


class TestGPUDirect:
    def test_removes_reader_bottleneck(self):
        base = ShredderConfig.gpu_streams_memory()
        direct = ShredderConfig.gpu_streams_memory(gpu_direct=True)
        with Shredder(base) as a, Shredder(direct) as b:
            t_base = a.simulate(GB)
            t_direct = b.simulate(GB)
        assert t_base.bottleneck() == "read"
        assert t_direct.throughput_bps > 1.5 * t_base.throughput_bps

    def test_chunks_unaffected(self):
        from repro.core.chunking import ChunkerConfig
        from repro.workloads import seeded_bytes

        data = seeded_bytes(1 << 20, seed=66)
        cfg = ChunkerConfig(mask_bits=8, marker=0x55)
        with Shredder(ShredderConfig.gpu_streams_memory(chunker=cfg)) as a:
            plain, _ = a.process(data)
        with Shredder(
            ShredderConfig.gpu_streams_memory(chunker=cfg, gpu_direct=True)
        ) as b:
            direct, _ = b.process(data)
        assert [c.digest for c in plain] == [c.digest for c in direct]


class TestMultiGPU:
    def test_scaling_saturates_at_reader(self):
        throughputs = []
        for k in (1, 2, 4):
            cfg = ShredderConfig.gpu_streams(num_gpus=k)  # naive kernel: GPU-bound
            with Shredder(cfg) as s:
                throughputs.append(s.simulate(GB).throughput_bps)
        assert throughputs[1] > 1.5 * throughputs[0]  # 2 GPUs nearly double
        # With 4 GPUs the 2 GBps reader dominates; scaling flattens.
        assert throughputs[2] < 2.2e9

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            ShredderConfig(num_gpus=0)
