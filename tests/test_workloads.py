"""Tests for workload generators and mutation operators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    delete_fraction,
    generate_points,
    generate_text,
    insert_fraction,
    mutate,
    mutate_records,
    record_count,
    replace_fraction,
    seeded_bytes,
)


class TestSeededBytes:
    def test_deterministic(self):
        assert seeded_bytes(1000, 5) == seeded_bytes(1000, 5)

    def test_seed_sensitivity(self):
        assert seeded_bytes(1000, 5) != seeded_bytes(1000, 6)

    def test_length(self):
        assert len(seeded_bytes(12345)) == 12345

    def test_roughly_uniform(self):
        data = seeded_bytes(100_000, 1)
        counts = [0] * 256
        for b in data:
            counts[b] += 1
        assert min(counts) > 200  # each byte value occurs


class TestByteMutations:
    @given(frac=st.floats(0.0, 0.5), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_replace_preserves_length(self, frac, seed):
        data = seeded_bytes(20_000, 3)
        assert len(replace_fraction(data, frac, seed)) == len(data)

    def test_replace_zero_is_identity(self):
        data = seeded_bytes(5000, 3)
        assert replace_fraction(data, 0.0) == data

    def test_replace_changes_about_fraction(self):
        data = seeded_bytes(100_000, 3)
        out = replace_fraction(data, 0.10, seed=4)
        diff = sum(a != b for a, b in zip(data, out))
        assert 0.05 * len(data) < diff < 0.15 * len(data)

    def test_insert_grows(self):
        data = seeded_bytes(50_000, 3)
        out = insert_fraction(data, 0.10, seed=4)
        assert len(out) == pytest.approx(len(data) * 1.10, rel=0.05)

    def test_delete_shrinks(self):
        data = seeded_bytes(50_000, 3)
        out = delete_fraction(data, 0.10, seed=4)
        assert len(out) < len(data)

    def test_mutate_modes(self):
        data = seeded_bytes(30_000, 3)
        for mode in ("replace", "insert", "delete", "mixed"):
            out = mutate(data, 10, mode=mode, seed=7)
            assert out != data

    def test_mutate_unknown_mode(self):
        with pytest.raises(ValueError):
            mutate(b"xx", 10, mode="scramble")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            replace_fraction(b"abc", 1.5)


class TestTextGeneration:
    def test_size_approximate(self):
        text = generate_text(50_000, seed=1)
        assert 50_000 <= len(text) < 51_000

    def test_newline_terminated_records(self):
        text = generate_text(10_000, seed=1)
        assert text.endswith(b"\n")
        assert record_count(text) > 50

    def test_deterministic(self):
        assert generate_text(5000, seed=2) == generate_text(5000, seed=2)

    def test_words_are_lowercase_ascii(self):
        text = generate_text(5000, seed=3)
        for line in text.split(b"\n"):
            for word in line.split():
                assert word.isalpha() and word.islower()


class TestPointsGeneration:
    def test_parseable(self):
        from repro.mapreduce.applications.kmeans import parse_point

        data = generate_points(500, seed=1)
        for line in data.strip().split(b"\n"):
            x, y = parse_point(line)
            assert -1.0 < x < 2.0 and -1.0 < y < 2.0

    def test_count(self):
        assert record_count(generate_points(750, seed=1)) == 750


class TestRecordMutation:
    def test_zero_identity(self):
        text = generate_text(10_000, seed=1)
        assert mutate_records(text, 0) == text

    def test_preserves_record_structure(self):
        text = generate_text(20_000, seed=1)
        out = mutate_records(text, 10, seed=2)
        assert out.endswith(b"\n")
        # Record count unchanged: replacement, not insertion.
        assert record_count(out) == record_count(text)

    def test_changes_about_percent(self):
        text = generate_text(60_000, seed=1)
        a = text.split(b"\n")
        b = mutate_records(text, 20, seed=2).split(b"\n")
        changed = sum(x != y for x, y in zip(a, b))
        assert 0.12 * len(a) < changed < 0.28 * len(a)

    def test_points_kind_stays_parseable(self):
        from repro.mapreduce.applications.kmeans import parse_point

        data = generate_points(2000, seed=1)
        out = mutate_records(data, 15, seed=3, kind="points")
        for line in out.strip().split(b"\n"):
            parse_point(line)

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            mutate_records(b"a\n", 150)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            mutate_records(b"a\n", 5, kind="json")
