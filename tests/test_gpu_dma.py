"""Tests for the PCIe DMA model (Fig. 3 behaviours)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.dma import DMAModel, Direction, MemoryType

KB, MB = 1024, 1 << 20


@pytest.fixture(scope="module")
def dma() -> DMAModel:
    return DMAModel()


class TestTransferTime:
    def test_zero_size_free(self, dma):
        assert dma.transfer_time(0) == 0.0

    def test_negative_raises(self, dma):
        with pytest.raises(ValueError):
            dma.transfer_time(-1)

    @given(size=st.integers(1, 1 << 28))
    @settings(max_examples=60)
    def test_pinned_faster_than_pageable(self, size):
        dma = DMAModel()
        for d in Direction:
            assert dma.transfer_time(size, d, MemoryType.PINNED) < dma.transfer_time(
                size, d, MemoryType.PAGEABLE
            )

    @given(a=st.integers(1, 1 << 27), b=st.integers(1, 1 << 27))
    @settings(max_examples=60)
    def test_monotone_in_size(self, a, b):
        dma = DMAModel()
        if a < b:
            assert dma.transfer_time(a) <= dma.transfer_time(b)

    def test_h2d_peak_asymmetry(self, dma):
        """H2D peak (5.406) exceeds D2H peak (5.129) as in Table 1."""
        size = 256 * MB
        assert dma.bandwidth(size, Direction.HOST_TO_DEVICE) > dma.bandwidth(
            size, Direction.DEVICE_TO_HOST
        )


class TestBandwidthShape:
    """The qualitative findings the paper lists under Fig. 3."""

    def test_small_buffers_expensive(self, dma):
        """(i) small transfers get a fraction of peak bandwidth."""
        assert dma.bandwidth(4 * KB) < 0.2 * dma.gpu.h2d_bandwidth

    def test_pinned_saturates_by_256k(self, dma):
        """(ii) pinned throughput is near-saturated at 256 KB."""
        assert dma.bandwidth(256 * KB) > 0.8 * dma.gpu.h2d_bandwidth

    def test_pageable_not_saturated_at_256k(self, dma):
        assert dma.bandwidth(256 * KB, memory_type=MemoryType.PAGEABLE) < (
            0.7 * dma.gpu.h2d_bandwidth
        )

    def test_pageable_saturates_by_32m(self, dma):
        bw = dma.bandwidth(32 * MB, memory_type=MemoryType.PAGEABLE)
        assert bw > 0.75 * dma.gpu.h2d_bandwidth

    def test_large_buffer_gap_insignificant(self, dma):
        """(iii) pageable vs pinned differ by <15% for >=32 MB buffers."""
        for size in (32 * MB, 64 * MB, 256 * MB):
            pinned = dma.bandwidth(size)
            pageable = dma.bandwidth(size, memory_type=MemoryType.PAGEABLE)
            assert (pinned - pageable) / pinned < 0.15

    def test_effective_bandwidth_order_5gbps(self, dma):
        """(iv) PCIe effective bandwidth ~5 GB/s, an order of magnitude
        below the 144 GB/s device memory bandwidth."""
        bw = dma.bandwidth(64 * MB)
        assert 4e9 < bw < 6e9
        assert dma.gpu.device_memory_bandwidth / bw > 10

    def test_transfer_record(self, dma):
        t = dma.transfer(1 * MB)
        assert t.size == 1 * MB
        assert t.bandwidth == pytest.approx(t.size / t.seconds)
