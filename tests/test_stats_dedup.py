"""Tests for the statistics helpers and the dedup index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Chunk, DedupIndex, dedup_ratio, size_stats, unique_bytes
from repro.core.chunking import Chunker, ChunkerConfig
from tests.conftest import seeded_bytes


def make_chunk(data: bytes, offset: int = 0) -> Chunk:
    return Chunk.from_bytes(offset, data)


class TestSizeStats:
    def test_empty(self):
        s = size_stats([])
        assert s.count == 0 and s.mean == 0.0

    def test_single(self):
        s = size_stats([100])
        assert (s.count, s.total, s.mean, s.stdev) == (1, 100, 100.0, 0.0)

    def test_known_values(self):
        s = size_stats([2, 4, 6])
        assert s.mean == 4.0
        assert s.minimum == 2 and s.maximum == 6
        assert s.stdev == pytest.approx(1.632993, rel=1e-5)

    @given(sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_invariants(self, sizes):
        s = size_stats(sizes)
        assert s.minimum <= s.mean <= s.maximum
        assert s.total == sum(sizes)
        assert s.coefficient_of_variation >= 0

    def test_exponential_like_distribution(self):
        """Unbounded content-defined chunk sizes have CoV near 1
        (geometric/exponential boundary spacing)."""
        data = seeded_bytes(512 * 1024, seed=91)
        chunks = Chunker(ChunkerConfig(mask_bits=9, marker=0x155)).chunk(data)
        s = size_stats([c.length for c in chunks])
        assert 0.6 < s.coefficient_of_variation < 1.4


class TestUniqueBytesAndRatio:
    def test_no_duplicates(self):
        chunks = [make_chunk(bytes([i]) * 10) for i in range(5)]
        assert unique_bytes(chunks) == 50
        assert dedup_ratio(chunks) == 0.0

    def test_all_duplicates(self):
        chunks = [make_chunk(b"same-content")] * 4
        assert unique_bytes(chunks) == 12
        assert dedup_ratio(chunks) == pytest.approx(0.75)

    def test_empty(self):
        assert dedup_ratio([]) == 0.0
        assert unique_bytes([]) == 0

    @given(
        contents=st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=40)
    )
    @settings(max_examples=100)
    def test_ratio_bounds(self, contents):
        chunks = [make_chunk(c) for c in contents]
        ratio = dedup_ratio(chunks)
        assert 0.0 <= ratio < 1.0


class TestDedupIndex:
    def test_first_occurrence_kept(self):
        index = DedupIndex()
        a = make_chunk(b"hello", offset=0)
        b = make_chunk(b"hello", offset=100)
        (dup_a, off_a), = index.lookup_or_insert_batch([a])
        (dup_b, off_b), = index.lookup_or_insert_batch([b])
        assert not dup_a and dup_b
        assert off_a == 0 and off_b == 0  # canonical copy is the first

    def test_lookup_without_insert(self):
        index = DedupIndex()
        assert index.lookup_batch([make_chunk(b"x").digest]) == [None]

    def test_contains(self):
        index = DedupIndex()
        chunk = make_chunk(b"x")
        index.lookup_or_insert_batch([chunk])
        assert chunk.digest in index
        assert len(index) == 1

    def test_stats_bytes(self):
        index = DedupIndex()
        index.lookup_or_insert_batch([make_chunk(b"aaaa")])
        index.lookup_or_insert_batch([make_chunk(b"aaaa", offset=50)])
        index.lookup_or_insert_batch([make_chunk(b"bb")])
        s = index.stats
        assert s.total_chunks == 3 and s.unique_chunks == 2
        assert s.total_bytes == 10 and s.unique_bytes == 6
        assert s.duplicate_bytes == 4
        assert s.dedup_ratio == pytest.approx(0.4)

    def test_empty_stats(self):
        assert DedupIndex().stats.dedup_ratio == 0.0

    @given(contents=st.lists(st.binary(min_size=1, max_size=8), max_size=50))
    @settings(max_examples=100)
    def test_index_matches_set_semantics(self, contents):
        index = DedupIndex()
        chunks = [make_chunk(c, offset=i * 10) for i, c in enumerate(contents)]
        index.add_all(chunks)
        assert len(index) == len({c.digest for c in chunks})
        assert index.stats.unique_bytes == unique_bytes(chunks)
