"""Tests for Rabin fingerprinting: rolling vs direct, table properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2
from repro.core.rabin import DEFAULT_WINDOW_SIZE, RabinFingerprinter, default_polynomial


@pytest.fixture(scope="module")
def fp() -> RabinFingerprinter:
    return RabinFingerprinter()


@pytest.fixture(scope="module")
def small_fp() -> RabinFingerprinter:
    """Small window/polynomial so brute-force checks stay cheap."""
    return RabinFingerprinter(gf2.find_irreducible(19, seed=3), window_size=8)


def brute_force_fingerprint(window: bytes, poly: int) -> int:
    """Fingerprint straight from the definition: fold bytes, mod at the end."""
    value = 0
    for byte in window:
        value = (value << 8) | byte
    return gf2.mod(value, poly)


class TestConstruction:
    def test_default_polynomial_degree(self, fp):
        assert fp.degree == 53

    def test_default_window(self, fp):
        assert fp.window_size == DEFAULT_WINDOW_SIZE == 48

    def test_rejects_reducible_polynomial(self):
        with pytest.raises(ValueError, match="not irreducible"):
            RabinFingerprinter(0b101 << 50 | 0b101, window_size=8)

    def test_rejects_tiny_degree(self):
        with pytest.raises(ValueError, match="degree"):
            RabinFingerprinter(0b1011, window_size=8)  # degree 3

    def test_rejects_window_one(self):
        with pytest.raises(ValueError, match="window_size"):
            RabinFingerprinter(window_size=1)

    def test_default_polynomial_cached(self):
        assert default_polynomial() is default_polynomial()


class TestDirectFingerprint:
    def test_matches_definition(self, small_fp):
        window = bytes(range(8))
        assert small_fp.fingerprint(window) == brute_force_fingerprint(
            window, small_fp.polynomial
        )

    def test_wrong_length_raises(self, fp):
        with pytest.raises(ValueError, match="window"):
            fp.fingerprint(b"short")

    @given(window=st.binary(min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_matches_definition_random(self, window):
        assert _SMALL.fingerprint(window) == brute_force_fingerprint(
            window, _SMALL.polynomial
        )

    def test_fingerprint_fits_degree(self, fp):
        value = fp.fingerprint(bytes(range(48)))
        assert value < (1 << fp.degree)


_SMALL = RabinFingerprinter(gf2.find_irreducible(19, seed=3), window_size=8)


class TestRolling:
    @given(data=st.binary(min_size=8, max_size=64))
    @settings(max_examples=100)
    def test_rolling_equals_direct(self, data):
        """The central invariant: every rolled fingerprint equals the direct
        fingerprint of the same window."""
        w = _SMALL.window_size
        for start, rolled in _SMALL.sliding_fingerprints(data):
            assert rolled == _SMALL.fingerprint(data[start : start + w])

    def test_short_input_yields_nothing(self, fp):
        assert list(fp.sliding_fingerprints(b"x" * 10)) == []

    def test_exact_window_yields_one(self, fp):
        out = list(fp.sliding_fingerprints(bytes(48)))
        assert len(out) == 1 and out[0][0] == 0

    def test_position_count(self, fp):
        data = bytes(range(100)) * 2
        assert len(list(fp.sliding_fingerprints(data))) == len(data) - 48 + 1

    def test_roll_removes_old_byte_dependence(self, small_fp):
        """After rolling past a byte, it no longer affects the fingerprint."""
        w = small_fp.window_size
        a = b"\xAA" + bytes(range(w))
        b = b"\xBB" + bytes(range(w))
        fa = list(small_fp.sliding_fingerprints(a))[-1][1]
        fb = list(small_fp.sliding_fingerprints(b))[-1][1]
        assert fa == fb


class TestPositionTables:
    def test_window_fingerprint_is_xor_of_tables(self, small_fp):
        tables = small_fp.position_tables()
        window = bytes([3, 141, 59, 26, 250, 9, 200, 77])
        xor = 0
        for j, byte in enumerate(window):
            xor ^= tables[j][byte]
        assert xor == small_fp.fingerprint(window)

    def test_last_table_is_identity_mod_p(self, small_fp):
        """Offset w-1 contributes b * x^0 = b."""
        tables = small_fp.position_tables()
        assert list(tables[-1][:256]) == [
            gf2.mod(b, small_fp.polynomial) for b in range(256)
        ]

    def test_zero_byte_contributes_nothing(self, small_fp):
        for table in small_fp.position_tables():
            assert table[0] == 0
