"""Tests for overload protection: rate limits, quotas, auth, brownout,
the store-path circuit breaker, and the protocol-v3 frames that carry
them (AUTH on HELLO, THROTTLE, typed overload errors)."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.hashing import chunk_hash
from repro.service import (
    AsyncBackupClient,
    AuthRegistry,
    BackupService,
    CircuitBreaker,
    RetryPolicy,
    ServiceConfig,
    ServiceLimits,
    TenantQuota,
    TokenBucket,
    UsageAccount,
    auth_token,
)
from repro.service import protocol as wire
from repro.service.metrics import LATENCY_BUCKETS_S, LatencyHistogram, service_snapshot
from repro.service.protocol import Err, Msg, ProtocolError, RemoteError
from repro.service.server import _Session

MB = 1 << 20


def run_service(fn, **config):
    async def main():
        async with BackupService(ServiceConfig(**config)) as service:
            return await fn(service)

    return asyncio.run(main())


async def connect(service, tenant="default", **kwargs):
    return await AsyncBackupClient.connect(
        "127.0.0.1", service.port, tenant=tenant, **kwargs
    )


def unique_payload(size: int, seed: int = 0) -> bytes:
    """Incompressible, dedup-proof bytes: every chunk ships."""
    return random.Random(seed).randbytes(size)


def dedup_payload(size: int, seed: int = 0) -> bytes:
    """Repeated blocks so some chunks dedup (pointers ship)."""
    rng = random.Random(seed)
    blocks = [rng.randbytes(16 * 1024) for _ in range(4)]
    out = []
    while sum(len(b) for b in out) < size:
        out.append(blocks[rng.randrange(len(blocks))])
    return b"".join(out)[:size]


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_within_burst_is_free(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 200.0, clock=clock)
        assert bucket.charge(150) == 0.0
        assert bucket.debt_s == 0.0

    def test_overdraw_returns_repayment_delay(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 100.0, clock=clock)
        assert bucket.charge(300) == pytest.approx(2.0)  # 200 tokens short
        assert bucket.debt_s == pytest.approx(2.0)

    def test_time_repays_debt(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 100.0, clock=clock)
        bucket.charge(300)
        clock.advance(2.0)  # exactly repays the 200-token debt
        assert bucket.debt_s == 0.0
        clock.advance(0.5)  # banks 50 tokens of headroom
        assert bucket.charge(50) == 0.0

    def test_refill_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 100.0, clock=clock)
        clock.advance(1000.0)
        # A long idle spell never banks more than one burst.
        assert bucket.charge(150) == pytest.approx(0.5)

    def test_refund_returns_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 100.0, clock=clock)
        bucket.charge(300)
        bucket.refund(300)
        assert bucket.debt_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, 0.0)


class TestServiceLimits:
    def test_inert_without_rates(self):
        limits = ServiceLimits()
        assert not limits.active
        assert limits.charge("t", 1 << 30) == 0.0

    def test_delay_is_max_across_buckets(self):
        clock = FakeClock()
        limits = ServiceLimits(
            tenant_bytes_per_s=100.0,
            global_bytes_per_s=1000.0,
            burst_s=1.0,
            clock=clock,
        )
        # 300 bytes: within the global burst, 200 over the tenant's.
        assert limits.charge("t", 300) == pytest.approx(2.0)

    def test_tenants_get_independent_buckets(self):
        clock = FakeClock()
        limits = ServiceLimits(tenant_bytes_per_s=100.0, burst_s=1.0, clock=clock)
        assert limits.charge("a", 100) == 0.0
        assert limits.charge("b", 100) == 0.0  # b's bucket is untouched

    def test_global_bucket_is_shared(self):
        clock = FakeClock()
        limits = ServiceLimits(global_bytes_per_s=100.0, burst_s=1.0, clock=clock)
        limits.charge("a", 100)
        assert limits.charge("b", 100) == pytest.approx(1.0)

    def test_refund_undoes_charge(self):
        clock = FakeClock()
        limits = ServiceLimits(tenant_bytes_per_s=100.0, burst_s=1.0, clock=clock)
        limits.charge("t", 300)
        limits.refund("t", 300)
        assert limits.charge("t", 100) == 0.0

    def test_describe_reports_rates(self):
        limits = ServiceLimits(tenant_bytes_per_s=5.0, global_ops_per_s=7.0)
        doc = limits.describe()
        assert doc["tenant_bytes_per_s"] == 5.0
        assert doc["global_ops_per_s"] == 7.0


# ----------------------------------------------------------------------
# quotas + durable usage
# ----------------------------------------------------------------------


class TestQuota:
    def test_deny_reasons(self):
        quota = TenantQuota(max_bytes=1000, max_chunks=10)
        usage = UsageAccount()
        usage.charge(900, 9)
        assert quota.deny_reason(usage, 50, 1) is None
        assert "byte quota" in quota.deny_reason(usage, 200, 1)
        assert "chunk quota" in quota.deny_reason(usage, 50, 2)

    def test_inactive_quota_denies_nothing(self):
        quota = TenantQuota()
        assert not quota.active
        assert quota.deny_reason(UsageAccount(), 1 << 40, 1 << 20) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_bytes=0)

    def test_usage_persists_by_atomic_replace(self, tmp_path):
        path = tmp_path / "usage.json"
        account = UsageAccount(path)
        account.charge(500, 3)
        account.charge(250, 2)
        reopened = UsageAccount(path)
        assert (reopened.stored_bytes, reopened.chunks) == (750, 5)

    def test_corrupt_usage_file_zeroes_account(self, tmp_path):
        path = tmp_path / "usage.json"
        path.write_text("{not json")
        account = UsageAccount(path)
        assert (account.stored_bytes, account.chunks) == (0, 0)

    def test_pathless_account_is_memory_only(self):
        account = UsageAccount()
        account.charge(10, 1)
        assert account.as_dict() == {"stored_bytes": 10, "chunks": 1}


# ----------------------------------------------------------------------
# authentication
# ----------------------------------------------------------------------


class TestAuth:
    def test_token_is_deterministic_hmac(self):
        assert auth_token("s", "t") == auth_token("s", "t")
        assert auth_token("s", "t") != auth_token("s", "u")
        assert auth_token("s", "t") != auth_token("x", "t")

    def test_verify(self):
        registry = AuthRegistry({"acme": "s3cret"})
        assert registry.verify("acme", auth_token("s3cret", "acme"))
        assert not registry.verify("acme", auth_token("wrong", "acme"))
        # Unknown tenant gets the same answer as a bad token.
        assert not registry.verify("ghost", auth_token("s3cret", "ghost"))

    def test_load_file_formats(self, tmp_path):
        path = tmp_path / "auth"
        path.write_text(
            "# comment\n\nacme: s3cret\nbeta = hunter2\n  gamma:spaced  \n"
        )
        registry = AuthRegistry.load(path)
        assert len(registry) == 3
        assert registry.token("beta") == auth_token("hunter2", "beta")

    @pytest.mark.parametrize(
        "text", ["nosecret\n", "acme:\n", "a: x\na: y\n", ""]
    )
    def test_load_rejects_bad_files(self, tmp_path, text):
        path = tmp_path / "auth"
        path.write_text(text)
        with pytest.raises(ValueError):
            AuthRegistry.load(path)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_success_resets_the_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 1.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_allows_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else still waits

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.retry_after() == 0.0

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0.0)


# ----------------------------------------------------------------------
# protocol v3 codec
# ----------------------------------------------------------------------


class TestCodecV3:
    def test_hello_carries_auth_and_purpose(self):
        payload = wire.encode_hello(
            "acme", "agent", auth="deadbeef", purpose=wire.PURPOSE_RESTORE
        )
        assert wire.decode_hello(payload) == (
            wire.PROTOCOL_VERSION, "acme", "agent", "deadbeef",
            wire.PURPOSE_RESTORE,
        )

    def test_v2_hello_still_decodes(self):
        # A v2 frame stops after the client name: no auth, no purpose.
        payload = (
            (2).to_bytes(2, "big")
            + (4).to_bytes(2, "big") + b"acme"
            + (0).to_bytes(2, "big")
        )
        assert wire.decode_hello(payload) == (
            2, "acme", "", "", wire.PURPOSE_BACKUP
        )

    def test_unknown_purpose_rejected(self):
        payload = wire.encode_hello("t")[:-1] + bytes([7])
        with pytest.raises(ProtocolError, match="purpose"):
            wire.decode_hello(payload)

    def test_throttle_round_trip(self):
        retry_after, reason = wire.decode_throttle(
            wire.encode_throttle(1.5, "rate limit")
        )
        assert retry_after == pytest.approx(1.5)
        assert reason == "rate limit"

    def test_throttle_clamps_negative(self):
        assert wire.decode_throttle(wire.encode_throttle(-3.0))[0] == 0.0


# ----------------------------------------------------------------------
# latency histograms
# ----------------------------------------------------------------------


class TestLatencyHistogram:
    def test_buckets_by_bound(self):
        hist = LatencyHistogram()
        hist.observe(0.0005)   # <= 1 ms bucket
        hist.observe(0.02)     # <= 31.6 ms bucket
        hist.observe(99.0)     # overflow
        doc = hist.as_dict()
        assert doc["count"] == 3
        assert doc["le_1ms"] == 1
        assert doc["le_31.6ms"] == 1
        assert doc["overflow"] == 1
        assert doc["max_ms"] == pytest.approx(99_000.0)
        assert sum(hist.buckets) == 3
        assert len(hist.buckets) == len(LATENCY_BUCKETS_S) + 1


# ----------------------------------------------------------------------
# service integration: auth
# ----------------------------------------------------------------------


@pytest.fixture()
def auth_file(tmp_path):
    path = tmp_path / "auth"
    path.write_text("acme: s3cret\nbeta: hunter2\n")
    return str(path)


class TestServiceAuth:
    def test_good_token_admits(self, auth_file):
        async def scenario(service):
            client = await connect(
                service, "acme", auth=auth_token("s3cret", "acme")
            )
            await client.backup(b"d" * 50_000, "snap")
            restored = await client.restore("snap")
            await client.close()
            return restored

        assert run_service(scenario, auth_file=auth_file) == b"d" * 50_000

    def test_bad_token_unauthorized(self, auth_file):
        async def scenario(service):
            with pytest.raises(RemoteError) as err:
                await connect(service, "acme", auth=auth_token("wrong", "acme"))
            return err.value.code, service.metrics.auth_failures

        code, failures = run_service(scenario, auth_file=auth_file)
        assert code is Err.UNAUTHORIZED and failures == 1

    def test_unknown_tenant_same_answer(self, auth_file):
        async def scenario(service):
            with pytest.raises(RemoteError) as err:
                await connect(
                    service, "ghost", auth=auth_token("s3cret", "ghost")
                )
            return err.value.code

        assert run_service(scenario, auth_file=auth_file) is Err.UNAUTHORIZED

    def test_missing_token_unauthorized(self, auth_file):
        async def scenario(service):
            with pytest.raises(RemoteError) as err:
                await connect(service, "acme")
            return err.value.code

        assert run_service(scenario, auth_file=auth_file) is Err.UNAUTHORIZED


# ----------------------------------------------------------------------
# service integration: quotas
# ----------------------------------------------------------------------


class TestServiceQuota:
    def test_byte_quota_refused_before_landing(self):
        data = unique_payload(100_000, seed=1)

        async def scenario(service):
            client = await connect(service, "acme")
            with pytest.raises(RemoteError) as err:
                await client.backup(data, "big")
            usage = service.registry.get("acme").usage
            return err.value.code, usage.stored_bytes, service.metrics

        code, stored, metrics = run_service(scenario, quota_bytes=10_000)
        assert code is Err.QUOTA_EXCEEDED
        assert metrics.quota_rejections >= 1
        # Whatever landed before the refusing frame stays under the cap.
        assert stored <= 10_000

    def test_session_quota_per_tenant(self):
        async def scenario(service):
            a1 = await connect(service, "acme")
            with pytest.raises(RemoteError) as err:
                await connect(service, "acme")
            # Another tenant is not affected by acme's quota.
            b1 = await connect(service, "beta")
            await a1.close()
            await b1.close()
            return err.value.code, service.metrics.quota_rejections

        code, rejections = run_service(scenario, quota_sessions=1)
        assert code is Err.QUOTA_EXCEEDED and rejections == 1

    def test_usage_accounting_survives_restart(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        first_data = unique_payload(40_000, seed=2)

        async def first(service):
            client = await connect(service, "acme")
            report = await client.backup(first_data, "gen1")
            await client.close()
            return report, service.registry.get("acme").usage.as_dict()

        report1, usage1 = run_service(
            first, backend="disk", data_dir=data_dir, quota_bytes=60_000
        )
        assert usage1["stored_bytes"] == report1.shipped_bytes > 0

        async def second(service):
            usage = service.registry.get("acme").usage
            reopened = usage.as_dict()
            client = await connect(service, "acme")
            # The reopened account + this payload busts the cap: the
            # tenant cannot launder quota through a restart.
            with pytest.raises(RemoteError) as err:
                await client.backup(unique_payload(40_000, seed=3), "gen2")
            return reopened, err.value.code, usage.stored_bytes

        reopened, code, stored = run_service(
            second, backend="disk", data_dir=data_dir, quota_bytes=60_000
        )
        assert reopened == usage1
        assert code is Err.QUOTA_EXCEEDED
        assert stored <= 60_000

    def test_accounting_is_exactly_once_across_resume(self):
        """Re-shipped frames after reconnects never double-charge: the
        durable account matches the one-delivery report exactly."""
        data = dedup_payload(1 * MB, seed=11)
        retry = RetryPolicy(
            attempts=8, base_delay_s=0.01, max_delay_s=0.1,
            op_timeout_s=5.0, max_recoveries=500,
        )

        async def scenario(service):
            client = await connect(service, "acme", retry=retry)
            report = await client.backup(data, "chaos", batch_chunks=4)
            restored = await client.restore("chaos")
            await client.close()
            usage = service.registry.get("acme").usage
            return report, restored, usage.as_dict()

        report, restored, usage = run_service(
            scenario, faults="seed=7,wire.drop=0.05", resume_grace_s=10.0
        )
        assert restored == data
        assert report.resumes > 0 and report.replayed_frames > 0
        assert usage["stored_bytes"] == report.shipped_bytes
        assert usage["chunks"] == report.n_chunks - report.duplicate_chunks


# ----------------------------------------------------------------------
# service integration: rate limiting
# ----------------------------------------------------------------------


class TestServiceRateLimit:
    def test_over_rate_traffic_is_throttled_not_dropped(self):
        data = unique_payload(500_000, seed=4)

        async def scenario(service):
            client = await connect(service, "acme")
            report = await client.backup(data, "paced")
            restored = await client.restore("paced")
            await client.close()
            return report, restored, service.metrics

        report, restored, metrics = run_service(
            scenario,
            rate_bytes_per_s=150_000.0,  # burst 300 KB < the payload
            shed_debt_s=60.0,            # pace, never shed
        )
        assert restored == data  # paced, but every byte landed
        assert metrics.throttles_sent > 0
        assert metrics.retry_later_sent == 0
        assert report.throttles > 0  # client saw and absorbed the hints

    def test_sustained_abuse_is_shed_with_retry_later(self):
        async def scenario(service):
            client = await connect(service, "acme")
            await client.begin_snapshot("flooded")
            payload = unique_payload(100_000, seed=5)
            with pytest.raises(RemoteError) as err:
                await client.ship_chunks([(chunk_hash(payload), payload)])
            return err.value.code, service.metrics

        code, metrics = run_service(
            scenario, rate_bytes_per_s=1_000.0, shed_debt_s=5.0
        )
        assert code is Err.RETRY_LATER
        assert metrics.retry_later_sent == 1

    def test_v2_peer_gets_paced_without_throttle_frames(self):
        data = unique_payload(400_000, seed=6)

        async def scenario(service):
            client = await connect(service, "acme")
            client.writer.write(wire.encode_frame(Msg.LIST_SNAPSHOTS))
            # Pretend the handshake negotiated v2: the server must keep
            # pacing silently instead of sending THROTTLE frames the
            # old client cannot parse.
            for session in service._sessions:
                session.peer_version = 2
            await client._expect(Msg.SNAPSHOT_LIST)
            report = await client.backup(data, "old")
            await client.close()
            return report, service.metrics

        report, metrics = run_service(
            scenario, rate_bytes_per_s=200_000.0, shed_debt_s=60.0
        )
        assert metrics.throttles_sent == 0
        assert report.throttles == 0


# ----------------------------------------------------------------------
# service integration: admission + handshake deadline
# ----------------------------------------------------------------------


class TestAdmission:
    def test_restore_traffic_sheds_last(self):
        async def scenario(service):
            first = await connect(service, "acme")
            # The one unreserved slot is taken: backups now shed...
            with pytest.raises(RemoteError) as err:
                await connect(service, "acme")
            # ...but a restore-purpose session still gets in.
            restorer = await connect(
                service, "acme", purpose=wire.PURPOSE_RESTORE
            )
            listing = await restorer.list_snapshots()
            await first.close()
            await restorer.close()
            return err.value.code, listing, service.metrics

        code, listing, metrics = run_service(
            scenario, max_sessions=2, restore_reserve=1
        )
        assert code is Err.BUSY and listing == []
        assert metrics.sessions_shed == 1

    def test_preauth_deadline_evicts_silent_connections(self):
        async def scenario(service):
            # One connection never speaks; one sends only the magic.
            silent = await asyncio.open_connection("127.0.0.1", service.port)
            magic_only = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            magic_only[1].write(wire.MAGIC)
            await magic_only[1].drain()
            for _ in range(100):
                if service.metrics.preauth_evictions >= 2:
                    break
                await asyncio.sleep(0.02)
            # Evicted connections never held a session slot; a real
            # client still gets straight in.
            client = await connect(service, "acme")
            await client.close()
            for _, writer in (silent, magic_only):
                writer.close()
            return service.metrics

        metrics = run_service(scenario, hello_timeout_s=0.1, max_sessions=1)
        assert metrics.preauth_evictions == 2
        assert metrics.sessions_total == 1


# ----------------------------------------------------------------------
# service integration: brownout + breaker
# ----------------------------------------------------------------------


class _FrameSink:
    """Writer double that collects frames the session sends."""

    def __init__(self) -> None:
        self.buffer = b""

    def write(self, data: bytes) -> None:
        self.buffer += data

    async def drain(self) -> None:
        pass

    def frames(self) -> list[tuple[Msg, bytes]]:
        out, buf = [], self.buffer
        while buf:
            size = int.from_bytes(buf[1:5], "big")
            out.append((Msg(buf[0]), buf[5 : 5 + size]))
            buf = buf[5 + size :]
        return out


class TestBrownout:
    def test_enter_brownout_narrows_new_windows(self):
        async def scenario(service):
            before = await connect(service, "acme")
            service.enter_brownout(hold_s=30.0)
            during = await connect(service, "beta")
            doc = service_snapshot(service)
            await before.close()
            await during.close()
            return before.window, during.window, doc, service.metrics

        wide, narrow, doc, metrics = run_service(scenario, window=4)
        assert wide == 4 and narrow == 1
        assert doc["service"]["brownout_active"] is True
        assert metrics.brownouts == 1

    def test_brownout_coalesces_queued_decides(self):
        """N queued decide batches collapse into one index pass that
        still answers N in-order DIGEST_REPLYs."""

        async def scenario(service):
            service.enter_brownout(hold_s=30.0)
            namespace = service.registry.get("acme")
            sink = _FrameSink()
            session = _Session(service, namespace, None, sink)
            session.open_scoped = namespace.scoped_id("s")
            batches = [
                [(bytes([gen * 8 + i]) * 32, 100) for i in range(4)]
                for gen in range(3)
            ]
            payloads = [
                wire.encode_digest_batch(
                    [d for d, _ in batch], [n for _, n in batch]
                )
                for batch in batches
            ]
            for payload in payloads[1:]:
                session.queue.put_nowait((Msg.DIGEST_BATCH, payload))
            # A trailing non-decide frame must not join the group.
            session.queue.put_nowait((Msg.LIST_SNAPSHOTS, b""))
            group = session._drain_decide_group(payloads[0])
            await session._on_digest_group(group)
            return group, session._pending, sink.frames(), service.metrics

        group, pending, frames, metrics = run_service(scenario)
        assert len(group) == 3
        assert pending == (Msg.LIST_SNAPSHOTS, b"")
        assert [msg for msg, _ in frames] == [Msg.DIGEST_REPLY] * 3
        # All digests were fresh: every reply says "ship it".
        for _, payload in frames:
            assert wire.decode_digest_reply(payload) == [False] * 4
        assert metrics.decide_coalesced == 2

    def test_backup_still_correct_while_browned_out(self):
        data = dedup_payload(512 * 1024, seed=9)

        async def scenario(service):
            service.enter_brownout(hold_s=30.0)
            client = await connect(service, "acme")
            report = await client.backup(data, "dim")
            restored = await client.restore("dim")
            await client.close()
            return report, restored

        report, restored = run_service(scenario)
        assert restored == data and report.n_chunks > 0


class TestBreaker:
    def test_store_failures_open_breaker_and_fastfail(self):
        data = b"b" * 50_000

        async def scenario(service):
            client = await connect(service, "acme")
            await client.backup(data, "snap")

            def dead_restore(scoped):
                raise OSError("disk died")

            service.store.restore = dead_restore
            with pytest.raises(RemoteError) as first:
                await client.restore("snap")
            # The breaker is now open: the next session's store frame
            # fast-fails without touching the store at all.
            second_client = await connect(service, "acme")
            with pytest.raises(RemoteError) as second:
                await second_client.restore("snap")
            return first.value, second.value, service.metrics

        first, second, metrics = run_service(
            scenario, breaker_threshold=1, breaker_cooldown_s=30.0
        )
        assert first.code is Err.RETRY_LATER and "store failure" in str(first)
        assert second.code is Err.RETRY_LATER and "retry in" in str(second)
        assert metrics.breaker_opens == 1
        assert metrics.breaker_fastfails >= 1

    def test_breaker_off_keeps_internal_error_path(self):
        async def scenario(service):
            client = await connect(service, "acme")
            await client.backup(b"x" * 20_000, "snap")

            def dead_restore(scoped):
                raise OSError("disk died")

            service.store.restore = dead_restore
            with pytest.raises(RemoteError) as err:
                await client.restore("snap")
            return err.value.code, service.metrics

        code, metrics = run_service(scenario)
        assert code is Err.INTERNAL
        assert metrics.breaker_fastfails == 0


# ----------------------------------------------------------------------
# service integration: observability
# ----------------------------------------------------------------------


class TestOverloadObservability:
    def test_latency_histograms_populate(self):
        data = dedup_payload(512 * 1024, seed=8)

        async def scenario(service):
            client = await connect(service, "acme")
            await client.backup(data, "snap")
            # The identical bytes again: every chunk dedups, so the
            # second generation ships pointers.
            await client.backup(data, "snap2")
            await client.close()
            return service_snapshot(service)

        doc = run_service(scenario)
        latency = doc["service"]["latency"]
        assert latency["decide"]["count"] > 0
        assert latency["chunk"]["count"] > 0
        assert latency["pointer"]["count"] > 0
        assert latency["chunk"]["mean_ms"] >= 0.0

    def test_snapshot_carries_limits_quota_breaker(self, tmp_path):
        auth = tmp_path / "auth"
        auth.write_text("acme: s\n")

        async def scenario(service):
            return service_snapshot(service)

        doc = run_service(
            scenario,
            auth_file=str(auth),
            rate_bytes_per_s=1000.0,
            quota_bytes=5000,
            breaker_threshold=4,
        )
        assert doc["limits"]["tenant_bytes_per_s"] == 1000.0
        assert doc["quota"]["max_bytes"] == 5000
        assert doc["breaker"]["state"] == "closed"
        assert doc["service"]["brownout_active"] is False

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(rate_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(quota_bytes=0)
        with pytest.raises(ValueError):
            ServiceConfig(restore_reserve=5, max_sessions=4)
        with pytest.raises(ValueError):
            ServiceConfig(hello_timeout_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(breaker_threshold=0)
        with pytest.raises(ValueError):
            ServiceConfig(shed_debt_s=0.0)
