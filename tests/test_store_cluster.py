"""Tests for the sharded chunk-store cluster (``src/repro/store``)."""

from __future__ import annotations

import math

import pytest

from repro.backup import (
    BackupConfig,
    BackupServer,
    ChunkStore,
    MasterImage,
    SimilarityTable,
    SnapshotRecipe,
)
from repro.core.dedup import DedupIndex
from repro.core.chunking import Chunk
from repro.core.hashing import chunk_hash
from repro.store import (
    BatchedLookup,
    BloomFilter,
    ChunkStoreCluster,
    HashRing,
    NodeDownError,
    ReplicatedPlacement,
    StoreNode,
    StripedPlacement,
    VanillaPlacement,
    make_scheme,
)

MB = 1 << 20


def make_digests(n: int, salt: bytes = b"") -> list[bytes]:
    return [chunk_hash(salt + i.to_bytes(4, "big")) for i in range(n)]


def make_chunks(payloads: list[bytes]) -> list[Chunk]:
    chunks, offset = [], 0
    for data in payloads:
        chunks.append(
            Chunk(offset=offset, length=len(data), data=data, digest=chunk_hash(data))
        )
        offset += len(data)
    return chunks


class TestHashRing:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().node_for(chunk_hash(b"x"))

    def test_mapping_deterministic(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for i in range(4):
                ring.add_node(f"node-{i}")
        for d in make_digests(100):
            assert a.node_for(d) == b.node_for(d)

    def test_preference_list_distinct(self):
        ring = HashRing()
        for i in range(5):
            ring.add_node(f"node-{i}")
        for d in make_digests(50):
            pref = ring.preference_list(d, 3)
            assert len(pref) == len(set(pref)) == 3
            assert pref[0] == ring.node_for(d)

    def test_preference_list_too_large(self):
        ring = HashRing()
        ring.add_node("only")
        with pytest.raises(LookupError):
            ring.preference_list(chunk_hash(b"x"), 2)

    def test_duplicate_node_rejected(self):
        ring = HashRing()
        ring.add_node("n")
        with pytest.raises(ValueError):
            ring.add_node("n")

    def test_resize_stability(self):
        """Adding one node moves only the keys that node now owns."""
        ring = HashRing()
        for i in range(4):
            ring.add_node(f"node-{i}")
        ds = make_digests(800)
        before = {d: ring.node_for(d) for d in ds}
        ring.add_node("node-4")
        after = {d: ring.node_for(d) for d in ds}
        moved = [d for d in ds if before[d] != after[d]]
        # Every moved key lands on the new node, nothing reshuffles
        # between survivors — the consistent-hashing property.
        assert all(after[d] == "node-4" for d in moved)
        # Expected share is 1/5; allow generous slack for hash variance.
        assert 0.05 < len(moved) / len(ds) < 0.45
        ring.remove_node("node-4")
        assert {d: ring.node_for(d) for d in ds} == before

    def test_remove_only_moves_removed_nodes_keys(self):
        ring = HashRing()
        for i in range(4):
            ring.add_node(f"node-{i}")
        ds = make_digests(400)
        before = {d: ring.node_for(d) for d in ds}
        ring.remove_node("node-2")
        for d in ds:
            if before[d] != "node-2":
                assert ring.node_for(d) == before[d]


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=500, fp_rate=0.01)
        keys = make_digests(500)
        for k in keys:
            bloom.add(k)
        assert all(k in bloom for k in keys)

    def test_false_positive_rate_bounded(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        for k in make_digests(1000, salt=b"in"):
            bloom.add(k)
        absent = make_digests(2000, salt=b"out")
        fp = sum(1 for k in absent if k in bloom)
        assert fp / len(absent) < 0.05  # nominal 1%, generous ceiling

    def test_clear(self):
        bloom = BloomFilter(capacity=10)
        bloom.add(b"key")
        bloom.clear()
        assert b"key" not in bloom and bloom.n_added == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, fp_rate=1.5)


class TestPlacementSchemes:
    @pytest.fixture()
    def ring(self) -> HashRing:
        ring = HashRing()
        for i in range(6):
            ring.add_node(f"node-{i}")
        return ring

    def test_vanilla_is_primary(self, ring):
        scheme = VanillaPlacement()
        for d in make_digests(30):
            assert scheme.nodes_for(ring, d) == (ring.node_for(d),)

    def test_replicated_distinct_copies(self, ring):
        scheme = ReplicatedPlacement(3)
        for d in make_digests(30):
            nodes = scheme.nodes_for(ring, d)
            assert len(nodes) == len(set(nodes)) == 3
            assert nodes == ring.preference_list(d, 3)

    def test_striped_single_copy_in_window(self, ring):
        scheme = StripedPlacement(stripe_width=4)
        spread = set()
        for d in make_digests(200):
            nodes = scheme.nodes_for(ring, d)
            assert len(nodes) == 1
            assert nodes[0] in ring.preference_list(d, 4)
            spread.add(nodes[0])
        assert len(spread) > 1  # actually stripes across nodes

    def test_validate_rejects_small_ring(self):
        ring = HashRing()
        ring.add_node("solo")
        with pytest.raises(ValueError):
            ReplicatedPlacement(2).validate(ring)

    def test_make_scheme(self):
        assert isinstance(make_scheme("vanilla"), VanillaPlacement)
        assert make_scheme("replicated", replicas=3).replicas == 3
        assert make_scheme("striped", stripe_width=2).stripe_width == 2
        with pytest.raises(ValueError):
            make_scheme("raid0")


class TestClusterChunkStoreParity:
    """The cluster speaks the single-node ChunkStore protocol."""

    def test_put_get_roundtrip(self):
        cluster = ChunkStoreCluster(n_nodes=3)
        d = chunk_hash(b"data")
        assert cluster.put_chunk(d, b"data") is True
        assert cluster.put_chunk(d, b"data") is False
        assert cluster.has_chunk(d)
        assert cluster.get_chunk(d) == b"data"
        assert cluster.chunk_count == 1

    def test_missing_chunk_descriptive_error(self):
        cluster = ChunkStoreCluster(n_nodes=2)
        with pytest.raises(KeyError, match="missing from cluster"):
            cluster.get_chunk(chunk_hash(b"nope"))

    def test_recipe_requires_chunks(self):
        cluster = ChunkStoreCluster(n_nodes=2)
        with pytest.raises(ValueError, match="missing"):
            cluster.put_recipe(SnapshotRecipe("s", (chunk_hash(b"x"),), 1))

    def test_restore_matches_single_store(self):
        cluster = ChunkStoreCluster(n_nodes=4)
        single = ChunkStore()
        payloads = [bytes([i]) * (100 + i) for i in range(40)]
        ds = []
        for p in payloads:
            d = chunk_hash(p)
            ds.append(d)
            cluster.put_chunk(d, p)
            single.put_chunk(d, p)
        recipe = SnapshotRecipe("s", tuple(ds + ds[:5]), 0)
        cluster.put_recipe(recipe)
        single.put_recipe(recipe)
        assert cluster.restore("s") == single.restore("s")

    def test_replication_factor_honored(self):
        cluster = ChunkStoreCluster(n_nodes=5, scheme=ReplicatedPlacement(3))
        for p in [bytes([i]) * 64 for i in range(60)]:
            cluster.put_chunk(chunk_hash(p), p)
        for d in cluster.digests():
            assert cluster.replica_count(d) == 3
        assert cluster.stored_bytes == 3 * cluster.unique_bytes

    def test_striped_single_replica(self):
        cluster = ChunkStoreCluster(
            n_nodes=4, scheme=StripedPlacement(stripe_width=3)
        )
        for p in [bytes([i]) * 64 for i in range(60)]:
            cluster.put_chunk(chunk_hash(p), p)
        assert all(cluster.replica_count(d) == 1 for d in cluster.digests())


def populate(cluster: ChunkStoreCluster, n: int, snapshot_id: str = "snap"):
    """Store n distinct chunks plus a recipe referencing them all."""
    payloads = [i.to_bytes(4, "big") * 32 for i in range(n)]
    ds = [chunk_hash(p) for p in payloads]
    for d, p in zip(ds, payloads):
        cluster.put_chunk(d, p)
    cluster.put_recipe(
        SnapshotRecipe(snapshot_id, tuple(ds), sum(len(p) for p in payloads))
    )
    return ds, b"".join(payloads)


class TestFailureRecovery:
    def test_degraded_restore_without_repair(self):
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        _, blob = populate(cluster, 80)
        cluster.fail_node("node-1")
        assert cluster.restore("snap") == blob  # surviving replicas serve

    def test_repair_restores_replication(self):
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        ds, blob = populate(cluster, 80)
        cluster.fail_node("node-2")
        report = cluster.repair()
        assert report.healthy
        assert report.chunks_scanned == 80
        assert report.chunks_recopied > 0
        assert all(cluster.replica_count(d) == 2 for d in ds)
        assert cluster.restore("snap") == blob

    def test_unreplicated_failure_is_unrecoverable(self):
        cluster = ChunkStoreCluster(n_nodes=3, scheme=VanillaPlacement())
        populate(cluster, 80)
        victim = max(
            cluster.nodes, key=lambda nid: cluster.nodes[nid].chunk_count
        )
        cluster.fail_node(victim)
        report = cluster.repair()
        assert not report.healthy and len(report.unrecoverable) > 0
        with pytest.raises(KeyError, match="missing from cluster"):
            cluster.restore("snap")

    def test_dead_node_refuses_operations(self):
        node = StoreNode("n0")
        node.fail()
        with pytest.raises(NodeDownError):
            node.put_chunk(chunk_hash(b"x"), b"x")

    def test_decommission_drains_gracefully(self):
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        ds, blob = populate(cluster, 80)
        report = cluster.decommission("node-0")
        assert report.chunks_dropped == 80 or report.chunks_dropped >= 0
        assert cluster.n_nodes_alive == 3
        assert all(cluster.replica_count(d) >= 2 for d in ds)
        assert cluster.restore("snap") == blob

    def test_ring_smaller_than_replica_count_serves_degraded(self):
        """Losing nodes below the replica count degrades copies, it
        does not take reads (or repair) down."""
        cluster = ChunkStoreCluster(n_nodes=2, scheme=ReplicatedPlacement(2))
        ds, blob = populate(cluster, 40)
        cluster.fail_node("node-1")
        assert cluster.restore("snap") == blob
        hit_map, _ = cluster.lookup_batch(ds)
        assert all(hit_map.values())
        report = cluster.repair()
        assert report.healthy
        assert all(cluster.replica_count(d) == 1 for d in ds)

    def test_lookup_hits_surviving_replica_before_repair(self):
        """Mid-repair, a copy that survives off the new primary still
        answers the batched lookup (no spurious re-shipping)."""
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        ds, _ = populate(cluster, 80)
        cluster.fail_node("node-0")
        hit_map, stats = cluster.lookup_batch(ds)  # deliberately no repair
        assert all(hit_map.values())
        assert stats.hits == len(ds)

    def test_add_node_and_rebalance(self):
        cluster = ChunkStoreCluster(n_nodes=3, scheme=ReplicatedPlacement(2))
        ds, blob = populate(cluster, 120)
        cluster.add_node("node-3")
        assert cluster.nodes["node-3"].chunk_count == 0  # no data moves yet
        report = cluster.rebalance()
        assert report.chunks_moved > 0
        assert cluster.nodes["node-3"].chunk_count > 0
        assert all(cluster.replica_count(d) == 2 for d in ds)
        assert cluster.restore("snap") == blob


class TestBloomMaintenance:
    """Long-lived shards must not let the filter saturate (ISSUE 5)."""

    def test_fresh_node_tracks_fill_without_rebuilds(self):
        node = StoreNode("n", bloom_capacity=64)
        assert node.stats.bloom_rebuilds == 0
        assert node.stats.bloom_fill_ratio == 0.0
        p = b"p" * 32
        node.put_chunk(chunk_hash(p), p)
        assert 0.0 < node.stats.bloom_fill_ratio <= 1.0

    def test_filter_rebuilds_as_shard_fills(self):
        node = StoreNode("n", bloom_capacity=64, bloom_fp_rate=0.01)
        for i in range(400):
            p = i.to_bytes(4, "big") * 8
            node.put_chunk(chunk_hash(p), p)
        # 64 -> 128 -> 256 -> 512: three saturation-driven rebuilds.
        assert node.stats.bloom_rebuilds >= 3
        assert node.bloom_capacity >= 400
        assert node.stats.bloom_fill_ratio <= 1.0
        # Rebuilds re-add every live digest: still no false negatives.
        for d in node.digests():
            assert node.has_chunk(d)

    def test_fp_rate_stays_bounded_after_growth(self):
        node = StoreNode("n", bloom_capacity=32, bloom_fp_rate=0.01)
        for i in range(300):
            p = b"fill" + i.to_bytes(4, "big") * 8
            node.put_chunk(chunk_hash(p), p)
        for d in make_digests(1000, salt=b"absent"):
            node.probe(d)
        # A never-rebuilt 32-capacity filter would false-positive on
        # nearly every probe; the rebuilt one stays near its target.
        assert node.stats.false_positives < 0.1 * 1000

    def test_sweep_rebuilds_without_counting_saturation(self):
        """GC's routine rebuild must not pollute the saturation signal."""
        node = StoreNode("n")
        digests = []
        for i in range(20):
            p = i.to_bytes(4, "big") * 8
            digests.append(chunk_hash(p))
            node.put_chunk(chunk_hash(p), p)
        node.sweep(live=set(digests[:10]))
        assert node.stats.bloom_rebuilds == 0  # rebuilt, but not saturated
        assert node.chunk_count == 10
        assert node.stats.bloom_fill_ratio == pytest.approx(
            10 / node.bloom_capacity
        )


class TestClusterGC:
    def test_gc_frees_only_unreferenced(self):
        cluster = ChunkStoreCluster(n_nodes=3, scheme=ReplicatedPlacement(2))
        keep_ds, keep_blob = populate(cluster, 40, "keep")
        drop_payloads = [b"drop" + i.to_bytes(4, "big") * 16 for i in range(30)]
        drop_ds = [chunk_hash(p) for p in drop_payloads]
        for d, p in zip(drop_ds, drop_payloads):
            cluster.put_chunk(d, p)
        cluster.put_recipe(SnapshotRecipe("drop", tuple(drop_ds), 0))

        cluster.delete_recipe("drop")
        freed = cluster.garbage_collect()
        # Two replicas of every dropped chunk are reclaimed.
        assert freed == 2 * sum(len(p) for p in drop_payloads)
        assert all(not cluster.has_chunk(d) for d in drop_ds)
        assert all(cluster.has_chunk(d) for d in keep_ds)
        assert cluster.restore("keep") == keep_blob

    def test_gc_rebuilds_bloom_filters(self):
        """After a sweep the filters must not remember dead digests as
        present-on-disk hits, and must still never false-negative."""
        cluster = ChunkStoreCluster(n_nodes=2, scheme=VanillaPlacement())
        keep_ds, _ = populate(cluster, 30, "keep")
        gone = b"gone" * 16
        cluster.put_chunk(chunk_hash(gone), gone)
        assert cluster.garbage_collect() > 0
        for node in cluster.nodes.values():
            for d in keep_ds:
                if node.holds(d):
                    assert node.has_chunk(d)  # no false negatives post-rebuild

    def test_empty_gc_noop(self):
        cluster = ChunkStoreCluster(n_nodes=2)
        _, blob = populate(cluster, 10)
        assert cluster.garbage_collect() == 0
        assert cluster.restore("snap") == blob


class TestBatchedLookup:
    @pytest.fixture()
    def cluster(self) -> ChunkStoreCluster:
        cluster = ChunkStoreCluster(
            n_nodes=4, scheme=ReplicatedPlacement(2), batch_size=32
        )
        populate(cluster, 100)
        return cluster

    def test_hit_map_correct(self, cluster):
        stored = sorted(cluster.digests())[:50]
        absent = make_digests(50, salt=b"absent")
        hit_map, stats = cluster.lookup_batch(stored + absent)
        assert all(hit_map[d] for d in stored)
        assert not any(hit_map[d] for d in absent)
        assert stats.n_digests == 100
        assert stats.hits == 50
        assert stats.misses == 50
        assert stats.n_batches == math.ceil(100 / 32)

    def test_duplicate_digests_probe_once(self, cluster):
        d = next(iter(cluster.digests()))
        hit_map, stats = cluster.lookup_batch([d] * 10)
        assert hit_map[d] and stats.n_digests == 1

    def test_bloom_filters_most_misses(self, cluster):
        _, stats = cluster.lookup_batch(make_digests(400, salt=b"new"))
        assert stats.bloom_negatives > 0.9 * stats.n_digests

    def test_batched_cost_below_per_digest_baseline(self, cluster):
        model = cluster.lookup.cost_model
        digests = sorted(cluster.digests()) + make_digests(200, salt=b"miss")
        _, stats = cluster.lookup_batch(digests)
        batched = model.batched_seconds(stats)
        baseline = model.per_digest_seconds(stats.hits, stats.misses)
        assert batched < baseline

    def test_lookup_survives_node_failure(self, cluster):
        stored = sorted(cluster.digests())
        cluster.fail_node("node-0")
        cluster.repair()
        hit_map, _ = cluster.lookup_batch(stored)
        assert all(hit_map.values())

    def test_bad_batch_size(self):
        cluster = ChunkStoreCluster(n_nodes=2)
        with pytest.raises(ValueError):
            BatchedLookup(cluster.ring, cluster.scheme, cluster.nodes, 0)


class TestDedupIndexBatch:
    def test_lookup_batch_read_only(self):
        index = DedupIndex()
        chunks = make_chunks([b"aa" * 40, b"bb" * 40])
        index.lookup_or_insert_batch(chunks)
        stats_before = (index.stats.total_chunks, index.stats.unique_chunks)
        hits = index.lookup_batch(
            [chunks[0].digest, chunk_hash(b"unseen"), chunks[1].digest]
        )
        assert hits == [chunks[0].offset, None, chunks[1].offset]
        assert (index.stats.total_chunks, index.stats.unique_chunks) == stats_before

    def test_batch_matches_sequential_loop(self):
        payloads = [b"x" * 50, b"y" * 60, b"x" * 50, b"z" * 70, b"y" * 60]
        batch_index, loop_index = DedupIndex(), DedupIndex()
        chunks = make_chunks(payloads)
        batched = batch_index.lookup_or_insert_batch(chunks)
        looped = [
            loop_index.lookup_or_insert_batch([c])[0]
            for c in make_chunks(payloads)
        ]
        assert batched == looped
        assert batch_index.stats == loop_index.stats
        # Intra-batch duplicates resolve to the first occurrence.
        assert batched[2] == (True, chunks[0].offset)


class TestSingleStoreRestoreError:
    def test_restore_missing_chunk_descriptive(self):
        store = ChunkStore()
        d = chunk_hash(b"payload")
        store.put_chunk(d, b"payload")
        store.put_recipe(SnapshotRecipe("s", (d,), 7))
        store._chunks.clear()  # simulate corruption behind the recipe
        with pytest.raises(KeyError, match="missing from store"):
            store.restore("s")


class TestClusterBackupServer:
    @pytest.fixture(scope="class")
    def image(self) -> MasterImage:
        return MasterImage(size=2 * MB, segment_size=32 * 1024, seed=13)

    @pytest.fixture(scope="class")
    def stream(self, image):
        t = SimilarityTable.uniform(0.2, image.n_segments)
        return [("master", image.data)] + [
            (f"gen{i}", image.snapshot(t, i)) for i in (1, 2)
        ]

    def test_cluster_restores_byte_identical_to_single(self, stream):
        single_cfg = BackupConfig(store_backend="single")
        cluster_cfg = BackupConfig(
            store_backend="cluster", cluster_nodes=4, replication=2,
            lookup_batch_size=64,
        )
        with BackupServer(single_cfg) as s1, BackupServer(cluster_cfg) as s2:
            for sid, data in stream:
                r1 = s1.backup_snapshot(data, sid)
                r2 = s2.backup_snapshot(data, sid)
                assert s2.agent.restore(sid) == s1.agent.restore(sid) == data
                assert r2.duplicate_chunks == r1.duplicate_chunks
                assert r2.shipped_bytes == r1.shipped_bytes
                # Batching + Bloom filtering beats the per-digest stage.
                assert (
                    r2.stage_seconds["index+network"]
                    < r1.stage_seconds["index+network"]
                )
                assert r2.lookup_stats is not None
                assert r1.lookup_stats is None

    def test_server_survives_node_failure(self, stream):
        cfg = BackupConfig(
            store_backend="cluster", cluster_nodes=4, replication=2
        )
        with BackupServer(cfg) as server:
            for sid, data in stream:
                server.backup_snapshot(data, sid)
            server.cluster.fail_node("node-3")
            assert server.cluster.repair().healthy
            for sid, data in stream:
                assert server.agent.restore(sid) == data

    def test_invalid_store_backend(self):
        with pytest.raises(ValueError):
            BackupConfig(store_backend="tape")

    def test_explicit_agent_with_cluster_rejected(self):
        """An externally supplied agent carries its own store; pairing
        it with the cluster would silently disable dedup."""
        from repro.backup import ShredderAgent

        with pytest.raises(ValueError, match="agent"):
            BackupServer(
                BackupConfig(store_backend="cluster"), agent=ShredderAgent()
            )

    def test_replication_exceeding_nodes_rejected(self):
        with pytest.raises(ValueError):
            BackupServer(
                BackupConfig(
                    store_backend="cluster", cluster_nodes=2, replication=3
                )
            )


class TestClusterCLI:
    def test_cluster_command(self, tmp_path, capsys):
        from repro.cli import main

        blob = (b"cli cluster payload " * 4096) + bytes(range(256)) * 64
        path = tmp_path / "image.bin"
        path.write_bytes(blob)
        rc = main(
            ["cluster", str(path), "--nodes", "3", "--batch-size", "64",
             "--fail-node"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Shard occupancy" in out
        assert "restore verified byte-exact" in out
