"""Tests for erasure-coded placement: the GF(2^8) Reed-Solomon codec,
fragment framing, and the cluster's K-of-N degraded read / fragment
repair paths (``src/repro/store/erasure.py`` + the EC branches of
``cluster.py``)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.backup import (
    BackupConfig,
    BackupServer,
    MasterImage,
    SimilarityTable,
    SnapshotRecipe,
)
from repro.core.hashing import chunk_hash
from repro.store import (
    ChunkStoreCluster,
    CorruptFragmentError,
    ErasureCodedPlacement,
    FragmentFormatError,
    ReedSolomonCodec,
    codec_for,
    make_scheme,
)
from repro.store.erasure import FRAGMENT_HEADER_SIZE, pack_fragment, unpack_fragment


def make_ec_cluster(n_nodes=8, k=4, m=2, **kwargs) -> ChunkStoreCluster:
    return ChunkStoreCluster(
        n_nodes=n_nodes, scheme=ErasureCodedPlacement(k, m), **kwargs
    )


def populate(cluster: ChunkStoreCluster, n: int, snapshot_id: str = "snap"):
    payloads = [
        (snapshot_id.encode() + i.to_bytes(4, "big")) * 100 for i in range(n)
    ]
    ds = [chunk_hash(p) for p in payloads]
    for d, p in zip(ds, payloads):
        cluster.put_chunk(d, p)
    cluster.put_recipe(
        SnapshotRecipe(snapshot_id, tuple(ds), sum(len(p) for p in payloads))
    )
    return ds, b"".join(payloads)


# ----------------------------------------------------------------------
# codec: systematic Reed-Solomon over GF(2^8)
# ----------------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize("size", [0, 1, 3, 4, 17, 4096])
    def test_any_k_of_n_decodes(self, size):
        """Every k-subset of the k+m fragments reconstructs the chunk —
        the MDS property, exhaustively for (3, 2)."""
        codec = ReedSolomonCodec(3, 2)
        data = bytes(random.Random(size).getrandbits(8) for _ in range(size))
        frags = codec.encode(data)
        assert len(frags) == 5
        for subset in itertools.combinations(range(5), 3):
            picked = {i: frags[i] for i in subset}
            assert codec.decode(picked, len(data)) == data

    def test_random_subsets_larger_geometry(self):
        codec = ReedSolomonCodec(8, 4)
        data = bytes(range(256)) * 13  # not a multiple of k
        frags = codec.encode(data)
        rng = random.Random(7)
        for _ in range(20):
            subset = rng.sample(range(12), 8)
            picked = {i: frags[i] for i in subset}
            assert codec.decode(picked, len(data)) == data

    def test_systematic_data_fragments_are_slices(self):
        """Data fragments are chunk slices: all-healthy reads need only
        concatenation, never GF arithmetic."""
        codec = ReedSolomonCodec(4, 2)
        data = b"abcdefgh" * 64
        frags = codec.encode(data)
        size = codec.fragment_size(len(data))
        joined = b"".join(frags[:4])
        assert joined[: len(data)] == data
        assert all(len(f) == size for f in frags)

    def test_fragment_padding_trimmed(self):
        """Lengths not divisible by k pad the last data fragment; decode
        trims back to chunk_len exactly."""
        codec = ReedSolomonCodec(4, 2)
        for size in (1, 5, 7, 9, 1023):
            data = bytes([size % 251]) * size
            frags = codec.encode(data)
            assert len(frags[0]) * 4 >= size
            assert codec.decode({i: frags[i] for i in (0, 2, 4, 5)}, size) == data

    def test_k1_every_fragment_is_a_copy(self):
        """(1, m) degenerates to m+1-way replication: any single
        fragment alone decodes."""
        codec = ReedSolomonCodec(1, 2)
        data = b"only copy" * 11
        frags = codec.encode(data)
        for i, frag in enumerate(frags):
            assert codec.decode({i: frag}, len(data)) == data

    def test_m0_no_parity(self):
        """(k, 0) is plain striping: the full data set is required and
        sufficient."""
        codec = ReedSolomonCodec(4, 0)
        data = b"striped!" * 32
        frags = codec.encode(data)
        assert codec.decode(dict(enumerate(frags)), len(data)) == data

    def test_insufficient_fragments_rejected(self):
        codec = ReedSolomonCodec(4, 2)
        frags = codec.encode(b"x" * 100)
        with pytest.raises(ValueError):
            codec.decode({0: frags[0], 1: frags[1], 2: frags[2]}, 100)

    def test_rebuild_matches_encode(self):
        """Rebuilt fragments are byte-identical to the originals — a
        repair must not produce equivalent-but-different parity."""
        codec = ReedSolomonCodec(4, 2)
        data = bytes(random.Random(3).getrandbits(8) for _ in range(777))
        frags = codec.encode(data)
        survivors = {i: frags[i] for i in (1, 2, 4, 5)}  # lost 0 and 3
        rebuilt = codec.rebuild(survivors, [0, 3])
        assert rebuilt[0] == frags[0]
        assert rebuilt[3] == frags[3]

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCodec(4, -1)
        with pytest.raises(ValueError):
            ReedSolomonCodec(200, 100)  # k + m > 255

    def test_codec_for_caches(self):
        assert codec_for(4, 2) is codec_for(4, 2)
        assert codec_for(4, 2) is not codec_for(4, 3)


class TestFragmentFraming:
    def test_pack_unpack_roundtrip(self):
        payload = b"fragment payload" * 4
        blob = pack_fragment(3, 4, 2, 1000, payload)
        assert len(blob) == FRAGMENT_HEADER_SIZE + len(payload)
        rec = unpack_fragment(blob)
        assert (rec.index, rec.k, rec.m, rec.chunk_len) == (3, 4, 2, 1000)
        assert rec.payload == payload
        assert not rec.is_parity
        assert unpack_fragment(pack_fragment(5, 4, 2, 1000, payload)).is_parity

    def test_corrupt_payload_detected(self):
        blob = bytearray(pack_fragment(0, 4, 2, 64, b"p" * 64))
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptFragmentError):
            unpack_fragment(bytes(blob))

    def test_corrupt_header_detected(self):
        blob = bytearray(pack_fragment(0, 4, 2, 64, b"p" * 64))
        blob[0] ^= 0xFF  # magic
        with pytest.raises(FragmentFormatError):
            unpack_fragment(bytes(blob))
        with pytest.raises(FragmentFormatError):
            unpack_fragment(b"short")


# ----------------------------------------------------------------------
# cluster: EC placement end to end
# ----------------------------------------------------------------------


class TestECCluster:
    def test_roundtrip_and_overhead(self):
        cluster = make_ec_cluster()
        ds, blob = populate(cluster, 60)
        assert cluster.restore("snap") == blob
        assert all(cluster.has_chunk(d) for d in ds)
        # ~(k+m)/k plus per-fragment framing, strictly below 2x.
        overhead = cluster.stored_bytes / cluster.unique_bytes
        assert 1.5 <= overhead < 2.0

    def test_fragments_on_distinct_nodes(self):
        cluster = make_ec_cluster()
        data = b"spread me" * 100
        d = chunk_hash(data)
        cluster.put_chunk(d, data)
        holders = [n for n in cluster.nodes.values() if n.holds(d)]
        assert len(holders) == 6  # k + m distinct shards
        seen = set()
        for node in holders:
            rec = node.get_fragment(d)
            assert rec.index not in seen
            seen.add(rec.index)
            assert len(rec.payload) < len(data)  # a slice, not a copy

    def test_dedup_put_is_a_hit(self):
        cluster = make_ec_cluster()
        data = b"dedup" * 50
        d = chunk_hash(data)
        assert cluster.put_chunk(d, data)
        before = cluster.stored_bytes
        assert not cluster.put_chunk(d, data)  # second put dedups
        assert cluster.stored_bytes == before

    def test_has_chunk_false_below_k_fragments(self):
        """Fewer than k surviving fragments cannot reconstruct; a dedup
        hit on them would silently lose the chunk."""
        cluster = make_ec_cluster()
        data = b"partial" * 40
        d = chunk_hash(data)
        cluster.put_chunk(d, data)
        holders = [n for n in cluster.nodes.values() if n.holds(d)]
        for node in holders[: len(holders) - 3]:  # leave 3 < k = 4
            node.delete_chunk(d)
        assert not cluster.has_chunk(d)
        # A fresh put re-places the chunk to full strength.
        assert cluster.put_chunk(d, data)
        assert cluster.has_chunk(d)
        assert cluster.get_chunk(d) == data

    def test_degraded_reads_after_two_node_loss(self):
        """EC(4, 2): any 2 dead nodes leave every chunk decodable
        through parity, byte-exact, without repair."""
        cluster = make_ec_cluster()
        _, blob = populate(cluster, 60)
        cluster.fail_node("node-1")
        cluster.fail_node("node-4")
        assert cluster.restore("snap") == blob
        assert cluster.stats.ec_parity_decodes > 0

    def test_three_node_loss_exceeds_tolerance(self):
        """m = 2 tolerates exactly 2 losses; a third strands chunks
        below k fragments and repair reports them unrecoverable."""
        cluster = make_ec_cluster()
        populate(cluster, 60)
        for nid in ("node-0", "node-2", "node-5"):
            cluster.fail_node(nid)
        assert not cluster.repair().healthy

    def test_repair_ships_only_rebuilt_fragments(self):
        """Repair traffic is fragment-size, not chunk-size: strictly
        below re-copying every affected chunk whole."""
        cluster = make_ec_cluster()
        ds, blob = populate(cluster, 60)
        affected = [
            d for d in ds if "node-2" in cluster.scheme.nodes_for(cluster.ring, d)
        ]
        assert affected
        cluster.fail_node("node-2")
        rep = cluster.repair()
        assert rep.healthy
        assert 0 < rep.bytes_copied < 800 * len(affected)  # chunks are 800 B
        assert cluster.restore("snap") == blob

    def test_gc_reclaims_fragments(self):
        cluster = make_ec_cluster()
        keep_ds, keep_blob = populate(cluster, 30, "keep")
        drop_ds, _ = populate(cluster, 20, "drop")
        cluster.delete_recipe("drop")
        assert cluster.garbage_collect() > 0
        assert all(not cluster.has_chunk(d) for d in drop_ds if d not in keep_ds)
        assert cluster.restore("keep") == keep_blob

    def test_decommission_and_rebalance(self):
        cluster = make_ec_cluster(n_nodes=9)
        _, blob = populate(cluster, 50)
        cluster.decommission("node-3")
        assert cluster.restore("snap") == blob
        cluster.add_node()
        cluster.rebalance()
        assert cluster.restore("snap") == blob

    def test_decommission_below_k_plus_m_rejected(self):
        cluster = make_ec_cluster(n_nodes=6)
        populate(cluster, 10)
        with pytest.raises(ValueError):
            cluster.decommission("node-0")

    def test_make_scheme_ec(self):
        scheme = make_scheme("ec", ec_k=6, ec_m=3)
        assert isinstance(scheme, ErasureCodedPlacement)
        assert (scheme.k, scheme.m) == (6, 3)
        assert scheme.copies == 9 and scheme.min_fragments == 6

    def test_persistence_across_reopen(self, tmp_path):
        root = tmp_path / "ec"
        with make_ec_cluster(backend="disk", data_dir=root) as cluster:
            _, blob = populate(cluster, 30)
        with make_ec_cluster(backend="disk", data_dir=root) as reopened:
            assert reopened.restore("snap") == blob


class TestAttemptBudgets:
    def test_defaults_follow_class_constants(self):
        cluster = ChunkStoreCluster(n_nodes=2)
        assert cluster.read_attempts == ChunkStoreCluster.READ_ATTEMPTS
        assert cluster.put_attempts == ChunkStoreCluster.PUT_ATTEMPTS

    def test_constructor_overrides(self):
        cluster = ChunkStoreCluster(n_nodes=2, read_attempts=5, put_attempts=1)
        assert cluster.read_attempts == 5
        assert cluster.put_attempts == 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            ChunkStoreCluster(n_nodes=2, read_attempts=0)
        with pytest.raises(ValueError):
            ChunkStoreCluster(n_nodes=2, put_attempts=0)
        with pytest.raises(ValueError):
            BackupConfig(store_backend="cluster", read_attempts=0)

    def test_backup_config_pass_through(self):
        server = BackupServer(
            BackupConfig(
                store_backend="cluster", read_attempts=4, put_attempts=3
            )
        )
        try:
            assert server.cluster.read_attempts == 4
            assert server.cluster.put_attempts == 3
        finally:
            server.close()


class TestBackupServerEC:
    def test_end_to_end_with_two_mid_stream_kills(self):
        """Full backup pipeline on EC(4, 2): two nodes die between
        snapshots; later backups and every restore stay byte-exact."""
        image = MasterImage(size=2 << 20, segment_size=32 * 1024, seed=17)
        table = SimilarityTable.uniform(0.2, image.n_segments)
        snapshots = [("master", image.data), ("gen1", image.snapshot(table, 1))]
        server = BackupServer(
            BackupConfig(
                store_backend="cluster",
                cluster_nodes=8,
                placement="ec",
                ec_k=4,
                ec_m=2,
            )
        )
        try:
            server.backup_snapshot(snapshots[0][1], snapshots[0][0])
            server.cluster.fail_node("node-0")
            server.cluster.fail_node("node-6")
            server.backup_snapshot(snapshots[1][1], snapshots[1][0])
            for snapshot_id, data in snapshots:
                assert server.agent.restore(snapshot_id) == data
        finally:
            server.close()
