"""End-to-end persistence: state owners reopened bit-identical.

The restart round trip the backend redesign exists for: a disk-backed
``DedupIndex`` / ``ChunkStore`` / ``ChunkStoreCluster`` (driven through
``BackupServer``) is populated, closed, reopened from its ``data_dir``,
and must restore every snapshot bit-identical, answer ``lookup_batch``
with the same hit/miss pattern, and still support repair, GC, and new
backups afterwards.
"""

from __future__ import annotations

import pytest

from repro.backup import (
    BackupConfig,
    BackupServer,
    ChunkStore,
    MasterImage,
    SimilarityTable,
    SnapshotRecipe,
)
from repro.core import reset_stage_times, stage_times
from repro.core.chunking import Chunk
from repro.core.dedup import DedupIndex
from repro.core.hashing import chunk_hash
from repro.store import ChunkStoreCluster

MB = 1 << 20


def make_chunks(payloads, base_offset=0):
    chunks, offset = [], base_offset
    for data in payloads:
        chunks.append(
            Chunk(offset=offset, length=len(data), data=data, digest=chunk_hash(data))
        )
        offset += len(data)
    return chunks


def make_digests(n: int, salt: bytes = b"") -> list[bytes]:
    return [chunk_hash(salt + i.to_bytes(4, "big")) for i in range(n)]


class TestDedupIndexRestart:
    def test_lookup_pattern_survives_reopen(self, tmp_path):
        payloads = [bytes([i]) * (40 + i) for i in range(30)]
        with DedupIndex("disk", data_dir=tmp_path / "idx") as index:
            decisions = index.lookup_or_insert_batch(make_chunks(payloads))
            probe = [c.digest for c in make_chunks(payloads)] + make_digests(
                10, salt=b"miss"
            )
            pattern = index.lookup_batch(probe)
        with DedupIndex("disk", data_dir=tmp_path / "idx") as index:
            assert index.lookup_batch(probe) == pattern
            assert len(index) == len(payloads)
            # Every previously-inserted chunk is now a duplicate, at the
            # same canonical offset the first process assigned.
            again = index.lookup_or_insert_batch(make_chunks(payloads, 10_000))
            assert again == [(True, off) for _, off in decisions]


class TestChunkStoreRestart:
    def test_snapshots_and_gc_survive_reopen(self, tmp_path):
        payloads = [i.to_bytes(2, "big") * 60 for i in range(50)]
        digests = [chunk_hash(p) for p in payloads]
        with ChunkStore(backend="disk", data_dir=tmp_path / "site") as store:
            for d, p in zip(digests, payloads):
                store.put_chunk(d, p)
            store.put_recipe(SnapshotRecipe("keep", tuple(digests[:30]), 0))
            store.put_recipe(SnapshotRecipe("drop", tuple(digests[30:]), 0))
            blob = store.restore("keep")
        with ChunkStore(backend="disk", data_dir=tmp_path / "site") as store:
            assert store.snapshot_count == 2
            assert store.chunk_count == 50
            assert store.restore("keep") == blob
            store.delete_recipe("drop")
            freed = store.garbage_collect()
            assert freed == sum(len(p) for p in payloads[30:])
        with ChunkStore(backend="disk", data_dir=tmp_path / "site") as store:
            # GC's log compaction is what persisted, not the dead chunks.
            assert store.chunk_count == 30
            assert store.restore("keep") == blob
            assert not store.has_chunk(digests[40])


class TestClusterRestartRoundTrip:
    """The ISSUE acceptance test: backup -> close -> reopen -> restore."""

    @pytest.fixture(scope="class")
    def stream(self):
        image = MasterImage(size=2 * MB, segment_size=32 * 1024, seed=17)
        t = SimilarityTable.uniform(0.2, image.n_segments)
        return [("master", image.data)] + [
            (f"gen{i}", image.snapshot(t, i)) for i in (1, 2)
        ]

    def config(self, tmp_path) -> BackupConfig:
        return BackupConfig(
            store_backend="cluster",
            cluster_nodes=4,
            replication=2,
            backend="disk",
            data_dir=str(tmp_path / "srv"),
        )

    def test_backup_close_reopen_restore_repair(self, tmp_path, stream):
        with BackupServer(self.config(tmp_path)) as server:
            for sid, data in stream:
                server.backup_snapshot(data, sid)
            probe = sorted(server.cluster.digests()) + make_digests(
                40, salt=b"absent"
            )
            pattern_before, _ = server.cluster.lookup_batch(probe)
            index_before = server.index.lookup_batch(probe)
            occupancy_before = {
                nid: node.chunk_count
                for nid, node in server.cluster.nodes.items()
            }

        with BackupServer(self.config(tmp_path)) as server:
            cluster = server.cluster
            # Every snapshot restores bit-identical through the agent.
            for sid, data in stream:
                assert server.agent.restore(sid) == data
            # Shards reopened in place: same contents per node.
            assert {
                nid: node.chunk_count for nid, node in cluster.nodes.items()
            } == occupancy_before
            # Same hit/miss pattern from cluster and dedup index alike.
            pattern_after, _ = cluster.lookup_batch(probe)
            assert pattern_after == pattern_before
            assert server.index.lookup_batch(probe) == index_before
            # Every dedup decision reopened: re-backing-up a snapshot the
            # closed server already stored ships zero bytes.
            rep = server.backup_snapshot(stream[2][1], "gen2-again")
            assert rep.duplicate_chunks == rep.n_chunks
            assert rep.shipped_bytes == 0
            # Node loss on the *reopened* cluster: repair still works.
            victim = max(
                cluster.nodes, key=lambda nid: cluster.nodes[nid].chunk_count
            )
            cluster.fail_node(victim)
            assert cluster.repair().healthy
            for sid, data in stream:
                assert server.agent.restore(sid) == data

    def test_single_store_server_restart(self, tmp_path, stream):
        cfg = BackupConfig(backend="disk", data_dir=str(tmp_path / "single"))
        with BackupServer(cfg) as server:
            for sid, data in stream:
                server.backup_snapshot(data, sid)
        with BackupServer(cfg) as server:
            for sid, data in stream:
                assert server.agent.restore(sid) == data
            rep = server.backup_snapshot(stream[1][1], "gen1-again")
            assert rep.shipped_bytes == 0

    def test_memory_stays_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        with BackupServer(BackupConfig()) as server:
            assert server.storage_kind == "memory"
            assert server.index.backend.kind == "memory"

    def test_explicit_agent_with_backend_request_rejected(self):
        from repro.backup import ShredderAgent

        with pytest.raises(ValueError, match="explicit agent"):
            BackupServer(
                BackupConfig(backend="disk"), agent=ShredderAgent()
            )


class TestClusterDirectRestart:
    def test_cluster_object_round_trip_with_gc(self, tmp_path):
        payloads = [i.to_bytes(4, "big") * 32 for i in range(80)]
        ds = [chunk_hash(p) for p in payloads]
        with ChunkStoreCluster(
            n_nodes=3, backend="disk", data_dir=tmp_path / "cl"
        ) as cluster:
            for d, p in zip(ds, payloads):
                cluster.put_chunk(d, p)
            cluster.put_recipe(SnapshotRecipe("keep", tuple(ds[:50]), 0))
            cluster.put_recipe(SnapshotRecipe("drop", tuple(ds[50:]), 0))
            blob = cluster.restore("keep")
        with ChunkStoreCluster(
            n_nodes=3, backend="disk", data_dir=tmp_path / "cl"
        ) as cluster:
            assert cluster.restore("keep") == blob
            cluster.delete_recipe("drop")
            assert cluster.garbage_collect() > 0
            assert all(not cluster.has_chunk(d) for d in ds[50:])
            assert all(cluster.has_chunk(d) for d in ds[:50])
        with ChunkStoreCluster(
            n_nodes=3, backend="disk", data_dir=tmp_path / "cl"
        ) as cluster:
            assert cluster.restore("keep") == blob
            assert cluster.chunk_count == 50

    def test_data_dir_alone_implies_disk(self, tmp_path):
        with ChunkStoreCluster(n_nodes=2, data_dir=tmp_path / "cl") as cluster:
            assert cluster.backend_kind == "disk"
            d = chunk_hash(b"x")
            cluster.put_chunk(d, b"x")
        with ChunkStoreCluster(n_nodes=2, data_dir=tmp_path / "cl") as cluster:
            assert cluster.has_chunk(d)


class TestIndexStoreSkew:
    def test_rebackup_after_gc_reships_instead_of_crashing(self):
        """The dedup index can outlive the site store's chunks (GC, or a
        persistent index reopened against a sparser site dir); a stale
        'duplicate' decision must re-ship the payload, not ship a
        pointer the agent cannot resolve."""
        image = MasterImage(size=1 * MB, segment_size=32 * 1024, seed=21)
        with BackupServer(BackupConfig()) as server:
            server.backup_snapshot(image.data, "a")
            server.agent.store.delete_recipe("a")
            assert server.agent.store.garbage_collect() > 0
            report = server.backup_snapshot(image.data, "b")
            assert report.shipped_bytes == report.total_bytes  # re-shipped
            assert server.agent.restore("b") == image.data

    def test_rebackup_after_gc_on_reopened_disk_server(self, tmp_path):
        image = MasterImage(size=1 * MB, segment_size=32 * 1024, seed=22)
        cfg = BackupConfig(backend="disk", data_dir=str(tmp_path / "srv"))
        with BackupServer(cfg) as server:
            server.backup_snapshot(image.data, "a")
            server.agent.store.delete_recipe("a")
            server.agent.store.garbage_collect()
        with BackupServer(cfg) as server:  # index reopens fuller than site
            report = server.backup_snapshot(image.data, "b")
            assert report.shipped_bytes == report.total_bytes
            assert server.agent.restore("b") == image.data


class TestStoreStageTimer:
    def test_profile_shows_lookup_and_store_split(self):
        reset_stage_times()
        index = DedupIndex()
        index.lookup_or_insert_batch(
            make_chunks([bytes([i]) * 64 for i in range(64)])
        )
        times = stage_times()
        assert times.get("lookup", 0.0) > 0.0
        assert times.get("store", 0.0) > 0.0
        reset_stage_times()

    def test_store_stage_recorded_by_site_store_puts(self):
        reset_stage_times()
        store = ChunkStore()
        for i in range(32):
            p = bytes([i]) * 128
            store.put_chunk(chunk_hash(p), p)
        assert stage_times().get("store", 0.0) > 0.0
        reset_stage_times()


class TestPersistentClusterCLI:
    def test_cluster_command_disk_backend(self, tmp_path, capsys):
        from repro.cli import main

        blob = (b"cli disk payload " * 4096) + bytes(range(256)) * 64
        path = tmp_path / "image.bin"
        path.write_bytes(blob)
        data_dir = tmp_path / "store"
        rc = main(
            ["cluster", str(path), "--nodes", "3", "--backend", "disk",
             "--data-dir", str(data_dir)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "persistent shards" in out
        assert "restore verified byte-exact" in out
        assert any(data_dir.iterdir())
        # Re-running the CLI against the same data_dir is the advertised
        # reopen workflow: the second run picks a fresh snapshot id and
        # dedups fully against the reopened shards.
        rc = main(
            ["cluster", str(path), "--nodes", "3", "--backend", "disk",
             "--data-dir", str(data_dir)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "snapshot 'cli-2'" in out
        assert "shipped 0 B (100.0% duplicate chunks)" in out
        # The CLI's cluster reopens outside the CLI process model: every
        # shard and both recipes come back.
        with ChunkStoreCluster(
            n_nodes=3, backend="disk", data_dir=data_dir / "cluster"
        ) as cluster:
            assert cluster.restore("cli") == blob
            assert cluster.restore("cli-2") == blob
