"""Tests for the background integrity scrubber: detection and repair of
persistent shard corruption (replicated and erasure-coded), heartbeat
slicing, the scrub-under-chaos drill against seeded ``REPRO_FAULTS``
bit flips, and the injected-vs-detected fault accounting."""

from __future__ import annotations

import pytest

from repro.backup import SnapshotRecipe
from repro.core.hashing import chunk_hash
from repro.faults import FAULTS_ENV
from repro.store import (
    ChunkStoreCluster,
    ErasureCodedPlacement,
    ReplicatedPlacement,
)
from repro.store.health import HealthPolicy


def populate(cluster: ChunkStoreCluster, n: int, snapshot_id: str = "snap"):
    payloads = [
        (snapshot_id.encode() + i.to_bytes(4, "big")) * 100 for i in range(n)
    ]
    ds = [chunk_hash(p) for p in payloads]
    for d, p in zip(ds, payloads):
        cluster.put_chunk(d, p)
    cluster.put_recipe(
        SnapshotRecipe(snapshot_id, tuple(ds), sum(len(p) for p in payloads))
    )
    return ds, b"".join(payloads)


def corrupt_stored(node, digest: bytes) -> None:
    """Flip a stored byte in place — persistent shard corruption, unlike
    the fault injector's transient read-side flips."""
    (raw,) = node.backend.get_batch([digest])
    assert raw is not None
    mangled = raw[:-1] + bytes([raw[-1] ^ 0xFF])
    node.backend.delete_batch([digest])
    node.backend.put_batch([(digest, mangled)])


def stored_items(cluster: ChunkStoreCluster) -> int:
    return sum(n.chunk_count for n in cluster.nodes.values() if n.alive)


class TestScrubBasics:
    def test_clean_pass(self):
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        populate(cluster, 40)
        report = cluster.scrub()
        assert report.healthy
        assert report.corrupt == 0
        assert report.chunks_scanned == stored_items(cluster)
        assert report.bytes_verified > 0
        assert cluster.stats.scrub_chunks == report.chunks_scanned

    def test_limit_cursor_covers_everything_once(self):
        """Sliced scrubs walk the whole cluster before revisiting."""
        cluster = ChunkStoreCluster(n_nodes=3, scheme=ReplicatedPlacement(2))
        populate(cluster, 30)
        total = stored_items(cluster)  # 30 chunks x 2 replicas
        assert total % 6 == 0
        scanned = 0
        while scanned < total:
            report = cluster.scrub(limit=6)
            assert report.chunks_scanned == 6
            scanned += report.chunks_scanned
        assert cluster.stats.scrub_chunks == scanned == total

    def test_heartbeat_drives_slices(self):
        cluster = ChunkStoreCluster(
            n_nodes=3,
            scheme=ReplicatedPlacement(2),
            health=HealthPolicy(scrub_batch=11),
        )
        populate(cluster, 30)
        assert cluster.stats.scrub_chunks == 0
        cluster.heartbeat()
        assert cluster.stats.scrub_chunks == 11
        for _ in range(10):
            cluster.heartbeat()
        assert cluster.stats.scrub_chunks >= stored_items(cluster)

    def test_scrub_batch_zero_disables(self):
        cluster = ChunkStoreCluster(n_nodes=2, scheme=ReplicatedPlacement(2))
        populate(cluster, 10)
        cluster.heartbeat()
        assert cluster.stats.scrub_chunks == 0
        with pytest.raises(ValueError):
            HealthPolicy(scrub_batch=-1)


class TestScrubHealing:
    def test_replicated_heal_from_surviving_copy(self):
        cluster = ChunkStoreCluster(n_nodes=4, scheme=ReplicatedPlacement(2))
        ds, blob = populate(cluster, 40)
        victim = next(n for n in cluster.nodes.values() if n.holds(ds[0]))
        corrupt_stored(victim, ds[0])
        report = cluster.scrub()
        assert report.corrupt == 1 and report.repaired == 1
        assert report.healthy
        # The bad copy was replaced on the shard, not just detected:
        # a second full pass is clean and the restore is byte-exact.
        assert cluster.scrub().corrupt == 0
        assert cluster.restore("snap") == blob

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_ec_heal_rebuilds_fragment_from_parity(self, backend, tmp_path):
        kwargs = (
            {"backend": "disk", "data_dir": tmp_path / "ec"}
            if backend == "disk"
            else {}
        )
        cluster = ChunkStoreCluster(
            n_nodes=8, scheme=ErasureCodedPlacement(4, 2), **kwargs
        )
        with cluster:
            ds, blob = populate(cluster, 30)
            victims = []
            for d in ds[:3]:
                node = next(n for n in cluster.nodes.values() if n.holds(d))
                corrupt_stored(node, d)
                victims.append((node, d))
            report = cluster.scrub()
            assert report.corrupt == 3 and report.repaired == 3
            assert report.healthy
            # Each rebuilt fragment verifies again on its own shard.
            for node, d in victims:
                assert node.get_fragment(d).payload is not None
            assert cluster.scrub().corrupt == 0
            assert cluster.restore("snap") == blob

    def test_unrepairable_corruption_left_in_place(self):
        """With every source of a chunk corrupted there is no healthy
        rebuild; scrub must report it and must NOT delete the stored
        copies (a later transient-fault diagnosis may clear them)."""
        cluster = ChunkStoreCluster(n_nodes=3, scheme=ReplicatedPlacement(2))
        ds, _ = populate(cluster, 10)
        holders = [n for n in cluster.nodes.values() if n.holds(ds[0])]
        assert len(holders) == 2
        for node in holders:
            corrupt_stored(node, ds[0])
        report = cluster.scrub()
        assert report.corrupt == 2
        assert report.repaired == 0 and report.unrepaired == 2
        assert not report.healthy
        assert all(n.holds(ds[0]) for n in holders)  # nothing destroyed


class TestScrubUnderChaos:
    """The drill that closes the loop with ``FaultPlan``: seeded
    read-side bit flips, every detection either healed or provably
    benign, and the data still restores byte-exact."""

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_seeded_bit_flip_plan(self, backend, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=29,backend.bit_flip=0.05")
        kwargs = (
            {"backend": "disk", "data_dir": tmp_path / "chaos"}
            if backend == "disk"
            else {}
        )
        cluster = ChunkStoreCluster(
            n_nodes=8, scheme=ErasureCodedPlacement(4, 2), **kwargs
        )
        with cluster:
            assert cluster.fault_plan is not None  # picked up from env
            _, blob = populate(cluster, 40)
            report = cluster.scrub()
            # The plan flips bits on reads, so the scrub's own
            # re-digests trip over them; every catch must be healed
            # (the stored fragments are intact underneath).
            assert report.corrupt > 0
            assert report.corrupt == report.repaired
            assert report.healthy
            stats = cluster.fault_plan.stats
            assert stats.bit_flips_injected >= stats.bit_flips_detected > 0
            assert cluster.stats.scrub_corrupt == cluster.stats.scrub_repaired
            assert cluster.restore("snap") == blob

    def test_detection_accounting_tracks_injection(self, monkeypatch):
        """Every read is digest-verified under an active plan, so the
        detected counter keeps pace with (never exceeds) injections."""
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        cluster = ChunkStoreCluster(
            n_nodes=4,
            scheme=ReplicatedPlacement(2),
            fault_plan="seed=3,backend.bit_flip=0.3",
        )
        ds, blob = populate(cluster, 40)
        assert cluster.restore("snap") == blob  # retries ride out flips
        stats = cluster.fault_plan.stats
        assert stats.bit_flips_injected > 0
        assert 0 < stats.bit_flips_detected <= stats.bit_flips_injected
        assert cluster.stats.corrupt_reads == stats.bit_flips_detected
