"""Tests for chunk-boundary selection, the Chunker API, and streaming."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2
from repro.core.chunking import (
    Chunk,
    Chunker,
    ChunkerConfig,
    chunk_sizes,
    select_cuts,
)
from repro.core.engines import VectorEngine
from repro.core.rabin import RabinFingerprinter
from tests.conftest import seeded_bytes


class TestChunkerConfig:
    def test_defaults_match_paper(self):
        cfg = ChunkerConfig()
        assert cfg.window_size == 48
        assert cfg.mask_bits == 13
        assert cfg.min_size == 0
        assert cfg.max_size is None
        assert cfg.expected_chunk_size == 8192

    def test_marker_must_fit_mask(self):
        with pytest.raises(ValueError, match="marker"):
            ChunkerConfig(mask_bits=4, marker=0x1F)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError, match="max_size"):
            ChunkerConfig(min_size=100, max_size=50)

    def test_max_below_window_rejected(self):
        with pytest.raises(ValueError, match="window_size"):
            ChunkerConfig(max_size=20)

    def test_negative_min_rejected(self):
        with pytest.raises(ValueError, match="min_size"):
            ChunkerConfig(min_size=-1)

    def test_with_limits(self):
        cfg = ChunkerConfig().with_limits(1024, 16384)
        assert (cfg.min_size, cfg.max_size) == (1024, 16384)
        assert cfg.mask_bits == ChunkerConfig().mask_bits


class TestSelectCuts:
    def test_empty(self):
        assert select_cuts([], 0) == []

    def test_no_candidates_gives_tail(self):
        assert select_cuts([], 100) == [100]

    def test_plain_passthrough(self):
        assert select_cuts([10, 30, 70], 100) == [10, 30, 70, 100]

    def test_candidate_at_length_not_duplicated(self):
        assert select_cuts([10, 100], 100) == [10, 100]

    def test_min_size_skips(self):
        # 10 is within min of the start; 26 is within min of the cut at 20.
        assert select_cuts([10, 20, 26, 40], 50, min_size=15) == [20, 40, 50]

    def test_min_size_skip_from_start(self):
        assert select_cuts([4, 9, 20], 30, min_size=10) == [20, 30]

    def test_max_size_forces(self):
        assert select_cuts([], 100, max_size=30) == [30, 60, 90, 100]

    def test_max_size_with_candidates(self):
        # Candidate at 80: forced cuts at 30, 60 come first.
        assert select_cuts([80], 100, max_size=30) == [30, 60, 80, 100]

    def test_candidate_within_min_after_forced_cut_skipped(self):
        # Forced cut at 30; candidate at 35 violates min 10 from there.
        assert select_cuts([35], 60, min_size=10, max_size=30) == [30, 60]

    def test_candidate_beyond_length_raises(self):
        with pytest.raises(ValueError, match="beyond"):
            select_cuts([200], 100)

    def test_sizes_respect_limits(self):
        cuts = select_cuts([13, 64, 91, 130, 180], 200, min_size=20, max_size=50)
        sizes = chunk_sizes(cuts)
        assert all(s <= 50 for s in sizes)
        assert all(s >= 20 for s in sizes[:-1])  # tail may be short

    @given(
        candidates=st.lists(st.integers(1, 499), max_size=40).map(sorted),
        min_size=st.integers(0, 60),
        max_gap=st.integers(60, 200),
    )
    @settings(max_examples=200)
    def test_invariants_random(self, candidates, min_size, max_gap):
        length = 500
        cuts = select_cuts(sorted(set(candidates)), length, min_size, max_gap)
        assert cuts[-1] == length
        assert cuts == sorted(set(cuts))
        sizes = chunk_sizes(cuts)
        assert all(s <= max_gap for s in sizes)
        assert all(s >= min_size for s in sizes[:-1])
        assert sum(sizes) == length


class TestChunker:
    def test_chunks_reassemble(self, small_chunker, data_64k):
        chunks = small_chunker.chunk(data_64k)
        assert b"".join(c.data for c in chunks) == data_64k

    def test_offsets_contiguous(self, small_chunker, data_64k):
        chunks = small_chunker.chunk(data_64k)
        pos = 0
        for c in chunks:
            assert c.offset == pos
            assert c.length == len(c.data)
            pos = c.end
        assert pos == len(data_64k)

    def test_base_offset(self, small_chunker, data_64k):
        chunks = small_chunker.chunk(data_64k[:1024], base_offset=5000)
        assert chunks[0].offset == 5000

    def test_digests_are_content_hashes(self, small_chunker, data_64k):
        from repro.core.hashing import chunk_hash

        for c in small_chunker.chunk(data_64k[:4096]):
            assert c.digest == chunk_hash(c.data)

    def test_empty_input(self, small_chunker):
        assert small_chunker.chunk(b"") == []

    def test_deterministic(self, small_chunker, data_64k):
        assert small_chunker.chunk(data_64k) == small_chunker.chunk(data_64k)

    def test_mean_size_tracks_mask_bits(self, data_1m):
        for bits in (6, 8, 10):
            cfg = ChunkerConfig(mask_bits=bits, marker=1)
            chunks = Chunker(cfg).chunk(data_1m)
            mean = len(data_1m) / len(chunks)
            assert 0.6 * 2**bits < mean < 1.6 * 2**bits, bits

    def test_min_max_respected(self, data_64k):
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A, min_size=64, max_size=256)
        chunks = Chunker(cfg).chunk(data_64k)
        assert all(c.length <= 256 for c in chunks)
        assert all(c.length >= 64 for c in chunks[:-1])

    def test_engine_window_mismatch_rejected(self, vector_engine):
        cfg = ChunkerConfig(window_size=16)
        with pytest.raises(ValueError, match="window size"):
            Chunker(cfg, vector_engine)

    def test_custom_polynomial(self, data_64k):
        poly = gf2.find_irreducible(33, seed=11)
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A, polynomial=poly)
        chunks = Chunker(cfg).chunk(data_64k)
        assert b"".join(c.data for c in chunks) == data_64k

    def test_custom_window_size(self, data_64k):
        cfg = ChunkerConfig(window_size=16, mask_bits=6, marker=0x2A)
        chunks = Chunker(cfg).chunk(data_64k)
        assert b"".join(c.data for c in chunks) == data_64k


class TestChunkStream:
    """Cross-buffer streaming must match whole-buffer chunking exactly."""

    def chunker(self):
        return Chunker(ChunkerConfig(mask_bits=6, marker=0x2A))

    def test_stream_equals_whole(self, data_64k):
        chunker = self.chunker()
        whole = chunker.chunk(data_64k)
        pieces = [data_64k[i : i + 7000] for i in range(0, len(data_64k), 7000)]
        streamed = list(chunker.chunk_stream(pieces))
        assert [c.offset for c in streamed] == [c.offset for c in whole]
        assert [c.digest for c in streamed] == [c.digest for c in whole]

    @given(split=st.lists(st.integers(1, 5000), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_stream_split_invariance(self, split):
        data = seeded_bytes(sum(split), seed=17)
        chunker = self.chunker()
        whole = chunker.chunk(data)
        pieces = []
        pos = 0
        for s in split:
            pieces.append(data[pos : pos + s])
            pos += s
        streamed = list(chunker.chunk_stream(pieces))
        assert [(c.offset, c.length) for c in streamed] == [
            (c.offset, c.length) for c in whole
        ]

    def test_stream_with_min_max(self, data_64k):
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A, min_size=64, max_size=512)
        chunker = Chunker(cfg)
        whole = chunker.chunk(data_64k)
        pieces = [data_64k[i : i + 9999] for i in range(0, len(data_64k), 9999)]
        streamed = list(chunker.chunk_stream(pieces))
        assert [(c.offset, c.length) for c in streamed] == [
            (c.offset, c.length) for c in whole
        ]

    def test_empty_stream(self):
        assert list(self.chunker().chunk_stream([])) == []

    def test_stream_of_empty_buffers(self):
        assert list(self.chunker().chunk_stream([b"", b"", b""])) == []

    def test_carry_limit_forces_emit(self):
        chunker = Chunker(ChunkerConfig(mask_bits=13, marker=0x1A2B))
        # Zero data never matches the nonzero marker; the carry limit must
        # bound memory by force-emitting.
        pieces = [bytes(4096)] * 10
        chunks = list(chunker.chunk_stream(pieces, carry_limit=8192))
        assert sum(c.length for c in chunks) == 40960
        assert max(c.length for c in chunks) <= 8192 + 4096


class TestEditLocality:
    """A localized edit changes only nearby chunks (dedup's foundation)."""

    def test_suffix_chunks_survive_prefix_edit(self):
        chunker = Chunker(ChunkerConfig(mask_bits=8, marker=0x55))
        data = seeded_bytes(128 * 1024, seed=23)
        edited = b"X" * 10 + data[10:]  # overwrite first 10 bytes
        a = {c.digest for c in chunker.chunk(data)}
        b = {c.digest for c in chunker.chunk(edited)}
        # Everything after the first chunk boundary past the edit is shared.
        assert len(a & b) >= len(a) - 2

    def test_insertion_shifts_but_preserves_content_chunks(self):
        chunker = Chunker(ChunkerConfig(mask_bits=8, marker=0x55))
        data = seeded_bytes(128 * 1024, seed=29)
        edited = data[:5000] + b"INSERTED" + data[5000:]
        a = [c.digest for c in chunker.chunk(data)]
        b = [c.digest for c in chunker.chunk(edited)]
        shared = set(a) & set(b)
        # Content-defined boundaries realign after the insertion; the vast
        # majority of chunks dedup (this is why Inc-HDFS uses CDC, §6.2).
        assert len(shared) >= len(a) - 3
