"""Tests for the SampleByte and fixed-size baseline chunkers."""

from __future__ import annotations

import pytest

from repro.core import Chunker, ChunkerConfig, dedup_ratio
from repro.core.baselines import FixedSizeChunker, SampleByteChunker
from repro.core.baselines import SampleByteConfig
from repro.workloads import seeded_bytes


class TestFixedSizeChunker:
    def test_cuts(self):
        c = FixedSizeChunker(block_size=100)
        assert c.cuts(b"x" * 250) == [100, 200, 250]

    def test_exact_multiple(self):
        c = FixedSizeChunker(block_size=100)
        assert c.cuts(b"x" * 200) == [100, 200]

    def test_empty(self):
        assert FixedSizeChunker().cuts(b"") == []

    def test_reassembly(self):
        data = seeded_bytes(10_000, seed=1)
        chunks = FixedSizeChunker(512).chunk(data)
        assert b"".join(c.data for c in chunks) == data

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_insertion_destroys_dedup(self):
        """The [24] failure mode: one inserted byte shifts every block."""
        data = seeded_bytes(64 * 1024, seed=2)
        shifted = b"!" + data
        c = FixedSizeChunker(1024)
        both = c.chunk(data) + c.chunk(shifted)
        assert dedup_ratio(both) < 0.05


class TestSampleByteChunker:
    def test_reassembly(self):
        data = seeded_bytes(100_000, seed=3)
        chunks = SampleByteChunker().chunk(data)
        assert b"".join(c.data for c in chunks) == data

    def test_deterministic(self):
        data = seeded_bytes(50_000, seed=4)
        assert SampleByteChunker().cuts(data) == SampleByteChunker().cuts(data)

    def test_mean_size_tracks_config(self):
        data = seeded_bytes(512 * 1024, seed=5)
        for expected in (256, 1024, 4096):
            chunks = SampleByteChunker(SampleByteConfig(expected_size=expected)).chunk(data)
            mean = len(data) / len(chunks)
            assert 0.5 * expected < mean < 2.0 * expected, expected

    def test_skip_region_never_cut(self):
        cfg = SampleByteConfig(expected_size=1024)
        chunker = SampleByteChunker(cfg)
        data = seeded_bytes(200_000, seed=6)
        cuts = chunker.cuts(data)
        prev = 0
        for cut in cuts[:-1]:
            assert cut - prev > chunker.skip
            prev = cut

    def test_invalid_expected(self):
        with pytest.raises(ValueError):
            SampleByteConfig(expected_size=1)

    def test_content_defined_realignment(self):
        """SampleByte still realigns after insertions (content-defined)."""
        data = seeded_bytes(128 * 1024, seed=7)
        shifted = b"!" + data
        chunker = SampleByteChunker(SampleByteConfig(expected_size=512))
        both = chunker.chunk(data) + chunker.chunk(shifted)
        assert dedup_ratio(both) > 0.35


class TestDedupQualityOrdering:
    """The paper's §2.1 argument: Rabin > SampleByte (at large chunks) >
    fixed-size, for dedup under edits."""

    def test_large_chunk_ordering(self):
        data = seeded_bytes(512 * 1024, seed=8)
        from repro.workloads import mutate

        edited = mutate(data, 4, mode="replace", seed=9, edit_size=2048)

        def ratio(chunker):
            return dedup_ratio(chunker.chunk(data) + chunker.chunk(edited))

        rabin = ratio(Chunker(ChunkerConfig(mask_bits=12, marker=0xABC)))
        sample = ratio(SampleByteChunker(SampleByteConfig(expected_size=4096)))
        # SampleByte's long skip regions blur edit boundaries: whole
        # skipped spans change identity when an edit lands inside them.
        assert rabin >= sample * 0.95
        # Both beat fixed-size under insertion:
        inserted = data[:1000] + b"xyz" + data[1000:]
        fixed = dedup_ratio(
            FixedSizeChunker(4096).chunk(data) + FixedSizeChunker(4096).chunk(inserted)
        )
        rabin_ins = dedup_ratio(
            Chunker(ChunkerConfig(mask_bits=12, marker=0xABC)).chunk(data)
            + Chunker(ChunkerConfig(mask_bits=12, marker=0xABC)).chunk(inserted)
        )
        assert rabin_ins > fixed + 0.3
