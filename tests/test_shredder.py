"""Tests for the Shredder facade: presets, correctness, timing shape."""

from __future__ import annotations

import pytest

from repro.core.chunking import Chunker, ChunkerConfig
from repro.core.dedup import DedupIndex
from repro.core.shredder import Shredder, ShredderConfig
from tests.conftest import seeded_bytes

MB = 1 << 20
GB = 1 << 30

SMALL = ChunkerConfig(mask_bits=6, marker=0x2A)

ALL_PRESETS = {
    "cpu-malloc": ShredderConfig.cpu(hoard=False, chunker=SMALL, buffer_size=MB),
    "cpu-hoard": ShredderConfig.cpu(hoard=True, chunker=SMALL, buffer_size=MB),
    "gpu-basic": ShredderConfig.gpu_basic(chunker=SMALL, buffer_size=MB),
    "gpu-streams": ShredderConfig.gpu_streams(chunker=SMALL, buffer_size=MB),
    "gpu-streams-mem": ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=MB),
}


class TestConfig:
    def test_presets_flag_matrix(self):
        basic = ShredderConfig.gpu_basic()
        assert not basic.double_buffering and basic.pipeline_stages == 1
        streams = ShredderConfig.gpu_streams()
        assert streams.double_buffering and streams.pipeline_stages == 4
        assert not streams.coalesced_memory
        full = ShredderConfig.gpu_streams_memory()
        assert full.coalesced_memory

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ShredderConfig(backend="tpu")

    def test_invalid_pipeline_depth(self):
        with pytest.raises(ValueError):
            ShredderConfig(pipeline_stages=5)


class TestChunkCorrectness:
    @pytest.fixture(scope="class")
    def data(self):
        return seeded_bytes(3 * MB + 12345, seed=11)

    def test_all_presets_identical_chunks(self, data):
        reference = None
        for name, cfg in ALL_PRESETS.items():
            with Shredder(cfg) as s:
                chunks, report = s.process(data)
            assert b"".join(c.data for c in chunks) == data, name
            digests = [c.digest for c in chunks]
            if reference is None:
                reference = digests
            assert digests == reference, name
            assert report.n_chunks == len(chunks)
            assert report.total_bytes == len(data)

    def test_matches_plain_chunker(self, data):
        with Shredder(ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=MB)) as s:
            chunks, _ = s.process(data)
        plain = Chunker(SMALL).chunk(data)
        assert [(c.offset, c.digest) for c in chunks] == [
            (c.offset, c.digest) for c in plain
        ]

    def test_stream_input(self, data):
        with Shredder(ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=MB)) as s:
            whole, _ = s.process(data)
            pieces = [data[i : i + 700000] for i in range(0, len(data), 700000)]
            streamed, _ = s.process(iter(pieces))
        assert [(c.offset, c.digest) for c in whole] == [
            (c.offset, c.digest) for c in streamed
        ]

    def test_empty_input(self):
        with Shredder(ShredderConfig.gpu_streams_memory(chunker=SMALL)) as s:
            chunks, report = s.process(b"")
        assert chunks == [] and report.total_bytes == 0

    def test_chunk_convenience(self, data):
        with Shredder(ShredderConfig.cpu(chunker=SMALL, buffer_size=MB)) as s:
            assert b"".join(c.data for c in s.chunk(data)) == data

    def test_dedup_integration(self, data):
        """Duplicate content produces duplicate digests through Shredder."""
        doubled = data + data
        with Shredder(ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=MB)) as s:
            chunks, _ = s.process(doubled)
        index = DedupIndex()
        stats = index.add_all(chunks)
        assert stats.dedup_ratio > 0.4


class TestTimingShape:
    """Figure 12's ordering must hold in the simulated timings."""

    @pytest.fixture(scope="class")
    def throughputs(self):
        out = {}
        for name, factory in {
            "cpu-malloc": ShredderConfig.cpu(hoard=False),
            "cpu-hoard": ShredderConfig.cpu(hoard=True),
            "gpu-basic": ShredderConfig.gpu_basic(),
            "gpu-streams": ShredderConfig.gpu_streams(),
            "gpu-streams-mem": ShredderConfig.gpu_streams_memory(),
        }.items():
            with Shredder(factory) as s:
                out[name] = s.simulate(GB).throughput_bps
        return out

    def test_ordering(self, throughputs):
        t = throughputs
        assert t["cpu-malloc"] < t["cpu-hoard"] < t["gpu-basic"]
        assert t["gpu-basic"] < t["gpu-streams"] < t["gpu-streams-mem"]

    def test_gpu_basic_headline(self, throughputs):
        """Naive GPU ~2x over host-only optimized (§5.3)."""
        ratio = throughputs["gpu-basic"] / throughputs["cpu-hoard"]
        assert 1.3 < ratio < 2.6

    def test_full_optimization_headline(self, throughputs):
        """'Shredder achieves a speedup of over 5X for chunking bandwidth
        compared to our optimized parallel implementation' (§1)."""
        ratio = throughputs["gpu-streams-mem"] / throughputs["cpu-hoard"]
        assert ratio > 5.0

    def test_full_optimization_reader_bound(self):
        with Shredder(ShredderConfig.gpu_streams_memory()) as s:
            report = s.simulate(GB)
        assert report.bottleneck() == "read"

    def test_basic_kernel_bound(self):
        with Shredder(ShredderConfig.gpu_basic()) as s:
            report = s.simulate(GB)
        assert report.bottleneck() == "kernel"

    def test_simulate_counts(self):
        with Shredder(ShredderConfig.gpu_streams_memory(buffer_size=32 * MB)) as s:
            report = s.simulate(GB)
        assert report.n_buffers == 32
        assert report.total_bytes == GB

    def test_ring_setup_accounted(self):
        with Shredder(ShredderConfig.gpu_streams_memory()) as s:
            report = s.simulate(GB)
        assert report.setup_seconds > 0
