"""Tests for the pinned ring buffer, double buffer, and streaming pipeline."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.buffers import DoubleBuffer, PinnedRingBuffer
from repro.core.pipeline import PipelineError, Stage, StreamingPipeline
from repro.gpu.device import GPUDevice
from repro.gpu.host_memory import HostMemoryModel

MB = 1 << 20


class TestPinnedRingBuffer:
    def test_allocates_once(self):
        mem = HostMemoryModel()
        ring = PinnedRingBuffer(mem, 32 * MB, num_slots=4)
        assert mem.live_allocations == 4
        for _ in range(100):
            slot = ring.acquire()
            ring.release(slot)
        assert mem.live_allocations == 4  # reuse, not reallocation
        assert ring.acquires == 100

    def test_round_robin(self):
        ring = PinnedRingBuffer(HostMemoryModel(), MB, num_slots=3)
        order = []
        for _ in range(3):
            s = ring.acquire()
            order.append(s.index)
            ring.release(s)
        assert order == [0, 1, 2]

    def test_exhaustion(self):
        ring = PinnedRingBuffer(HostMemoryModel(), MB, num_slots=2)
        ring.acquire()
        ring.acquire()
        with pytest.raises(RuntimeError, match="exhausted"):
            ring.acquire()

    def test_release_frees_slot(self):
        ring = PinnedRingBuffer(HostMemoryModel(), MB, num_slots=1)
        s = ring.acquire()
        ring.release(s)
        assert ring.acquire() is s

    def test_double_release_rejected(self):
        ring = PinnedRingBuffer(HostMemoryModel(), MB, num_slots=1)
        s = ring.acquire()
        ring.release(s)
        with pytest.raises(ValueError):
            ring.release(s)

    def test_amortization_beats_fresh_allocation(self):
        """Fig. 6's point: ring reuse is an order of magnitude cheaper than
        allocating pinned buffers per transfer."""
        mem = HostMemoryModel()
        size = 64 * MB
        ring = PinnedRingBuffer(mem, size, num_slots=4)
        transfers = 64
        ring_cost = ring.amortized_cost(transfers) + ring.staging_copy_time(size)
        fresh_cost = HostMemoryModel().alloc_pinned(size).alloc_seconds
        assert fresh_cost > 5 * ring_cost

    def test_staging_copy_size_check(self):
        ring = PinnedRingBuffer(HostMemoryModel(), MB, num_slots=1)
        with pytest.raises(ValueError):
            ring.staging_copy_time(2 * MB)

    def test_destroy_releases_pins(self):
        mem = HostMemoryModel()
        ring = PinnedRingBuffer(mem, MB, num_slots=2)
        assert mem.pinned_bytes == 2 * MB
        ring.destroy()
        assert mem.pinned_bytes == 0


class TestDoubleBuffer:
    def test_alternation(self):
        dev = GPUDevice()
        db = DoubleBuffer(dev, MB)
        a, b, c = db.next_buffer(), db.next_buffer(), db.next_buffer()
        assert a is c and a is not b

    def test_device_accounting(self):
        dev = GPUDevice()
        db = DoubleBuffer(dev, MB, count=3)
        assert dev.allocated_bytes == 3 * MB
        db.release()
        assert dev.allocated_bytes == 0

    def test_needs_two(self):
        with pytest.raises(ValueError):
            DoubleBuffer(GPUDevice(), MB, count=1)


class TestStreamingPipeline:
    def test_identity(self):
        pipe = StreamingPipeline([Stage("id", lambda x: x)])
        assert pipe.run(range(10)) == list(range(10))

    def test_multi_stage_composition(self):
        pipe = StreamingPipeline(
            [Stage("double", lambda x: 2 * x), Stage("inc", lambda x: x + 1)]
        )
        assert pipe.run([1, 2, 3]) == [3, 5, 7]

    def test_order_preserved_with_jitter(self):
        import random

        def jitter(x):
            time.sleep(random.random() * 0.002)
            return x

        pipe = StreamingPipeline([Stage("a", jitter), Stage("b", jitter)])
        assert pipe.run(range(30)) == list(range(30))

    def test_empty_input(self):
        pipe = StreamingPipeline([Stage("id", lambda x: x)])
        assert pipe.run([]) == []

    def test_stage_error_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad item")
            return x

        pipe = StreamingPipeline([Stage("boom", boom)])
        with pytest.raises(PipelineError):
            pipe.run(range(10))

    def test_stages_actually_overlap(self):
        """With 4 concurrent stages, wall time is well below the serial sum."""
        delay = 0.01
        n = 8

        def slow(x):
            time.sleep(delay)
            return x

        stages = [Stage(f"s{i}", slow) for i in range(4)]
        start = time.perf_counter()
        StreamingPipeline(stages, max_in_flight=4).run(range(n))
        elapsed = time.perf_counter() - start
        serial = 4 * n * delay
        assert elapsed < 0.7 * serial

    def test_in_flight_limit_respected(self):
        in_flight = 0
        peak = 0
        lock = threading.Lock()

        def enter(x):
            nonlocal in_flight, peak
            with lock:
                in_flight += 1
                peak = max(peak, in_flight)
            time.sleep(0.002)
            return x

        def leave(x):
            nonlocal in_flight
            with lock:
                in_flight -= 1
            return x

        pipe = StreamingPipeline(
            [Stage("enter", enter), Stage("leave", leave)], max_in_flight=2
        )
        pipe.run(range(20))
        # Bounded queues keep admitted-but-unfinished items limited: with
        # 2 stages and queue depth 2 the in-flight count stays small.
        assert peak <= 6

    def test_requires_stages(self):
        with pytest.raises(ValueError):
            StreamingPipeline([])
