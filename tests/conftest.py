"""Shared fixtures: seeded data generators and default chunking objects."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Chunker,
    ChunkerConfig,
    RabinFingerprinter,
    SerialEngine,
    VectorEngine,
)


def seeded_bytes(n: int, seed: int = 7) -> bytes:
    """Deterministic pseudo-random bytes."""
    return random.Random(seed).randbytes(n)


@pytest.fixture(scope="session")
def fingerprinter() -> RabinFingerprinter:
    return RabinFingerprinter()


@pytest.fixture(scope="session")
def serial_engine(fingerprinter) -> SerialEngine:
    return SerialEngine(fingerprinter)


@pytest.fixture(scope="session")
def vector_engine(fingerprinter) -> VectorEngine:
    return VectorEngine(fingerprinter)


@pytest.fixture(scope="session")
def small_config() -> ChunkerConfig:
    """Config with tiny expected chunks so small test inputs chunk richly."""
    return ChunkerConfig(mask_bits=6, marker=0x2A)


@pytest.fixture(scope="session")
def small_chunker(small_config, vector_engine) -> Chunker:
    return Chunker(small_config, vector_engine)


@pytest.fixture(scope="session")
def data_64k() -> bytes:
    return seeded_bytes(64 * 1024, seed=42)


@pytest.fixture(scope="session")
def data_1m() -> bytes:
    return seeded_bytes(1024 * 1024, seed=43)
