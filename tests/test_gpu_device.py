"""Tests for the GPU device, host memory model, and chunking kernel."""

from __future__ import annotations

import pytest

from repro.core.chunking import Chunker, ChunkerConfig
from repro.gpu.chunking_kernel import ChunkingKernel, divergence_factor
from repro.gpu.device import DeviceMemoryError, GPUDevice
from repro.gpu.host_memory import HostMemoryModel
from repro.gpu.specs import TESLA_C2050, XEON_X5650_HOST, table1_rows
from tests.conftest import seeded_bytes

MB = 1 << 20


@pytest.fixture()
def device() -> GPUDevice:
    return GPUDevice()


class TestSpecs:
    def test_c2050_geometry(self):
        assert TESLA_C2050.total_sps == 448
        assert TESLA_C2050.num_sms == 14
        assert TESLA_C2050.half_warp == 16

    def test_table1_matches_paper(self):
        rows = dict(table1_rows())
        assert rows["GPU Processing Capacity"] == "1030 GFlops"
        assert rows["Reader (I/O) Bandwidth"] == "2 GBps"
        assert rows["Host-to-Device Bandwidth"] == "5.406 GBps"
        assert rows["Device-to-Host Bandwidth"] == "5.129 GBps"
        assert rows["Device Memory Latency"] == "400 - 600 cycles"
        assert rows["Device Memory Bandwidth"] == "144 GBps"

    def test_host_spec(self):
        assert XEON_X5650_HOST.cores == 12
        assert XEON_X5650_HOST.clock_hz == pytest.approx(2.67e9)


class TestDeviceMemoryManagement:
    def test_alloc_free_accounting(self, device):
        buf = device.alloc(64 * MB)
        assert device.allocated_bytes == 64 * MB
        device.free(buf)
        assert device.allocated_bytes == 0

    def test_oom(self, device):
        with pytest.raises(DeviceMemoryError):
            device.alloc(device.spec.device_memory_bytes + 1)

    def test_oom_cumulative(self, device):
        device.alloc(device.spec.device_memory_bytes // 2 + 1)
        with pytest.raises(DeviceMemoryError):
            device.alloc(device.spec.device_memory_bytes // 2 + 1)

    def test_double_free_rejected(self, device):
        buf = device.alloc(MB)
        device.free(buf)
        with pytest.raises(KeyError):
            device.free(buf)

    def test_invalid_size(self, device):
        with pytest.raises(ValueError):
            device.alloc(0)

    def test_upload_roundtrip(self, device):
        data = seeded_bytes(1024, seed=3)
        buf = device.alloc(2048)
        seconds = device.upload(buf, data)
        assert seconds > 0
        assert bytes(buf.view()) == data

    def test_upload_too_large(self, device):
        buf = device.alloc(16)
        with pytest.raises(ValueError):
            device.upload(buf, b"x" * 17)

    def test_view_before_upload_raises(self, device):
        buf = device.alloc(16)
        with pytest.raises(ValueError):
            buf.view()


class TestHostMemoryModel:
    def test_pinned_slower_per_byte(self):
        mem = HostMemoryModel()
        pageable = mem.alloc_pageable(64 * MB)
        pinned = mem.alloc_pinned(64 * MB)
        assert pinned.alloc_seconds > 3 * pageable.alloc_seconds

    def test_pinned_alloc_vs_pageable_plus_memcpy(self):
        """Fig. 6: pinned allocation costs more than pageable + memcpy,
        which is why the ring buffer amortizes it."""
        mem = HostMemoryModel()
        size = 128 * MB
        pageable_path = mem.alloc_pageable(size).alloc_seconds + mem.memcpy_time(size)
        pinned_path = mem.alloc_pinned(size).alloc_seconds
        assert pinned_path > pageable_path

    def test_pin_limit(self):
        mem = HostMemoryModel()
        with pytest.raises(MemoryError):
            mem.alloc_pinned(mem.host.memory_bytes + 1)

    def test_pressure_penalty(self):
        mem = HostMemoryModel()
        before = mem.alloc_pageable(MB).alloc_seconds
        mem.alloc_pinned(int(mem.host.memory_bytes * 0.6))
        after = mem.alloc_pageable(MB).alloc_seconds
        assert after > 2 * before

    def test_free_restores_accounting(self):
        mem = HostMemoryModel()
        a = mem.alloc_pinned(MB)
        assert mem.pinned_bytes == MB
        mem.free(a)
        assert mem.pinned_bytes == 0

    def test_double_free_rejected(self):
        mem = HostMemoryModel()
        a = mem.alloc_pageable(MB)
        mem.free(a)
        with pytest.raises(KeyError):
            mem.free(a)


class TestDivergence:
    def test_no_boundaries_no_penalty(self):
        assert divergence_factor(0.0) == 1.0

    def test_restructured_cheaper(self):
        f = 0.1
        assert divergence_factor(f, restructured=True) < divergence_factor(
            f, restructured=False
        )

    def test_unrestructured_serializes_warp(self):
        assert divergence_factor(1.0, warp_size=32, restructured=False) == 32.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            divergence_factor(1.5)


class TestChunkingKernel:
    def test_kernel_cuts_match_host_chunker(self, device):
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A)
        kernel = ChunkingKernel(cfg)
        chunker = Chunker(cfg)
        data = seeded_bytes(256 * 1024, seed=5)
        buf = device.alloc(len(data))
        device.upload(buf, data)
        cuts, stats = device.launch(kernel, buf)
        assert cuts == chunker.candidate_cuts(data)
        assert stats.kernel_seconds > 0

    def test_coalesced_beats_naive(self, device):
        kernel = ChunkingKernel()
        naive = kernel.estimate(device, 64 * MB, coalesced=False)
        coal = kernel.estimate(device, 64 * MB, coalesced=True)
        assert coal.kernel_seconds < naive.kernel_seconds / 4

    def test_naive_is_memory_bound(self, device):
        stats = ChunkingKernel().estimate(device, 64 * MB, coalesced=False)
        assert stats.memory_bound

    def test_coalesced_is_compute_bound(self, device):
        stats = ChunkingKernel().estimate(device, 64 * MB, coalesced=True)
        assert not stats.memory_bound

    def test_empty_buffer(self, device):
        stats = ChunkingKernel().estimate(device, 0)
        assert stats.bytes_processed == 0
        assert stats.kernel_seconds == pytest.approx(
            device.spec.kernel_launch_overhead_s
        )

    def test_throughput_scale(self, device):
        """Optimized kernel sits an order of magnitude above PCIe (which is
        why the transfer was worth taking off the critical path)."""
        stats = ChunkingKernel().estimate(device, 128 * MB, coalesced=True)
        assert stats.throughput_bps > 5e9

    def test_boundary_density_slows_kernel(self, device):
        kernel = ChunkingKernel()
        sparse = kernel.estimate(device, 64 * MB, boundary_count=10, coalesced=True)
        dense = kernel.estimate(
            device, 64 * MB, boundary_count=(64 * MB) // 2, coalesced=True
        )
        assert dense.kernel_seconds > sparse.kernel_seconds

    def test_window_mismatch_rejected(self):
        from repro.core.engines import VectorEngine
        from repro.core.rabin import RabinFingerprinter

        engine = VectorEngine(RabinFingerprinter(window_size=16))
        with pytest.raises(ValueError, match="window"):
            ChunkingKernel(ChunkerConfig(), engine=engine)
