"""Resilience tests: client retry/resume under injected wire faults,
slow-client eviction, park expiry, drain-on-shutdown, the chaos soak,
the feeder-join deadline, and the fsync durability knob."""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import time

import pytest

from repro.service import (
    AsyncBackupClient,
    BackupService,
    RetryPolicy,
    ServiceConfig,
)
from repro.service import client as client_mod
from repro.service.metrics import service_snapshot
from repro.service.protocol import Err, RemoteError
from repro.store.backend import FSYNC_ENV, PersistentBackend

MB = 1 << 20

#: Aggressive-but-cheap policy for loopback chaos: short timeouts, tiny
#: backoff, and a deep recovery budget (each dropped frame costs one).
CHAOS_RETRY = RetryPolicy(
    attempts=8,
    base_delay_s=0.01,
    max_delay_s=0.1,
    op_timeout_s=5.0,
    max_recoveries=500,
)


def run_service(fn, **config):
    async def main():
        async with BackupService(ServiceConfig(**config)) as service:
            return await fn(service)

    return asyncio.run(main())


async def connect(service, **kwargs):
    kwargs.setdefault("retry", CHAOS_RETRY)
    return await AsyncBackupClient.connect(
        "127.0.0.1", service.port, tenant="default", **kwargs
    )


def chaos_payload(size: int, seed: int = 1234) -> bytes:
    """Random-ish data with repeated runs so dedup has something to do."""
    rng = random.Random(seed)
    blocks = [rng.randbytes(16 * 1024) for _ in range(16)]
    out = []
    total = 0
    while total < size:
        b = blocks[rng.randrange(len(blocks))]
        out.append(b)
        total += len(b)
    return b"".join(out)[:size]


# ----------------------------------------------------------------------
# retry/resume under wire faults
# ----------------------------------------------------------------------


class TestWireFaultRecovery:
    def test_backup_survives_drops_and_garbles(self):
        data = chaos_payload(2 * MB)

        async def scenario(service):
            client = await connect(service)
            report = await client.backup(data, "chaos", batch_chunks=4)
            restored = await client.restore("chaos")
            await client.close()
            return report, restored, service.metrics

        report, restored, metrics = run_service(
            scenario,
            faults="seed=7,wire.drop=0.05,wire.garble=0.05",
            resume_grace_s=10.0,
        )
        assert restored == data
        # The plan fires often enough over ~hundreds of frames that the
        # client must have reconnected and resumed at least once.
        assert report.reconnects > 0
        assert report.resumes > 0
        # Every abnormal disconnect parked the session and every park
        # was claimed by a RESUME — nothing leaked to expiry.
        assert metrics.sessions_parked == metrics.sessions_resumed
        assert metrics.sessions_parked > 0

    def test_quiet_wire_means_no_recovery(self):
        data = chaos_payload(256 * 1024, seed=5)

        async def scenario(service):
            client = await connect(service)
            report = await client.backup(data, "calm", batch_chunks=8)
            restored = await client.restore("calm")
            await client.close()
            return report, restored

        report, restored = run_service(scenario)
        assert restored == data
        assert report.reconnects == 0
        assert report.resumes == 0
        assert report.replayed_frames == 0


# ----------------------------------------------------------------------
# slow-client eviction
# ----------------------------------------------------------------------


class TestStallEviction:
    def test_idle_session_is_evicted(self):
        async def scenario(service):
            client = await connect(service, retry=None)
            await client.begin_snapshot("stalled")
            await asyncio.sleep(0.6)  # > stall_timeout_s, sends nothing
            with pytest.raises((RemoteError, OSError, EOFError)) as err:
                await client.finish_snapshot("stalled")
            await client.close()
            listing = await (await connect(service, retry=None)).list_snapshots()
            return err.value, service.metrics, listing

        exc, metrics, listing = run_service(scenario, stall_timeout_s=0.2)
        if isinstance(exc, RemoteError):
            assert exc.code is Err.EVICTED
        assert metrics.sessions_evicted == 1
        # No resume token (retry=None) -> eviction aborts, never parks.
        assert metrics.sessions_parked == 0
        assert "stalled" not in listing

    def test_evicted_session_resumes_and_finishes(self):
        async def scenario(service):
            client = await connect(service)
            await client.begin_snapshot("nap")
            await asyncio.sleep(0.6)  # server evicts + parks meanwhile
            log = await client.finish_snapshot("nap")
            listing = await client.list_snapshots()
            await client.close()
            return log, listing, service.metrics

        _, listing, metrics = run_service(
            scenario, stall_timeout_s=0.2, resume_grace_s=10.0
        )
        assert "nap" in listing
        assert metrics.sessions_evicted >= 1
        assert metrics.sessions_parked >= 1
        assert metrics.sessions_resumed >= 1


# ----------------------------------------------------------------------
# park expiry + clean-close semantics
# ----------------------------------------------------------------------


class TestParkLifecycle:
    def test_park_expires_and_aborts_snapshot(self):
        async def scenario(service):
            client = await connect(service)
            await client.begin_snapshot("doomed")
            # Crash, don't close: force an RST (SO_LINGER 0) so the
            # server sees an abnormal disconnect and parks the snapshot.
            sock = client.writer.get_extra_info("socket")
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            client.writer.transport.abort()
            await asyncio.sleep(0.4)  # > resume_grace_s
            probe = await connect(service, retry=None)
            listing = await probe.list_snapshots()
            await probe.close()
            return service.metrics, listing

        metrics, listing = run_service(scenario, resume_grace_s=0.1)
        assert metrics.sessions_parked == 1
        assert metrics.sessions_expired == 1
        assert metrics.sessions_resumed == 0
        assert "doomed" not in listing

    def test_clean_close_aborts_instead_of_parking(self):
        async def scenario(service):
            client = await connect(service)
            await client.begin_snapshot("walkaway")
            await client.close()  # FIN on a frame boundary = deliberate
            await asyncio.sleep(0.05)
            return service.metrics

        metrics = run_service(scenario, resume_grace_s=10.0)
        assert metrics.sessions_parked == 0


# ----------------------------------------------------------------------
# drain on shutdown
# ----------------------------------------------------------------------


class TestDrainOnShutdown:
    def test_stop_waits_for_inflight_backup(self):
        data = chaos_payload(1 * MB, seed=9)

        async def scenario(service):
            client = await connect(service)
            task = asyncio.create_task(
                client.backup(data, "inflight", batch_chunks=4)
            )
            await asyncio.sleep(0.05)  # let the backup get going
            await service.stop()  # drains instead of cutting the cord
            report = await task
            await client.close()
            return report

        report = run_service(scenario, drain_s=10.0)
        assert report.n_chunks > 0
        assert report.total_bytes == len(data)


# ----------------------------------------------------------------------
# chaos soak: backend + wire + node death, end to end
# ----------------------------------------------------------------------


class TestChaosSoak:
    def test_soak_bit_identical_restore_with_auto_repair(self):
        data = chaos_payload(2 * MB, seed=77)

        async def scenario(service):
            client = await connect(service)
            report = await client.backup(data, "soak", batch_chunks=4)
            restored = await client.restore("soak")
            await client.close()
            return report, restored, service_snapshot(service)

        report, restored, snap = run_service(
            scenario,
            store_backend="cluster",
            cluster_nodes=3,
            replication=2,
            faults=(
                "seed=13,backend.io_error=0.002,wire.drop=0.02,"
                "node.kill=node-1:400"
            ),
            stall_timeout_s=30.0,
            resume_grace_s=10.0,
            heartbeat_s=0.2,
        )
        # The whole point: a node died mid-backup, the wire dropped
        # connections, backends threw — and the restore is bit-exact.
        assert restored == data
        cluster = snap["store"]["cluster"]
        assert cluster["nodes_alive"] == 2
        assert cluster["nodes_died"] == 1
        assert cluster["repairs_auto"] >= 1
        assert "degraded_reads" in cluster
        # Fault accounting is surfaced alongside service metrics.
        assert snap["faults"]["spec"].startswith("seed=13")
        assert snap["faults"]["io_errors"] > 0 or snap["faults"]["kills"] == 1
        # Resume never re-ships acked frames: everything the client
        # replayed was still unacked, so the server-side transfer log
        # saw each unique chunk exactly once.
        log = report.transfer
        assert log.chunks_received == report.n_chunks - report.duplicate_chunks


# ----------------------------------------------------------------------
# feeder-thread join deadline (satellite)
# ----------------------------------------------------------------------


class _StuckShredder:
    """Pipeline that wedges (as if in native code) after one batch."""

    def __init__(self, hang_s: float):
        self.hang_s = hang_s

    def pipeline_batches(self, data, batch_chunks=None):
        yield "first"
        time.sleep(self.hang_s)
        yield "late"


class TestFeederJoin:
    def test_wedged_feeder_is_abandoned_with_warning(self, monkeypatch):
        monkeypatch.setattr(client_mod, "_FEED_JOIN_DEADLINE", 0.1)
        before = client_mod._abandoned_feeders

        async def scenario():
            agen = client_mod._feed(_StuckShredder(1.0), b"", None)
            assert await agen.__anext__() == "first"
            # Yield to the loop so the feeder's put() future resolves
            # and the thread advances into its (wedged) sleep.
            await asyncio.sleep(0.05)
            with pytest.warns(RuntimeWarning, match="feeder thread"):
                await agen.aclose()  # consumer bails; feeder is wedged

        asyncio.run(scenario())
        assert client_mod._abandoned_feeders == before + 1

    def test_prompt_feeder_joins_without_warning(self, recwarn):
        async def scenario():
            agen = client_mod._feed(_StuckShredder(0.0), b"", None)
            got = [item async for item in agen]
            assert got == ["first", "late"]

        asyncio.run(scenario())
        assert not [w for w in recwarn if w.category is RuntimeWarning]


# ----------------------------------------------------------------------
# fsync durability knob (satellite)
# ----------------------------------------------------------------------


class TestFsyncKnob:
    def test_explicit_fsync_counts(self, tmp_path):
        with PersistentBackend(tmp_path / "b", fsync=True) as b:
            assert b.fsync is True
            b.put_batch([(b"k1", b"v1")])
            b.flush()
            b.put_batch([(b"k2", b"v2")])
            b.flush()
            assert b.stats.fsyncs == 2

    def test_default_is_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FSYNC_ENV, raising=False)
        with PersistentBackend(tmp_path / "b") as b:
            assert b.fsync is False
            b.put_batch([(b"k", b"v")])
            b.flush()
            assert b.stats.fsyncs == 0

    @pytest.mark.parametrize(
        "value,expected",
        [("1", True), ("true", True), ("on", True), ("0", False), ("", False)],
    )
    def test_env_resolution(self, tmp_path, monkeypatch, value, expected):
        monkeypatch.setenv(FSYNC_ENV, value)
        with PersistentBackend(tmp_path / "b") as b:
            assert b.fsync is expected

    def test_explicit_arg_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FSYNC_ENV, "1")
        with PersistentBackend(tmp_path / "b", fsync=False) as b:
            assert b.fsync is False
