"""Tests for the backup-as-a-service front-end (wire protocol, server,
tenancy, client, metrics)."""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable
from repro.core.hashing import chunk_hash
from repro.service import (
    AsyncBackupClient,
    BackupService,
    RemoteAgent,
    ServiceConfig,
)
from repro.service import protocol as wire
from repro.service.metrics import render_text, service_snapshot
from repro.service.protocol import Err, Msg, ProtocolError, RemoteError
from repro.service.tenant import TenantRegistry, valid_tenant

MB = 1 << 20


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def run_service(fn, **config):
    """Boot a service, run ``await fn(service)``, tear down cleanly."""

    async def main():
        async with BackupService(ServiceConfig(**config)) as service:
            return await fn(service)

    return asyncio.run(main())


@pytest.fixture(scope="module")
def image() -> MasterImage:
    return MasterImage(size=2 * MB, segment_size=32 * 1024, seed=19)


@pytest.fixture(scope="module")
def snapshots(image):
    """Three generations of the same image at 30% segment churn."""
    table = SimilarityTable.uniform(0.3, image.n_segments)
    return [image.snapshot(table, gen) for gen in (1, 2, 3)]


async def connect(service, tenant="default", **kwargs):
    return await AsyncBackupClient.connect(
        "127.0.0.1", service.port, tenant=tenant, **kwargs
    )


# ----------------------------------------------------------------------
# protocol codec
# ----------------------------------------------------------------------


class TestCodec:
    def test_hello_round_trip(self):
        payload = wire.encode_hello("acme", "agent-7")
        assert wire.decode_hello(payload) == (
            wire.PROTOCOL_VERSION,
            "acme",
            "agent-7",
            "",
            wire.PURPOSE_BACKUP,
        )

    def test_hello_ok_round_trip(self):
        payload = wire.encode_hello_ok("acme-3", 8)
        assert wire.decode_hello_ok(payload) == (wire.PROTOCOL_VERSION, 8, "acme-3")

    def test_snapshot_id_round_trip(self):
        payload = wire.encode_snapshot_id("snap/with unicode ✓")
        assert wire.decode_snapshot_id(payload) == "snap/with unicode ✓"

    def test_digest_batch_query_mode(self):
        digests = [bytes([i]) * 32 for i in range(5)]
        mode, got, lengths = wire.decode_digest_batch(
            wire.encode_digest_batch(digests)
        )
        assert mode == wire.MODE_QUERY and got == digests and lengths is None

    def test_digest_batch_decide_mode(self):
        digests = [bytes([i]) * 32 for i in range(5)]
        sizes = [100, 200, 300, 400, 500]
        mode, got, lengths = wire.decode_digest_batch(
            wire.encode_digest_batch(digests, sizes)
        )
        assert mode == wire.MODE_DECIDE and got == digests and lengths == sizes

    def test_digest_reply_round_trip(self):
        flags = [True, False, True, True, False]
        assert wire.decode_digest_reply(wire.encode_digest_reply(flags)) == flags

    def test_chunk_batch_round_trip(self):
        items = [(chunk_hash(b"a" * 10), b"a" * 10), (chunk_hash(b"bb"), b"bb")]
        assert wire.decode_chunk_batch(wire.encode_chunk_batch(items)) == items

    def test_pointer_batch_round_trip(self):
        digests = [chunk_hash(bytes([i])) for i in range(7)]
        assert wire.decode_pointer_batch(wire.encode_pointer_batch(digests)) == digests

    def test_batch_ok_round_trip(self):
        assert wire.decode_batch_ok(wire.encode_batch_ok(42, 1 << 40)) == (42, 1 << 40)

    def test_finish_ok_round_trip(self):
        assert wire.decode_finish_ok(wire.encode_finish_ok(10, 20, 1 << 33)) == (
            10, 20, 1 << 33,
        )

    def test_restore_begin_round_trip(self):
        assert wire.decode_restore_begin(wire.encode_restore_begin(1 << 34, 9)) == (
            1 << 34, 9,
        )

    def test_snapshot_list_round_trip(self):
        ids = ["a", "b/c", "day-2026-08-08"]
        assert wire.decode_snapshot_list(wire.encode_snapshot_list(ids)) == ids

    def test_error_round_trip(self):
        code, message = wire.decode_error(
            wire.encode_error(Err.BUSY, "session limit reached")
        )
        assert code is Err.BUSY and message == "session limit reached"

    def test_error_unknown_code_degrades_to_internal(self):
        payload = wire.encode_error(Err.BUSY, "x")
        mangled = (999).to_bytes(2, "big") + payload[2:]
        code, _ = wire.decode_error(mangled)
        assert code is Err.INTERNAL

    def test_truncated_payload_rejected(self):
        payload = wire.encode_chunk_batch([(chunk_hash(b"x"), b"x" * 50)])
        with pytest.raises(ProtocolError):
            wire.decode_chunk_batch(payload[:-3])

    def test_trailing_bytes_rejected(self):
        payload = wire.encode_snapshot_id("s") + b"junk"
        with pytest.raises(ProtocolError):
            wire.decode_snapshot_id(payload)

    def test_mixed_digest_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            wire.encode_digest_batch([b"\x00" * 32, b"\x00" * 16])

    def test_empty_digest_batch_rejected(self):
        with pytest.raises(ProtocolError):
            wire.encode_digest_batch([])

    def test_read_frame_rejects_unknown_type(self):
        async def check():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xfa" + (0).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="unknown frame type"):
                await wire.read_frame(reader)

        asyncio.run(check())

    def test_read_frame_rejects_oversized(self):
        async def check():
            reader = asyncio.StreamReader()
            reader.feed_data(
                bytes([int(Msg.CHUNK_BATCH)]) + (1 << 30).to_bytes(4, "big")
            )
            with pytest.raises(ProtocolError, match="exceeds"):
                await wire.read_frame(reader, max_frame=1 << 20)

        asyncio.run(check())


# ----------------------------------------------------------------------
# tenant namespaces
# ----------------------------------------------------------------------


class TestTenants:
    def test_name_validation(self):
        assert valid_tenant("acme") and valid_tenant("a.b-c_9")
        assert not valid_tenant("") and not valid_tenant("-x")
        assert not valid_tenant("a/b") and not valid_tenant("a" * 65)

    def test_scoped_ids(self):
        registry = TenantRegistry()
        ns = registry.get("acme")
        assert ns.scoped_id("snap1") == "acme/snap1"
        assert ns.unscope("acme/snap1") == "snap1"
        assert ns.unscope("beta/snap1") is None
        with pytest.raises(ValueError):
            ns.scoped_id("a/b")
        with pytest.raises(ValueError):
            ns.scoped_id("")
        registry.close()

    def test_registry_rejects_bad_names(self):
        registry = TenantRegistry()
        with pytest.raises(ValueError):
            registry.get("../escape")
        registry.close()

    def test_registry_caches_namespaces(self):
        registry = TenantRegistry()
        assert registry.get("a") is registry.get("a")
        assert len(registry) == 1
        registry.close()


# ----------------------------------------------------------------------
# service sessions
# ----------------------------------------------------------------------


class TestService:
    def test_backup_restore_round_trip(self, snapshots):
        async def scenario(service):
            client = await connect(service, "acme")
            report = await client.backup(snapshots[0], "gen1")
            restored = await client.restore("gen1")
            await client.close()
            return report, restored

        report, restored = run_service(scenario)
        assert restored == snapshots[0]
        assert report.n_chunks > 0
        assert report.transfer.total_items == report.n_chunks

    def test_matches_in_process_dedup_pattern(self, snapshots):
        """Remote decisions replay the in-process single path exactly."""
        with BackupServer(BackupConfig()) as server:
            expected = [
                server.backup_snapshot(data, f"gen{i}")
                for i, data in enumerate(snapshots)
            ]
            local_restores = [
                server.agent.restore(f"gen{i}") for i in range(len(snapshots))
            ]

        async def scenario(service):
            client = await connect(service, "acme")
            reports = [
                await client.backup(data, f"gen{i}")
                for i, data in enumerate(snapshots)
            ]
            restores = [
                await client.restore(f"gen{i}") for i in range(len(snapshots))
            ]
            await client.close()
            return reports, restores

        reports, restores = run_service(scenario)
        assert restores == local_restores == snapshots
        for got, want in zip(reports, expected):
            assert got.n_chunks == want.n_chunks
            assert got.duplicate_chunks == want.duplicate_chunks
            assert got.shipped_bytes == want.shipped_bytes

    def test_two_tenants_share_payloads_not_snapshots(self, snapshots):
        data = snapshots[0]

        async def scenario(service):
            acme = await connect(service, "acme")
            beta = await connect(service, "beta")
            r1 = await acme.backup(data, "snap")
            chunks_after_acme = service.store.chunk_count
            r2 = await beta.backup(data, "snap")  # same id, other namespace
            chunks_after_beta = service.store.chunk_count
            listings = (await acme.list_snapshots(), await beta.list_snapshots())
            restored = (await acme.restore("snap"), await beta.restore("snap"))
            # beta's generation-2 snapshot is invisible to acme
            await beta.backup(snapshots[1], "snap2")
            acme_sees = await acme.list_snapshots()
            with pytest.raises(RemoteError) as err:
                await acme.restore("snap2")
            await acme.close()
            await beta.close()
            return (
                r1, r2, chunks_after_acme, chunks_after_beta,
                listings, restored, acme_sees, err.value.code,
            )

        (r1, r2, after_acme, after_beta, listings, restored,
         acme_sees, err_code) = run_service(scenario)
        # Payload storage dedups across tenants: beta's identical bytes
        # added no chunks to the shared store...
        assert after_beta == after_acme
        # ...but its *wire* decisions were tenant-scoped: nothing in
        # beta's empty index matched, so everything shipped again (the
        # dedup side channel stays closed).
        assert r2.duplicate_chunks == r1.duplicate_chunks
        assert r2.shipped_bytes == r1.shipped_bytes
        assert listings == (["snap"], ["snap"])
        assert restored == (data, data)
        assert acme_sees == ["snap"]
        assert err_code is Err.UNKNOWN_SNAPSHOT

    def test_concurrent_multi_client_fuzz(self, image):
        """N interleaved agents across tenants; every restore byte-exact
        and dedup equivalent to an in-process per-tenant server."""
        table = SimilarityTable.uniform(0.4, image.n_segments)
        jobs = [  # (tenant, snapshot_id, data)
            (f"t{i % 3}", f"snap-{i}", image.snapshot(table, i + 1))
            for i in range(9)
        ]

        # In-process reference: one BackupServer per tenant (tenant-
        # scoped index), same arrival order per tenant.
        expected = {}
        servers = {name: BackupServer(BackupConfig()) for name in ("t0", "t1", "t2")}
        try:
            for tenant, sid, data in jobs:
                report = servers[tenant].backup_snapshot(data, sid)
                expected[(tenant, sid)] = (
                    report.n_chunks, report.duplicate_chunks, report.shipped_bytes,
                )
        finally:
            for server in servers.values():
                server.close()

        async def scenario(service):
            # One shared lock per tenant serializes that tenant's
            # backups (matching the reference order) while different
            # tenants genuinely interleave on the server.
            locks = {name: asyncio.Lock() for name in ("t0", "t1", "t2")}

            async def one(tenant, sid, data):
                async with locks[tenant]:
                    client = await connect(service, tenant)
                    report = await client.backup(data, sid)
                    restored = await client.restore(sid)
                    await client.close()
                return (tenant, sid), report, restored

            results = await asyncio.gather(
                *(one(*job) for job in jobs)
            )
            return results, service.metrics.sessions_total

        results, sessions = run_service(scenario)
        assert sessions == len(jobs)
        by_key = {key: (report, restored) for key, report, restored in results}
        for tenant, sid, data in jobs:
            report, restored = by_key[(tenant, sid)]
            assert restored == data, (tenant, sid)
            assert (
                report.n_chunks, report.duplicate_chunks, report.shipped_bytes,
            ) == expected[(tenant, sid)], (tenant, sid)

    def test_disk_restart_resumes_snapshots(self, tmp_path, snapshots):
        data_dir = str(tmp_path / "svc")

        async def first(service):
            client = await connect(service, "acme")
            report = await client.backup(snapshots[0], "gen1")
            await client.close()
            return report

        report1 = run_service(first, backend="disk", data_dir=data_dir)

        async def second(service):
            client = await connect(service, "acme")
            listing = await client.list_snapshots()
            restored = await client.restore("gen1")
            # Same bytes again: the reopened tenant index remembers, so
            # every chunk dedups and nothing re-ships.
            report = await client.backup(snapshots[0], "gen1-again")
            await client.close()
            return listing, restored, report

        listing, restored, report2 = run_service(
            second, backend="disk", data_dir=data_dir
        )
        assert listing == ["gen1"]
        assert restored == snapshots[0]
        assert report2.n_chunks == report1.n_chunks
        assert report2.duplicate_chunks == report2.n_chunks
        assert report2.shipped_bytes == 0

    def test_duplicate_snapshot_id_rejected(self):
        async def scenario(service):
            client = await connect(service)
            await client.backup(b"x" * 50_000, "snap")
            with pytest.raises(RemoteError) as err:
                await client.begin_snapshot("snap")
            await client.close()
            return err.value.code

        assert run_service(scenario) is Err.SNAPSHOT_EXISTS

    def test_corrupted_chunk_payload_rejected(self):
        async def scenario(service):
            client = await connect(service)
            await client.begin_snapshot("snap")
            bogus = [(chunk_hash(b"the truth"), b"something else")]
            with pytest.raises(RemoteError) as err:
                await client.ship_chunks(bogus)
            return err.value.code, service.store.chunk_count

        code, chunk_count = run_service(scenario)
        assert code is Err.DIGEST_MISMATCH
        assert chunk_count == 0  # nothing of the poisoned batch stored

    def test_unknown_pointer_rejected(self):
        async def scenario(service):
            client = await connect(service)
            await client.begin_snapshot("snap")
            with pytest.raises(RemoteError) as err:
                await client.ship_pointers([chunk_hash(b"never shipped")])
            return err.value.code

        assert run_service(scenario) is Err.UNKNOWN_CHUNK

    def test_disconnect_aborts_open_snapshot(self):
        async def scenario(service):
            client = await connect(service, "acme")
            await client.begin_snapshot("half")
            payload = b"p" * 10_000
            await client.ship_chunks([(chunk_hash(payload), payload)])
            await client.close()  # vanish mid-snapshot
            for _ in range(50):
                if not service.agent.open_snapshots:
                    break
                await asyncio.sleep(0.01)
            fresh = await connect(service, "acme")
            listing = await fresh.list_snapshots()
            await fresh.close()
            return service.agent.open_snapshots, listing

        open_snapshots, listing = run_service(scenario)
        assert open_snapshots == ()  # aborted, no recipe published
        assert listing == []

    def test_version_mismatch_rejected(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(wire.MAGIC)
            writer.write(
                wire.encode_frame(
                    Msg.HELLO, wire.encode_hello("acme", version=99)
                )
            )
            await writer.drain()
            msg, payload = await wire.read_frame(reader)
            writer.close()
            return msg, wire.decode_error(payload)[0]

        msg, code = run_service(scenario)
        assert msg is Msg.ERROR and code is Err.VERSION_MISMATCH

    def test_admission_control_busy(self):
        async def scenario(service):
            first = await connect(service)
            with pytest.raises(RemoteError) as err:
                await connect(service)
            await first.close()
            return err.value.code, service.metrics.sessions_rejected

        code, rejected = run_service(scenario, max_sessions=1)
        assert code is Err.BUSY and rejected == 1

    def test_bad_tenant_rejected(self):
        async def scenario(service):
            with pytest.raises(RemoteError) as err:
                await connect(service, tenant="../etc")
            return err.value.code

        assert run_service(scenario) is Err.BAD_TENANT

    def test_backpressure_bounded_by_queue_depth(self):
        """A slow server never buffers more than the bounded queue per
        connection; the reader stalls instead (TCP pushes back)."""

        async def scenario(service):
            original = service._send_frame

            async def slow_send(writer, msg, payload=b""):
                if msg is Msg.BATCH_OK:
                    await asyncio.sleep(0.002)  # slow consumer
                await original(writer, msg, payload)

            service._send_frame = slow_send
            client = await connect(service, "acme")
            await client.begin_snapshot("snap")
            # Blast ship frames without waiting for acks — the ingest
            # worker (slowed above) falls behind the socket.
            payloads = [bytes([i]) * 1000 for i in range(40)]
            for data in payloads:
                client.writer.write(
                    wire.encode_frame(
                        Msg.CHUNK_BATCH,
                        wire.encode_chunk_batch([(chunk_hash(data), data)]),
                    )
                )
            await client.writer.drain()
            for _ in payloads:
                await client._expect(Msg.BATCH_OK)
            await client.finish_snapshot("snap")
            restored = await client.restore("snap")
            await client.close()
            assert restored == b"".join(payloads)
            return service.metrics

        metrics = run_service(scenario, queue_depth=2)
        assert metrics.backpressure_waits > 0
        assert 0 < metrics.max_queue_depth <= 2

    def test_restore_streams_in_pieces(self):
        data = b"r" * 300_000

        async def scenario(service):
            client = await connect(service)
            await client.backup(data, "snap")
            restored = await client.restore("snap")
            await client.close()
            return restored

        # 64 KiB pieces -> the 300 KB restore crosses several frames.
        assert run_service(scenario, restore_piece=1 << 16) == data

    def test_cluster_store_backend(self, snapshots):
        async def scenario(service):
            client = await connect(service, "acme")
            r1 = await client.backup(snapshots[0], "gen1")
            r2 = await client.backup(snapshots[1], "gen2")
            restored = (await client.restore("gen1"), await client.restore("gen2"))
            await client.close()
            return r1, r2, restored

        r1, r2, restored = run_service(
            scenario, store_backend="cluster", cluster_nodes=3
        )
        assert restored == (snapshots[0], snapshots[1])
        assert r2.duplicate_chunks > 0  # generations overlap

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(store_backend="raid")
        with pytest.raises(ValueError):
            ServiceConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServiceConfig(backend="memory", data_dir="/tmp/x")


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------


class TestHttpSurface:
    @staticmethod
    def _get(port: int, path: str):
        # urllib in a thread: the server handles HTTP on the same loop.
        async def fetch():
            return await asyncio.to_thread(
                lambda: urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=5
                ).read()
            )
        return fetch()

    def test_health_and_metrics(self, snapshots):
        async def scenario(service):
            client = await connect(service, "acme")
            await client.backup(snapshots[0], "gen1")
            health = json.loads(await self._get(service.port, "/health"))
            doc = json.loads(await self._get(service.port, "/metrics"))
            text = (
                await self._get(service.port, "/metrics?format=text")
            ).decode()
            await client.close()
            return health, doc, text

        health, doc, text = run_service(scenario)
        assert health["status"] == "ok"
        assert set(doc) == {"service", "store", "tenants", "core"}
        assert doc["store"]["chunks"] > 0
        acme = doc["tenants"]["acme"]
        assert acme["chunks_received"] > 0
        assert acme["snapshots_finished"] == 1
        assert doc["service"]["sessions_total"] == 1
        assert doc["core"]["backends"]["instances"] > 0
        assert "repro_store_chunks" in text
        assert "repro_tenants_acme_chunks_received" in text

    def test_unknown_path_404(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"GET /nope HTTP/1.0\r\n\r\n")
            await writer.drain()
            response = await reader.read()
            writer.close()
            return response

        assert run_service(scenario).startswith(b"HTTP/1.0 404")

    def test_render_text_flattens_numbers_only(self):
        text = render_text(
            {"a": {"b": 1, "name": "skipped"}, "c": 2.5, "flag": True}
        ).decode()
        assert text.splitlines() == ["repro_a_b 1", "repro_c 2.5", "repro_flag 1"]

    def test_service_snapshot_shape(self):
        async def scenario(service):
            client = await connect(service, "acme")
            await client.backup(b"z" * 100_000, "s")
            await client.close()
            return service_snapshot(service)

        doc = run_service(scenario)
        assert doc["service"]["connections_total"] >= 1
        assert doc["tenants"]["acme"]["dedup"]["total_chunks"] > 0
        assert doc["store"]["snapshots"] == 1


# ----------------------------------------------------------------------
# synchronous drop-in agent
# ----------------------------------------------------------------------


@pytest.fixture()
def live_service():
    """A real service on a background loop, for synchronous clients."""
    import threading

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def boot():
        service = BackupService(ServiceConfig())
        await service.start()
        return service

    service = asyncio.run_coroutine_threadsafe(boot(), loop).result()
    try:
        yield service
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


class TestRemoteAgent:
    def test_agent_surface(self, live_service):
        payload = b"q" * 20_000
        with RemoteAgent("127.0.0.1", live_service.port, tenant="acme") as agent:
            agent.begin_snapshot("s")
            agent.receive_chunk("s", payload)
            agent.receive_pointer("s", chunk_hash(payload))
            log = agent.finish_snapshot("s")
            assert (log.chunks_received, log.pointers_received) == (1, 1)
            assert log.bytes_received == len(payload)
            assert agent.restore("s") == payload * 2
            assert agent.store.has_chunk(chunk_hash(payload))
            assert not agent.store.has_chunk(chunk_hash(b"absent"))
            assert agent.list_snapshots() == ["s"]

    def test_digest_verification_over_the_wire(self, live_service):
        with RemoteAgent("127.0.0.1", live_service.port) as agent:
            agent.begin_snapshot("s")
            agent.receive_chunk("s", b"data", digest=chunk_hash(b"other"))
            with pytest.raises(RemoteError, match="does not match"):
                agent.finish_snapshot("s")  # flush ships the bad batch

    def test_drives_in_process_backup_server(self, live_service, snapshots):
        """RemoteAgent is a drop-in where ShredderAgent is used today:
        an unmodified BackupServer backs up through it over the wire."""
        agent = RemoteAgent("127.0.0.1", live_service.port, tenant="acme")
        with BackupServer(BackupConfig(), agent=agent) as server:
            report = server.backup_snapshot(snapshots[0], "via-wire")
            assert report.transfer.total_items == report.n_chunks
            assert agent.restore("via-wire") == snapshots[0]
        agent.close()
