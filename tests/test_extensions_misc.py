"""Tests for occupancy, HDFS re-replication, backup GC, persistence, CLI."""

from __future__ import annotations

import pytest

from repro.backup import ChunkStore, SnapshotRecipe
from repro.core.hashing import chunk_hash
from repro.gpu import GPUDevice
from repro.gpu.occupancy import (
    MAX_BLOCKS_PER_SM,
    MAX_WARPS_PER_SM,
    KernelResources,
    occupancy,
)
from repro.hdfs import HDFSCluster
from repro.mapreduce import MemoServer
from repro.workloads import seeded_bytes


class TestOccupancy:
    def test_shared_memory_limits_coalesced_kernel(self):
        """A full 48 KB tile per block allows exactly one block per SM."""
        occ = occupancy(KernelResources(shared_memory_per_block=48 * 1024))
        assert occ.blocks_per_sm == 1
        assert occ.limiting_resource == "shared memory"

    def test_no_shared_memory_limited_elsewhere(self):
        occ = occupancy(KernelResources(shared_memory_per_block=0))
        assert occ.blocks_per_sm > 1
        assert occ.limiting_resource != "shared memory"

    def test_register_pressure(self):
        occ = occupancy(
            KernelResources(
                threads_per_block=512,
                registers_per_thread=60,
                shared_memory_per_block=0,
            )
        )
        assert occ.limiting_resource == "registers"
        assert occ.blocks_per_sm == 1  # 512*60 > 32768/2

    def test_block_slot_ceiling(self):
        occ = occupancy(
            KernelResources(
                threads_per_block=32, registers_per_thread=1,
                shared_memory_per_block=0,
            )
        )
        assert occ.blocks_per_sm <= MAX_BLOCKS_PER_SM

    def test_warps_never_exceed_hardware(self):
        for tpb in (32, 128, 512, 1024):
            occ = occupancy(
                KernelResources(threads_per_block=tpb, shared_memory_per_block=0)
            )
            assert occ.warps_per_sm <= MAX_WARPS_PER_SM
            assert 0.0 <= occ.occupancy_fraction <= 1.0

    def test_kernel_report(self):
        from repro.gpu import ChunkingKernel

        device = GPUDevice()
        kernel = ChunkingKernel()
        coalesced = kernel.occupancy_report(device, coalesced=True)
        naive = kernel.occupancy_report(device, coalesced=False)
        assert coalesced.limiting_resource == "shared memory"
        assert naive.blocks_per_sm > coalesced.blocks_per_sm

    def test_invalid_resources(self):
        with pytest.raises(ValueError):
            KernelResources(threads_per_block=0)


class TestReReplication:
    def make_cluster(self):
        cluster = HDFSCluster(num_datanodes=5, replication=2)
        data = seeded_bytes(100_000, seed=61)
        cluster.client.copy_from_local(data, "/f", block_size=16 * 1024)
        return cluster, data

    def test_failure_creates_under_replication(self):
        cluster, _ = self.make_cluster()
        assert cluster.namenode.under_replicated_blocks() == []
        cluster.datanodes[0].fail()
        assert len(cluster.namenode.under_replicated_blocks()) > 0

    def test_re_replicate_restores_target(self):
        cluster, data = self.make_cluster()
        cluster.datanodes[0].fail()
        created = cluster.namenode.re_replicate()
        assert created > 0
        assert cluster.namenode.under_replicated_blocks() == []

    def test_survives_second_failure_after_repair(self):
        """The point of repair: a later failure of another node is safe."""
        cluster, data = self.make_cluster()
        cluster.datanodes[0].fail()
        cluster.namenode.re_replicate()
        cluster.datanodes[1].fail()
        assert cluster.client.read("/f") == data

    def test_without_repair_second_failure_can_lose_data(self):
        cluster, data = self.make_cluster()
        cluster.datanodes[0].fail()
        cluster.datanodes[1].fail()
        # Some block may now have zero live replicas; repair can't help it.
        doomed = [
            b for b in cluster.namenode.under_replicated_blocks()
            if not cluster.namenode.replica_nodes(b.block_id)
        ]
        if doomed:  # placement is load-based, so this is the common case
            with pytest.raises(RuntimeError):
                cluster.client.read("/f")

    def test_repair_is_idempotent(self):
        cluster, _ = self.make_cluster()
        cluster.datanodes[0].fail()
        cluster.namenode.re_replicate()
        assert cluster.namenode.re_replicate() == 0


class TestBackupGC:
    def populated_store(self):
        store = ChunkStore()
        chunks = {f"c{i}": bytes([i]) * 100 for i in range(4)}
        digests = {}
        for name, data in chunks.items():
            d = chunk_hash(data)
            store.put_chunk(d, data)
            digests[name] = d
        store.put_recipe(SnapshotRecipe("s1", (digests["c0"], digests["c1"]), 200))
        store.put_recipe(SnapshotRecipe("s2", (digests["c1"], digests["c2"]), 200))
        return store, digests

    def test_gc_keeps_referenced(self):
        store, digests = self.populated_store()
        freed = store.garbage_collect()
        assert freed == 100  # only c3 is unreferenced
        assert store.has_chunk(digests["c1"])

    def test_delete_recipe_then_gc(self):
        store, digests = self.populated_store()
        store.garbage_collect()
        store.delete_recipe("s1")
        freed = store.garbage_collect()
        assert freed == 100  # c0 now unreferenced; c1 still held by s2
        assert not store.has_chunk(digests["c0"])
        assert store.restore("s2") == bytes([1]) * 100 + bytes([2]) * 100

    def test_delete_unknown_recipe(self):
        store, _ = self.populated_store()
        with pytest.raises(KeyError):
            store.delete_recipe("nope")

    def test_gc_empty_store(self):
        assert ChunkStore().garbage_collect() == 0


class TestMemoPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        memo = MemoServer()
        memo.put("map:j:p:abc", {"0": [(b"k", 1)]})
        memo.put("contract:xyz", [(b"k", 2)])
        path = tmp_path / "memo.pkl"
        memo.save(path)
        loaded = MemoServer.load(path)
        assert loaded.get("map:j:p:abc") == {"0": [(b"k", 1)]}
        assert len(loaded) == 2
        assert loaded.hits == 1  # counters reset, then one hit from get

    def test_load_rejects_garbage(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            MemoServer.load(path)


class TestCLI:
    @pytest.fixture()
    def sample_file(self, tmp_path):
        path = tmp_path / "sample.bin"
        path.write_bytes(seeded_bytes(150_000, seed=62))
        return str(path)

    def test_chunk_command(self, sample_file, capsys):
        from repro.cli import main

        assert main(["chunk", sample_file, "--mask-bits", "10"]) == 0
        out = capsys.readouterr().out
        assert "chunks, mean" in out

    def test_dedup_command(self, tmp_path, sample_file, capsys):
        from repro.cli import main

        other = tmp_path / "other.bin"
        data = seeded_bytes(150_000, seed=62)
        other.write_bytes(data[:75_000] + seeded_bytes(75_000, seed=63))
        assert main(["dedup", sample_file, str(other), "--mask-bits", "10"]) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out

    def test_table1_command(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        assert "1030 GFlops" in capsys.readouterr().out

    def test_throughput_command(self, capsys):
        from repro.cli import main

        assert main(["throughput"]) == 0
        out = capsys.readouterr().out
        assert "GPU Streams + Memory" in out

    def test_backup_command(self, sample_file, capsys):
        from repro.cli import main

        assert main(["backup", sample_file, "--engine", "cpu"]) == 0
        assert "restore verified" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
