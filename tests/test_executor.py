"""Tests for the threaded Shredder executor and the boundary stitcher."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import Chunker, ChunkerConfig, select_cuts
from repro.core.executor import BoundaryStitcher, ShredderExecutor
from repro.core.shredder import ShredderConfig
from tests.conftest import seeded_bytes

SMALL = ChunkerConfig(mask_bits=6, marker=0x2A)


def executor_for(cfg: ChunkerConfig, buffer_size: int = 64 * 1024) -> ShredderExecutor:
    return ShredderExecutor(
        ShredderConfig.gpu_streams_memory(chunker=cfg, buffer_size=buffer_size)
    )


class TestBoundaryStitcher:
    def test_simple_passthrough(self):
        st_ = BoundaryStitcher(ChunkerConfig(mask_bits=6, marker=0x2A))
        chunks = list(st_.push(b"a" * 100, [30, 70]))
        chunks += list(st_.finish())
        assert [(c.offset, c.length) for c in chunks] == [(0, 30), (30, 40), (70, 30)]

    def test_candidate_held_until_confirmed(self):
        """A cut at the current end of data must wait unless real."""
        st_ = BoundaryStitcher(ChunkerConfig(mask_bits=6, marker=0x2A))
        first = list(st_.push(b"a" * 50, []))
        assert first == []  # no cut yet; 50 might continue
        rest = list(st_.push(b"b" * 50, [60]))
        assert [(c.offset, c.length) for c in rest] == [(0, 60)]
        tail = list(st_.finish())
        assert [(c.offset, c.length) for c in tail] == [(60, 40)]

    def test_candidate_exactly_at_end_emitted(self):
        st_ = BoundaryStitcher(ChunkerConfig(mask_bits=6, marker=0x2A))
        out = list(st_.push(b"a" * 50, [50]))
        assert [(c.offset, c.length) for c in out] == [(0, 50)]

    @given(
        candidates=st.lists(st.integers(1, 500), max_size=40),
        min_size=st.integers(0, 50),
        max_gap=st.integers(50, 200) | st.none(),
        split=st.integers(1, 499),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_select_cuts(self, candidates, min_size, max_gap, split):
        """Stitching buffer-by-buffer == whole-buffer sequential select."""
        length = 500
        cands = sorted(set(candidates))
        cfg = ChunkerConfig(
            mask_bits=6, marker=0x2A, min_size=min_size, max_size=max_gap
        )
        stitcher = BoundaryStitcher(cfg)
        data = seeded_bytes(length, seed=1)
        chunks = list(
            stitcher.push(data[:split], [c for c in cands if c <= split])
        )
        chunks += list(
            stitcher.push(data[split:], [c for c in cands if c > split])
        )
        chunks += list(stitcher.finish())
        expected = select_cuts(cands, length, min_size, max_gap)
        assert [c.end for c in chunks] == expected
        assert b"".join(c.data for c in chunks) == data


class TestShredderExecutor:
    def test_matches_reference_chunker(self):
        data = seeded_bytes(300_000, seed=52)
        chunks, totals = executor_for(SMALL).run(data)
        reference = Chunker(SMALL).chunk(data)
        assert [(c.offset, c.digest) for c in chunks] == [
            (c.offset, c.digest) for c in reference
        ]
        assert totals.bytes == len(data)
        assert totals.buffers == -(-len(data) // (64 * 1024))

    def test_with_min_max(self):
        cfg = ChunkerConfig(mask_bits=6, marker=0x2A, min_size=64, max_size=512)
        data = seeded_bytes(200_000, seed=53)
        chunks, _ = executor_for(cfg).run(data)
        reference = Chunker(cfg).chunk(data)
        assert [(c.offset, c.length) for c in chunks] == [
            (c.offset, c.length) for c in reference
        ]

    def test_stream_input(self):
        data = seeded_bytes(150_000, seed=54)
        pieces = [data[i : i + 33333] for i in range(0, len(data), 33333)]
        chunks, _ = executor_for(SMALL).run(iter(pieces))
        assert b"".join(c.data for c in chunks) == data

    def test_empty_input(self):
        chunks, totals = executor_for(SMALL).run(b"")
        assert chunks == [] and totals.buffers == 0

    def test_device_memory_released(self):
        from repro.gpu import GPUDevice

        device = GPUDevice()
        executor = ShredderExecutor(
            ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=64 * 1024),
            device=device,
        )
        executor.run(seeded_bytes(200_000, seed=55))
        assert device.allocated_bytes == 0

    def test_timing_totals_accumulate(self):
        data = seeded_bytes(200_000, seed=56)
        _, totals = executor_for(SMALL).run(data)
        assert totals.transfer_seconds > 0
        assert totals.kernel_seconds > 0

    def test_rejects_cpu_backend(self):
        with pytest.raises(ValueError, match="GPU"):
            ShredderExecutor(ShredderConfig.cpu())

    def test_rejects_tiny_buffers(self):
        with pytest.raises(ValueError, match="window"):
            ShredderExecutor(
                ShredderConfig.gpu_streams_memory(chunker=SMALL, buffer_size=16)
            )
