"""Tests for the banked device-memory model and coalescing rules (§4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.coalescing import (
    coalesce_half_warp,
    coalesced_trace,
    is_coalescable,
    naive_trace,
)
from repro.gpu.device_memory import DeviceMemoryConfig, DeviceMemoryModel

MB = 1 << 20


@pytest.fixture(scope="module")
def model() -> DeviceMemoryModel:
    return DeviceMemoryModel()


class TestBankMapping:
    def test_consecutive_stripes_rotate_banks(self, model):
        cfg = model.config
        banks = [model._bank_and_row(i * cfg.interleave)[0] for i in range(cfg.num_banks)]
        assert sorted(banks) == list(range(cfg.num_banks))

    def test_same_stripe_same_bank(self, model):
        cfg = model.config
        b0, _ = model._bank_and_row(0)
        b1, _ = model._bank_and_row(cfg.interleave - 1)
        assert b0 == b1

    def test_rows_advance_within_bank(self, model):
        cfg = model.config
        _, r0 = model._bank_and_row(0)
        # Same bank, far enough to be in another row.
        far = cfg.interleave * cfg.num_banks * (cfg.row_size // cfg.interleave)
        b, r1 = model._bank_and_row(far)
        assert b == model._bank_and_row(0)[0]
        assert r1 > r0


class TestSimulation:
    def test_empty_trace(self, model):
        stats = model.simulate([])
        assert stats.transactions == 0 and stats.cycles == 0.0

    def test_rejects_nonpositive_size(self, model):
        with pytest.raises(ValueError):
            model.simulate([(0, 0)])

    def test_sequential_mostly_row_hits(self, model):
        trace = [(i * 64, 64) for i in range(4096)]
        stats = model.simulate(trace)
        assert stats.bank_conflict_rate < 0.1

    def test_row_thrashing_all_misses(self, model):
        cfg = model.config
        # Alternate between two rows of the same bank.
        row_stride = cfg.interleave * cfg.num_banks * (cfg.row_size // cfg.interleave)
        trace = [((i % 2) * row_stride, 32) for i in range(2048)]
        stats = model.simulate(trace)
        assert stats.bank_conflict_rate > 0.99

    def test_conflicts_cost_cycles(self, model):
        cfg = model.config
        row_stride = cfg.interleave * cfg.num_banks * (cfg.row_size // cfg.interleave)
        hit_trace = [(0, 32)] * 2048
        miss_trace = [((i % 2) * row_stride, 32) for i in range(2048)]
        assert model.simulate(miss_trace).cycles > 2 * model.simulate(hit_trace).cycles

    def test_small_transactions_waste_bus(self, model):
        stats = model.simulate([(i * 512, 4) for i in range(512)])
        assert stats.transferred_bytes == 512 * model.config.min_transaction
        assert stats.efficiency == pytest.approx(4 / 32)

    def test_peak_bandwidth_bounded(self, model):
        """Even a perfect stream cannot exceed the bus rate."""
        trace = [(i * 128, 128) for i in range(8192)]
        stats = model.simulate(trace)
        assert stats.bytes_per_cycle <= model.config.bus_bytes_per_cycle

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_cycles_positive_and_consistent(self, seed):
        import random

        rng = random.Random(seed)
        model = DeviceMemoryModel()
        trace = [(rng.randrange(0, 1 << 24), rng.choice([4, 32, 64, 128])) for _ in range(200)]
        stats = model.simulate(trace)
        assert stats.cycles > 0
        assert stats.transactions == 200
        assert stats.row_hits + stats.row_misses == 200


class TestCoalescingRules:
    """The three manufacturer conditions quoted in §4.3."""

    def test_valid_access(self):
        addrs = [4096 + 4 * i for i in range(16)]
        assert is_coalescable(addrs, 4)

    def test_element_size_must_be_4_8_16(self):
        addrs = [0, 2]
        assert not is_coalescable(addrs, 2)
        assert is_coalescable([0, 8], 8)

    def test_contiguity_required(self):
        addrs = [4096 + 4 * i for i in range(16)]
        addrs[7] += 4  # break the Nth-thread/Nth-element correspondence
        assert not is_coalescable(addrs, 4)

    def test_alignment_required(self):
        addrs = [4 + 4 * i for i in range(16)]  # base not multiple of 16
        assert not is_coalescable(addrs, 4)

    def test_more_than_half_warp_rejected(self):
        addrs = [4 * i for i in range(17)]
        assert not is_coalescable(addrs, 4)

    def test_coalesced_becomes_one_transaction(self):
        addrs = [4 * i for i in range(16)]
        assert coalesce_half_warp(addrs, 4) == [(0, 64)]

    def test_uncoalesced_one_per_thread(self):
        addrs = [i * 1000 for i in range(16)]
        txs = coalesce_half_warp(addrs, 4)
        assert len(txs) == 16
        assert all(size == 4 for _, size in txs)


class TestTraces:
    def test_naive_never_coalesces(self):
        trace = naive_trace(64 * MB, 3584)
        assert all(size == 4 for _, size in trace)

    def test_coalesced_full_segments(self):
        trace = coalesced_trace(64 * MB, 3584)
        assert all(size == 64 for _, size in trace)

    def test_coalesced_beats_naive(self, model):
        """The core §4.3 result: cooperative fetch is many times faster."""
        naive = model.simulate(naive_trace(64 * MB, 3584))
        coal = model.simulate(coalesced_trace(64 * MB, 3584))
        assert coal.bytes_per_cycle > 5 * naive.bytes_per_cycle

    def test_naive_conflict_heavy_at_scale(self, model):
        stats = model.simulate(naive_trace(64 * MB, 3584))
        assert stats.bank_conflict_rate > 0.9

    def test_coalesced_row_friendly(self, model):
        stats = model.simulate(coalesced_trace(64 * MB, 3584))
        assert stats.bank_conflict_rate < 0.1
