"""Threaded tile scan + stage-overlapped pipeline (PR 3).

Differential guarantees under test:

* the threaded region scan is bit-identical to ``SerialEngine`` across
  tile-seam edge cases (cut exactly on a seam, window larger than the
  tile, tiny inputs, markerless data);
* the scan → hash → consume pipeline yields exactly the chunks of the
  serial streaming path, in stream order, with digests prefilled;
* the pipelined backup server matches the stage-at-a-time server on
  every observable (reports, recipes, restores) for both store
  backends;
* the ``REPRO_THREADS`` / ``set_threads`` knob and the shared pools
  behave (0/1 = serial, pools survive close/reuse cycles).
"""

from __future__ import annotations

import random

import pytest

from repro.backup import BackupConfig, BackupServer
from repro.core import (
    Chunker,
    ChunkerConfig,
    SerialEngine,
    VectorEngine,
    close_pools,
    get_threads,
    parallel_candidate_cuts,
    pipeline_chunks,
    set_threads,
)
from repro.core.chunking import stream_chunks
from repro.core.hashing import digest_many
from repro.core.pipeline import PipelineError
from repro.core import threads as threads_mod
from repro.workloads import seeded_bytes

MASK = (1 << 13) - 1
MARKER = 0x1A2B & MASK
#: Small-geometry config so a few KiB of data crosses many tiles/seams.
SMALL = dict(lanes=16, tile_bytes=512)


def chunk_shape(chunks):
    return [(c.offset, c.length, c.digest) for c in chunks]


@pytest.fixture(autouse=True)
def _restore_threads():
    yield
    set_threads(None)


class TestThreadsConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert get_threads() == 3

    def test_env_serial_values(self, monkeypatch):
        for raw in ("0", "1"):
            monkeypatch.setenv("REPRO_THREADS", raw)
            assert get_threads() <= 1

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "lots")
        with pytest.raises(ValueError, match="REPRO_THREADS"):
            get_threads()

    def test_set_threads_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "2")
        set_threads(6)
        assert get_threads() == 6
        set_threads(None)
        assert get_threads() == 2

    def test_set_threads_rejects_negative(self):
        with pytest.raises(ValueError):
            set_threads(-1)

    def test_close_pools_idempotent_and_reusable(self):
        pool = threads_mod.scan_pool(2)
        assert pool.submit(lambda: 21 * 2).result() == 42
        close_pools()
        close_pools()  # second close is a no-op
        fresh = threads_mod.scan_pool(2)
        assert fresh is not pool
        assert fresh.submit(lambda: 7).result() == 7

    def test_serial_threads_disable_hash_pool(self):
        set_threads(1)
        pieces = [bytes([i]) * 4096 for i in range(64)]
        assert digest_many(pieces, parallel=True) == digest_many(
            pieces, parallel=False
        )


class TestThreadedScanDifferential:
    """Threaded region scan vs the pure-Python rolling reference."""

    @pytest.fixture(scope="class")
    def serial(self) -> SerialEngine:
        return SerialEngine()

    @pytest.mark.parametrize("threads", [2, 3, 5, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzz_small_tiles(self, serial, threads, seed):
        set_threads(4)  # force real pool execution regardless of host CPUs
        data = seeded_bytes(16 * 1024, seed=seed)
        ve = VectorEngine(threads=threads, **SMALL)
        assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
            data, MASK, MARKER
        )

    def test_cut_exactly_on_seam(self, serial):
        """Force a region seam exactly at (and around) a known cut."""
        data = seeded_bytes(32 * 1024, seed=7)
        cuts = serial.candidate_cuts(data, MASK, MARKER)
        assert cuts, "fixture data must contain at least one marker"
        w = serial.fingerprinter.window_size
        for cut in cuts[:3]:
            start = cut - w  # window-start offset of the marker window
            for tile in (start - 1, start, start + 1):
                if tile < 1:
                    continue
                # min_region == tile_bytes, so seams land at multiples
                # of ``tile`` in window-start space.
                ve = VectorEngine(lanes=8, tile_bytes=tile, threads=64)
                assert ve.candidate_cuts(data, MASK, MARKER) == cuts

    def test_window_larger_than_tile(self, serial):
        data = seeded_bytes(8 * 1024, seed=11)
        w = serial.fingerprinter.window_size
        ve = VectorEngine(lanes=4, tile_bytes=w // 3, threads=6)
        assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
            data, MASK, MARKER
        )

    def test_tiny_inputs(self, serial):
        ve = VectorEngine(lanes=4, tile_bytes=8, threads=4)
        w = ve.window_size
        for n in (0, 1, w - 1, w, w + 1, w + 7):
            data = seeded_bytes(max(n, 1), seed=n)[:n]
            assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
                data, MASK, MARKER
            )

    def test_markerless_data(self, serial):
        # A constant-byte run yields one fingerprint for every window;
        # pick a byte whose fingerprint misses the marker.
        for fill in range(256):
            data = bytes([fill]) * 8192
            if not serial.candidate_cuts(data[:256], MASK, MARKER):
                break
        else:  # pragma: no cover - defensive
            pytest.skip("every constant byte hits the marker?!")
        ve = VectorEngine(lanes=8, tile_bytes=256, threads=5)
        assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
            data, MASK, MARKER
        )

    def test_follows_process_default(self, monkeypatch):
        data = seeded_bytes(64 * 1024, seed=3)
        ve = VectorEngine(**SMALL)  # threads=None follows the setting
        set_threads(1)
        serial_cuts = ve.candidate_cuts(data, MASK, MARKER)
        assert ve.effective_threads() == 1
        set_threads(4)
        assert ve.effective_threads() == 4
        assert ve.candidate_cuts(data, MASK, MARKER) == serial_cuts

    def test_parallel_candidate_cuts_shared_with_host_chunker(self):
        """The folded implementation: engine-level region scan equals a
        region split at any worker count, SerialEngine included."""
        data = seeded_bytes(4096, seed=13)
        serial = SerialEngine()
        expected = serial.candidate_cuts(data, MASK, MARKER)
        for workers in (1, 2, 3, 7):
            got = parallel_candidate_cuts(
                serial, data, MASK, MARKER, workers
            ).tolist()
            assert got == expected

    def test_chunker_end_to_end_threaded(self):
        """Full Chunker (min/max + digests) over a threaded engine."""
        config = ChunkerConfig(min_size=512, max_size=4096)
        data = seeded_bytes(96 * 1024, seed=21)
        reference = Chunker(config, SerialEngine()).chunk(data)
        threaded = Chunker(
            config, VectorEngine(threads=4, **SMALL)
        ).chunk(data)
        assert chunk_shape(threaded) == chunk_shape(reference)


class TestFusedKernelUnderThreads:
    """Fused S-step roll under region fan-out: seam-exact at any width.

    The fused kernel must compose with ``parallel_candidate_cuts`` the
    same way the 1-step loop does — every (threads, roll_steps) pairing
    reproduces the pure-Python reference bit-exactly, including seams
    landing mid-launch-block.
    """

    @pytest.fixture(scope="class")
    def serial(self) -> SerialEngine:
        return SerialEngine()

    @pytest.mark.parametrize("threads", [2, 4])
    @pytest.mark.parametrize("steps", [2, 8, 32])
    def test_fuzz_threads_x_steps(self, serial, threads, steps):
        set_threads(4)
        data = seeded_bytes(24 * 1024, seed=steps * 7 + threads)
        ve = VectorEngine(threads=threads, roll_steps=steps, **SMALL)
        assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
            data, MASK, MARKER
        )

    def test_cut_on_seam_fused(self, serial):
        """Seams placed exactly at (and around) known cuts, fused kernel."""
        data = seeded_bytes(32 * 1024, seed=7)
        cuts = serial.candidate_cuts(data, MASK, MARKER)
        assert cuts, "fixture data must contain at least one marker"
        w = serial.fingerprinter.window_size
        for cut in cuts[:2]:
            start = cut - w
            for tile in (start - 1, start, start + 1):
                if tile < 1:
                    continue
                ve = VectorEngine(lanes=8, tile_bytes=tile, threads=64, roll_steps=8)
                assert ve.candidate_cuts(data, MASK, MARKER) == cuts

    def test_window_larger_than_tile_fused(self, serial):
        data = seeded_bytes(8 * 1024, seed=11)
        w = serial.fingerprinter.window_size
        ve = VectorEngine(lanes=4, tile_bytes=w // 3, threads=6, roll_steps=32)
        assert ve.candidate_cuts(data, MASK, MARKER) == serial.candidate_cuts(
            data, MASK, MARKER
        )

    def test_chunker_end_to_end_fused_threaded(self):
        config = ChunkerConfig(min_size=512, max_size=4096)
        data = seeded_bytes(96 * 1024, seed=22)
        reference = Chunker(config, SerialEngine()).chunk(data)
        fused = Chunker(
            config, VectorEngine(threads=4, roll_steps=8, **SMALL)
        ).chunk(data)
        assert chunk_shape(fused) == chunk_shape(reference)


class TestPipelineOrdering:
    CONFIG = ChunkerConfig(mask_bits=10, marker=0x1AB, min_size=64, max_size=4096)

    def _buffers(self, data: bytes, seed: int):
        rng = random.Random(seed)
        out, pos = [], 0
        while pos < len(data):
            step = rng.randint(1, 8 * 1024)
            out.append(data[pos : pos + step])
            pos += step
        return out

    @pytest.mark.parametrize("workers", [1, 4])  # inline and threaded paths
    @pytest.mark.parametrize("seed", [0, 4])
    @pytest.mark.parametrize("batch_chunks", [1, 7, 256])
    def test_batches_preserve_stream_order(self, seed, batch_chunks, workers):
        set_threads(workers)
        data = seeded_bytes(192 * 1024, seed=seed)
        chunker = Chunker(self.CONFIG)
        expected = list(chunker.chunk_stream(self._buffers(data, seed)))
        batches = list(
            pipeline_chunks(
                chunker.candidate_cuts,
                self.CONFIG,
                self._buffers(data, seed),
                batch_chunks=batch_chunks,
                queue_depth=2,
            )
        )
        flat = [c for batch in batches for c in batch]
        assert chunk_shape(flat) == chunk_shape(expected)
        # Digests arrive prefilled — the hash stage ran.
        assert all(c._digest is not None for batch in batches for c in batch)
        # Offsets strictly increase: recipes can be built batch-by-batch.
        offsets = [c.offset for c in flat]
        assert offsets == sorted(offsets)
        assert all(len(b) <= batch_chunks for b in batches)

    def test_chunk_pipelined_matches_chunk(self):
        data = seeded_bytes(128 * 1024, seed=9)
        chunker = Chunker(self.CONFIG)
        whole = chunker.chunk(data)
        piped = list(chunker.chunk_pipelined(self._buffers(data, 9)))
        assert chunk_shape(piped) == chunk_shape(whole)

    @pytest.mark.parametrize("workers", [1, 4])  # same error type both ways
    def test_stage_error_propagates(self, workers):
        set_threads(workers)

        def bad_candidates(data):
            raise RuntimeError("scan exploded")

        with pytest.raises(PipelineError, match="scan exploded"):
            list(
                pipeline_chunks(
                    bad_candidates, self.CONFIG, [b"x" * 4096], batch_chunks=4
                )
            )

    def test_early_close_stops_workers(self):
        set_threads(4)  # worker-thread teardown is the interesting case
        data = seeded_bytes(256 * 1024, seed=1)
        gen = pipeline_chunks(
            Chunker(self.CONFIG).candidate_cuts,
            self.CONFIG,
            self._buffers(data, 1),
            batch_chunks=2,
            queue_depth=1,
        )
        assert next(gen)  # at least one batch flows
        gen.close()  # must not hang or leak the worker threads

    def test_rejects_bad_parameters(self):
        chunker = Chunker(self.CONFIG)
        with pytest.raises(ValueError):
            list(pipeline_chunks(chunker.candidate_cuts, self.CONFIG, [], batch_chunks=0))
        with pytest.raises(ValueError):
            list(pipeline_chunks(chunker.candidate_cuts, self.CONFIG, [], queue_depth=0))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_tuned_batch_default_matches_explicit(self, workers):
        """``batch_chunks=None`` follows the tuned tile, chunks unchanged."""
        from repro.core.autotune import ScanGeometry, clear_geometry, set_geometry

        set_threads(workers)
        data = seeded_bytes(128 * 1024, seed=17)
        chunker = Chunker(self.CONFIG)
        expected = list(chunker.chunk_stream(self._buffers(data, 17)))
        set_geometry(ScanGeometry(tile_bytes=64 * 1024))
        try:
            batches = list(
                pipeline_chunks(
                    chunker.candidate_cuts, self.CONFIG, self._buffers(data, 17)
                )
            )
        finally:
            clear_geometry()
        flat = [c for batch in batches for c in batch]
        assert chunk_shape(flat) == chunk_shape(expected)
        # 64 KiB tile / 1 KiB expected chunks -> 64-chunk batches.
        assert all(len(b) <= 64 for b in batches)
        assert len(batches[0]) == 64  # really followed the tile

    @pytest.mark.parametrize("workers", [1, 4])
    def test_stage_timers_accumulate(self, workers):
        """The scan/hash stage split is recorded either execution mode."""
        from repro.core.stats import reset_stage_times, stage_times

        set_threads(workers)
        data = seeded_bytes(128 * 1024, seed=23)
        reset_stage_times()
        list(
            pipeline_chunks(
                Chunker(self.CONFIG).candidate_cuts,
                self.CONFIG,
                self._buffers(data, 23),
                batch_chunks=16,
            )
        )
        times = stage_times()
        assert times.get("scan", 0.0) > 0.0
        assert times.get("hash", 0.0) > 0.0
        reset_stage_times()


class TestPipelinedBackupServer:
    @pytest.mark.parametrize("store_backend", ["single", "cluster"])
    @pytest.mark.parametrize("engine", ["gpu", "cpu"])
    def test_matches_unpipelined(self, engine, store_backend):
        from repro.backup import MasterImage, SimilarityTable

        image = MasterImage(size=1 << 20, segment_size=32 * 1024, seed=31)
        t = SimilarityTable.uniform(0.3, image.n_segments)
        snap = image.snapshot(t, 2)
        observed = []
        for pipelined in (True, False):
            cfg = BackupConfig(
                engine=engine,
                store_backend=store_backend,
                pipelined=pipelined,
                pipeline_batch_chunks=19,  # force many small batches
            )
            with BackupServer(cfg) as server:
                r0 = server.backup_snapshot(image.data, "master")
                r1 = server.backup_snapshot(snap, "gen")
                assert server.agent.restore("gen") == snap
                recipe = server.agent.store.get_recipe("gen")
                observed.append(
                    (
                        r0.n_chunks, r0.duplicate_chunks, r0.shipped_bytes,
                        r1.n_chunks, r1.duplicate_chunks, r1.shipped_bytes,
                        recipe.digests,
                    )
                )
        assert observed[0] == observed[1]

    def test_recipe_preserves_stream_order(self):
        """Chunks/pointers must reach the agent in stream order even
        though scan, hash, and shipping overlap."""
        data = seeded_bytes(1 << 20, seed=5)
        with BackupServer(BackupConfig(pipeline_batch_chunks=11)) as server:
            server.backup_snapshot(data, "snap")
            recipe = server.agent.store.get_recipe("snap")
            restored = b"".join(
                server.agent.store.get_chunk(d) for d in recipe.digests
            )
        assert restored == data

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BackupConfig(pipeline_batch_chunks=0)
