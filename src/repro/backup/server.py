"""Backup server with Shredder-accelerated deduplication (§7.2-7.3).

Pipeline per the paper: the Reader pulls the mounted image snapshot, the
Shredder library forms chunks (min/max chunk sizes enabled, as commercial
backup systems require), the Store thread hashes chunks and enqueues the
fingerprints on an index-lookup queue, and a lookup thread ships either
the chunk payload or a pointer to the backup-site agent.

Timing model (drives Fig. 18's bandwidth curves): the pipeline's
steady-state bandwidth is the input size over the slowest stage —

* image generation / reader I/O at 10 Gbps (§7.3's emulation rate);
* chunking (GPU Shredder or pthreads CPU); with min/max enabled the GPU
  path pays an extra Store-thread post-filtering cost per byte, since
  "the data that is skipped after a chunk boundary is still scanned" and
  boundaries are discarded only afterwards (the limitation §7.3 calls
  out, capping the speedup at ~2.5x);
* hashing of chunk payloads;
* the *unoptimized* index lookup plus network shipping of unique bytes —
  the component the paper blames for bandwidth dropping as similarity
  decreases.

With ``store_backend="cluster"`` the backup site is a sharded,
replicated :class:`~repro.store.cluster.ChunkStoreCluster` and the
index stage runs through its batched, Bloom-filtered lookup path —
the optimization §7.3's closing discussion points at: the per-digest
dispatch cost amortizes over the batch and negative lookups stop
paying the full-index miss price.

With ``backend="disk"`` (or ``REPRO_STORE_BACKEND=disk``) every state
owner — the dedup index, the site store or cluster shards, and the
recipes — lives on the persistent log+LSM backend under ``data_dir``
(``index/``, ``site/`` or ``cluster/``), so a server can be closed and
a new one opened on the same ``data_dir``: every snapshot restores
bit-identical and the reopened index/cluster answer ``lookup_batch``
with the same hit/miss pattern as before the restart.

With ``pipelined=True`` (the default) the server *executes* as the
paper's pipeline instead of running stage-at-a-time: chunks arrive in
digested batches from a bounded scan→hash pipeline
(:meth:`repro.core.shredder.Shredder.pipeline_batches`), and each
batch's index/cluster lookups and agent shipping run while later
buffers are still being scanned and hashed.  Chunks, dedup decisions,
shipped bytes, and recipes are bit-identical to the unpipelined path
(``pipelined=False``, kept for differential testing); only the
cluster's ``lookup_stats`` batch counters — and therefore the modeled
index-stage seconds — may differ, because probes are issued per
pipeline batch instead of once per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.backup.agent import ShredderAgent, TransferLog
from repro.backup.store import ChunkStore
from repro.core.chunking import ChunkerConfig, ensure_digests
from repro.core.dedup import DedupIndex
from repro.core.shredder import Shredder, ShredderConfig
from repro.store.backend import make_backend, resolve_backend
from repro.store.cluster import ChunkStoreCluster
from repro.store.lookup import BatchLookupStats, LookupCostModel
from repro.store.schemes import make_scheme

__all__ = ["BackupConfig", "BackupReport", "BackupServer"]

GBPS = 1e9 / 8  # bytes/s per Gbit/s


def _default_backup_chunker() -> ChunkerConfig:
    """4 KB expected chunks with min/max enabled (§7.3)."""
    return ChunkerConfig(mask_bits=12, marker=0xABC, min_size=1024, max_size=16384)


@dataclass(frozen=True)
class BackupConfig:
    """Backup-server configuration."""

    chunker: ChunkerConfig = field(default_factory=_default_backup_chunker)
    #: Chunking engine: "gpu" (Shredder) | "cpu" (pthreads baseline).
    engine: str = "gpu"
    #: Storage backend for every state owner (dedup index, site store /
    #: cluster shards, recipes): "memory" | "disk"; ``None`` follows
    #: ``REPRO_STORE_BACKEND`` (default memory, or disk when a
    #: ``data_dir`` is given).
    backend: str | None = None
    #: Root directory for disk-backed state; ``None`` + disk backend
    #: runs on ephemeral temp directories (removed on close).
    data_dir: str | None = None
    #: Snapshot generation / reader rate (the paper emulates 10 Gbps).
    generation_bandwidth: float = 10 * GBPS
    #: Network link to the backup site.
    link_bandwidth: float = 10 * GBPS
    #: Aggregated chunk-hash throughput (SHA pipelined on host cores).
    hash_bandwidth: float = 4e9
    #: Index lookup costs (unoptimized, per §7.3's closing discussion).
    lookup_hit_s: float = 2e-6
    lookup_miss_s: float = 12e-6
    #: Extra Store-thread cost per byte when min/max filtering runs on the
    #: host after an unmodified GPU scan (the §7.3 limitation).
    minmax_filter_s_per_byte: float = 4e-10
    #: Backup-site store: "single" (flat in-memory ChunkStore) or
    #: "cluster" (sharded/replicated store behind batched Bloom lookups).
    store_backend: str = "single"
    #: Cluster sizing and placement (ignored for the single backend).
    cluster_nodes: int = 4
    placement: str = "replicated"  # "vanilla" | "striped" | "replicated" | "ec"
    replication: int = 2
    stripe_width: int = 4
    #: Erasure-coding geometry (placement="ec"): k data + m parity
    #: fragments per chunk on k + m distinct nodes.
    ec_k: int = 4
    ec_m: int = 2
    #: Bounded cluster retry budgets; ``None`` keeps the cluster's
    #: defaults (READ_ATTEMPTS / PUT_ATTEMPTS).
    read_attempts: int | None = None
    put_attempts: int | None = None
    #: Batched-lookup knobs: digests per batch, per-batch dispatch cost,
    #: and the in-memory Bloom probe that replaces full-index misses.
    lookup_batch_size: int = 128
    batch_rtt_s: float = 5e-5
    bloom_probe_s: float = 2e-7
    bloom_fp_rate: float = 0.01
    #: Execute the backup as a bounded scan → hash → lookup/ship
    #: pipeline (stage overlap on real threads); ``False`` runs the
    #: stage-at-a-time path, kept bit-identical for differential tests.
    pipelined: bool = True
    #: Chunks per pipeline batch handed to the lookup/ship stage;
    #: ``None`` follows the autotuned scan-tile geometry (one hashing
    #: pass per scan tile).
    pipeline_batch_chunks: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("gpu", "cpu"):
            raise ValueError(f"unknown engine {self.engine!r}")
        resolve_backend(self.backend, self.data_dir)  # raises on bad kind
        if self.store_backend not in ("single", "cluster"):
            raise ValueError(f"unknown store backend {self.store_backend!r}")
        if self.cluster_nodes < 1:
            raise ValueError("cluster_nodes must be >= 1")
        if self.lookup_batch_size < 1:
            raise ValueError("lookup_batch_size must be >= 1")
        if self.pipeline_batch_chunks is not None and self.pipeline_batch_chunks < 1:
            raise ValueError("pipeline_batch_chunks must be >= 1")
        if self.ec_k < 1 or self.ec_m < 0:
            raise ValueError("ec geometry wants k >= 1 and m >= 0")
        if self.read_attempts is not None and self.read_attempts < 1:
            raise ValueError("read_attempts must be >= 1")
        if self.put_attempts is not None and self.put_attempts < 1:
            raise ValueError("put_attempts must be >= 1")


@dataclass
class BackupReport:
    """Outcome of backing up one snapshot."""

    snapshot_id: str
    total_bytes: int
    n_chunks: int
    duplicate_chunks: int
    shipped_bytes: int
    stage_seconds: dict[str, float]
    transfer: TransferLog
    #: Batched-lookup outcome counters (cluster backend only).
    lookup_stats: BatchLookupStats | None = None

    @property
    def simulated_seconds(self) -> float:
        """Pipeline steady state: the slowest stage dominates."""
        return max(self.stage_seconds.values())

    @property
    def backup_bandwidth_gbps(self) -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return self.total_bytes / self.simulated_seconds / GBPS

    @property
    def dedup_fraction(self) -> float:
        return self.duplicate_chunks / self.n_chunks if self.n_chunks else 0.0

    @property
    def bottleneck(self) -> str:
        return max(self.stage_seconds, key=self.stage_seconds.get)


class BackupServer:
    """Consolidated backup server; state persists across snapshots."""

    def __init__(
        self,
        config: BackupConfig | None = None,
        agent: ShredderAgent | None = None,
    ) -> None:
        self.config = config or BackupConfig()
        cfg = self.config
        self.storage_kind = resolve_backend(cfg.backend, cfg.data_dir)
        data_dir = Path(cfg.data_dir) if cfg.data_dir is not None else None
        self.cluster: ChunkStoreCluster | None = None
        self._owns_store = agent is None
        if cfg.store_backend == "cluster":
            if agent is not None:
                # An agent carries its own site store; pairing it with
                # the cluster would ship chunks past the store the
                # lookup path probes, silently disabling dedup.
                raise ValueError(
                    "store_backend='cluster' manages its own backup-site "
                    "agent; do not pass one"
                )
            self.cluster = ChunkStoreCluster(
                n_nodes=cfg.cluster_nodes,
                scheme=make_scheme(
                    cfg.placement,
                    replicas=cfg.replication,
                    stripe_width=cfg.stripe_width,
                    ec_k=cfg.ec_k,
                    ec_m=cfg.ec_m,
                ),
                read_attempts=cfg.read_attempts,
                put_attempts=cfg.put_attempts,
                batch_size=cfg.lookup_batch_size,
                bloom_fp_rate=cfg.bloom_fp_rate,
                cost_model=LookupCostModel(
                    hit_s=cfg.lookup_hit_s,
                    miss_s=cfg.lookup_miss_s,
                    bloom_probe_s=cfg.bloom_probe_s,
                    batch_rtt_s=cfg.batch_rtt_s,
                ),
                backend=self.storage_kind,
                data_dir=data_dir / "cluster" if data_dir is not None else None,
            )
            agent = ShredderAgent(store=self.cluster)
        elif agent is None:
            agent = ShredderAgent(
                store=ChunkStore(
                    backend=self.storage_kind,
                    data_dir=data_dir / "site" if data_dir is not None else None,
                )
            )
        elif cfg.backend is not None or cfg.data_dir is not None:
            # The caller's agent carries its own store; silently ignoring
            # the requested storage backend would fake durability.
            raise ValueError(
                "an explicit agent carries its own store; do not also "
                "request backend/data_dir"
            )
        self.agent = agent
        self.index = DedupIndex(
            make_backend(
                self.storage_kind,
                data_dir / "index" if data_dir is not None else None,
            )
        )
        if self.config.engine == "gpu":
            shredder_config = ShredderConfig.gpu_streams_memory(
                chunker=self.config.chunker
            )
        else:
            shredder_config = ShredderConfig.cpu(chunker=self.config.chunker)
        self.shredder = Shredder(shredder_config)
        # Steady-state per-byte chunking cost, evaluated at a large stream
        # size so per-buffer launch overheads don't distort small test
        # snapshots (backup servers run long streams in steady state).
        reference = 256 * (1 << 20)
        self._chunk_s_per_byte = (
            self.shredder.simulate(reference).simulated_seconds / reference
        )

    def close(self) -> None:
        self.shredder.close()
        self.index.close()
        if self.cluster is not None:
            self.cluster.close()
        elif self._owns_store:
            self.agent.store.close()

    def __enter__(self) -> "BackupServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _decide_batch(
        self,
        batch,
        seen: set[bytes],
        lookup_stats: BatchLookupStats | None,
    ) -> list[bool]:
        """Dup/unique decision per chunk of one ordered batch.

        ``seen`` carries digests from earlier batches of the same
        snapshot, so a repeat of a digest whose first copy already
        shipped becomes a pointer — exactly the whole-snapshot
        semantics, evaluated incrementally.
        """
        if self.cluster is not None:
            # The cluster is authoritative: hits are chunks some shard
            # already stores.  Probe only digests this snapshot has not
            # decided yet — earlier batches' digests are dups by
            # definition (their first copy shipped or was a hit).
            fresh = [c for c in batch if c.digest not in seen]
            hit_map: dict[bytes, bool] = {}
            if fresh:
                hit_map, stats = self.cluster.lookup_chunks(fresh)
                lookup_stats.merge(stats)
            decisions = []
            for chunk in batch:
                decisions.append(
                    chunk.digest in seen or hit_map.get(chunk.digest, False)
                )
                seen.add(chunk.digest)
            # Keep the server-side index warm so both backends expose
            # identical dedup statistics.
            self.index.lookup_or_insert_batch(batch)
            return decisions
        decisions = [
            is_dup for is_dup, _ in self.index.lookup_or_insert_batch(batch)
        ]
        # The index can outlive the store (GC reclaimed a chunk, or a
        # persistent index reopened against a sparser site dir): a
        # pointer for a missing chunk would crash the agent.  Verify
        # every claimed dup against the store in one batched probe and
        # re-ship the payload where it is gone — the cluster path gets
        # this for free by probing the store itself.
        dup_digests = [
            c.digest for c, is_dup in zip(batch, decisions) if is_dup
        ]
        if dup_digests:
            stored = iter(self.agent.store.has_chunks(dup_digests))
            decisions = [next(stored) if is_dup else False for is_dup in decisions]
        return decisions

    def backup_snapshot(self, data: bytes, snapshot_id: str) -> BackupReport:
        """Deduplicate and ship one image snapshot to the backup site.

        Pipelined (the default): digested chunk batches stream out of
        the bounded scan→hash pipeline in input order, and this stage's
        batched index/cluster probes + agent shipping overlap the scan
        and hash of later buffers.  ``pipelined=False`` falls back to
        stage-at-a-time execution (one batch spanning the snapshot);
        both produce identical chunks, decisions, shipped bytes, and
        recipes (the cluster's per-batch lookup counters are the one
        observable allowed to differ).
        """
        cfg = self.config
        if cfg.pipelined:
            batches = self.shredder.pipeline_batches(
                data, batch_chunks=cfg.pipeline_batch_chunks
            )
        else:
            whole = self.shredder.process(data)[0]
            ensure_digests(whole)
            batches = iter([whole])

        lookup_stats: BatchLookupStats | None = (
            BatchLookupStats() if self.cluster is not None else None
        )
        seen: set[bytes] = set()
        self.agent.begin_snapshot(snapshot_id)
        n_chunks = 0
        duplicates = 0
        shipped = 0
        for batch in batches:
            n_chunks += len(batch)
            decisions = self._decide_batch(batch, seen, lookup_stats)
            # Ship through the agent's batched surface: consecutive
            # same-decision runs become one CHUNK_BATCH-shaped call or
            # one pointer batch, so the recipe order (arrival order at
            # the agent) is exactly the per-chunk path's.
            i = 0
            while i < len(batch):
                is_dup = decisions[i]
                j = i
                while j < len(batch) and decisions[j] == is_dup:
                    j += 1
                run = batch[i:j]
                if is_dup:
                    duplicates += len(run)
                    self.agent.receive_pointers(
                        snapshot_id, [c.digest for c in run]
                    )
                else:
                    shipped += sum(c.length for c in run)
                    # Only unique chunks materialize their payload; the
                    # digest rides along as an end-to-end integrity check
                    # the site verifies (batched) before storing.
                    self.agent.receive_chunks(
                        snapshot_id, [(c.digest, c.data) for c in run]
                    )
                i = j
        transfer = self.agent.finish_snapshot(snapshot_id)

        n = len(data)
        chunk_seconds = n * self._chunk_s_per_byte
        if cfg.engine == "gpu" and (
            cfg.chunker.min_size > 0 or cfg.chunker.max_size is not None
        ):
            chunk_seconds += n * cfg.minmax_filter_s_per_byte
        unique = n_chunks - duplicates
        if lookup_stats is not None:
            lookup_seconds = self.cluster.lookup.modeled_seconds(lookup_stats)
        else:
            lookup_seconds = (
                duplicates * cfg.lookup_hit_s + unique * cfg.lookup_miss_s
            )
        stage_seconds = {
            "generation": n / cfg.generation_bandwidth,
            "chunking": chunk_seconds,
            "hashing": n / cfg.hash_bandwidth,
            "index+network": lookup_seconds + shipped / cfg.link_bandwidth,
        }
        return BackupReport(
            snapshot_id=snapshot_id,
            total_bytes=n,
            n_chunks=n_chunks,
            duplicate_chunks=duplicates,
            shipped_bytes=shipped,
            stage_seconds=stage_seconds,
            transfer=transfer,
            lookup_stats=lookup_stats,
        )
