"""VM image generation for the backup experiment (§7.3).

The paper could not recreate a fibre-channel backup testbed, so it used a
memory-driven emulation: a *master image* is divided into segments, and an
*image similarity table* gives the probability that each segment is
replaced by different content in a given snapshot.  We reproduce that
methodology exactly: snapshots are derived from a seeded master image by
re-rolling segments according to the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.datagen import seeded_bytes

__all__ = ["SimilarityTable", "MasterImage"]

MB = 1 << 20


@dataclass(frozen=True)
class SimilarityTable:
    """Per-segment replacement probabilities.

    ``uniform(p, n)`` builds the table used in Fig. 18, where every
    segment has the same probability ``p`` of being replaced.
    """

    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        for p in self.probabilities:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")

    @classmethod
    def uniform(cls, p: float, n_segments: int) -> "SimilarityTable":
        return cls(tuple([p] * n_segments))

    def __len__(self) -> int:
        return len(self.probabilities)


class MasterImage:
    """A seeded master VM image divided into fixed-size segments."""

    def __init__(
        self, size: int = 8 * MB, segment_size: int = 64 * 1024, seed: int = 101
    ) -> None:
        if size <= 0 or segment_size <= 0:
            raise ValueError("size and segment_size must be positive")
        self.size = size
        self.segment_size = segment_size
        self.seed = seed
        self.data = seeded_bytes(size, seed)

    @property
    def n_segments(self) -> int:
        return -(-self.size // self.segment_size)

    def segment(self, i: int) -> bytes:
        return self.data[i * self.segment_size : (i + 1) * self.segment_size]

    def snapshot(self, table: SimilarityTable, generation: int) -> bytes:
        """Derive one snapshot: segment ``i`` is replaced with probability
        ``table[i]``; replacement content is deterministic per
        ``(seed, generation, segment)`` so experiments are reproducible."""
        if len(table) != self.n_segments:
            raise ValueError(
                f"similarity table has {len(table)} entries for "
                f"{self.n_segments} segments"
            )
        rng = np.random.default_rng(self.seed * 7919 + generation)
        pieces = []
        draws = rng.random(self.n_segments)
        for i in range(self.n_segments):
            if draws[i] < table.probabilities[i]:
                fresh_seed = hash((self.seed, generation, i)) & 0x7FFFFFFF
                pieces.append(seeded_bytes(len(self.segment(i)), fresh_seed))
            else:
                pieces.append(self.segment(i))
        return b"".join(pieces)

    def expected_change_fraction(self, table: SimilarityTable) -> float:
        """Expected fraction of bytes replaced in a snapshot."""
        total = 0.0
        for i, p in enumerate(table.probabilities):
            total += p * len(self.segment(i))
        return total / self.size
