"""Backup-site chunk store and snapshot recipes."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChunkStore", "SnapshotRecipe"]


@dataclass(frozen=True)
class SnapshotRecipe:
    """Ordered chunk digests that reconstitute one snapshot."""

    snapshot_id: str
    digests: tuple[bytes, ...]
    total_bytes: int


@dataclass
class ChunkStore:
    """Content-addressed chunk storage at the backup site.

    Chunks are stored once per digest; recipes reference them.  This is
    the state the Shredder agent (§7.2) rebuilds snapshots from.
    """

    _chunks: dict[bytes, bytes] = field(default_factory=dict)
    _recipes: dict[str, SnapshotRecipe] = field(default_factory=dict)

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk; returns False if it was already present."""
        if digest in self._chunks:
            return False
        self._chunks[digest] = bytes(data)
        return True

    def has_chunk(self, digest: bytes) -> bool:
        return digest in self._chunks

    def get_chunk(self, digest: bytes) -> bytes:
        try:
            return self._chunks[digest]
        except KeyError:
            raise KeyError(f"chunk {digest.hex()[:16]} missing from store") from None

    def put_recipe(self, recipe: SnapshotRecipe) -> None:
        if recipe.snapshot_id in self._recipes:
            raise ValueError(f"snapshot {recipe.snapshot_id!r} already stored")
        missing = [d for d in recipe.digests if d not in self._chunks]
        if missing:
            raise ValueError(
                f"recipe {recipe.snapshot_id!r} references {len(missing)} "
                "missing chunks"
            )
        self._recipes[recipe.snapshot_id] = recipe

    def get_recipe(self, snapshot_id: str) -> SnapshotRecipe:
        try:
            return self._recipes[snapshot_id]
        except KeyError:
            raise KeyError(f"no snapshot {snapshot_id!r}") from None

    def restore(self, snapshot_id: str) -> bytes:
        """Reassemble a snapshot from its recipe (the agent's job)."""
        recipe = self.get_recipe(snapshot_id)
        return b"".join(self.get_chunk(d) for d in recipe.digests)

    def delete_recipe(self, snapshot_id: str) -> None:
        """Drop a snapshot's recipe (retention expiry).  Chunks remain
        until :meth:`garbage_collect` runs."""
        if snapshot_id not in self._recipes:
            raise KeyError(f"no snapshot {snapshot_id!r}")
        del self._recipes[snapshot_id]

    def garbage_collect(self) -> int:
        """Delete chunks referenced by no recipe; returns bytes freed.

        Mark-and-sweep over the recipe set — the standard reclamation a
        deduplicating backup store needs once snapshots expire (the
        "reference management burden" [24] discusses).
        """
        live: set[bytes] = set()
        for recipe in self._recipes.values():
            live.update(recipe.digests)
        freed = 0
        for digest in [d for d in self._chunks if d not in live]:
            freed += len(self._chunks.pop(digest))
        return freed

    @property
    def stored_bytes(self) -> int:
        return sum(len(c) for c in self._chunks.values())

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def snapshot_count(self) -> int:
        return len(self._recipes)
