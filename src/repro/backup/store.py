"""Backup-site chunk store and snapshot recipes.

State lives on pluggable :class:`~repro.store.backend.ChunkBackend`
instances — one for chunk payloads (digest -> bytes), one for recipes —
so the backup site can run fully in memory (default) or durably on
disk (``backend="disk"`` + ``data_dir``): an append-only chunk log with
an LSM digest index that survives process restarts and recovers from a
torn final record by truncating to the last valid frame.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.store.backend import (
    ChunkBackend,
    RecipeStore,
    make_backend,
    resolve_backend,
)

__all__ = ["ChunkStore", "SnapshotRecipe"]


@dataclass(frozen=True)
class SnapshotRecipe:
    """Ordered chunk digests that reconstitute one snapshot."""

    snapshot_id: str
    digests: tuple[bytes, ...]
    total_bytes: int


class ChunkStore:
    """Content-addressed chunk storage at the backup site.

    Chunks are stored once per digest; recipes reference them.  This is
    the state the Shredder agent (§7.2) rebuilds snapshots from.

    ``backend="memory"`` (default) keeps everything in-process;
    ``backend="disk"`` persists chunks under ``data_dir/chunks`` and
    recipes under ``data_dir/recipes`` so ``ChunkStore(backend="disk",
    data_dir=...)`` reopens the store bit-identical after a restart.
    """

    def __init__(
        self,
        backend: str | None = None,
        data_dir: str | os.PathLike | None = None,
        chunks_backend: ChunkBackend | None = None,
        recipes_backend: ChunkBackend | None = None,
    ) -> None:
        kind = resolve_backend(backend, data_dir)
        base = Path(data_dir) if data_dir is not None else None
        self.backend_kind = kind
        self._chunks = chunks_backend or make_backend(
            kind, base / "chunks" if base is not None else None
        )
        self._recipes = RecipeStore(
            recipes_backend
            or make_backend(kind, base / "recipes" if base is not None else None)
        )

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk; returns False if it was already present."""
        return self._chunks.put_batch([(digest, data)])[0]

    def put_chunks(self, items) -> list[bool]:
        """Store a batch of ``(digest, data)``; flags newly-inserted ones."""
        return self._chunks.put_batch(list(items))

    def has_chunk(self, digest: bytes) -> bool:
        return self._chunks.contains_batch([digest])[0]

    def has_chunks(self, digests) -> list[bool]:
        """Batched membership over chunk digests (one backend probe)."""
        return self._chunks.contains_batch(list(digests))

    def get_chunk(self, digest: bytes) -> bytes:
        data = self._chunks.get_batch([digest])[0]
        if data is None:
            raise KeyError(f"chunk {digest.hex()[:16]} missing from store")
        return data

    def put_recipe(self, recipe: SnapshotRecipe) -> None:
        # RecipeStore.put rejects duplicates; only the chunk-presence
        # invariant is this store's to enforce.
        present = self._chunks.contains_batch(recipe.digests)
        missing = [d for d, ok in zip(recipe.digests, present) if not ok]
        if missing:
            raise ValueError(
                f"recipe {recipe.snapshot_id!r} references {len(missing)} "
                "missing chunks"
            )
        self._recipes.put(recipe)

    def get_recipe(self, snapshot_id: str) -> SnapshotRecipe:
        return self._recipes.get(snapshot_id)

    def snapshot_ids(self) -> list[str]:
        """Sorted ids of every stored snapshot recipe."""
        return self._recipes.ids()

    def restore(self, snapshot_id: str) -> bytes:
        """Reassemble a snapshot from its recipe (the agent's job).

        The whole recipe resolves in one batched read — on a persistent
        store that is one index probe pass plus sequential-ish log reads
        instead of a per-chunk round trip.
        """
        recipe = self.get_recipe(snapshot_id)
        payloads = self._chunks.get_batch(recipe.digests)
        for digest, payload in zip(recipe.digests, payloads):
            if payload is None:
                raise KeyError(
                    f"chunk {digest.hex()[:16]} missing from store"
                )
        return b"".join(payloads)

    def delete_recipe(self, snapshot_id: str) -> None:
        """Drop a snapshot's recipe (retention expiry).  Chunks remain
        until :meth:`garbage_collect` runs."""
        self._recipes.delete(snapshot_id)

    def garbage_collect(self) -> int:
        """Delete chunks referenced by no recipe; returns bytes freed.

        Mark-and-sweep over the recipe set — the standard reclamation a
        deduplicating backup store needs once snapshots expire (the
        "reference management burden" [24] discusses).  On a persistent
        store the sweep also compacts the chunk log, reclaiming the
        dead records' disk space.
        """
        live = self._recipes.live_digests()
        dead = [d for d in self._chunks.keys() if d not in live]
        freed = sum(self._chunks.delete_batch(dead))
        self._chunks.compact()
        return freed

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        self._chunks.flush()
        self._recipes.flush()

    def close(self) -> None:
        self._chunks.close()
        self._recipes.close()

    def __enter__(self) -> "ChunkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ----------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return self._chunks.value_bytes

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def snapshot_count(self) -> int:
        return len(self._recipes)
