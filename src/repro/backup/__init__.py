"""Cloud backup case study: dedup backup server + backup-site agent."""

from repro.backup.agent import ShredderAgent, TransferLog
from repro.backup.image import MasterImage, SimilarityTable
from repro.backup.server import BackupConfig, BackupReport, BackupServer
from repro.backup.store import ChunkStore, SnapshotRecipe

__all__ = [
    "ShredderAgent", "TransferLog", "MasterImage", "SimilarityTable",
    "BackupConfig", "BackupReport", "BackupServer", "ChunkStore",
    "SnapshotRecipe",
]
