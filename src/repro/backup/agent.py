"""Backup-site Shredder agent (§7.2).

"We deploy an additional Shredder agent residing on the backup site,
which receives all the chunks and pointers and recreates the original
uncompressed data."  The agent receives a mixed stream of chunk payloads
and pointers, stores new chunks in the site's content-addressed store,
and finalizes a recipe per snapshot so restores are possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hashing import chunk_hash
from repro.backup.store import ChunkStore, SnapshotRecipe

__all__ = ["ShredderAgent", "TransferLog"]


@dataclass
class TransferLog:
    """What crossed the wire for one snapshot."""

    chunks_received: int = 0
    pointers_received: int = 0
    bytes_received: int = 0

    @property
    def total_items(self) -> int:
        return self.chunks_received + self.pointers_received


@dataclass
class ShredderAgent:
    """Receives chunks/pointers and recreates snapshots."""

    store: ChunkStore = field(default_factory=ChunkStore)
    _open: dict[str, tuple[list[bytes], TransferLog]] = field(default_factory=dict)

    def begin_snapshot(self, snapshot_id: str) -> None:
        if snapshot_id in self._open:
            raise ValueError(f"snapshot {snapshot_id!r} already open")
        self._open[snapshot_id] = ([], TransferLog())

    def _session(self, snapshot_id: str):
        try:
            return self._open[snapshot_id]
        except KeyError:
            raise ValueError(f"snapshot {snapshot_id!r} is not open") from None

    def receive_chunk(self, snapshot_id: str, data: bytes, digest: bytes | None = None) -> None:
        """A new (non-duplicate) chunk payload arrives.

        ``digest`` is the sender's declared content hash.  The agent
        verifies it against the received bytes before storing: a payload
        corrupted (or mis-hashed) in flight must fail loudly here, not
        poison the content-addressed store for every later snapshot that
        dedups against the digest.
        """
        digests, log = self._session(snapshot_id)
        computed = chunk_hash(data)
        if digest is None:
            digest = computed
        elif digest != computed:
            raise ValueError(
                f"chunk payload does not match its declared digest "
                f"{digest.hex()[:16]} in snapshot {snapshot_id!r}"
            )
        self.store.put_chunk(digest, data)
        digests.append(digest)
        log.chunks_received += 1
        log.bytes_received += len(data)

    def receive_pointer(self, snapshot_id: str, digest: bytes) -> None:
        """A pointer to an already-stored chunk arrives."""
        digests, log = self._session(snapshot_id)
        if not self.store.has_chunk(digest):
            raise KeyError(
                f"pointer to unknown chunk {digest.hex()[:16]} in "
                f"snapshot {snapshot_id!r}"
            )
        digests.append(digest)
        log.pointers_received += 1

    def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        """Close the session, persist the recipe, return the transfer log."""
        digests, log = self._session(snapshot_id)
        total = sum(len(self.store.get_chunk(d)) for d in digests)
        self.store.put_recipe(
            SnapshotRecipe(snapshot_id, tuple(digests), total_bytes=total)
        )
        del self._open[snapshot_id]
        return log

    def restore(self, snapshot_id: str) -> bytes:
        """Recreate the original uncompressed snapshot."""
        return self.store.restore(snapshot_id)
