"""Backup-site Shredder agent (§7.2).

"We deploy an additional Shredder agent residing on the backup site,
which receives all the chunks and pointers and recreates the original
uncompressed data."  The agent receives a mixed stream of chunk payloads
and pointers, stores new chunks in the site's content-addressed store,
and finalizes a recipe per snapshot so restores are possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.hashing import digest_many
from repro.backup.store import ChunkStore, SnapshotRecipe

__all__ = ["ShredderAgent", "TransferLog"]


@dataclass
class TransferLog:
    """What crossed the wire for one snapshot."""

    chunks_received: int = 0
    pointers_received: int = 0
    bytes_received: int = 0

    @property
    def total_items(self) -> int:
        return self.chunks_received + self.pointers_received


@dataclass
class ShredderAgent:
    """Receives chunks/pointers and recreates snapshots."""

    store: ChunkStore = field(default_factory=ChunkStore)
    _open: dict[str, tuple[list[bytes], TransferLog]] = field(default_factory=dict)

    def begin_snapshot(self, snapshot_id: str) -> None:
        if snapshot_id in self._open:
            raise ValueError(f"snapshot {snapshot_id!r} already open")
        self._open[snapshot_id] = ([], TransferLog())

    def _session(self, snapshot_id: str):
        try:
            return self._open[snapshot_id]
        except KeyError:
            raise ValueError(f"snapshot {snapshot_id!r} is not open") from None

    def receive_chunk(self, snapshot_id: str, data: bytes, digest: bytes | None = None) -> None:
        """A new (non-duplicate) chunk payload arrives.

        ``digest`` is the sender's declared content hash.  The agent
        verifies it against the received bytes before storing: a payload
        corrupted (or mis-hashed) in flight must fail loudly here, not
        poison the content-addressed store for every later snapshot that
        dedups against the digest.
        """
        self.receive_chunks(snapshot_id, [(digest, data)])

    def receive_chunks(
        self, snapshot_id: str, items: Sequence[tuple[bytes | None, bytes]]
    ) -> None:
        """A batch of new chunk payloads arrives: ``(digest, data)`` pairs.

        The batched twin of :meth:`receive_chunk` — the shape the wire
        front-end ships in (one CHUNK_BATCH frame) and the pipelined
        server hands over per scan batch.  All declared digests are
        verified against the payloads in one hashing pass
        (:func:`~repro.core.hashing.digest_many`, threaded on large
        batches) before anything is stored, and the store insert is one
        ``put_batch`` where the store supports it.  A ``None`` digest
        means "compute it for me".
        """
        digests, log = self._session(snapshot_id)
        computed = digest_many([data for _, data in items])
        verified: list[tuple[bytes, bytes]] = []
        for (declared, data), actual in zip(items, computed):
            if declared is not None and declared != actual:
                raise ValueError(
                    f"chunk payload does not match its declared digest "
                    f"{declared.hex()[:16]} in snapshot {snapshot_id!r}"
                )
            verified.append((actual, data))
        put_chunks = getattr(self.store, "put_chunks", None)
        if put_chunks is not None:
            put_chunks(verified)
        else:
            for digest, data in verified:
                self.store.put_chunk(digest, data)
        for digest, data in verified:
            digests.append(digest)
            log.chunks_received += 1
            log.bytes_received += len(data)

    def receive_pointer(self, snapshot_id: str, digest: bytes) -> None:
        """A pointer to an already-stored chunk arrives."""
        self.receive_pointers(snapshot_id, [digest])

    def receive_pointers(self, snapshot_id: str, pointer_digests: Sequence[bytes]) -> None:
        """A batch of pointers to already-stored chunks arrives.

        Presence is checked for the whole batch in one probe where the
        store supports it — the wire path validates a POINTER_BATCH
        frame with one index pass, not one round trip per pointer.
        """
        digests, log = self._session(snapshot_id)
        has_chunks = getattr(self.store, "has_chunks", None)
        if has_chunks is not None:
            present = has_chunks(pointer_digests)
        else:
            # repro: lint-ok[batched-api] duck-typed fallback for stores without has_chunks
            present = [self.store.has_chunk(d) for d in pointer_digests]
        for digest, ok in zip(pointer_digests, present):
            if not ok:
                raise KeyError(
                    f"pointer to unknown chunk {digest.hex()[:16]} in "
                    f"snapshot {snapshot_id!r}"
                )
        digests.extend(pointer_digests)
        log.pointers_received += len(pointer_digests)

    def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        """Close the session, persist the recipe, return the transfer log."""
        digests, log = self._session(snapshot_id)
        total = sum(len(self.store.get_chunk(d)) for d in digests)
        self.store.put_recipe(
            SnapshotRecipe(snapshot_id, tuple(digests), total_bytes=total)
        )
        del self._open[snapshot_id]
        return log

    def abort_snapshot(self, snapshot_id: str) -> None:
        """Drop an open session without writing a recipe.

        The wire front-end calls this when a client disconnects mid
        snapshot: already-stored chunks stay (they are content-addressed
        and harmless; GC reclaims unreferenced ones), but no recipe is
        published, so the half-shipped snapshot can never be restored.
        """
        self._session(snapshot_id)
        del self._open[snapshot_id]

    def open_log(self, snapshot_id: str) -> TransferLog:
        """The live transfer log of an open snapshot (resume reporting)."""
        return self._session(snapshot_id)[1]

    @property
    def open_snapshots(self) -> tuple[str, ...]:
        """Ids of sessions begun but not yet finished/aborted."""
        return tuple(self._open)

    def restore(self, snapshot_id: str) -> bytes:
        """Recreate the original uncompressed snapshot."""
        return self.store.restore(snapshot_id)
