"""The content-based chunking kernel (§3.1, §4.3, §5.2.2).

The kernel divides a device buffer into equal sub-streams, one per thread;
each thread computes a sliding-window Rabin fingerprint over its
sub-stream (plus a ``window-1`` byte overlap into its neighbour) and
records a boundary wherever the masked fingerprint equals the marker.

Correctness: boundaries are computed for real by the shared NumPy engine
(bit-identical to the host chunker — the windows evaluated are the same
regardless of which thread evaluates them).

Timing: a roofline of the two resources the paper identifies —

* *compute*: ``cycles_per_byte`` per thread across all scalar processors,
  inflated by warp divergence when boundary hits make threads branch
  (§5.2.2 "Warp divergence"), and by the sub-stream overlap bytes;
* *memory*: the banked device-memory model run over a representative
  access trace for the configured fetch strategy (naive strided vs
  half-warp coalesced, §4.3).

The kernel is memory-bound without coalescing and compute-bound with it,
which is exactly the transition Figure 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunking import ChunkerConfig
from repro.core.engines import VectorEngine, default_engine
from repro.gpu import coalescing
from repro.gpu.device import DeviceBuffer, GPUDevice

__all__ = ["KernelStats", "ChunkingKernel", "divergence_factor"]


def divergence_factor(
    boundary_fraction: float, warp_size: int = 32, restructured: bool = True
) -> float:
    """Warp-divergence slowdown multiplier.

    When a thread finds a boundary it takes a data-dependent branch; the
    warp serializes until all threads reconverge.  The restructured kernel
    (§5.2.2) keeps the divergent path to a couple of instructions, so the
    penalty is proportional to the boundary fraction; the unrestructured
    kernel serializes the whole warp on every divergent window.
    """
    if not 0.0 <= boundary_fraction <= 1.0:
        raise ValueError(f"boundary fraction must be in [0, 1], got {boundary_fraction}")
    if restructured:
        return 1.0 + boundary_fraction
    return 1.0 + boundary_fraction * (warp_size - 1)


@dataclass(frozen=True)
class KernelStats:
    """Timing breakdown of one kernel execution."""

    bytes_processed: int
    kernel_seconds: float
    compute_limit_bps: float
    memory_limit_bps: float
    memory_bytes_per_cycle: float
    transactions: int
    bank_conflict_rate: float
    coalesced: bool
    divergence: float
    launch_overhead_s: float

    @property
    def throughput_bps(self) -> float:
        if self.kernel_seconds == 0:
            return 0.0
        return self.bytes_processed / self.kernel_seconds

    @property
    def memory_bound(self) -> bool:
        return self.memory_limit_bps < self.compute_limit_bps


class ChunkingKernel:
    """Simulated GPU chunking kernel.

    Parameters
    ----------
    config:
        Chunking parameters (window, mask, marker).  min/max are *not*
        applied here — the GPU returns raw candidate boundaries and the
        Store thread post-filters them (§7.3).
    threads_per_sp:
        Resident threads per scalar processor (occupancy); the paper's
        kernel launches many more threads than SPs to hide latency.
    cycles_per_byte:
        Per-thread cost of one sliding-window step: two table lookups,
        shift/mask/xor, marker compare and loop bookkeeping, with the
        loop-unrolled, RAW-avoiding instruction scheduling of §5.2.2.
    restructured:
        Whether the divergence-minimizing restructuring of §5.2.2 is on.
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        engine: VectorEngine | None = None,
        threads_per_sp: int = 8,
        cycles_per_byte: float = 55.0,
        restructured: bool = True,
    ) -> None:
        self.config = config or ChunkerConfig()
        self.engine = engine or default_engine()
        if self.engine.window_size != self.config.window_size:
            raise ValueError("engine window size does not match chunker config")
        if threads_per_sp < 1:
            raise ValueError("threads_per_sp must be >= 1")
        self.threads_per_sp = threads_per_sp
        self.cycles_per_byte = cycles_per_byte
        self.restructured = restructured

    def thread_count(self, device: GPUDevice) -> int:
        return device.spec.total_sps * self.threads_per_sp

    def occupancy_report(self, device: GPUDevice, coalesced: bool = True):
        """Resident blocks/warps per SM for this kernel's resource usage.

        The coalesced kernel stages a full 48 KB tile in shared memory, so
        shared memory limits it to one block per SM; the naive kernel uses
        no shared memory and is limited by warp slots.  The timing
        calibration (``cycles_per_byte``) absorbs the resulting latency-
        hiding difference; this report exposes *why*.
        """
        from repro.gpu.occupancy import KernelResources, occupancy

        resources = KernelResources(
            shared_memory_per_block=device.spec.shared_memory_per_sm if coalesced else 0
        )
        return occupancy(resources, device.spec)

    # ------------------------------------------------------------------

    def run(
        self, device: GPUDevice, buf: DeviceBuffer, coalesced: bool = True
    ) -> tuple[list[int], KernelStats]:
        """Execute the kernel over a device buffer.

        Returns ``(candidate_cuts, stats)`` where cuts are exclusive end
        offsets within the buffer (min/max-agnostic).  The device buffer
        is scanned through its NumPy view — zero copies — via the
        engine's striped data-parallel path, which is the same
        lane-per-sub-stream layout the real kernel uses (§3.1).
        """
        data = buf.view()
        n = int(data.size)
        cut_array = self.engine.candidate_cut_array(
            data, self.config.mask, self.config.marker
        )
        stats = self.estimate(
            device, n, boundary_count=int(cut_array.size), coalesced=coalesced
        )
        return cut_array.tolist(), stats

    def estimate(
        self,
        device: GPUDevice,
        n: int,
        boundary_count: int = 0,
        coalesced: bool = True,
    ) -> KernelStats:
        """Timing model only (no data needed): cost of chunking ``n`` bytes."""
        spec = device.spec
        threads = self.thread_count(device)
        if n == 0:
            return KernelStats(0, spec.kernel_launch_overhead_s, 0.0, 0.0, 0.0, 0,
                               0.0, coalesced, 1.0, spec.kernel_launch_overhead_s)

        # -- compute roofline ------------------------------------------------
        windows = max(1, n - self.config.window_size + 1)
        boundary_fraction = min(1.0, boundary_count / windows)
        div = divergence_factor(boundary_fraction, spec.warp_size, self.restructured)
        # Each thread re-scans window-1 bytes of overlap into its neighbour.
        scanned = n + threads * (self.config.window_size - 1)
        compute_cycles = scanned * self.cycles_per_byte * div / spec.total_sps
        compute_bps = n / compute_cycles * spec.clock_hz

        # -- memory roofline -------------------------------------------------
        if coalesced:
            trace = coalescing.coalesced_trace(n, threads)
        else:
            trace = coalescing.naive_trace(n, threads)
        mem_stats = device.memory.simulate(trace)
        mem_bpc = mem_stats.bytes_per_cycle
        memory_cycles = n / mem_bpc if mem_bpc > 0 else float("inf")
        memory_bps = n / memory_cycles * spec.clock_hz

        # Warp scheduling overlaps compute with outstanding memory requests,
        # so the kernel runs at the tighter of the two limits.
        seconds = max(compute_cycles, memory_cycles) / spec.clock_hz
        seconds += spec.kernel_launch_overhead_s
        return KernelStats(
            bytes_processed=n,
            kernel_seconds=seconds,
            compute_limit_bps=compute_bps,
            memory_limit_bps=memory_bps,
            memory_bytes_per_cycle=mem_bpc,
            transactions=mem_stats.transactions,
            bank_conflict_rate=mem_stats.bank_conflict_rate,
            coalesced=coalesced,
            divergence=div,
            launch_overhead_s=spec.kernel_launch_overhead_s,
        )
