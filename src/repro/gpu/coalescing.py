"""Memory-coalescing rules and access-trace generators (§4.3, Fig. 10).

The paper's fourth optimization replaces the naive access pattern — each
GPU thread strides through its own sub-stream of the input — with a
*thread cooperation* scheme: the threads of a half-warp jointly fetch one
data block at a time into shared memory as contiguous, aligned,
non-conflicting requests, then process their blocks from shared memory.

This module provides:

* :func:`is_coalescable` — the manufacturer's three conditions quoted in
  §4.3 (element size 4/8/16; Nth thread accesses Nth element; 16-byte
  aligned base);
* trace generators producing representative memory-transaction streams
  for the naive and the cooperative patterns, to be costed by
  :class:`repro.gpu.device_memory.DeviceMemoryModel`.
"""

from __future__ import annotations

from repro.gpu.device_memory import Transaction

__all__ = [
    "is_coalescable",
    "coalesce_half_warp",
    "naive_trace",
    "coalesced_trace",
]

HALF_WARP = 16
COALESCE_ALIGNMENT = 16
VALID_ELEMENT_SIZES = (4, 8, 16)


def is_coalescable(addresses: list[int], element_size: int) -> bool:
    """Do these half-warp thread addresses coalesce into one transaction?

    Implements the three conditions of §4.3: (i) each thread accesses an
    element of 4, 8 or 16 bytes; (ii) the elements form a contiguous block
    with the Nth element accessed by the Nth thread; (iii) the first
    element's address is aligned at a multiple of 16 bytes.
    """
    if element_size not in VALID_ELEMENT_SIZES:
        return False
    if not addresses or len(addresses) > HALF_WARP:
        return False
    base = addresses[0]
    if base % COALESCE_ALIGNMENT != 0:
        return False
    return all(
        addr == base + i * element_size for i, addr in enumerate(addresses)
    )


def coalesce_half_warp(addresses: list[int], element_size: int) -> list[Transaction]:
    """Transactions issued for one half-warp access.

    A coalescable access becomes a single transaction covering the whole
    segment; otherwise every thread's element is served by its own
    transaction (the uncoalesced worst case the hardware falls back to).
    """
    if is_coalescable(addresses, element_size):
        return [(addresses[0], element_size * len(addresses))]
    return [(addr, element_size) for addr in addresses]


def naive_trace(
    buffer_size: int,
    num_threads: int,
    element_size: int = 4,
    sample_steps: int = 96,
    sample_threads: int = 448,
) -> list[Transaction]:
    """Representative trace for the naive per-thread strided pattern.

    Each thread scans its private sub-stream (``buffer_size/num_threads``
    bytes apart from its neighbours), so the 16 threads of a half-warp
    issue addresses in 16 different rows: nothing coalesces and the banks'
    sense amplifiers thrash (§3.2).  The trace interleaves threads
    step-by-step exactly as SIMT execution does.

    Only ``sample_threads`` threads and ``sample_steps`` sliding steps are
    materialized; the caller scales the measured bytes/cycle to the full
    buffer (the pattern is homogeneous, so the sample is representative).
    """
    threads = min(num_threads, sample_threads)
    substream = max(element_size, buffer_size // max(num_threads, 1))
    steps = min(sample_steps, max(1, substream // element_size))
    trace: list[Transaction] = []
    for step in range(steps):
        for half_warp_start in range(0, threads, HALF_WARP):
            group = range(half_warp_start, min(half_warp_start + HALF_WARP, threads))
            addresses = [t * substream + step * element_size for t in group]
            # Strided addresses are never contiguous => no coalescing.
            trace.extend(coalesce_half_warp(addresses, element_size))
    return trace


def coalesced_trace(
    buffer_size: int,
    num_threads: int,
    element_size: int = 4,
    sample_bytes: int = 256 * 1024,
) -> list[Transaction]:
    """Representative trace for the cooperative (coalesced) fetch.

    Half-warps read contiguous, aligned segments of the data block being
    staged into shared memory (Fig. 10), so each half-warp access becomes
    one transaction and consecutive transactions walk rows sequentially.
    """
    segment = element_size * HALF_WARP
    total = min(buffer_size, sample_bytes)
    trace: list[Transaction] = []
    for base in range(0, total - segment + 1, segment):
        addresses = [base + i * element_size for i in range(HALF_WARP)]
        trace.extend(coalesce_half_warp(addresses, element_size))
    return trace
