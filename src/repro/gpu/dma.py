"""PCIe DMA transfer model between host and device memory (§4.1, Fig. 3).

The effective bandwidth of a DMA transfer is a property of the DMA
controller and the PCIe bus, independent of GPU thread configuration.
The model captures the behaviours the paper measures in Figure 3:

* small transfers are dominated by fixed setup overhead;
* pinned (page-locked) host buffers DMA directly and saturate early
  (around 256 KB);
* pageable host buffers are staged through driver bounce buffers, adding
  a per-byte staging cost and a larger setup overhead, so they saturate
  late (tens of MB) and slightly lower;
* host-to-device and device-to-host peaks differ slightly
  (5.406 vs 5.129 GBps on the C2050 testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.gpu.specs import GPUSpec, TESLA_C2050

__all__ = ["Direction", "MemoryType", "DMAModel", "DMATransfer"]


class Direction(Enum):
    """Transfer direction across the PCIe link."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"


class MemoryType(Enum):
    """How the host-side buffer is allocated (§4.1.2)."""

    PAGEABLE = "pageable"
    PINNED = "pinned"


@dataclass(frozen=True)
class DMATransfer:
    """Result of one modeled DMA transfer."""

    size: int
    direction: Direction
    memory_type: MemoryType
    seconds: float

    @property
    def bandwidth(self) -> float:
        """Effective bandwidth in bytes/second."""
        return self.size / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class DMAModel:
    """Analytic DMA cost model.

    ``time = setup + size / peak (+ size / staging for pageable)``.

    Defaults are calibrated against the C2050 measurements in Figure 3:
    pinned transfers reach ~90 % of peak by 256 KB, pageable transfers
    need ~32 MB, and at 4 KB both fall well under 1 GBps.
    """

    gpu: GPUSpec = TESLA_C2050
    #: Fixed per-transfer setup cost for pinned buffers (DMA descriptor +
    #: doorbell; no driver staging).
    pinned_setup_s: float = 9e-6
    #: Fixed setup for pageable buffers (driver must prepare bounce pages).
    pageable_setup_s: float = 55e-6
    #: Driver bounce-buffer copy bandwidth for pageable transfers.  The
    #: staging copy overlaps partially with the wire transfer, so the
    #: effective penalty is modest at large sizes (Fig. 3: "for large
    #: buffers the difference ... is not significant").
    pageable_staging_bandwidth: float = 38e9

    def _peak(self, direction: Direction) -> float:
        if direction is Direction.HOST_TO_DEVICE:
            return self.gpu.h2d_bandwidth
        return self.gpu.d2h_bandwidth

    def transfer_time(
        self,
        size: int,
        direction: Direction = Direction.HOST_TO_DEVICE,
        memory_type: MemoryType = MemoryType.PINNED,
    ) -> float:
        """Seconds to move ``size`` bytes across PCIe."""
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        if size == 0:
            return 0.0
        wire = size / self._peak(direction)
        if memory_type is MemoryType.PINNED:
            return self.pinned_setup_s + wire
        return self.pageable_setup_s + wire + size / self.pageable_staging_bandwidth

    def transfer(
        self,
        size: int,
        direction: Direction = Direction.HOST_TO_DEVICE,
        memory_type: MemoryType = MemoryType.PINNED,
    ) -> DMATransfer:
        """Modeled transfer record including effective bandwidth."""
        return DMATransfer(
            size=size,
            direction=direction,
            memory_type=memory_type,
            seconds=self.transfer_time(size, direction, memory_type),
        )

    def bandwidth(
        self,
        size: int,
        direction: Direction = Direction.HOST_TO_DEVICE,
        memory_type: MemoryType = MemoryType.PINNED,
    ) -> float:
        """Effective bandwidth (bytes/s) for a transfer of ``size`` bytes."""
        return self.transfer(size, direction, memory_type).bandwidth
