"""Hardware specifications for the simulated platform (paper Table 1).

The paper's testbed is an NVidia Tesla C2050 (Fermi) attached over PCIe
to a 12-core Intel Xeon X5650 host.  Every simulator component takes its
parameters from these dataclasses, so alternative GPUs or hosts can be
modeled by constructing different specs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "HostSpec", "TESLA_C2050", "XEON_X5650_HOST", "table1_rows"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of a GPU device (defaults: Tesla C2050, paper §5.3)."""

    name: str = "NVidia Tesla C2050"
    num_sms: int = 14
    sps_per_sm: int = 32
    clock_hz: float = 1.15e9
    gflops: float = 1030.0
    device_memory_bytes: int = int(2.6 * GB)
    #: Peak global-memory bandwidth (Table 1: 144 GBps).
    device_memory_bandwidth: float = 144e9
    #: Global-memory access latency range in cycles (Table 1: 400-600).
    device_memory_latency_cycles: tuple[int, int] = (400, 600)
    shared_memory_per_sm: int = 48 * KB
    registers_per_sm: int = 32768
    warp_size: int = 32
    #: Effective PCIe DMA bandwidth (Table 1: 5.406 / 5.129 GBps).
    h2d_bandwidth: float = 5.406e9
    d2h_bandwidth: float = 5.129e9
    #: Kernel launch overhead observed by the host (Table 2: ~0.03 ms for
    #: small buffers, rising slightly with grid size).
    kernel_launch_overhead_s: float = 30e-6

    @property
    def total_sps(self) -> int:
        return self.num_sms * self.sps_per_sm

    @property
    def half_warp(self) -> int:
        return self.warp_size // 2


@dataclass(frozen=True)
class HostSpec:
    """Parameters of the host machine (paper §5.3)."""

    name: str = "2x Intel Xeon X5650"
    cores: int = 12
    clock_hz: float = 2.67e9
    memory_bytes: int = 48 * GB
    #: Reader (I/O) bandwidth from the SAN (Table 1: 2 GBps).
    reader_bandwidth: float = 2e9
    page_size: int = 4 * KB
    #: Sustained single-core chunking throughput for the optimized
    #: pthreads implementation (calibrated so 12 threads with the Hoard
    #: allocator reach the ~0.4 GBps of Fig. 12).
    core_chunking_bandwidth: float = 29e6


TESLA_C2050 = GPUSpec()
XEON_X5650_HOST = HostSpec()


def table1_rows(gpu: GPUSpec = TESLA_C2050, host: HostSpec = XEON_X5650_HOST):
    """Rows of the paper's Table 1 (parameter, value) for the given specs."""
    lat_lo, lat_hi = gpu.device_memory_latency_cycles
    return [
        ("GPU Processing Capacity", f"{gpu.gflops:.0f} GFlops"),
        ("Reader (I/O) Bandwidth", f"{host.reader_bandwidth / 1e9:.0f} GBps"),
        ("Host-to-Device Bandwidth", f"{gpu.h2d_bandwidth / 1e9:.3f} GBps"),
        ("Device-to-Host Bandwidth", f"{gpu.d2h_bandwidth / 1e9:.3f} GBps"),
        ("Device Memory Latency", f"{lat_lo} - {lat_hi} cycles"),
        ("Device Memory Bandwidth", f"{gpu.device_memory_bandwidth / 1e9:.0f} GBps"),
        ("Shared Memory Latency", "L1 latency (a few cycles)"),
    ]
