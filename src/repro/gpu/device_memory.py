"""Banked GDDR5 device-memory model (§2.3, §4.3).

The paper explains the SDRAM access model: memory is organized into banks,
each with a sense amplifier holding one open *row*.  Accessing an open row
costs only a column access (CAS); accessing a different row forces a
pre-charge (PRE) of the old row and an activate (ACT) of the new one, both
high-latency.  Many threads hitting different rows of the same bank cause
*bank conflicts* — the sense amplifier thrashes between rows.

This module is a small discrete-event simulator over memory-transaction
traces: per-bank open-row state and busy times, a shared data bus, and a
bounded issue rate.  The chunking kernel costs its two fetch strategies
(naive strided vs half-warp coalesced, §4.3) by running representative
traces through this model; the 8x gap in Figure 11 *emerges* from row
locality rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["DeviceMemoryConfig", "AccessStats", "DeviceMemoryModel", "Transaction"]

#: One memory transaction: (byte address, transaction size in bytes).
Transaction = tuple[int, int]


@dataclass(frozen=True)
class DeviceMemoryConfig:
    """Timing/geometry parameters of the GDDR5 subsystem.

    Latencies are in GPU core cycles (1.15 GHz).  Values are calibrated so
    that (a) a fully coalesced sequential stream approaches the C2050's
    144 GB/s peak, and (b) the conflict-heavy naive chunking access pattern
    lands near the ~1.3 GB/s effective rate implied by Figure 11.
    """

    num_banks: int = 16
    #: Bytes per row (per bank) held in a sense amplifier.
    row_size: int = 2048
    #: Consecutive address stripes of this size rotate across banks.
    interleave: int = 256
    #: Column access on an already-open row.
    t_cas: int = 4
    #: Row activate (ACT command).
    t_act: int = 22
    #: Pre-charge of the previously open row (PRE command).
    t_pre: int = 22
    #: Data-bus width: bytes transferred per cycle once a row is open.
    bus_bytes_per_cycle: int = 32
    #: Maximum transactions the controller can dispatch per cycle.
    issue_width: int = 2
    #: Minimum transaction size: smaller requests still move this many
    #: bytes over the bus (the waste behind uncoalesced access).
    min_transaction: int = 32


@dataclass
class AccessStats:
    """Aggregate result of simulating a transaction trace."""

    transactions: int = 0
    row_hits: int = 0
    row_misses: int = 0
    useful_bytes: int = 0
    transferred_bytes: int = 0
    cycles: float = 0.0

    @property
    def bank_conflict_rate(self) -> float:
        """Fraction of transactions that had to re-activate a row."""
        if self.transactions == 0:
            return 0.0
        return self.row_misses / self.transactions

    @property
    def bytes_per_cycle(self) -> float:
        """Useful bytes delivered per cycle (throughput)."""
        if self.cycles == 0:
            return 0.0
        return self.useful_bytes / self.cycles

    @property
    def efficiency(self) -> float:
        """Useful / transferred byte ratio (coalescing quality)."""
        if self.transferred_bytes == 0:
            return 0.0
        return self.useful_bytes / self.transferred_bytes


class DeviceMemoryModel:
    """Discrete-event model of the banked device memory."""

    def __init__(self, config: DeviceMemoryConfig | None = None) -> None:
        self.config = config or DeviceMemoryConfig()

    def _bank_and_row(self, addr: int) -> tuple[int, int]:
        cfg = self.config
        stripe = addr // cfg.interleave
        bank = stripe % cfg.num_banks
        # Row index within the bank: every num_banks-th stripe lands in the
        # same bank; row_size bytes of such stripes share a sense amplifier.
        within_bank_offset = (stripe // cfg.num_banks) * cfg.interleave + addr % cfg.interleave
        row = within_bank_offset // cfg.row_size
        return bank, row

    def simulate(self, trace: Iterable[Transaction]) -> AccessStats:
        """Run a transaction trace and return aggregate timing statistics.

        Transactions are issued in trace order at up to ``issue_width`` per
        cycle; each occupies its bank for CAS (+PRE/ACT on a row miss) and
        then the shared bus for the data burst.
        """
        cfg = self.config
        open_row = [-1] * cfg.num_banks
        bank_free = [0.0] * cfg.num_banks
        bus_free = 0.0
        issue_time = 0.0
        stats = AccessStats()
        finish = 0.0

        for addr, size in trace:
            if size <= 0:
                raise ValueError(f"transaction size must be positive, got {size}")
            bank, row = self._bank_and_row(addr)
            transferred = max(size, cfg.min_transaction)

            issue_time += 1.0 / cfg.issue_width
            start = max(issue_time, bank_free[bank])
            if open_row[bank] == row:
                stats.row_hits += 1
                ready = start + cfg.t_cas
            else:
                stats.row_misses += 1
                penalty = cfg.t_act if open_row[bank] == -1 else cfg.t_pre + cfg.t_act
                ready = start + penalty + cfg.t_cas
                open_row[bank] = row
            burst = transferred / cfg.bus_bytes_per_cycle
            data_start = max(ready, bus_free)
            done = data_start + burst
            bank_free[bank] = ready  # bank is free once the row is latched
            bus_free = done
            finish = max(finish, done)

            stats.transactions += 1
            stats.useful_bytes += size
            stats.transferred_bytes += transferred

        stats.cycles = finish
        return stats

    def sample_bytes_per_cycle(self, trace: Sequence[Transaction]) -> float:
        """Convenience: throughput (useful bytes/cycle) of a sampled trace."""
        return self.simulate(trace).bytes_per_cycle
