"""SM occupancy model: how many thread blocks fit per multiprocessor.

The chunking kernel's latency hiding depends on how many warps an SM can
keep resident, which is bounded by three per-SM resources (§2.2): the
register file, the shared memory, and the hardware block/warp slots.
CUDA's occupancy calculator logic, reduced to what the C2050 exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec, TESLA_C2050

__all__ = ["KernelResources", "occupancy"]

#: Fermi hardware limits not in Table 1.
MAX_BLOCKS_PER_SM = 8
MAX_WARPS_PER_SM = 48
SHARED_MEMORY_GRANULARITY = 128
REGISTER_GRANULARITY = 64


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource usage.

    Defaults describe the chunking kernel: ~20 registers per thread for
    the unrolled Rabin roll, and a full 48 KB shared-memory tile per
    block when the coalesced fetch is enabled.
    """

    threads_per_block: int = 128
    registers_per_thread: int = 20
    shared_memory_per_block: int = 48 * 1024

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if self.registers_per_thread < 1:
            raise ValueError("registers_per_thread must be >= 1")
        if self.shared_memory_per_block < 0:
            raise ValueError("shared memory cannot be negative")


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel on one GPU."""

    blocks_per_sm: int
    warps_per_sm: int
    limiting_resource: str

    @property
    def occupancy_fraction(self) -> float:
        return self.warps_per_sm / MAX_WARPS_PER_SM


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


def occupancy(
    resources: KernelResources, gpu: GPUSpec = TESLA_C2050
) -> Occupancy:
    """Blocks/warps resident per SM and the resource that limits them."""
    warps_per_block = -(-resources.threads_per_block // gpu.warp_size)

    limits = {"block slots": MAX_BLOCKS_PER_SM}
    limits["warp slots"] = MAX_WARPS_PER_SM // warps_per_block

    regs_per_block = _round_up(
        resources.registers_per_thread * resources.threads_per_block,
        REGISTER_GRANULARITY,
    )
    limits["registers"] = (
        gpu.registers_per_sm // regs_per_block if regs_per_block else MAX_BLOCKS_PER_SM
    )

    if resources.shared_memory_per_block:
        smem = _round_up(resources.shared_memory_per_block, SHARED_MEMORY_GRANULARITY)
        limits["shared memory"] = gpu.shared_memory_per_sm // smem
    else:
        limits["shared memory"] = MAX_BLOCKS_PER_SM

    limiting = min(limits, key=limits.get)
    blocks = max(0, limits[limiting])
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * warps_per_block,
        limiting_resource=limiting,
    )
