"""Simulated GPU device: global-memory buffers and kernel launches.

The device holds *real* data (NumPy arrays) so kernels compute real
results, while all timing is charged by the component models
(:mod:`repro.gpu.dma`, :mod:`repro.gpu.device_memory`).  This mirrors the
paper's split: correctness comes from the chunking algorithm, performance
from the memory system and scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

import numpy as np

from repro.gpu.device_memory import DeviceMemoryConfig, DeviceMemoryModel
from repro.gpu.dma import DMAModel, Direction, MemoryType
from repro.gpu.specs import GPUSpec, TESLA_C2050

__all__ = ["DeviceBuffer", "GPUDevice", "DeviceMemoryError"]


class DeviceMemoryError(MemoryError):
    """Raised when a device allocation exceeds global-memory capacity."""


@dataclass
class DeviceBuffer:
    """A region of simulated device global memory.

    ``data`` is populated by :meth:`GPUDevice.upload`; ``valid_bytes``
    tracks how much of the buffer holds meaningful input (the final buffer
    of a stream is usually partially filled).
    """

    buffer_id: int
    size: int
    base_address: int
    data: np.ndarray | None = None
    valid_bytes: int = 0

    def view(self) -> np.ndarray:
        """The valid portion of the uploaded data."""
        if self.data is None:
            raise ValueError(f"device buffer {self.buffer_id} has no uploaded data")
        return self.data[: self.valid_bytes]


@dataclass
class GPUDevice:
    """One simulated GPU with its DMA engine and memory model."""

    spec: GPUSpec = TESLA_C2050
    memory_config: DeviceMemoryConfig = field(default_factory=DeviceMemoryConfig)

    def __post_init__(self) -> None:
        self.dma = DMAModel(self.spec)
        self.memory = DeviceMemoryModel(self.memory_config)
        self._ids = count()
        self._allocated: dict[int, DeviceBuffer] = {}
        self._next_address = 0
        self.allocated_bytes = 0

    # -- global-memory management ------------------------------------------

    def alloc(self, size: int) -> DeviceBuffer:
        """Allocate ``size`` bytes of device global memory."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.allocated_bytes + size > self.spec.device_memory_bytes:
            raise DeviceMemoryError(
                f"device OOM: requested {size} with {self.allocated_bytes} of "
                f"{self.spec.device_memory_bytes} bytes in use"
            )
        buf = DeviceBuffer(next(self._ids), size, base_address=self._next_address)
        self._allocated[buf.buffer_id] = buf
        self._next_address += size
        self.allocated_bytes += size
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        stored = self._allocated.pop(buf.buffer_id, None)
        if stored is None:
            raise KeyError(f"device buffer {buf.buffer_id} is not allocated")
        self.allocated_bytes -= stored.size
        stored.data = None

    # -- DMA ------------------------------------------------------------------

    def upload(
        self,
        buf: DeviceBuffer,
        data: bytes | np.ndarray,
        memory_type: MemoryType = MemoryType.PINNED,
    ) -> float:
        """Copy host data into a device buffer; returns modeled seconds."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else np.asarray(data, dtype=np.uint8)
        if arr.size > buf.size:
            raise ValueError(
                f"upload of {arr.size} bytes exceeds buffer size {buf.size}"
            )
        if buf.data is None or buf.data.size < buf.size:
            buf.data = np.zeros(buf.size, dtype=np.uint8)
        buf.data[: arr.size] = arr
        buf.valid_bytes = arr.size
        return self.dma.transfer_time(arr.size, Direction.HOST_TO_DEVICE, memory_type)

    def download_time(
        self, size: int, memory_type: MemoryType = MemoryType.PINNED
    ) -> float:
        """Modeled seconds to move ``size`` result bytes back to the host."""
        return self.dma.transfer_time(size, Direction.DEVICE_TO_HOST, memory_type)

    # -- execution ---------------------------------------------------------

    def launch(self, kernel, buf: DeviceBuffer, **kwargs):
        """Launch a kernel over a device buffer.

        Charges the kernel-launch overhead and delegates to the kernel's
        ``run`` method, which returns ``(result, stats)``.
        """
        return kernel.run(self, buf, **kwargs)

    @property
    def free_bytes(self) -> int:
        return self.spec.device_memory_bytes - self.allocated_bytes
