"""Simulated GPU substrate: a Tesla C2050 model parameterized by Table 1."""

from repro.gpu.chunking_kernel import ChunkingKernel, KernelStats, divergence_factor
from repro.gpu.coalescing import coalesce_half_warp, coalesced_trace, is_coalescable, naive_trace
from repro.gpu.device import DeviceBuffer, DeviceMemoryError, GPUDevice
from repro.gpu.device_memory import AccessStats, DeviceMemoryConfig, DeviceMemoryModel
from repro.gpu.dma import DMAModel, DMATransfer, Direction, MemoryType
from repro.gpu.host_memory import HostAllocation, HostMemoryModel
from repro.gpu.specs import GPUSpec, HostSpec, TESLA_C2050, XEON_X5650_HOST, table1_rows
from repro.gpu.timeline import (
    PhaseCosts,
    ScheduleResult,
    double_buffered_schedule,
    pipeline_schedule,
    serialized_schedule,
    spare_host_cycles,
)

__all__ = [
    "ChunkingKernel", "KernelStats", "divergence_factor",
    "coalesce_half_warp", "coalesced_trace", "is_coalescable", "naive_trace",
    "DeviceBuffer", "DeviceMemoryError", "GPUDevice",
    "AccessStats", "DeviceMemoryConfig", "DeviceMemoryModel",
    "DMAModel", "DMATransfer", "Direction", "MemoryType",
    "HostAllocation", "HostMemoryModel",
    "GPUSpec", "HostSpec", "TESLA_C2050", "XEON_X5650_HOST", "table1_rows",
    "PhaseCosts", "ScheduleResult", "double_buffered_schedule",
    "pipeline_schedule", "serialized_schedule", "spare_host_cycles",
]
