"""Execution timelines: serialized vs overlapped copy/compute (§4.1-§4.2).

Three schedulers over per-buffer phase costs:

* :func:`serialized_schedule` — the basic design (Fig. 2): every phase of
  every buffer runs back-to-back;
* :func:`double_buffered_schedule` — §4.1.1 concurrent copy & execution
  with twin device buffers (Fig. 4/5): the DMA engine fills one buffer
  while the kernel consumes the other;
* :func:`pipeline_schedule` — §4.2 multi-stage streaming pipeline
  (Fig. 8/9): Reader → Transfer → Kernel → Store with a bounded number of
  in-flight buffers.

Also computes the host spare cycles of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gpu.specs import HostSpec, XEON_X5650_HOST

__all__ = [
    "PhaseCosts",
    "ScheduleResult",
    "serialized_schedule",
    "double_buffered_schedule",
    "pipeline_schedule",
    "spare_host_cycles",
]


@dataclass(frozen=True)
class PhaseCosts:
    """Per-buffer durations (seconds) of the four Shredder stages."""

    read: float
    transfer: float
    kernel: float
    store: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.read, self.transfer, self.kernel, self.store)

    @property
    def total(self) -> float:
        return self.read + self.transfer + self.kernel + self.store


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling ``n`` buffers."""

    total_seconds: float
    n_buffers: int
    #: Seconds during which a copy and a kernel were running concurrently
    #: (the overlap highlighted in Fig. 5).
    overlap_seconds: float = 0.0


def serialized_schedule(phases: Sequence[PhaseCosts]) -> ScheduleResult:
    """Basic design: strictly sequential execution of every phase."""
    return ScheduleResult(sum(p.total for p in phases), len(phases))


def double_buffered_schedule(
    phases: Sequence[PhaseCosts], device_buffers: int = 2
) -> ScheduleResult:
    """Concurrent copy and execution with ``device_buffers`` twin buffers.

    Read and store still run serially on the host thread (that is what
    §4.2 fixes), but the async H2D copy of buffer ``i+1`` overlaps the
    kernel on buffer ``i``.  The copy engine and the compute engine are
    each exclusive resources; a device buffer slot is reused only after
    its kernel finished.
    """
    if device_buffers < 1:
        raise ValueError("need at least one device buffer")
    n = len(phases)
    if n == 0:
        return ScheduleResult(0.0, 0)
    copy_free = 0.0
    kernel_free = 0.0
    host_t = 0.0
    kernel_done: list[float] = []
    # Single host thread: read i, issue async copy+kernel for i (the issue
    # itself is free at this resolution), then store results of buffer i-1
    # once its kernel completed.  The async copy of buffer i+1 thereby
    # overlaps the kernel of buffer i — the Fig. 4 timeline.
    for i, p in enumerate(phases):
        host_t += p.read
        slot_free = kernel_done[i - device_buffers] if i >= device_buffers else 0.0
        copy_start = max(host_t, copy_free, slot_free)
        copy_done = copy_start + p.transfer
        copy_free = copy_done
        kernel_start = max(copy_done, kernel_free)
        kernel_free = kernel_start + p.kernel
        kernel_done.append(kernel_free)
        if i >= 1:
            host_t = max(host_t, kernel_done[i - 1]) + phases[i - 1].store
    host_t = max(host_t, kernel_done[-1]) + phases[-1].store

    # Realized overlap = serial span minus concurrent span (Fig. 5 shows
    # this as the histogram overlap between Transfer and Kernel).
    serial = sum(p.total for p in phases)
    total = host_t
    return ScheduleResult(total, n, max(0.0, serial - total))


def pipeline_schedule(
    phases: Sequence[PhaseCosts], stages: int = 4, max_in_flight: int | None = None
) -> ScheduleResult:
    """Multi-stage streaming pipeline (§4.2).

    ``stages`` controls how many of the four stages run on their own
    resource: with ``stages=1`` everything is serialized; with 4, Reader,
    Transfer, Kernel and Store each pipeline independently.  Stages beyond
    ``stages`` are fused with the last independent resource, matching the
    paper's experiment of admitting a limited number of simultaneous
    pipeline stages (Fig. 9).  ``max_in_flight`` bounds admitted buffers
    (defaults to ``stages``, the ring-buffer depth of §4.1.2).
    """
    if not 1 <= stages <= 4:
        raise ValueError(f"stages must be in [1, 4], got {stages}")
    if max_in_flight is None:
        max_in_flight = stages
    if max_in_flight < 1:
        raise ValueError("max_in_flight must be >= 1")

    # Assign the 4 logical phases to `stages` resources (fuse the tail).
    resource_of_phase = [min(p, stages - 1) for p in range(4)]
    durations = [p.as_tuple() for p in phases]

    n = len(phases)
    finish = [[0.0] * 4 for _ in range(n)]
    resource_free = [0.0] * stages
    last_finish: list[float] = []
    for i in range(n):
        for phase in range(4):
            res = resource_of_phase[phase]
            prev_phase_done = finish[i][phase - 1] if phase else 0.0
            admission = 0.0
            if phase == 0 and i >= max_in_flight:
                admission = last_finish[i - max_in_flight]
            start = max(prev_phase_done, resource_free[res], admission)
            finish[i][phase] = start + durations[i][phase]
            resource_free[res] = finish[i][phase]
        last_finish.append(finish[i][3])
    total = last_finish[-1] if n else 0.0
    serial = sum(p.total for p in phases)
    return ScheduleResult(total, n, max(0.0, serial - total))


def spare_host_cycles(
    device_exec_seconds: float,
    launch_seconds: float,
    host: HostSpec = XEON_X5650_HOST,
) -> float:
    """Idle host cycles per core while the device works (Table 2).

    After launching the async copy + kernel (which costs only
    ``launch_seconds`` on the host), the host core is idle for the rest of
    the device execution; RDTSC would count these ticks.
    """
    idle = max(0.0, device_exec_seconds - launch_seconds)
    return idle * host.clock_hz
