"""Host memory allocation model: pageable vs pinned (§4.1.2, Fig. 6).

Captures the costs the paper measures in Figure 6:

* pageable allocation (``malloc`` + ``bzero`` to defeat Linux's optimistic
  deferred allocation) is cheap per byte;
* pinned allocation (CUDA's page-locked allocator) is roughly an order of
  magnitude more expensive per byte, because every page must be faulted
  in and locked;
* copying a pageable buffer into a pinned staging buffer costs a memcpy;
* pinning too much memory increases paging activity for the rest of the
  system (modeled as a multiplicative slowdown once a pinned-fraction
  threshold is crossed).

The model also tracks live allocations so that the circular ring buffer
optimization (allocate pinned regions once, reuse round-robin) can be
demonstrated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.gpu.specs import HostSpec, XEON_X5650_HOST

__all__ = ["HostAllocation", "HostMemoryModel"]


@dataclass(frozen=True)
class HostAllocation:
    """Handle to a modeled host allocation."""

    alloc_id: int
    size: int
    pinned: bool
    alloc_seconds: float


@dataclass
class HostMemoryModel:
    """Cost and bookkeeping model for host allocations.

    Calibration (Fig. 6, log-scale ms for 16-256 MB buffers):
    pageable alloc+init runs at ~8 GB/s, pinned allocation at ~0.55 GB/s
    (page faulting + locking each 4 KB page), memcpy at ~6 GB/s.
    """

    host: HostSpec = XEON_X5650_HOST
    #: bzero/first-touch bandwidth for pageable allocations.
    pageable_init_bandwidth: float = 8e9
    #: Effective pinned allocation bandwidth (fault + mlock per page).
    pinned_init_bandwidth: float = 0.55e9
    #: Per-call fixed overheads.
    pageable_call_overhead_s: float = 2e-6
    pinned_call_overhead_s: float = 40e-6
    #: Host memcpy bandwidth (pageable -> pinned staging copy).
    memcpy_bandwidth: float = 6e9
    #: Fraction of host RAM that can be pinned before paging activity for
    #: unpinned pages degrades (the "adverse side effect" of §4.1.2).
    pinned_pressure_threshold: float = 0.5
    #: Slowdown applied to pageable work when over the threshold.
    pressure_penalty: float = 4.0

    _ids: count = field(default_factory=count)
    _live: dict[int, HostAllocation] = field(default_factory=dict)
    pinned_bytes: int = 0
    pageable_bytes: int = 0

    # ------------------------------------------------------------------

    def _pressure_factor(self) -> float:
        if self.pinned_bytes / self.host.memory_bytes > self.pinned_pressure_threshold:
            return self.pressure_penalty
        return 1.0

    def alloc_pageable(self, size: int, initialize: bool = True) -> HostAllocation:
        """Model ``malloc`` (+ ``bzero`` when ``initialize``)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        seconds = self.pageable_call_overhead_s
        if initialize:
            seconds += size / self.pageable_init_bandwidth * self._pressure_factor()
        alloc = HostAllocation(next(self._ids), size, pinned=False, alloc_seconds=seconds)
        self._live[alloc.alloc_id] = alloc
        self.pageable_bytes += size
        return alloc

    def alloc_pinned(self, size: int) -> HostAllocation:
        """Model CUDA page-locked allocation (always faulted and locked)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.pinned_bytes + size > self.host.memory_bytes:
            raise MemoryError(
                f"cannot pin {size} bytes: {self.pinned_bytes} already pinned "
                f"of {self.host.memory_bytes} total"
            )
        seconds = self.pinned_call_overhead_s + size / self.pinned_init_bandwidth
        alloc = HostAllocation(next(self._ids), size, pinned=True, alloc_seconds=seconds)
        self._live[alloc.alloc_id] = alloc
        self.pinned_bytes += size
        return alloc

    def free(self, alloc: HostAllocation) -> None:
        """Release a live allocation."""
        stored = self._live.pop(alloc.alloc_id, None)
        if stored is None:
            raise KeyError(f"allocation {alloc.alloc_id} is not live")
        if stored.pinned:
            self.pinned_bytes -= stored.size
        else:
            self.pageable_bytes -= stored.size

    def memcpy_time(self, size: int) -> float:
        """Seconds for a host-to-host copy (pageable -> pinned staging)."""
        return size / self.memcpy_bandwidth * self._pressure_factor()

    @property
    def live_allocations(self) -> int:
        return len(self._live)
