"""Synthetic text and point datasets for the MapReduce applications (§6.3).

The Fig. 15 workloads are Word-Count, Co-occurrence Matrix, and K-means.
``generate_text`` produces newline-delimited records of Zipf-ish words;
``mutate_records`` replaces a controlled percentage of *records* (the unit
of change that matters for incremental MapReduce).  ``generate_points``
emits "x,y" records for K-means.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vocabulary",
    "generate_text",
    "generate_points",
    "mutate_records",
    "record_count",
]


def vocabulary(size: int = 2000, seed: int = 0) -> list[bytes]:
    """Deterministic pseudo-word vocabulary."""
    rng = np.random.default_rng(seed)
    letters = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)
    words = []
    for _ in range(size):
        length = int(rng.integers(3, 10))
        words.append(letters[rng.integers(0, 26, length)].tobytes())
    return words


def generate_text(
    n_bytes: int,
    seed: int = 0,
    words_per_record: int = 12,
    vocab_size: int = 2000,
) -> bytes:
    """~``n_bytes`` of newline-delimited text with a Zipf word distribution."""
    if n_bytes <= 0:
        return b""
    vocab = vocabulary(vocab_size, seed=0)
    rng = np.random.default_rng(seed)
    # Zipf over the vocabulary, clipped to the vocab size.
    records = []
    total = 0
    while total < n_bytes:
        idx = np.minimum(rng.zipf(1.3, words_per_record) - 1, vocab_size - 1)
        record = b" ".join(vocab[i] for i in idx) + b"\n"
        records.append(record)
        total += len(record)
    return b"".join(records)


def generate_points(
    n_points: int, n_clusters: int = 8, seed: int = 0, spread: float = 0.05
) -> bytes:
    """Newline-delimited "x,y" records drawn around ``n_clusters`` centers."""
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, 2))
    assignment = rng.integers(0, n_clusters, n_points)
    points = centers[assignment] + rng.normal(0, spread, (n_points, 2))
    lines = [f"{x:.6f},{y:.6f}".encode() for x, y in points]
    return b"\n".join(lines) + b"\n"


def record_count(data: bytes) -> int:
    """Number of newline-terminated records."""
    return data.count(b"\n")


def _text_record_factory(rng: np.random.Generator) -> bytes:
    vocab = vocabulary(seed=0)
    idx = np.minimum(rng.zipf(1.3, 12) - 1, len(vocab) - 1)
    return b" ".join(vocab[j] for j in idx)


def _point_record_factory(rng: np.random.Generator) -> bytes:
    x, y = rng.random(), rng.random()
    return f"{x:.6f},{y:.6f}".encode()


def mutate_records(
    data: bytes,
    percent: float,
    seed: int = 1,
    kind: str = "text",
    run: int = 100,
) -> bytes:
    """Replace ``percent``% of records with newly generated ones.

    Replacement happens in contiguous runs of ``run`` records (as real
    dataset updates do: new log days, recrawled pages), record-aligned so
    the data stays parseable.  ``kind`` selects the replacement record
    shape (``"text"`` word lines or ``"points"`` "x,y" lines) so mutated
    files keep their format.  0% returns the input unchanged.
    """
    if not 0 <= percent <= 100:
        raise ValueError(f"percent must be in [0, 100], got {percent}")
    if kind not in ("text", "points"):
        raise ValueError(f"unknown record kind {kind!r}")
    if percent == 0 or not data:
        return data
    factory = _text_record_factory if kind == "text" else _point_record_factory
    records = data.split(b"\n")
    trailing_newline = records and records[-1] == b""
    if trailing_newline:
        records = records[:-1]
    n = len(records)
    n_changed = max(1, int(n * percent / 100))
    rng = np.random.default_rng(seed)
    n_runs = max(1, n_changed // run)
    starts = rng.choice(max(1, n - min(run, n)), size=min(n_runs, max(1, n - min(run, n))), replace=False)
    changed = 0
    for start in starts:
        for i in range(start, min(start + run, n)):
            if changed >= n_changed:
                break
            records[i] = factory(rng)
            changed += 1
    out = b"\n".join(records)
    return out + b"\n" if trailing_newline else out
