"""Synthetic workload generation: byte streams, text corpora, point sets."""

from repro.workloads.datagen import (
    delete_fraction,
    insert_fraction,
    mutate,
    replace_fraction,
    seeded_bytes,
)
from repro.workloads.text import (
    generate_points,
    generate_text,
    mutate_records,
    record_count,
    vocabulary,
)

__all__ = [
    "delete_fraction", "insert_fraction", "mutate", "replace_fraction",
    "seeded_bytes", "generate_points", "generate_text", "mutate_records",
    "record_count", "vocabulary",
]
