"""Seeded byte-stream generation and mutation operators.

The incremental experiments (Fig. 15, Fig. 18) need input streams where a
controlled *percentage of the data* changes between runs.  Generators are
deterministic in their seeds so every backend and benchmark sees the same
bytes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "seeded_bytes",
    "replace_fraction",
    "insert_fraction",
    "delete_fraction",
    "mutate",
]


def seeded_bytes(n: int, seed: int = 0) -> bytes:
    """``n`` deterministic pseudo-random bytes."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


def _edit_sites(n: int, n_edits: int, rng: np.random.Generator) -> np.ndarray:
    """Distinct random offsets for edits, sorted."""
    if n_edits >= n:
        return np.arange(n)
    return np.sort(rng.choice(n, size=n_edits, replace=False))


def replace_fraction(
    data: bytes, fraction: float, seed: int = 1, edit_size: int = 256
) -> bytes:
    """Overwrite ``fraction`` of ``data`` in scattered ``edit_size`` runs.

    In-place replacement: length is preserved, so only the chunks covering
    an edited run change.
    """
    _check_fraction(fraction)
    n = len(data)
    if n == 0 or fraction == 0:
        return data
    total_edit = int(n * fraction)
    n_edits = max(1, total_edit // edit_size)
    rng = np.random.default_rng(seed)
    arr = np.frombuffer(data, dtype=np.uint8).copy()
    sites = rng.choice(max(1, n - edit_size), size=n_edits, replace=False)
    for site in sites:
        run = min(edit_size, n - site)
        arr[site : site + run] = rng.integers(0, 256, run, dtype=np.uint8)
    return arr.tobytes()

def insert_fraction(
    data: bytes, fraction: float, seed: int = 1, edit_size: int = 256
) -> bytes:
    """Insert ``fraction`` of new bytes at scattered offsets (shifts data)."""
    _check_fraction(fraction)
    n = len(data)
    if n == 0 or fraction == 0:
        return data
    total_insert = int(n * fraction)
    n_edits = max(1, total_insert // edit_size)
    rng = np.random.default_rng(seed)
    sites = _edit_sites(n, n_edits, rng)
    pieces = []
    prev = 0
    for site in sites:
        pieces.append(data[prev:site])
        pieces.append(rng.integers(0, 256, edit_size, dtype=np.uint8).tobytes())
        prev = site
    pieces.append(data[prev:])
    return b"".join(pieces)


def delete_fraction(
    data: bytes, fraction: float, seed: int = 1, edit_size: int = 256
) -> bytes:
    """Delete ``fraction`` of bytes in scattered runs (shifts data)."""
    _check_fraction(fraction)
    n = len(data)
    if n == 0 or fraction == 0:
        return data
    total_delete = int(n * fraction)
    n_edits = max(1, total_delete // edit_size)
    rng = np.random.default_rng(seed)
    sites = _edit_sites(max(1, n - edit_size), n_edits, rng)
    pieces = []
    prev = 0
    for site in sites:
        if site < prev:
            continue  # overlapping deletions collapse
        pieces.append(data[prev:site])
        prev = site + edit_size
    pieces.append(data[prev:])
    return b"".join(pieces)


def mutate(
    data: bytes,
    percent: float,
    mode: str = "replace",
    seed: int = 1,
    edit_size: int = 256,
) -> bytes:
    """Apply ``percent``% changes with the given operator.

    ``mode`` is one of ``replace`` (in-place), ``insert``, ``delete`` or
    ``mixed`` (one third each).
    """
    fraction = percent / 100.0
    if mode == "replace":
        return replace_fraction(data, fraction, seed, edit_size)
    if mode == "insert":
        return insert_fraction(data, fraction, seed, edit_size)
    if mode == "delete":
        return delete_fraction(data, fraction, seed, edit_size)
    if mode == "mixed":
        third = fraction / 3
        out = replace_fraction(data, third, seed, edit_size)
        out = insert_fraction(out, third, seed + 1, edit_size)
        return delete_fraction(out, third, seed + 2, edit_size)
    raise ValueError(f"unknown mutation mode {mode!r}")


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
