"""Generic multi-stage streaming pipeline (§4.2, Fig. 8).

Real threaded infrastructure used by the Shredder host driver: each stage
runs on its own worker thread (mirroring the Reader / Transfer / Kernel /
Store threads of the paper), connected by bounded queues whose combined
depth plays the role of the pinned ring buffer, limiting in-flight
buffers.  Results are delivered in input order.

Timing *models* of pipelining live in :mod:`repro.gpu.timeline`; this
module moves real data.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Stage", "StreamingPipeline", "PipelineError"]

_SENTINEL = object()


class PipelineError(RuntimeError):
    """A stage raised; carries the original exception as ``__cause__``."""


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a name and a function applied to each item."""

    name: str
    fn: Callable[[Any], Any]


class StreamingPipeline:
    """Run items through stages concurrently, preserving order.

    >>> pipe = StreamingPipeline([Stage("double", lambda x: 2 * x),
    ...                           Stage("inc", lambda x: x + 1)])
    >>> pipe.run(range(5))
    [1, 3, 5, 7, 9]

    ``max_in_flight`` bounds the number of items admitted but not yet
    finished (the paper's restriction on buffers admitted to the
    pipeline, used to vary pipeline depth in Fig. 9).
    """

    def __init__(self, stages: Sequence[Stage], max_in_flight: int = 4) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.stages = list(stages)
        self.max_in_flight = max_in_flight

    def run(self, items: Iterable[Any]) -> list[Any]:
        """Process ``items`` through every stage; returns ordered results."""
        n_stages = len(self.stages)
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=max(1, self.max_in_flight)) for _ in range(n_stages + 1)
        ]
        errors: list[BaseException] = []
        error_lock = threading.Lock()
        stop = threading.Event()

        def worker(stage: Stage, inq: queue.Queue, outq: queue.Queue) -> None:
            # Each stage accumulates the wall-clock spent inside its fn
            # (queue waits excluded) into the shared stage timers, so
            # profiling sees where pipeline time actually goes.
            from repro.core import stats

            busy = 0.0
            try:
                while True:
                    item = inq.get()
                    if item is _SENTINEL:
                        outq.put(_SENTINEL)
                        return
                    if stop.is_set():
                        continue  # drain without processing after a failure
                    try:
                        t0 = time.perf_counter()
                        result = stage.fn(item)
                        busy += time.perf_counter() - t0
                        outq.put(result)
                    except BaseException as exc:  # propagate to caller
                        with error_lock:
                            errors.append(exc)
                        stop.set()
            finally:
                stats.record_stage(stage.name, busy)

        threads = [
            threading.Thread(
                target=worker,
                args=(stage, queues[i], queues[i + 1]),
                name=f"pipeline-{stage.name}",
                daemon=True,
            )
            for i, stage in enumerate(self.stages)
        ]
        for t in threads:
            t.start()

        results: list[Any] = []
        outq = queues[-1]

        def feeder() -> None:
            for item in items:
                if stop.is_set():
                    break
                queues[0].put(item)
            queues[0].put(_SENTINEL)

        feed_thread = threading.Thread(target=feeder, name="pipeline-feeder", daemon=True)
        feed_thread.start()

        while True:
            out = outq.get()
            if out is _SENTINEL:
                break
            results.append(out)

        feed_thread.join()
        for t in threads:
            t.join()
        if errors:
            raise PipelineError(f"stage failed: {errors[0]!r}") from errors[0]
        return results
