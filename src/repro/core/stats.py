"""Chunk-size and dedup statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chunking import Chunk

__all__ = ["SizeStats", "size_stats", "dedup_ratio", "unique_bytes"]


@dataclass(frozen=True)
class SizeStats:
    """Summary statistics of a chunk-size distribution."""

    count: int
    total: int
    mean: float
    stdev: float
    minimum: int
    maximum: int

    @property
    def coefficient_of_variation(self) -> float:
        return self.stdev / self.mean if self.mean else 0.0


def size_stats(sizes: Sequence[int]) -> SizeStats:
    """Summary of a list of chunk sizes."""
    if not sizes:
        return SizeStats(0, 0, 0.0, 0.0, 0, 0)
    n = len(sizes)
    total = sum(sizes)
    mean = total / n
    var = sum((s - mean) ** 2 for s in sizes) / n
    return SizeStats(n, total, mean, math.sqrt(var), min(sizes), max(sizes))


def unique_bytes(chunks: Iterable[Chunk]) -> int:
    """Bytes after dedup: each distinct digest counted once."""
    seen: dict[bytes, int] = {}
    for chunk in chunks:
        seen.setdefault(chunk.digest, chunk.length)
    return sum(seen.values())


def dedup_ratio(chunks: Sequence[Chunk]) -> float:
    """Fraction of bytes eliminated by dedup over a chunk sequence."""
    total = sum(c.length for c in chunks)
    if total == 0:
        return 0.0
    return 1.0 - unique_bytes(chunks) / total
