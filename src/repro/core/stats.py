"""Chunk-size, dedup, and scan-instrumentation statistics helpers.

Besides the chunk-size summaries, this module hosts two lightweight
process-wide instrumentation sinks for the fast path:

* **Scan counters** — every striped/fused tile scan records how many
  kernel dispatches it issued (one dispatch = one fused roll-kernel
  launch advancing every lane ``roll_steps`` positions; the paper's
  per-launch amortization, §4.1, measured instead of modeled), how many
  bytes and tiles it covered, and the tile geometry used.  The e2e
  benchmark surfaces ``bytes_per_dispatch`` so dispatch reduction shows
  up directly in ``BENCH_e2e.json``.
* **Stage timers** — the chunk pipeline (scan / hash) and the dedup
  index (lookup) accumulate wall-clock per stage, powering
  ``python -m repro chunk --profile``.

Both sinks are cumulative until reset, guarded by one lock, and cheap:
they are touched once per tile scan / pipeline batch, never per byte.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import weakref
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.chunking import Chunk

__all__ = [
    "SizeStats",
    "size_stats",
    "dedup_ratio",
    "unique_bytes",
    "ScanCounters",
    "record_scan",
    "scan_counters",
    "reset_scan_counters",
    "record_stage",
    "stage_times",
    "reset_stage_times",
    "register_backend_stats",
    "register_node_stats",
    "snapshot",
]


@dataclass(frozen=True)
class SizeStats:
    """Summary statistics of a chunk-size distribution."""

    count: int
    total: int
    mean: float
    stdev: float
    minimum: int
    maximum: int

    @property
    def coefficient_of_variation(self) -> float:
        return self.stdev / self.mean if self.mean else 0.0


def size_stats(sizes: Sequence[int]) -> SizeStats:
    """Summary of a list of chunk sizes."""
    if not sizes:
        return SizeStats(0, 0, 0.0, 0.0, 0, 0)
    n = len(sizes)
    total = sum(sizes)
    mean = total / n
    var = sum((s - mean) ** 2 for s in sizes) / n
    return SizeStats(n, total, mean, math.sqrt(var), min(sizes), max(sizes))


def unique_bytes(chunks: Iterable[Chunk]) -> int:
    """Bytes after dedup: each distinct digest counted once."""
    seen: dict[bytes, int] = {}
    for chunk in chunks:
        seen.setdefault(chunk.digest, chunk.length)
    return sum(seen.values())


def dedup_ratio(chunks: Sequence[Chunk]) -> float:
    """Fraction of bytes eliminated by dedup over a chunk sequence."""
    total = sum(c.length for c in chunks)
    if total == 0:
        return 0.0
    return 1.0 - unique_bytes(chunks) / total


# ----------------------------------------------------------------------
# scan instrumentation
# ----------------------------------------------------------------------


@dataclass
class ScanCounters:
    """Cumulative striped-scan instrumentation since the last reset.

    ``dispatches`` counts fused roll-kernel launches (Python-level loop
    iterations of the striped scan: each launch advances every lane by
    ``roll_steps`` positions, plus one launch per tile seed / gather
    evaluation).  ``geometry`` records the last scan's effective
    ``(lanes, tile_bytes, roll_steps)`` so benchmark rows can attribute
    a dispatch rate to the geometry that produced it.
    """

    scans: int = 0
    tiles: int = 0
    dispatches: int = 0
    positions: int = 0
    scanned_bytes: int = 0
    geometry: dict = field(default_factory=dict)

    @property
    def bytes_per_dispatch(self) -> float:
        """Mean payload bytes advanced per kernel dispatch."""
        if self.dispatches == 0:
            return 0.0
        return self.scanned_bytes / self.dispatches

    @property
    def dispatches_per_mib(self) -> float:
        """Kernel dispatches issued per MiB scanned (the ISSUE metric)."""
        if self.scanned_bytes == 0:
            return 0.0
        return self.dispatches / (self.scanned_bytes / (1 << 20))


_SCAN_LOCK = threading.Lock()
_SCAN = ScanCounters()
_STAGES: dict[str, float] = {}


def record_scan(
    *,
    dispatches: int,
    tiles: int,
    positions: int,
    scanned_bytes: int,
    geometry: dict | None = None,
) -> None:
    """Accumulate one tile-scan's instrumentation (thread-safe)."""
    with _SCAN_LOCK:
        _SCAN.scans += 1
        _SCAN.tiles += tiles
        _SCAN.dispatches += dispatches
        _SCAN.positions += positions
        _SCAN.scanned_bytes += scanned_bytes
        if geometry:
            _SCAN.geometry = dict(geometry)


def scan_counters() -> ScanCounters:
    """Snapshot of the cumulative scan counters."""
    with _SCAN_LOCK:
        return ScanCounters(
            scans=_SCAN.scans,
            tiles=_SCAN.tiles,
            dispatches=_SCAN.dispatches,
            positions=_SCAN.positions,
            scanned_bytes=_SCAN.scanned_bytes,
            geometry=dict(_SCAN.geometry),
        )


def reset_scan_counters() -> None:
    """Zero the cumulative scan counters (e.g. before a timed run)."""
    with _SCAN_LOCK:
        _SCAN.scans = 0
        _SCAN.tiles = 0
        _SCAN.dispatches = 0
        _SCAN.positions = 0
        _SCAN.scanned_bytes = 0
        _SCAN.geometry = {}


# ----------------------------------------------------------------------
# pipeline stage timers
# ----------------------------------------------------------------------


def record_stage(name: str, seconds: float) -> None:
    """Accumulate wall-clock for one pipeline stage (thread-safe)."""
    with _SCAN_LOCK:
        _STAGES[name] = _STAGES.get(name, 0.0) + seconds


def stage_times() -> dict[str, float]:
    """Snapshot of accumulated per-stage seconds since the last reset."""
    with _SCAN_LOCK:
        return dict(_STAGES)


def reset_stage_times() -> None:
    """Zero the per-stage timers."""
    with _SCAN_LOCK:
        _STAGES.clear()


# ----------------------------------------------------------------------
# process-wide counter registry + merged snapshot
# ----------------------------------------------------------------------

# Live stats objects register themselves here at construction (weakly,
# so a closed backend or a decommissioned node drops out with its
# owner).  ``snapshot()`` aggregates across whatever is still alive —
# the metrics endpoint and ``repro chunk --profile`` both consume the
# same merged view instead of each walking the owners themselves.
# Keyed by id() because the stats dataclasses are mutable (unhashable);
# weak values mean a dead entry vanishes before its id can be reused.
_BACKEND_STATS: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
_NODE_STATS: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()


def register_backend_stats(stats_obj) -> None:
    """Track a :class:`~repro.store.backend.BackendStats` for snapshots."""
    with _SCAN_LOCK:
        _BACKEND_STATS[id(stats_obj)] = stats_obj


def register_node_stats(stats_obj) -> None:
    """Track a :class:`~repro.store.node.NodeStats` for snapshots."""
    with _SCAN_LOCK:
        _NODE_STATS[id(stats_obj)] = stats_obj


def _aggregate(instances) -> dict:
    """Field-wise merge of live stats dataclasses.

    Integer counters sum across instances; float gauges (fill ratios)
    report their maximum — the saturation signal survives aggregation,
    a mean across mostly-empty instances would hide it.
    """
    merged: dict = {"instances": len(instances)}
    for obj in instances:
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, float):
                merged[f.name] = max(merged.get(f.name, 0.0), value)
            else:
                merged[f.name] = merged.get(f.name, 0) + value
    return merged


def snapshot() -> dict:
    """One merged dict of scan / stage / backend / node counters.

    The single aggregation point for process-wide instrumentation:
    the service metrics endpoint serves it and ``repro chunk
    --profile`` prints from it.  Shape::

        {"scan":     {...ScanCounters + derived rates...},
         "stages":   {"scan": s, "hash": s, "lookup": s, "store": s},
         "backends": {"instances": n, "puts": ..., "gets": ...},
         "nodes":    {"instances": n, "probes": ..., "hits": ...}}
    """
    scan = scan_counters()
    with _SCAN_LOCK:
        backends = list(_BACKEND_STATS.values())
        nodes = list(_NODE_STATS.values())
    scan_dict = dataclasses.asdict(scan)
    scan_dict["bytes_per_dispatch"] = scan.bytes_per_dispatch
    scan_dict["dispatches_per_mib"] = scan.dispatches_per_mib
    return {
        "scan": scan_dict,
        "stages": stage_times(),
        "backends": _aggregate(backends),
        "nodes": _aggregate(nodes),
    }
