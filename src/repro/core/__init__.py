"""Core Shredder library: Rabin fingerprinting, chunking, dedup, pipeline."""

from repro.core.baselines import FixedSizeChunker, SampleByteChunker
from repro.core.buffers import DoubleBuffer, PinnedRingBuffer, RingSlot
from repro.core.chunking import (
    Chunk,
    Chunker,
    ChunkerConfig,
    chunk_sizes,
    ensure_digests,
    pipeline_chunks,
    select_cuts,
    select_cuts_fast,
)
from repro.core.autotune import ScanGeometry, get_geometry
from repro.core.dedup import DedupIndex, DedupStats
from repro.core.engines import (
    Engine,
    SerialEngine,
    VectorEngine,
    as_byte_view,
    as_uint8,
    default_engine,
    parallel_candidate_cuts,
)
from repro.core.hashing import chunk_hash, digest_chunks, digest_many, short_hash, weak_checksum
from repro.core.threads import (
    available_cpus,
    close_pools,
    get_threads,
    set_default_threads,
    set_threads,
)
from repro.core.host_chunker import HOARD, MALLOC, AllocatorModel, HostParallelChunker
from repro.core.executor import BoundaryStitcher, ExecutionTotals, ShredderExecutor
from repro.core.parallel_minmax import compute_jumps, parallel_select_cuts
from repro.core.pipeline import PipelineError, Stage, StreamingPipeline
from repro.core.rabin import DEFAULT_WINDOW_SIZE, RabinFingerprinter, default_polynomial
from repro.core.shredder import Shredder, ShredderConfig, ShredderReport
from repro.core.stats import (
    ScanCounters,
    SizeStats,
    dedup_ratio,
    reset_scan_counters,
    reset_stage_times,
    scan_counters,
    size_stats,
    stage_times,
    unique_bytes,
)
from repro.core.stats import snapshot as stats_snapshot

__all__ = [
    "FixedSizeChunker", "SampleByteChunker",
    "BoundaryStitcher", "ExecutionTotals", "ShredderExecutor",
    "compute_jumps", "parallel_select_cuts",
    "DoubleBuffer", "PinnedRingBuffer", "RingSlot",
    "Chunk", "Chunker", "ChunkerConfig", "chunk_sizes", "ensure_digests",
    "pipeline_chunks", "select_cuts", "select_cuts_fast",
    "DedupIndex", "DedupStats",
    "ScanGeometry", "get_geometry",
    "Engine", "SerialEngine", "VectorEngine", "as_byte_view", "as_uint8",
    "default_engine", "parallel_candidate_cuts",
    "chunk_hash", "digest_chunks", "digest_many", "short_hash", "weak_checksum",
    "available_cpus", "close_pools", "get_threads", "set_default_threads",
    "set_threads",
    "HOARD", "MALLOC", "AllocatorModel", "HostParallelChunker",
    "PipelineError", "Stage", "StreamingPipeline",
    "DEFAULT_WINDOW_SIZE", "RabinFingerprinter", "default_polynomial",
    "Shredder", "ShredderConfig", "ShredderReport",
    "ScanCounters", "SizeStats", "dedup_ratio", "reset_scan_counters",
    "reset_stage_times", "scan_counters", "size_stats", "stage_times",
    "stats_snapshot",
    "unique_bytes",
]
