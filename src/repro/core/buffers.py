"""Host and device staging buffers (§4.1.1 and §4.1.2).

Two buffer disciplines from the paper:

:class:`DoubleBuffer`
    Twin device buffers used alternately for communication and
    computation, enabling concurrent copy and execution (Fig. 4).

:class:`PinnedRingBuffer`
    A circular ring of page-pinned host staging regions allocated *once*
    at initialization and reused round-robin (Fig. 7), so the high cost of
    pinned allocation is paid a constant number of times instead of per
    transfer.  The ring depth matches the number of pipeline stages.

Both track modeled time so the effectiveness experiments (Fig. 5, Fig. 6)
can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceBuffer, GPUDevice
from repro.gpu.host_memory import HostAllocation, HostMemoryModel

__all__ = ["DoubleBuffer", "PinnedRingBuffer", "RingSlot"]


class DoubleBuffer:
    """Twin (or wider) set of device buffers used round-robin.

    ``next_buffer()`` returns the buffer the next transfer should fill
    while the kernel may still be consuming the previous one; the timeline
    scheduler (:func:`repro.gpu.timeline.double_buffered_schedule`)
    provides the corresponding timing semantics.
    """

    def __init__(self, device: GPUDevice, buffer_size: int, count: int = 2) -> None:
        if count < 2:
            raise ValueError(f"double buffering needs >= 2 buffers, got {count}")
        self.device = device
        self.buffers: list[DeviceBuffer] = [device.alloc(buffer_size) for _ in range(count)]
        self._turn = 0

    def next_buffer(self) -> DeviceBuffer:
        buf = self.buffers[self._turn % len(self.buffers)]
        self._turn += 1
        return buf

    def release(self) -> None:
        """Free all device buffers."""
        for buf in self.buffers:
            self.device.free(buf)
        self.buffers.clear()


@dataclass
class RingSlot:
    """One pinned staging region in the ring."""

    index: int
    allocation: HostAllocation
    in_use: bool = False


@dataclass
class PinnedRingBuffer:
    """Circular ring of pinned host staging buffers (§4.1.2).

    ``acquire()`` hands out the next free slot round-robin; the caller
    models a host memcpy from its pageable input region into the slot
    (``staging_copy_time``) and later calls ``release``.

    ``setup_seconds`` is the one-time allocation cost; ``amortized_cost``
    lets Fig. 6 compare against allocating a fresh pinned (or pageable)
    buffer for every transfer.
    """

    memory: HostMemoryModel
    slot_size: int
    num_slots: int = 4
    _slots: list[RingSlot] = field(default_factory=list)
    _next: int = 0
    setup_seconds: float = 0.0
    acquires: int = 0

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError("ring needs at least one slot")
        for i in range(self.num_slots):
            alloc = self.memory.alloc_pinned(self.slot_size)
            self._slots.append(RingSlot(i, alloc))
            self.setup_seconds += alloc.alloc_seconds

    def acquire(self) -> RingSlot:
        """Next slot, round-robin.  Raises if the ring is saturated."""
        for _ in range(self.num_slots):
            slot = self._slots[self._next % self.num_slots]
            self._next += 1
            if not slot.in_use:
                slot.in_use = True
                self.acquires += 1
                return slot
        raise RuntimeError(
            f"pinned ring exhausted: all {self.num_slots} slots are in use"
        )

    def release(self, slot: RingSlot) -> None:
        if not slot.in_use:
            raise ValueError(f"ring slot {slot.index} is not in use")
        slot.in_use = False

    def staging_copy_time(self, size: int) -> float:
        """Modeled pageable->pinned memcpy for one transfer of ``size``."""
        if size > self.slot_size:
            raise ValueError(f"transfer of {size} exceeds slot size {self.slot_size}")
        return self.memory.memcpy_time(size)

    def amortized_cost(self, transfers: int) -> float:
        """Per-transfer setup cost after ``transfers`` reuses of the ring."""
        if transfers <= 0:
            raise ValueError("transfers must be positive")
        return self.setup_seconds / transfers

    def destroy(self) -> None:
        """Release all pinned slots back to the host memory model."""
        for slot in self._slots:
            self.memory.free(slot.allocation)
        self._slots.clear()
