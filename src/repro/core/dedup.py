"""Chunk matching (step 3 of duplicate identification, §2.1).

A minimal in-memory dedup index: maps chunk digests to stored-chunk
metadata and answers "is this chunk new?".  Both case studies build on
this — the backup server (§7) feeds digests through a lookup queue and
ships either chunk data or a pointer, and Inc-HDFS (§6) uses digests as
memoization keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.chunking import Chunk

__all__ = ["DedupIndex", "DedupStats"]


def _record_lookup(seconds: float) -> None:
    """Feed batched-probe wall-clock to the ``lookup`` stage timer.

    Lazy import: stats sits above chunking (hence above this module) in
    the import graph.  Only the batched entry points are timed — the
    per-chunk path is too fine-grained to meter without distorting it.
    """
    from repro.core import stats

    stats.record_stage("lookup", seconds)


@dataclass
class DedupStats:
    """Running dedup effectiveness counters."""

    total_chunks: int = 0
    unique_chunks: int = 0
    total_bytes: int = 0
    unique_bytes: int = 0

    @property
    def duplicate_chunks(self) -> int:
        return self.total_chunks - self.unique_chunks

    @property
    def duplicate_bytes(self) -> int:
        return self.total_bytes - self.unique_bytes

    @property
    def dedup_ratio(self) -> float:
        """Fraction of bytes eliminated (0 when nothing was seen)."""
        if self.total_bytes == 0:
            return 0.0
        return self.duplicate_bytes / self.total_bytes


@dataclass
class DedupIndex:
    """Digest -> first-seen chunk location index.

    ``lookup_or_insert`` returns ``(is_duplicate, canonical_offset)``:
    duplicates report the offset at which the content was first stored.
    """

    _index: dict[bytes, int] = field(default_factory=dict)
    stats: DedupStats = field(default_factory=DedupStats)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._index

    def lookup(self, digest: bytes) -> int | None:
        """Offset of the canonical copy, or ``None`` if unseen."""
        return self._index.get(digest)

    def lookup_or_insert(self, chunk: Chunk) -> tuple[bool, int]:
        self.stats.total_chunks += 1
        self.stats.total_bytes += chunk.length
        existing = self._index.get(chunk.digest)
        if existing is not None:
            return True, existing
        self._index[chunk.digest] = chunk.offset
        self.stats.unique_chunks += 1
        self.stats.unique_bytes += chunk.length
        return False, chunk.offset

    def lookup_batch(self, digests: Iterable[bytes]) -> list[int | None]:
        """Resolve many digests against the current index in one call.

        Read-only: nothing is inserted and stats are untouched, so
        repeats of an unseen digest within one batch all resolve to
        ``None``.  This is the probe shape the batched cluster lookup
        path shares (one request, many digests) — use
        :meth:`lookup_or_insert_batch` for the stateful backup flow.
        """
        t0 = time.perf_counter()
        index = self._index
        result = [index.get(d) for d in digests]
        _record_lookup(time.perf_counter() - t0)
        return result

    def lookup_or_insert_batch(self, chunks: Sequence[Chunk]) -> list[tuple[bool, int]]:
        """Batched :meth:`lookup_or_insert` over a chunk sequence.

        Semantically identical to the per-chunk loop the backup server
        used to run — intra-batch duplicates resolve against earlier
        chunks of the same batch — but gives callers one call site to
        amortize, keeping the single-node and cluster paths symmetric.
        """
        t0 = time.perf_counter()
        result = [self.lookup_or_insert(chunk) for chunk in chunks]
        _record_lookup(time.perf_counter() - t0)
        return result

    def add_all(self, chunks) -> DedupStats:
        """Feed a chunk sequence through the index; returns the stats."""
        for chunk in chunks:
            self.lookup_or_insert(chunk)
        return self.stats
