"""Chunk matching (step 3 of duplicate identification, §2.1).

The dedup index maps chunk digests to stored-chunk metadata and answers
"is this chunk new?".  Both case studies build on this — the backup
server (§7) feeds digests through a lookup queue and ships either chunk
data or a pointer, and Inc-HDFS (§6) uses digests as memoization keys.

The probe surface is batched-only: ``lookup_batch`` (read-only) and
``lookup_or_insert_batch`` (the stateful backup flow).  The per-chunk
server loop PR 1 deprecated is gone — one call site per batch is the
shape the cluster lookup path and the §7.3 cost model already charge.

State lives on a pluggable :class:`~repro.store.backend.ChunkBackend`
(digest -> canonical offset): in-memory by default, or the persistent
log+LSM backend (``backend="disk"``) so an index can be closed,
reopened from its ``data_dir``, and answer ``lookup_batch`` with the
same hit/miss pattern — the realistic index-miss cost model the ROADMAP
asked for.  Effectiveness counters (:class:`DedupStats`) describe the
*current process's* traffic and intentionally reset on reopen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.store.backend import make_backend

if TYPE_CHECKING:
    from repro.core.chunking import Chunk
    from repro.store.backend import ChunkBackend

__all__ = ["DedupIndex", "DedupStats"]

_OFFSET_BYTES = 8  # canonical offsets ride the backend as u64 values


def _record_lookup(seconds: float) -> None:
    """Feed batched-probe wall-clock to the ``lookup`` stage timer.

    Lazy import: stats sits above chunking (hence above this module) in
    the import graph.  Only the probe side is metered here — backend
    mutations time themselves into the ``store`` stage.
    """
    from repro.core import stats

    stats.record_stage("lookup", seconds)


@dataclass
class DedupStats:
    """Running dedup effectiveness counters."""

    total_chunks: int = 0
    unique_chunks: int = 0
    total_bytes: int = 0
    unique_bytes: int = 0

    @property
    def duplicate_chunks(self) -> int:
        return self.total_chunks - self.unique_chunks

    @property
    def duplicate_bytes(self) -> int:
        return self.total_bytes - self.unique_bytes

    @property
    def dedup_ratio(self) -> float:
        """Fraction of bytes eliminated (0 when nothing was seen)."""
        if self.total_bytes == 0:
            return 0.0
        return self.duplicate_bytes / self.total_bytes


class DedupIndex:
    """Digest -> first-seen chunk location index over a ChunkBackend.

    ``backend`` may be a ready :class:`~repro.store.backend.ChunkBackend`
    instance, a kind string (``"memory"`` / ``"disk"``), or ``None`` to
    follow ``REPRO_STORE_BACKEND`` (default memory).  ``data_dir``
    places a disk index; without it a disk index is ephemeral.
    """

    def __init__(
        self,
        backend: "ChunkBackend | str | None" = None,
        *,
        data_dir=None,
        stats: DedupStats | None = None,
    ) -> None:
        if backend is None or isinstance(backend, str):
            backend = make_backend(backend, data_dir)
        self._backend = backend
        self.stats = stats or DedupStats()

    @property
    def backend(self) -> "ChunkBackend":
        return self._backend

    def __len__(self) -> int:
        return len(self._backend)

    def __contains__(self, digest: bytes) -> bool:
        return self._backend.contains_batch([digest])[0]

    def lookup_batch(self, digests: Iterable[bytes]) -> list[int | None]:
        """Resolve many digests against the current index in one call.

        Read-only: nothing is inserted and stats are untouched, so
        repeats of an unseen digest within one batch all resolve to
        ``None``.  This is the probe shape the batched cluster lookup
        path shares (one request, many digests) — use
        :meth:`lookup_or_insert_batch` for the stateful backup flow.
        """
        t0 = time.perf_counter()
        found = self._backend.get_batch(list(digests))
        result = [
            None if v is None else int.from_bytes(v, "big") for v in found
        ]
        _record_lookup(time.perf_counter() - t0)
        return result

    def lookup_or_insert_batch(self, chunks: Sequence["Chunk"]) -> list[tuple[bool, int]]:
        """Batched lookup-or-insert over a chunk sequence.

        Returns ``(is_duplicate, canonical_offset)`` per chunk:
        duplicates report the offset at which the content was first
        stored, and intra-batch duplicates resolve against earlier
        chunks of the same batch — identical semantics to the retired
        per-chunk server loop, amortized over one probe and one insert
        per batch.
        """
        t0 = time.perf_counter()
        stats = self.stats
        digests = [chunk.digest for chunk in chunks]
        found = self._backend.get_batch(digests)
        probe_seconds = time.perf_counter() - t0
        result: list[tuple[bool, int]] = []
        batch_first: dict[bytes, int] = {}
        new_items: list[tuple[bytes, bytes]] = []
        for chunk, digest, value in zip(chunks, digests, found):
            stats.total_chunks += 1
            stats.total_bytes += chunk.length
            if value is not None:
                result.append((True, int.from_bytes(value, "big")))
                continue
            first = batch_first.get(digest)
            if first is not None:
                result.append((True, first))
                continue
            batch_first[digest] = chunk.offset
            new_items.append((digest, chunk.offset.to_bytes(_OFFSET_BYTES, "big")))
            stats.unique_chunks += 1
            stats.unique_bytes += chunk.length
            result.append((False, chunk.offset))
        if new_items:
            # known_absent: get_batch just proved these misses, and
            # batch_first made the keys unique — the backend skips the
            # second probe, so a miss costs one index walk, not two.
            self._backend.put_batch(new_items, known_absent=True)
        _record_lookup(probe_seconds)
        return result

    def add_all(self, chunks) -> DedupStats:
        """Feed a chunk sequence through the index; returns the stats."""
        self.lookup_or_insert_batch(list(chunks))
        return self.stats

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        self._backend.flush()

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "DedupIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
