"""Chunking engines: find marker positions in a byte stream.

An *engine* scans a buffer with a sliding Rabin window and returns every
**candidate cut**: an exclusive end offset ``c`` such that the window
ending at byte ``c - 1`` fingerprints to the marker value.  Candidate cuts
are min/max-agnostic (the paper's GPU kernel behaves the same way: the
Store thread applies min/max afterwards, §7.3).

Both engines accept any object exporting the buffer protocol (``bytes``,
``bytearray``, ``memoryview``, ``mmap``, NumPy ``uint8`` arrays, ...) and
scan it **without copying** — the zero-copy fast path the paper's pinned
ring buffers exist to preserve.

Two interchangeable implementations:

``SerialEngine``
    Pure-Python rolling reference.  Slow but obviously correct; used for
    differential testing and tiny inputs.

``VectorEngine``
    NumPy data-parallel evaluation.  Small inputs use the linearity of
    Rabin fingerprints (XOR of per-position table entries, folded in
    16-bit pairs).  Large inputs use a *striped rolling scan*: the buffer
    is cut into cache-sized tiles, each tile into ``lanes`` equal
    sub-streams, and every lane rolls its own window serially while NumPy
    vectorizes *across* lanes — exactly the paper's SPMD kernel layout
    (§3.1).  By default the striped scan runs the **fused multi-step
    roll kernel** (``roll_steps``): the same GF(2) linearity that yields
    the position tables collapses a step's out-table and entering-byte
    lookups into one gather from a composite 16-bit-indexed roll table,
    and one kernel launch pre-gathers ``roll_steps`` steps' data terms
    for every lane before an unrolled reduce chain retires them —
    amortizing per-launch dispatch the way the paper amortizes kernel
    launch and DMA over larger work units (§4.1).  ``roll_steps=1``
    preserves the original one-step loop as the differential reference.
    All lookup tables are cached at module level keyed by
    ``(polynomial, window_size)`` so fresh engines are cheap to build;
    default geometry (lanes/tile/roll_steps) comes from the per-host
    autotuner (:mod:`repro.core.autotune`) rather than constants.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.rabin import RabinFingerprinter
from repro.core.threads import get_threads, scan_pool

__all__ = [
    "Engine",
    "SerialEngine",
    "VectorEngine",
    "default_engine",
    "as_byte_view",
    "as_uint8",
    "engine_tables",
    "fused_roll_tables",
    "parallel_candidate_cuts",
    "DEFAULT_LANES",
    "DEFAULT_TILE_BYTES",
    "DEFAULT_ROLL_STEPS",
]


def as_byte_view(buf) -> memoryview:
    """Flat byte ``memoryview`` of any buffer-protocol object, no copy.

    The one normalization point for the zero-copy path: every consumer
    (engines, chunkers, streaming, batched hashing) funnels through here.
    Raises ``BufferError`` for non-contiguous buffers (e.g. strided
    memoryview slices), which no zero-copy view can represent — callers
    that accept such inputs flatten with ``bytes()`` first.
    """
    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    if not mv.c_contiguous:  # checked first: cast() would raise TypeError
        raise BufferError("underlying buffer is not C-contiguous")
    if mv.ndim != 1 or mv.format != "B":
        mv = mv.cast("B")
    return mv


def as_uint8(data) -> np.ndarray:
    """Zero-copy ``uint8`` view of any buffer-protocol object.

    NumPy arrays pass through (reinterpreted as bytes if needed); other
    buffers (bytes, bytearray, memoryview, mmap, ...) are wrapped via
    ``np.frombuffer`` without copying.
    """
    if isinstance(data, np.ndarray):
        if data.dtype == np.uint8 and data.ndim == 1:
            return data
        return np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    return np.frombuffer(as_byte_view(data), dtype=np.uint8)


class _EngineTables:
    """Precomputed NumPy lookup tables for one (polynomial, window) pair.

    ``pair``/``low`` drive the gather-based evaluation: ``pair[q][v]`` is
    the contribution of the 16-bit little-endian pair ``v`` at window
    pair-offset ``q`` (``low`` is its 16-bit truncation, 4x less gather
    traffic).  ``out``/``reduce`` are the two 256-entry roll tables of
    the striped scan — together 4 KB, permanently L1-resident.
    """

    __slots__ = ("pair", "low", "out", "reduce")

    def __init__(self, fingerprinter: RabinFingerprinter) -> None:
        w = fingerprinter.window_size
        position = np.array(fingerprinter.position_tables(), dtype=np.uint64)
        lo = np.arange(65536, dtype=np.uint32) & 0xFF
        hi = np.arange(65536, dtype=np.uint32) >> 8
        self.pair = np.empty((w // 2, 65536), dtype=np.uint64)
        for q in range(w // 2):
            self.pair[q] = position[2 * q][lo] ^ position[2 * q + 1][hi]
        self.low = self.pair.astype(np.uint16)
        self.out = np.array(fingerprinter.out_table, dtype=np.uint64)
        self.reduce = np.array(fingerprinter.reduce_table, dtype=np.uint64)


#: Module-level table cache: (polynomial, window_size) -> _EngineTables.
#: BackupServer and the CLI build a fresh Chunker (hence engine) per
#: request; without this cache every request rebuilds ~3 MB of tables.
_TABLE_CACHE: dict[tuple[int, int], _EngineTables] = {}
_TABLE_LOCK = threading.Lock()


def engine_tables(fingerprinter: RabinFingerprinter) -> _EngineTables:
    """Shared lookup tables for ``fingerprinter`` (built once per process)."""
    if fingerprinter.window_size % 2 != 0:
        raise ValueError("pair tables require an even window size")
    key = (fingerprinter.polynomial, fingerprinter.window_size)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        # Concurrent scan workers may race to a cold cache; build once.
        with _TABLE_LOCK:
            tables = _TABLE_CACHE.get(key)
            if tables is None:
                tables = _TABLE_CACHE[key] = _EngineTables(fingerprinter)
    return tables


class _FusedRollTables:
    """Composite roll table of the fused multi-step kernel.

    One roll step is GF(2)-linear (see
    :meth:`RabinFingerprinter.fused_out_table`):

        f(p+1) = f(p) * x**8  ^  d[p] * x**(8*w)  ^  d[p+w]   (mod P)

    ``data[v]`` fuses the whole data-dependent term into **one** gather:
    for the 16-bit index ``v = d[p] | d[p+w] << 8`` it holds
    ``lo(v) * x**(8*w)  ^  hi(v)  (mod P)``.  The classic path pays two
    table lookups per position (out-table + reduce-table); the fused
    kernel pays this one plus the shared 8-bit reduce fold, and batches
    ``roll_steps`` positions' worth of ``data`` gathers into a single
    NumPy dispatch.

    The table is *step-count invariant* — ``roll_steps`` shapes how many
    of these terms one kernel launch consumes (the stacked gather
    width), not the table contents — so the cache is keyed by
    ``(polynomial, window_size)`` alone and every ``roll_steps`` setting
    shares one 512 KiB table.
    """

    __slots__ = ("data",)

    def __init__(self, fingerprinter: RabinFingerprinter) -> None:
        out = np.array(fingerprinter.fused_out_table(), dtype=np.uint64)
        v = np.arange(65536, dtype=np.uint32)
        self.data = out[v & 0xFF] ^ (v >> 8).astype(np.uint64)


_FUSED_CACHE: dict[tuple[int, int], _FusedRollTables] = {}


def fused_roll_tables(fingerprinter: RabinFingerprinter) -> _FusedRollTables:
    """Shared composite roll table for ``fingerprinter`` (built once)."""
    key = (fingerprinter.polynomial, fingerprinter.window_size)
    tables = _FUSED_CACHE.get(key)
    if tables is None:
        with _TABLE_LOCK:
            tables = _FUSED_CACHE.get(key)
            if tables is None:
                tables = _FUSED_CACHE[key] = _FusedRollTables(fingerprinter)
    return tables


class Engine:
    """Interface: scan buffers for candidate cut positions."""

    #: RabinFingerprinter used by this engine.
    fingerprinter: RabinFingerprinter

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        """Return sorted exclusive end offsets of marker windows in ``data``.

        A cut ``c`` means the window ``data[c - w : c]`` satisfies
        ``fingerprint & mask == marker``.  Cuts lie in
        ``[window_size, len(data)]``.  ``data`` is any buffer-protocol
        object (or NumPy ``uint8`` array).
        """
        raise NotImplementedError

    def candidate_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Candidate cuts as an ``int64`` array (exclusive end offsets).

        Default wrapper over :meth:`candidate_cuts`; vectorized engines
        override it to stay in array form end to end.
        """
        return np.asarray(self.candidate_cuts(data, mask, marker), dtype=np.int64)

    def serial_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Single-threaded :meth:`candidate_cut_array`.

        :func:`parallel_candidate_cuts` calls this per region so a
        threaded engine never re-submits work to the scan pool from
        inside a pool worker (which could deadlock).
        """
        return self.candidate_cut_array(data, mask, marker)

    @property
    def window_size(self) -> int:
        return self.fingerprinter.window_size


def parallel_candidate_cuts(
    engine: "Engine", data, mask: int, marker: int, workers: int,
    min_region: int = 1,
) -> np.ndarray:
    """SPMD region-parallel scan: the paper's host-parallel split (§5.1).

    Window *starts* ``[0, m)`` are partitioned into ``workers``
    contiguous regions of at least ``min_region`` positions; each region
    scans the byte slice ``data[r0 : r1 + window - 1]`` (the ``w - 1``
    overlap into the neighbour, so every window straddling a seam is
    evaluated exactly once) on the shared scan pool, and the per-region
    cut arrays are merged by concatenation.  Seam dedup is inherent in
    the partition: a window start belongs to exactly one region, so no
    cut can be reported twice.  Output is bit-identical to a serial
    scan — this is the one implementation behind both the paper's
    pthreads host-chunker model and ``VectorEngine``'s threaded scan.

    ``workers`` fixes the region *split* (the paper's SPMD geometry);
    execution concurrency follows the process-wide knob: with
    ``REPRO_THREADS``/:func:`set_threads` at 0/1 the regions run inline
    on the calling thread (the serial configuration truly spawns no
    workers anywhere), and any higher setting caps how many regions run
    at once even when the split is wider — results are identical at any
    concurrency.
    """
    mv = as_byte_view(data)
    w = engine.window_size
    n = len(mv)
    m = n - w + 1
    if m <= 0:
        return np.empty(0, dtype=np.int64)
    region = max(min_region, 1, -(-m // max(1, workers)))
    if workers <= 1 or region >= m:
        return engine.serial_cut_array(mv, mask, marker)
    bounds = [(r0, min(r0 + region, m)) for r0 in range(0, m, region)]

    def scan(b: tuple[int, int]) -> np.ndarray:
        r0, r1 = b
        cuts = engine.serial_cut_array(mv[r0 : r1 + w - 1], mask, marker)
        return cuts.astype(np.int64, copy=False) + r0

    cap = get_threads()
    if cap <= 1:
        parts = [scan(b) for b in bounds]
    else:
        # Pool width <= cap: a 12-region split under REPRO_THREADS=2
        # queues 12 tasks but runs at most 2 at a time.
        parts = list(scan_pool(min(workers, cap)).map(scan, bounds))
    return np.concatenate(parts)  # regions are disjoint and ordered


class SerialEngine(Engine):
    """Reference rolling implementation (pure Python)."""

    def __init__(self, fingerprinter: RabinFingerprinter | None = None) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        if not isinstance(data, bytes):  # reference path: a copy is fine
            data = as_uint8(data).tobytes()  # repro: lint-ok[zero-copy] documented reference path
        w = self.fingerprinter.window_size
        cuts = []
        for start, fp in self.fingerprinter.sliding_fingerprints(data):
            if fp & mask == marker:
                cuts.append(start + w)
        return cuts


#: Fallback striped-scan geometry, used when self-tuning is disabled
#: (``REPRO_AUTOTUNE=0``) or has not produced a per-host answer yet:
#: 4096 lanes over 4 MiB tiles keeps the per-step working set (a handful
#: of lane-wide uint64 vectors) in L2 and the tile itself in L3, and the
#: fused kernel advances every lane 8 positions per launch.  The real
#: geometry should come from :mod:`repro.core.autotune`, which measures
#: this host instead of assuming it.
DEFAULT_LANES = 4096
DEFAULT_TILE_BYTES = 4 << 20
DEFAULT_ROLL_STEPS = 8


class VectorEngine(Engine):
    """NumPy engine evaluating all windows in parallel.

    Small buffers (``<= 2 * lanes`` windows) are evaluated by table
    gathers: the fingerprint of the window starting at ``i`` is
    ``XOR_q T2[q][pair(i + 2q)]`` where ``pair(p) = data[p] | data[p+1]<<8``
    (``T2`` are the cached pair tables).

    Large buffers use the striped rolling scan (see module docstring).
    With ``roll_steps == 1`` each position costs two gathers from
    256-entry L1-resident roll tables plus a few lane-wide ALU ops —
    kept as the differential reference for the fused kernel.  With
    ``roll_steps = S > 1`` (the default) the **fused multi-step roll
    kernel** runs instead: the two data lookups of a step collapse into
    one gather from the composite 16-bit-indexed roll table
    (:func:`fused_roll_tables`), and one kernel launch pre-gathers the
    data terms for ``S`` consecutive steps of every lane before an
    unrolled in-launch reduce chain retires them — ``S`` positions per
    lane per dispatch, amortizing per-launch overhead exactly like the
    paper amortizes kernel launch + DMA over larger work units (§4.1).
    Both paths are bit-identical to each other and to the gather
    reference (differentially fuzzed).

    On multi-core hosts the striped scan itself fans out: window
    positions are partitioned into per-worker regions (each at least one
    tile) that run concurrently on the shared scan pool — NumPy releases
    the GIL in the gather/ALU inner loops, so region scans genuinely
    overlap.  ``threads=None`` follows the process-wide setting
    (:func:`repro.core.threads.get_threads`, i.e. ``REPRO_THREADS``);
    ``threads=0``/``1`` pins the engine serial.  Output is bit-identical
    at any thread count.

    Requires an even window size (the default, 48, is even).
    """

    def __init__(
        self,
        fingerprinter: RabinFingerprinter | None = None,
        lanes: int | None = None,
        tile_bytes: int | None = None,
        threads: int | None = None,
        roll_steps: int | None = None,
    ) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()
        w = self.fingerprinter.window_size
        if w % 2 != 0:
            raise ValueError(f"VectorEngine requires an even window size, got {w}")
        if lanes is None or tile_bytes is None or roll_steps is None:
            # Geometry left open: measured per host, not assumed.  The
            # import is deferred because autotune builds VectorEngines
            # (with explicit geometry) while benchmarking.
            from repro.core.autotune import get_geometry

            geometry = get_geometry()
            lanes = geometry.lanes if lanes is None else lanes
            tile_bytes = geometry.tile_bytes if tile_bytes is None else tile_bytes
            roll_steps = geometry.roll_steps if roll_steps is None else roll_steps
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if tile_bytes < 1:
            raise ValueError("tile_bytes must be >= 1")
        if roll_steps < 1:
            raise ValueError("roll_steps must be >= 1")
        if threads is not None and threads < 0:
            raise ValueError("threads must be >= 0 (or None for the default)")
        self.lanes = lanes
        self.tile_bytes = tile_bytes
        self.roll_steps = roll_steps
        self.threads = threads
        tables = engine_tables(self.fingerprinter)
        self._pair_tables = tables.pair
        self._low_tables = tables.low
        self._out_table = tables.out
        self._reduce_table = tables.reduce
        self._fused_table = fused_roll_tables(self.fingerprinter).data

    # -- gather evaluation (reference; also the small-input fast path) -----

    def fingerprints(self, data) -> np.ndarray:
        """Fingerprints of every full window, indexed by window start.

        Untiled gather evaluation — the memory-hungry reference kept for
        differential tests and as the pre-optimization benchmark baseline.
        """
        d = as_uint8(data)
        w = self.fingerprinter.window_size
        n = d.size
        if n < w:
            return np.empty(0, dtype=np.uint64)
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = n - w + 1
        acc = self._pair_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._pair_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    def _low_fingerprints(self, d: np.ndarray) -> np.ndarray:
        """Low 16 bits of every window fingerprint (untiled gather scan)."""
        w = self.fingerprinter.window_size
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = d.size - w + 1
        acc = self._low_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._low_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    # -- striped rolling scan (the large-input fast path) ------------------

    def _striped_hits(self, d: np.ndarray, mask: int, marker: int) -> np.ndarray:
        """Window-start offsets of marker windows, via the striped scan.

        Each tile of ``tile_bytes`` window positions is split into
        ``lanes`` contiguous sub-streams.  Lane seeds (the fingerprint of
        each lane's first window) come from one pair-table gather over a
        zero-copy ``sliding_window_view``; after that every lane rolls
        byte-at-a-time, with NumPy vectorizing each roll step across all
        lanes.  Only the low 16 fingerprint bits are kept per position
        when the mask allows (XOR never carries across bit 15).
        """
        fp = self.fingerprinter
        w = fp.window_size
        deg = np.uint64(fp.degree)
        residue_mask = np.uint64((1 << fp.degree) - 1)
        out_table, reduce_table = self._out_table, self._reduce_table
        narrow = mask <= 0xFFFF
        if narrow:
            fp_dtype, m_mask, m_marker = np.uint16, np.uint16(mask), np.uint16(marker)
        else:
            fp_dtype, m_mask, m_marker = np.uint64, np.uint64(mask), np.uint64(marker)

        n = d.size
        m = n - w + 1
        windows = sliding_window_view(d, w)  # (m, w) zero-copy view
        eight = np.uint64(8)
        hits: list[np.ndarray] = []
        dispatches = tiles = 0
        for t0 in range(0, m, self.tile_bytes):
            tiles += 1
            mt = min(self.tile_bytes, m - t0)
            lanes = min(self.lanes, mt)
            steps = -(-mt // lanes)  # window positions per lane
            starts = t0 + np.arange(lanes, dtype=np.int64) * steps
            # Seed fingerprints: one gather of each lane's first window.
            # Lanes past the last real window (ceil rounding) are clamped;
            # their positions are >= m and filtered out below.
            seed = windows[np.minimum(starts, m - 1)]
            pairs = seed[:, 0::2].astype(np.uint16) | (
                seed[:, 1::2].astype(np.uint16) << np.uint16(8)
            )
            f = self._pair_tables[0][pairs[:, 0]].copy()
            for q in range(1, w // 2):
                f ^= self._pair_tables[q][pairs[:, q]]
            # Roll-step byte planes, transposed so step t reads contiguous
            # lane-wide rows: leaving[t] = d[start + t], entering[t] =
            # d[start + t + w - 1].  The final tile zero-pads its tail;
            # padded positions are >= m and filtered out below.
            need = lanes * steps + w - 1
            if t0 + need <= n:
                seg = d[t0 : t0 + need]
            else:
                seg = np.zeros(need, dtype=np.uint8)
                seg[: n - t0] = d[t0:]
            body = seg[: lanes * steps].reshape(lanes, steps)
            leaving = np.ascontiguousarray(body.T)
            entering = np.ascontiguousarray(
                seg[w - 1 : w - 1 + lanes * steps].reshape(lanes, steps).T
            )
            history = np.empty((steps, lanes), dtype=fp_dtype)
            history[0] = f if not narrow else f.astype(np.uint16)
            top = np.empty(lanes, dtype=np.uint64)
            dispatches += steps  # seed launch + one roll launch per step
            for t in range(1, steps):
                f ^= out_table[leaving[t - 1]]
                f <<= eight
                f |= entering[t]
                np.right_shift(f, deg, out=top)
                f &= residue_mask
                f ^= reduce_table[top]
                history[t] = f  # narrow dtype truncates to the low 16 bits
            tt, jj = np.nonzero((history & m_mask) == m_marker)
            pos = starts[jj] + tt
            hits.append(pos[pos < t0 + mt])
        self._record_scan(dispatches, tiles, m, n, roll_steps=1)
        if not hits:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(hits)
        out.sort()
        return out

    def _striped_hits_fused(self, d: np.ndarray, mask: int, marker: int) -> np.ndarray:
        """Window-start offsets of marker windows, via the fused roll kernel.

        Same tiling and lane layout as :meth:`_striped_hits`, but each
        kernel launch advances every lane ``roll_steps`` positions:

        * The per-step data term collapses into **one** gather from the
          composite roll table ``T[d[p] | d[p+w] << 8]``
          (:class:`_FusedRollTables`) instead of separate out-table and
          append lookups — the combined 16-bit index array is built once
          per tile by byte interleaving (a view, not arithmetic).
        * One stacked gather per launch fetches the data terms of all
          ``roll_steps`` consecutive steps of every lane; the unrolled
          in-launch chain then retires them with the shared 8-bit
          reduce fold.  Dispatch count per position drops by the fused
          step factor, and the gathered block is read contiguously
          (the gather runs through a strided index *view*, so the tile
          is never transposed).

        Bit-identical to :meth:`_striped_hits` and the gather reference
        at every ``roll_steps`` (differentially fuzzed).
        """
        fp = self.fingerprinter
        w = fp.window_size
        deg = np.uint64(fp.degree)
        residue_mask = np.uint64((1 << fp.degree) - 1)
        reduce_table = self._reduce_table
        fused_table = self._fused_table
        S = self.roll_steps
        narrow = mask <= 0xFFFF
        if narrow:
            fp_dtype, m_mask, m_marker = np.uint16, np.uint16(mask), np.uint16(marker)
        else:
            fp_dtype, m_mask, m_marker = np.uint64, np.uint64(mask), np.uint64(marker)

        n = d.size
        m = n - w + 1
        windows = sliding_window_view(d, w)  # (m, w) zero-copy view
        eight = np.uint64(8)
        hits: list[np.ndarray] = []
        dispatches = tiles = 0
        for t0 in range(0, m, self.tile_bytes):
            tiles += 1
            mt = min(self.tile_bytes, m - t0)
            # Lane sub-streams are padded to a whole number of fused
            # launches; padded positions land >= t0 + mt and are
            # filtered below, exactly like the ceil-rounding of the
            # 1-step path.
            blocks = max(1, -(-mt // (self.lanes * S)))
            steps = blocks * S  # window positions per lane
            lanes = min(self.lanes, -(-mt // steps))
            starts = t0 + np.arange(lanes, dtype=np.int64) * steps
            # Seed fingerprints: one gather of each lane's first window.
            seed = windows[np.minimum(starts, m - 1)]
            pairs = seed[:, 0::2].astype(np.uint16) | (
                seed[:, 1::2].astype(np.uint16) << np.uint16(8)
            )
            f = self._pair_tables[0][pairs[:, 0]].copy()
            for q in range(1, w // 2):
                f ^= self._pair_tables[q][pairs[:, q]]
            # Composite roll index: idx[p] = d[p] | d[p+w] << 8 for every
            # lane-local position p, built by byte interleaving into a
            # little-endian uint16 view.  Rolling *to* position r
            # consumes idx[r - 1].  The last roll of the last lane reads
            # d[lanes*steps + w - 1], hence the +w segment (the final
            # tile zero-pads its tail; padded positions are filtered).
            need = lanes * steps + w
            if t0 + need <= n:
                seg = d[t0 : t0 + need]
            else:
                seg = np.zeros(need, dtype=np.uint8)
                seg[: n - t0] = d[t0:]
            span = lanes * steps
            inter = np.empty((span, 2), dtype=np.uint8)
            inter[:, 0] = seg[:span]
            inter[:, 1] = seg[w : w + span]
            idx = inter.view(np.uint16).reshape(lanes, steps)
            hist = np.empty((steps, lanes), dtype=fp_dtype)
            hist[0] = f if not narrow else f.astype(np.uint16)
            top = np.empty(lanes, dtype=np.uint64)
            dispatches += 1  # the seed launch
            for r0 in range(1, steps, S):
                blk = min(S, steps - r0)
                dispatches += 1
                # One stacked gather fetches the whole launch's data
                # terms; the index view is strided, the gathered block
                # contiguous.
                g = fused_table[idx[:, r0 - 1 : r0 - 1 + blk].T]  # (blk, lanes)
                for k in range(blk):
                    # f <- f * x**8  ^  data-term   (mod P)
                    f <<= eight
                    np.right_shift(f, deg, out=top)
                    f &= residue_mask
                    f ^= reduce_table[top]
                    f ^= g[k]
                    hist[r0 + k] = f  # narrow dtype keeps the low 16 bits
            tt, jj = np.nonzero((hist & m_mask) == m_marker)
            pos = starts[jj] + tt
            hits.append(pos[pos < t0 + mt])
        self._record_scan(dispatches, tiles, m, n, roll_steps=S)
        if not hits:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(hits)
        out.sort()
        return out

    def _record_scan(
        self, dispatches: int, tiles: int, positions: int, nbytes: int,
        roll_steps: int,
    ) -> None:
        """Feed one scan's instrumentation to :mod:`repro.core.stats`.

        Imported lazily: stats sits above chunking in the import graph,
        so a top-level import here would be circular.
        """
        from repro.core import stats

        stats.record_scan(
            dispatches=dispatches,
            tiles=tiles,
            positions=positions,
            scanned_bytes=nbytes,
            geometry={
                "lanes": self.lanes,
                "tile_bytes": self.tile_bytes,
                "roll_steps": roll_steps,
            },
        )

    # -- public scan API ---------------------------------------------------

    def effective_threads(self) -> int:
        """Worker count this engine scans with right now."""
        return self.threads if self.threads is not None else get_threads()

    def serial_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Single-threaded scan: striped for large inputs, gather for small.

        The striped scan runs the fused multi-step kernel when
        ``roll_steps > 1`` and the classic one-step roll (the
        differential reference) at ``roll_steps == 1``.
        """
        d = as_uint8(data)
        w = self.fingerprinter.window_size
        m = d.size - w + 1
        if m <= 0:
            return np.empty(0, dtype=np.int64)
        if m > 2 * self.lanes:
            if self.roll_steps > 1:
                hits = self._striped_hits_fused(d, mask, marker)
            else:
                hits = self._striped_hits(d, mask, marker)
        else:
            if mask <= 0xFFFF:
                fps = self._low_fingerprints(d)
                hits = np.nonzero((fps & np.uint16(mask)) == np.uint16(marker))[0]
            else:
                fps = self.fingerprints(d)
                hits = np.nonzero((fps & np.uint64(mask)) == np.uint64(marker))[0]
            self._record_scan(1, 1, m, d.size, roll_steps=0)
        return hits.astype(np.int64, copy=False) + w

    def candidate_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Candidate cuts as an ``int64`` array (exclusive end offsets).

        Fans the striped scan out across the shared worker pool when the
        effective thread count allows and the input spans more than one
        tile per worker; otherwise scans serially.  Bit-identical either
        way.
        """
        workers = self.effective_threads()
        if workers > 1:
            d = as_uint8(data)
            m = d.size - self.fingerprinter.window_size + 1
            # Only fan out when every worker gets at least a full tile;
            # smaller inputs finish faster without dispatch overhead.
            if m > max(self.tile_bytes, 2 * self.lanes):
                return parallel_candidate_cuts(
                    self, d, mask, marker, workers, min_region=self.tile_bytes
                )
        return self.serial_cut_array(data, mask, marker)

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        return self.candidate_cut_array(data, mask, marker).tolist()


_DEFAULT: VectorEngine | None = None
# Dedicated lock: constructing a VectorEngine takes _TABLE_LOCK for its
# table caches, so the singleton guard must be a different (outer) lock.
_DEFAULT_LOCK = threading.Lock()


def default_engine() -> VectorEngine:
    """Process-wide shared VectorEngine for the default fingerprinter."""
    global _DEFAULT
    engine = _DEFAULT
    if engine is None:
        # Same double-checked discipline as the table caches above.
        with _DEFAULT_LOCK:
            engine = _DEFAULT
            if engine is None:
                engine = _DEFAULT = VectorEngine()
    return engine
