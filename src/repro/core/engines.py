"""Chunking engines: find marker positions in a byte stream.

An *engine* scans a buffer with a sliding Rabin window and returns every
**candidate cut**: an exclusive end offset ``c`` such that the window
ending at byte ``c - 1`` fingerprints to the marker value.  Candidate cuts
are min/max-agnostic (the paper's GPU kernel behaves the same way: the
Store thread applies min/max afterwards, §7.3).

Two interchangeable implementations:

``SerialEngine``
    Pure-Python rolling reference.  Slow but obviously correct; used for
    differential testing and tiny inputs.

``VectorEngine``
    NumPy data-parallel evaluation using the linearity of Rabin
    fingerprints: the fingerprint of a window is the XOR of one table
    entry per byte (``RabinFingerprinter.position_tables``).  Bytes are
    folded in 16-bit pairs, halving the lookups.  This mirrors how the
    GPU kernel evaluates windows independently per thread.
"""

from __future__ import annotations

import numpy as np

from repro.core.rabin import RabinFingerprinter

__all__ = ["Engine", "SerialEngine", "VectorEngine", "default_engine"]


class Engine:
    """Interface: scan buffers for candidate cut positions."""

    #: RabinFingerprinter used by this engine.
    fingerprinter: RabinFingerprinter

    def candidate_cuts(self, data: bytes, mask: int, marker: int) -> list[int]:
        """Return sorted exclusive end offsets of marker windows in ``data``.

        A cut ``c`` means the window ``data[c - w : c]`` satisfies
        ``fingerprint & mask == marker``.  Cuts lie in
        ``[window_size, len(data)]``.
        """
        raise NotImplementedError

    @property
    def window_size(self) -> int:
        return self.fingerprinter.window_size


class SerialEngine(Engine):
    """Reference rolling implementation (pure Python)."""

    def __init__(self, fingerprinter: RabinFingerprinter | None = None) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()

    def candidate_cuts(self, data: bytes, mask: int, marker: int) -> list[int]:
        w = self.fingerprinter.window_size
        cuts = []
        for start, fp in self.fingerprinter.sliding_fingerprints(data):
            if fp & mask == marker:
                cuts.append(start + w)
        return cuts


class VectorEngine(Engine):
    """NumPy engine evaluating all windows in parallel.

    The per-offset tables ``T[j][b] = b * x**(8*(w-1-j)) mod P`` are packed
    into pair tables ``T2[q][v] = T[2q][v & 0xFF] ^ T[2q+1][v >> 8]`` so the
    fingerprint of the window starting at ``i`` is
    ``XOR_q T2[q][pair(i + 2q)]`` where ``pair(p) = data[p] | data[p+1]<<8``.

    Requires an even window size (the default, 48, is even).
    """

    def __init__(self, fingerprinter: RabinFingerprinter | None = None) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()
        w = self.fingerprinter.window_size
        if w % 2 != 0:
            raise ValueError(f"VectorEngine requires an even window size, got {w}")
        position = np.array(self.fingerprinter.position_tables(), dtype=np.uint64)
        lo = np.arange(65536, dtype=np.uint32) & 0xFF
        hi = np.arange(65536, dtype=np.uint32) >> 8
        self._pair_tables = np.empty((w // 2, 65536), dtype=np.uint64)
        for q in range(w // 2):
            self._pair_tables[q] = position[2 * q][lo] ^ position[2 * q + 1][hi]
        # Because XOR is bitwise, the low 16 fingerprint bits can be computed
        # from 16-bit tables alone.  Marker masks are <= 16 bits in every
        # practical configuration, so the scan path uses these much smaller
        # tables (4x less gather traffic than the uint64 tables).
        self._low_tables = self._pair_tables.astype(np.uint16)

    def fingerprints(self, data: bytes | np.ndarray) -> np.ndarray:
        """Fingerprints of every full window, indexed by window start."""
        d = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else data
        w = self.fingerprinter.window_size
        n = d.size
        if n < w:
            return np.empty(0, dtype=np.uint64)
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = n - w + 1
        acc = self._pair_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._pair_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    def _low_fingerprints(self, d: np.ndarray) -> np.ndarray:
        """Low 16 bits of every window fingerprint (scan fast path)."""
        w = self.fingerprinter.window_size
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = d.size - w + 1
        acc = self._low_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._low_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    def candidate_cuts(self, data: bytes | np.ndarray, mask: int, marker: int) -> list[int]:
        d = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else data
        w = self.fingerprinter.window_size
        if d.size < w:
            return []
        if mask <= 0xFFFF:
            fps = self._low_fingerprints(d)
            hits = np.nonzero((fps & np.uint16(mask)) == np.uint16(marker))[0]
        else:
            fps = self.fingerprints(d)
            hits = np.nonzero((fps & np.uint64(mask)) == np.uint64(marker))[0]
        return [int(i) + w for i in hits]


_DEFAULT: VectorEngine | None = None


def default_engine() -> VectorEngine:
    """Process-wide shared VectorEngine for the default fingerprinter."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = VectorEngine()
    return _DEFAULT
