"""Chunking engines: find marker positions in a byte stream.

An *engine* scans a buffer with a sliding Rabin window and returns every
**candidate cut**: an exclusive end offset ``c`` such that the window
ending at byte ``c - 1`` fingerprints to the marker value.  Candidate cuts
are min/max-agnostic (the paper's GPU kernel behaves the same way: the
Store thread applies min/max afterwards, §7.3).

Both engines accept any object exporting the buffer protocol (``bytes``,
``bytearray``, ``memoryview``, ``mmap``, NumPy ``uint8`` arrays, ...) and
scan it **without copying** — the zero-copy fast path the paper's pinned
ring buffers exist to preserve.

Two interchangeable implementations:

``SerialEngine``
    Pure-Python rolling reference.  Slow but obviously correct; used for
    differential testing and tiny inputs.

``VectorEngine``
    NumPy data-parallel evaluation.  Small inputs use the linearity of
    Rabin fingerprints (XOR of per-position table entries, folded in
    16-bit pairs).  Large inputs use a *striped rolling scan*: the buffer
    is cut into cache-sized tiles, each tile into ``lanes`` equal
    sub-streams, and every lane rolls its own window serially while NumPy
    vectorizes *across* lanes — exactly the paper's SPMD kernel layout
    (§3.1), with the two 256-entry roll tables staying L1-resident
    instead of the 3 MB pair tables being re-gathered per byte.  All
    lookup tables are cached at module level keyed by
    ``(polynomial, window_size)`` so fresh engines are cheap to build.
"""

from __future__ import annotations

import threading

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.rabin import RabinFingerprinter
from repro.core.threads import get_threads, scan_pool

__all__ = [
    "Engine",
    "SerialEngine",
    "VectorEngine",
    "default_engine",
    "as_byte_view",
    "as_uint8",
    "engine_tables",
    "parallel_candidate_cuts",
]


def as_byte_view(buf) -> memoryview:
    """Flat byte ``memoryview`` of any buffer-protocol object, no copy.

    The one normalization point for the zero-copy path: every consumer
    (engines, chunkers, streaming, batched hashing) funnels through here.
    Raises ``BufferError`` for non-contiguous buffers (e.g. strided
    memoryview slices), which no zero-copy view can represent — callers
    that accept such inputs flatten with ``bytes()`` first.
    """
    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    if not mv.c_contiguous:  # checked first: cast() would raise TypeError
        raise BufferError("underlying buffer is not C-contiguous")
    if mv.ndim != 1 or mv.format != "B":
        mv = mv.cast("B")
    return mv


def as_uint8(data) -> np.ndarray:
    """Zero-copy ``uint8`` view of any buffer-protocol object.

    NumPy arrays pass through (reinterpreted as bytes if needed); other
    buffers (bytes, bytearray, memoryview, mmap, ...) are wrapped via
    ``np.frombuffer`` without copying.
    """
    if isinstance(data, np.ndarray):
        if data.dtype == np.uint8 and data.ndim == 1:
            return data
        return np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    return np.frombuffer(as_byte_view(data), dtype=np.uint8)


class _EngineTables:
    """Precomputed NumPy lookup tables for one (polynomial, window) pair.

    ``pair``/``low`` drive the gather-based evaluation: ``pair[q][v]`` is
    the contribution of the 16-bit little-endian pair ``v`` at window
    pair-offset ``q`` (``low`` is its 16-bit truncation, 4x less gather
    traffic).  ``out``/``reduce`` are the two 256-entry roll tables of
    the striped scan — together 4 KB, permanently L1-resident.
    """

    __slots__ = ("pair", "low", "out", "reduce")

    def __init__(self, fingerprinter: RabinFingerprinter) -> None:
        w = fingerprinter.window_size
        position = np.array(fingerprinter.position_tables(), dtype=np.uint64)
        lo = np.arange(65536, dtype=np.uint32) & 0xFF
        hi = np.arange(65536, dtype=np.uint32) >> 8
        self.pair = np.empty((w // 2, 65536), dtype=np.uint64)
        for q in range(w // 2):
            self.pair[q] = position[2 * q][lo] ^ position[2 * q + 1][hi]
        self.low = self.pair.astype(np.uint16)
        self.out = np.array(fingerprinter.out_table, dtype=np.uint64)
        self.reduce = np.array(fingerprinter.reduce_table, dtype=np.uint64)


#: Module-level table cache: (polynomial, window_size) -> _EngineTables.
#: BackupServer and the CLI build a fresh Chunker (hence engine) per
#: request; without this cache every request rebuilds ~3 MB of tables.
_TABLE_CACHE: dict[tuple[int, int], _EngineTables] = {}
_TABLE_LOCK = threading.Lock()


def engine_tables(fingerprinter: RabinFingerprinter) -> _EngineTables:
    """Shared lookup tables for ``fingerprinter`` (built once per process)."""
    if fingerprinter.window_size % 2 != 0:
        raise ValueError("pair tables require an even window size")
    key = (fingerprinter.polynomial, fingerprinter.window_size)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        # Concurrent scan workers may race to a cold cache; build once.
        with _TABLE_LOCK:
            tables = _TABLE_CACHE.get(key)
            if tables is None:
                tables = _TABLE_CACHE[key] = _EngineTables(fingerprinter)
    return tables


class Engine:
    """Interface: scan buffers for candidate cut positions."""

    #: RabinFingerprinter used by this engine.
    fingerprinter: RabinFingerprinter

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        """Return sorted exclusive end offsets of marker windows in ``data``.

        A cut ``c`` means the window ``data[c - w : c]`` satisfies
        ``fingerprint & mask == marker``.  Cuts lie in
        ``[window_size, len(data)]``.  ``data`` is any buffer-protocol
        object (or NumPy ``uint8`` array).
        """
        raise NotImplementedError

    def candidate_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Candidate cuts as an ``int64`` array (exclusive end offsets).

        Default wrapper over :meth:`candidate_cuts`; vectorized engines
        override it to stay in array form end to end.
        """
        return np.asarray(self.candidate_cuts(data, mask, marker), dtype=np.int64)

    def serial_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Single-threaded :meth:`candidate_cut_array`.

        :func:`parallel_candidate_cuts` calls this per region so a
        threaded engine never re-submits work to the scan pool from
        inside a pool worker (which could deadlock).
        """
        return self.candidate_cut_array(data, mask, marker)

    @property
    def window_size(self) -> int:
        return self.fingerprinter.window_size


def parallel_candidate_cuts(
    engine: "Engine", data, mask: int, marker: int, workers: int,
    min_region: int = 1,
) -> np.ndarray:
    """SPMD region-parallel scan: the paper's host-parallel split (§5.1).

    Window *starts* ``[0, m)`` are partitioned into ``workers``
    contiguous regions of at least ``min_region`` positions; each region
    scans the byte slice ``data[r0 : r1 + window - 1]`` (the ``w - 1``
    overlap into the neighbour, so every window straddling a seam is
    evaluated exactly once) on the shared scan pool, and the per-region
    cut arrays are merged by concatenation.  Seam dedup is inherent in
    the partition: a window start belongs to exactly one region, so no
    cut can be reported twice.  Output is bit-identical to a serial
    scan — this is the one implementation behind both the paper's
    pthreads host-chunker model and ``VectorEngine``'s threaded scan.

    ``workers`` fixes the region *split* (the paper's SPMD geometry);
    execution concurrency follows the process-wide knob: with
    ``REPRO_THREADS``/:func:`set_threads` at 0/1 the regions run inline
    on the calling thread (the serial configuration truly spawns no
    workers anywhere), and any higher setting caps how many regions run
    at once even when the split is wider — results are identical at any
    concurrency.
    """
    mv = as_byte_view(data)
    w = engine.window_size
    n = len(mv)
    m = n - w + 1
    if m <= 0:
        return np.empty(0, dtype=np.int64)
    region = max(min_region, 1, -(-m // max(1, workers)))
    if workers <= 1 or region >= m:
        return engine.serial_cut_array(mv, mask, marker)
    bounds = [(r0, min(r0 + region, m)) for r0 in range(0, m, region)]

    def scan(b: tuple[int, int]) -> np.ndarray:
        r0, r1 = b
        cuts = engine.serial_cut_array(mv[r0 : r1 + w - 1], mask, marker)
        return cuts.astype(np.int64, copy=False) + r0

    cap = get_threads()
    if cap <= 1:
        parts = [scan(b) for b in bounds]
    else:
        # Pool width <= cap: a 12-region split under REPRO_THREADS=2
        # queues 12 tasks but runs at most 2 at a time.
        parts = list(scan_pool(min(workers, cap)).map(scan, bounds))
    return np.concatenate(parts)  # regions are disjoint and ordered


class SerialEngine(Engine):
    """Reference rolling implementation (pure Python)."""

    def __init__(self, fingerprinter: RabinFingerprinter | None = None) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        if not isinstance(data, bytes):  # reference path: a copy is fine
            data = as_uint8(data).tobytes()
        w = self.fingerprinter.window_size
        cuts = []
        for start, fp in self.fingerprinter.sliding_fingerprints(data):
            if fp & mask == marker:
                cuts.append(start + w)
        return cuts


#: Default striped-scan geometry: 4096 lanes over 4 MiB tiles keeps the
#: per-step working set (a handful of lane-wide uint64 vectors) in L2 and
#: the tile itself in L3, while amortizing NumPy dispatch over wide ops.
DEFAULT_LANES = 4096
DEFAULT_TILE_BYTES = 4 << 20


class VectorEngine(Engine):
    """NumPy engine evaluating all windows in parallel.

    Small buffers (``<= 2 * lanes`` windows) are evaluated by table
    gathers: the fingerprint of the window starting at ``i`` is
    ``XOR_q T2[q][pair(i + 2q)]`` where ``pair(p) = data[p] | data[p+1]<<8``
    (``T2`` are the cached pair tables).

    Large buffers use the striped rolling scan (see module docstring):
    per input byte it costs two gathers from 256-entry L1-resident roll
    tables plus a few lane-wide ALU ops, instead of ``window/2`` gathers
    from the 3 MB pair tables — several times faster and bit-identical.

    On multi-core hosts the striped scan itself fans out: window
    positions are partitioned into per-worker regions (each at least one
    tile) that run concurrently on the shared scan pool — NumPy releases
    the GIL in the gather/ALU inner loops, so region scans genuinely
    overlap.  ``threads=None`` follows the process-wide setting
    (:func:`repro.core.threads.get_threads`, i.e. ``REPRO_THREADS``);
    ``threads=0``/``1`` pins the engine serial.  Output is bit-identical
    at any thread count.

    Requires an even window size (the default, 48, is even).
    """

    def __init__(
        self,
        fingerprinter: RabinFingerprinter | None = None,
        lanes: int = DEFAULT_LANES,
        tile_bytes: int = DEFAULT_TILE_BYTES,
        threads: int | None = None,
    ) -> None:
        self.fingerprinter = fingerprinter or RabinFingerprinter()
        w = self.fingerprinter.window_size
        if w % 2 != 0:
            raise ValueError(f"VectorEngine requires an even window size, got {w}")
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if tile_bytes < 1:
            raise ValueError("tile_bytes must be >= 1")
        if threads is not None and threads < 0:
            raise ValueError("threads must be >= 0 (or None for the default)")
        self.lanes = lanes
        self.tile_bytes = tile_bytes
        self.threads = threads
        tables = engine_tables(self.fingerprinter)
        self._pair_tables = tables.pair
        self._low_tables = tables.low
        self._out_table = tables.out
        self._reduce_table = tables.reduce

    # -- gather evaluation (reference; also the small-input fast path) -----

    def fingerprints(self, data) -> np.ndarray:
        """Fingerprints of every full window, indexed by window start.

        Untiled gather evaluation — the memory-hungry reference kept for
        differential tests and as the pre-optimization benchmark baseline.
        """
        d = as_uint8(data)
        w = self.fingerprinter.window_size
        n = d.size
        if n < w:
            return np.empty(0, dtype=np.uint64)
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = n - w + 1
        acc = self._pair_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._pair_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    def _low_fingerprints(self, d: np.ndarray) -> np.ndarray:
        """Low 16 bits of every window fingerprint (untiled gather scan)."""
        w = self.fingerprinter.window_size
        pairs = d[:-1].astype(np.uint16) | (d[1:].astype(np.uint16) << np.uint16(8))
        m = d.size - w + 1
        acc = self._low_tables[0][pairs[:m]].copy()
        for q in range(1, w // 2):
            acc ^= self._low_tables[q][pairs[2 * q : 2 * q + m]]
        return acc

    # -- striped rolling scan (the large-input fast path) ------------------

    def _striped_hits(self, d: np.ndarray, mask: int, marker: int) -> np.ndarray:
        """Window-start offsets of marker windows, via the striped scan.

        Each tile of ``tile_bytes`` window positions is split into
        ``lanes`` contiguous sub-streams.  Lane seeds (the fingerprint of
        each lane's first window) come from one pair-table gather over a
        zero-copy ``sliding_window_view``; after that every lane rolls
        byte-at-a-time, with NumPy vectorizing each roll step across all
        lanes.  Only the low 16 fingerprint bits are kept per position
        when the mask allows (XOR never carries across bit 15).
        """
        fp = self.fingerprinter
        w = fp.window_size
        deg = np.uint64(fp.degree)
        residue_mask = np.uint64((1 << fp.degree) - 1)
        out_table, reduce_table = self._out_table, self._reduce_table
        narrow = mask <= 0xFFFF
        if narrow:
            fp_dtype, m_mask, m_marker = np.uint16, np.uint16(mask), np.uint16(marker)
        else:
            fp_dtype, m_mask, m_marker = np.uint64, np.uint64(mask), np.uint64(marker)

        n = d.size
        m = n - w + 1
        windows = sliding_window_view(d, w)  # (m, w) zero-copy view
        eight = np.uint64(8)
        hits: list[np.ndarray] = []
        for t0 in range(0, m, self.tile_bytes):
            mt = min(self.tile_bytes, m - t0)
            lanes = min(self.lanes, mt)
            steps = -(-mt // lanes)  # window positions per lane
            starts = t0 + np.arange(lanes, dtype=np.int64) * steps
            # Seed fingerprints: one gather of each lane's first window.
            # Lanes past the last real window (ceil rounding) are clamped;
            # their positions are >= m and filtered out below.
            seed = windows[np.minimum(starts, m - 1)]
            pairs = seed[:, 0::2].astype(np.uint16) | (
                seed[:, 1::2].astype(np.uint16) << np.uint16(8)
            )
            f = self._pair_tables[0][pairs[:, 0]].copy()
            for q in range(1, w // 2):
                f ^= self._pair_tables[q][pairs[:, q]]
            # Roll-step byte planes, transposed so step t reads contiguous
            # lane-wide rows: leaving[t] = d[start + t], entering[t] =
            # d[start + t + w - 1].  The final tile zero-pads its tail;
            # padded positions are >= m and filtered out below.
            need = lanes * steps + w - 1
            if t0 + need <= n:
                seg = d[t0 : t0 + need]
            else:
                seg = np.zeros(need, dtype=np.uint8)
                seg[: n - t0] = d[t0:]
            body = seg[: lanes * steps].reshape(lanes, steps)
            leaving = np.ascontiguousarray(body.T)
            entering = np.ascontiguousarray(
                seg[w - 1 : w - 1 + lanes * steps].reshape(lanes, steps).T
            )
            history = np.empty((steps, lanes), dtype=fp_dtype)
            history[0] = f if not narrow else f.astype(np.uint16)
            top = np.empty(lanes, dtype=np.uint64)
            for t in range(1, steps):
                f ^= out_table[leaving[t - 1]]
                f <<= eight
                f |= entering[t]
                np.right_shift(f, deg, out=top)
                f &= residue_mask
                f ^= reduce_table[top]
                history[t] = f  # narrow dtype truncates to the low 16 bits
            tt, jj = np.nonzero((history & m_mask) == m_marker)
            pos = starts[jj] + tt
            hits.append(pos[pos < t0 + mt])
        if not hits:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(hits)
        out.sort()
        return out

    # -- public scan API ---------------------------------------------------

    def effective_threads(self) -> int:
        """Worker count this engine scans with right now."""
        return self.threads if self.threads is not None else get_threads()

    def serial_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Single-threaded scan: striped for large inputs, gather for small."""
        d = as_uint8(data)
        w = self.fingerprinter.window_size
        m = d.size - w + 1
        if m <= 0:
            return np.empty(0, dtype=np.int64)
        if m > 2 * self.lanes:
            hits = self._striped_hits(d, mask, marker)
        elif mask <= 0xFFFF:
            fps = self._low_fingerprints(d)
            hits = np.nonzero((fps & np.uint16(mask)) == np.uint16(marker))[0]
        else:
            fps = self.fingerprints(d)
            hits = np.nonzero((fps & np.uint64(mask)) == np.uint64(marker))[0]
        return hits.astype(np.int64, copy=False) + w

    def candidate_cut_array(self, data, mask: int, marker: int) -> np.ndarray:
        """Candidate cuts as an ``int64`` array (exclusive end offsets).

        Fans the striped scan out across the shared worker pool when the
        effective thread count allows and the input spans more than one
        tile per worker; otherwise scans serially.  Bit-identical either
        way.
        """
        workers = self.effective_threads()
        if workers > 1:
            d = as_uint8(data)
            m = d.size - self.fingerprinter.window_size + 1
            # Only fan out when every worker gets at least a full tile;
            # smaller inputs finish faster without dispatch overhead.
            if m > max(self.tile_bytes, 2 * self.lanes):
                return parallel_candidate_cuts(
                    self, d, mask, marker, workers, min_region=self.tile_bytes
                )
        return self.serial_cut_array(data, mask, marker)

    def candidate_cuts(self, data, mask: int, marker: int) -> list[int]:
        return self.candidate_cut_array(data, mask, marker).tolist()


_DEFAULT: VectorEngine | None = None


def default_engine() -> VectorEngine:
    """Process-wide shared VectorEngine for the default fingerprinter."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = VectorEngine()
    return _DEFAULT
