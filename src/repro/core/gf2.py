"""Polynomial arithmetic over GF(2).

Polynomials are represented as Python integers: bit ``i`` is the
coefficient of ``x**i``.  This is the substrate for Rabin fingerprinting
(Rabin, 1981): a fingerprint is the residue of the data polynomial modulo
a fixed irreducible polynomial.

All functions are pure and operate on arbitrary-degree polynomials; the
fingerprinting hot path in :mod:`repro.core.rabin` uses precomputed tables
instead of calling these per byte.
"""

from __future__ import annotations

import random

__all__ = [
    "degree",
    "multiply",
    "mod",
    "multiply_mod",
    "pow_mod",
    "byte_shift_table",
    "gcd",
    "is_irreducible",
    "find_irreducible",
    "DEFAULT_IRREDUCIBLE_DEGREE",
]

#: Degree used for the default fingerprinting polynomial.  LBFS and most
#: deduplication systems use degree 53 so that fingerprints fit in 64 bits
#: with room for the 8-bit shift performed while rolling.
DEFAULT_IRREDUCIBLE_DEGREE = 53


def degree(poly: int) -> int:
    """Return the degree of ``poly`` (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def multiply(a: int, b: int) -> int:
    """Carry-less (GF(2)) product of two polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def mod(a: int, m: int) -> int:
    """Residue of ``a`` modulo ``m`` over GF(2).

    ``m`` must be non-zero.  Long division: repeatedly cancel the leading
    term of ``a`` with a shifted copy of ``m``.
    """
    if m == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    deg_m = degree(m)
    deg_a = degree(a)
    while deg_a >= deg_m:
        a ^= m << (deg_a - deg_m)
        deg_a = degree(a)
    return a


def multiply_mod(a: int, b: int, m: int) -> int:
    """Return ``(a * b) mod m`` over GF(2)."""
    return mod(multiply(a, b), m)


def pow_mod(base: int, exponent: int, m: int) -> int:
    """Return ``base ** exponent mod m`` over GF(2) by square-and-multiply."""
    result = 1
    base = mod(base, m)
    while exponent:
        if exponent & 1:
            result = multiply_mod(result, base, m)
        base = multiply_mod(base, base, m)
        exponent >>= 1
    return result


def monomial_mod(exponent: int, m: int) -> int:
    """Return ``x**exponent mod m`` — the shift constant of a roll step.

    Rolling a Rabin window is linear over GF(2), so every fused-kernel
    table reduces to sums of ``byte * x**k mod P`` for various ``k``;
    this is the one place those monomial residues come from.
    """
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    return pow_mod(0b10, exponent, m)


def byte_shift_table(exponent: int, m: int) -> tuple[int, ...]:
    """256-entry table ``T[b] = b * x**exponent mod m``.

    The building block of every composite roll table: the contribution
    of one byte at a fixed polynomial shift.  Callers combine these
    (XOR) into wider fused tables — e.g. the 16-bit-indexed
    leaving/entering table of the fused roll kernel.
    """
    shift = monomial_mod(exponent, m)
    return tuple(multiply_mod(b, shift, m) for b in range(256))


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while b:
        a, b = b, mod(a, b)
    return a


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test for a GF(2) polynomial.

    ``poly`` of degree ``n`` is irreducible iff ``x**(2**n) == x (mod poly)``
    and, for every prime divisor ``q`` of ``n``,
    ``gcd(x**(2**(n//q)) - x, poly) == 1``.
    """
    n = degree(poly)
    if n <= 0:
        return False
    x = 0b10
    # x**(2**k) is computed by squaring x k times.
    def x_pow_pow2(k: int) -> int:
        acc = x
        for _ in range(k):
            acc = multiply_mod(acc, acc, poly)
        return acc

    for q in _prime_factors(n):
        h = x_pow_pow2(n // q) ^ x
        if gcd(h, poly) != 1:
            return False
    return x_pow_pow2(n) == mod(x, poly)


def find_irreducible(deg: int = DEFAULT_IRREDUCIBLE_DEGREE, seed: int = 2012) -> int:
    """Find a random irreducible polynomial of degree ``deg``.

    The search is deterministic for a given ``seed`` so that every component
    of the system (host chunker, GPU kernel, tests) agrees on the default
    polynomial.  About one in ``deg`` odd polynomials of degree ``deg`` is
    irreducible, so the expected number of trials is small.
    """
    rng = random.Random(seed)
    while True:
        # Leading term x**deg, constant term 1 (required: otherwise x | poly).
        candidate = (1 << deg) | 1
        for bit in range(1, deg):
            if rng.random() < 0.5:
                candidate |= 1 << bit
        if is_irreducible(candidate):
            return candidate
