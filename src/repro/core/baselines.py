"""Baseline chunking schemes the paper positions Shredder against (§1, §2.1).

Two families of shortcut the paper says systems take when Rabin chunking
is too expensive:

``SampleByteChunker``
    Sampling-based chunking in the style of SampleByte/EndRE [9]: instead
    of fingerprinting a sliding window, declare a boundary whenever a
    single byte value belongs to a sampled marker set, then *skip* half
    the expected chunk size.  Very fast, but "such approaches are
    limiting because they are suited only for small sized chunks, as
    skipping a large number of bytes leads to missed opportunities for
    deduplication".

``FixedSizeChunker``
    Offset-defined chunking (the route taken by systems that "skip
    content-based chunking entirely" [24]): cheap, but a single inserted
    byte shifts every later boundary and destroys dedup.

Both implement enough of the :class:`~repro.core.chunking.Chunker`
surface (``cuts`` / ``chunk``) to drop into the dedup-quality ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.chunking import Chunk

__all__ = ["SampleByteChunker", "FixedSizeChunker"]


@dataclass(frozen=True)
class SampleByteConfig:
    """SampleByte parameters.

    ``expected_size`` controls both the marker-set density (1/256 of byte
    values per 256 bytes of expected chunk) and the post-boundary skip of
    ``expected_size // 2`` bytes that gives SampleByte its speed.
    """

    expected_size: int = 4096
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.expected_size < 2:
            raise ValueError("expected_size must be >= 2")


class SampleByteChunker:
    """Sampling-based chunker (SampleByte [9])."""

    def __init__(self, config: SampleByteConfig | None = None) -> None:
        self.config = config or SampleByteConfig()
        expected = self.config.expected_size
        # With m marker byte-values the per-byte hit probability is m/256,
        # so the mean scan distance to a hit is 256/m; the post-boundary
        # skip makes up the rest of the expected chunk size.
        n_markers = max(1, min(128, round(512 / expected)))
        rng = random.Random(self.config.seed)
        marker_values = rng.sample(range(256), n_markers)
        table = np.zeros(256, dtype=bool)
        table[marker_values] = True
        self._table = table
        self._skip = max(0, expected - 256 // n_markers)

    @property
    def skip(self) -> int:
        """Bytes skipped (never inspected) after each boundary."""
        return self._skip

    def cuts(self, data: bytes) -> list[int]:
        """Exclusive cut offsets (ends with ``len(data)``)."""
        if not data:
            return []
        arr = np.frombuffer(data, dtype=np.uint8)
        hits = np.nonzero(self._table[arr])[0]
        cuts: list[int] = []
        prev = 0
        skip = self.skip
        i = 0
        n_hits = len(hits)
        while i < n_hits:
            pos = int(hits[i])
            if pos + 1 <= prev + skip:
                # Inside the skipped region: SampleByte never inspects
                # these bytes, that is where its speed comes from.
                i = int(np.searchsorted(hits, prev + skip))
                continue
            cuts.append(pos + 1)
            prev = pos + 1
            i = int(np.searchsorted(hits, prev + skip))
        if not cuts or cuts[-1] != len(data):
            cuts.append(len(data))
        return cuts

    def chunk(self, data: bytes, base_offset: int = 0) -> list[Chunk]:
        chunks = []
        prev = 0
        for cut in self.cuts(data):
            chunks.append(Chunk.from_bytes(base_offset + prev, data[prev:cut]))
            prev = cut
        return chunks


@dataclass(frozen=True)
class FixedSizeChunker:
    """Offset-defined chunking: boundaries every ``block_size`` bytes."""

    block_size: int = 4096

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    def cuts(self, data: bytes) -> list[int]:
        if not data:
            return []
        cuts = list(range(self.block_size, len(data), self.block_size))
        cuts.append(len(data))
        return cuts

    def chunk(self, data: bytes, base_offset: int = 0) -> list[Chunk]:
        chunks = []
        prev = 0
        for cut in self.cuts(data):
            chunks.append(Chunk.from_bytes(base_offset + prev, data[prev:cut]))
            prev = cut
        return chunks
