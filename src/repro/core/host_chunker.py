"""Host-only parallel content-based chunking (§5.1).

The paper's CPU baseline: POSIX-thread SPMD chunking.  The input is
divided into fixed-size regions, each thread runs the Rabin chunking scan
over its region (overlapping ``window - 1`` bytes into the neighbour so
no boundary straddling a region edge is missed), and neighbouring results
are merged.

Two parts:

* a *real* parallel scan (``ThreadPoolExecutor`` over the NumPy engine,
  which releases the GIL in its gather loops) whose merged output is
  bit-identical to a sequential scan — this is the correctness-critical
  algorithm;
* a *cost model* reproducing the effect the paper measures in Fig. 12:
  with glibc ``malloc``, per-chunk allocations serialize on a global lock
  and throttle all 12 threads; the Hoard allocator removes the
  contention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chunking import (
    Chunk,
    Chunker,
    ChunkerConfig,
    chunks_from_cuts,
    select_cuts_fast,
)
from repro.core.engines import (
    Engine,
    as_byte_view,
    default_engine,
    parallel_candidate_cuts,
)
from repro.gpu.specs import HostSpec, XEON_X5650_HOST

__all__ = ["AllocatorModel", "MALLOC", "HOARD", "HostParallelChunker"]


@dataclass(frozen=True)
class AllocatorModel:
    """Cost model for per-chunk dynamic allocation under contention.

    ``per_alloc_seconds`` is the uncontended cost of one allocation;
    ``contention(threads)`` multiplies it when several chunking threads
    allocate concurrently.  glibc ``malloc`` serializes on an arena lock
    (§5.1: "dynamic memory allocation can become a bottleneck due to the
    serialization required to avoid race conditions"); Hoard gives each
    thread its own heap.
    """

    name: str
    per_alloc_seconds: float
    lock_serialization: float  # fraction of allocations hitting the global lock

    def contention(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return 1.0 + self.lock_serialization * (threads - 1)


MALLOC = AllocatorModel("malloc", per_alloc_seconds=1e-6, lock_serialization=0.5)
HOARD = AllocatorModel("hoard", per_alloc_seconds=1e-6, lock_serialization=0.01)


class HostParallelChunker:
    """SPMD parallel chunker with neighbour merge (the pthreads library).

    Parameters mirror the paper's setup: 12 threads on the Xeon host,
    optional Hoard allocator.
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        threads: int = 12,
        allocator: AllocatorModel = HOARD,
        engine: Engine | None = None,
        host: HostSpec = XEON_X5650_HOST,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.config = config or ChunkerConfig()
        self.threads = threads
        self.allocator = allocator
        self.engine = engine or default_engine()
        self.host = host
        if self.engine.window_size != self.config.window_size:
            raise ValueError("engine window size does not match chunker config")

    # -- real parallel algorithm --------------------------------------------

    def candidate_cuts(self, data) -> list[int]:
        """Marker positions found by the SPMD scan (merged, sorted).

        The region split with ``window - 1`` overlap and seam-exact
        merge lives in :func:`repro.core.engines.parallel_candidate_cuts`
        — the same implementation ``VectorEngine``'s threaded scan uses,
        so the paper's host-parallel model and the real engine cannot
        drift apart.  Regions run on the shared scan pool (one pool per
        process, not one per call).
        """
        return parallel_candidate_cuts(
            self.engine, data, self.config.mask, self.config.marker, self.threads
        ).tolist()

    def cuts(self, data) -> list[int]:
        """Selected cut offsets after min/max rules (synchronized merge)."""
        return select_cuts_fast(
            self.candidate_cuts(data),
            len(as_byte_view(data)),
            self.config.min_size,
            self.config.max_size,
        )

    def chunk(self, data, base_offset: int = 0) -> list[Chunk]:
        """Zero-copy chunking: lazy view chunks with one batched digest pass."""
        mv = as_byte_view(data)
        return chunks_from_cuts(mv, self.cuts(mv), base_offset)

    # -- cost model (Fig. 12 CPU bars) ---------------------------------------

    def estimate_seconds(self, n_bytes: int, n_chunks: int | None = None) -> float:
        """Modeled wall time to chunk ``n_bytes`` on the host.

        Scan cost scales with per-core fingerprinting bandwidth; each
        emitted chunk costs one allocation under the configured allocator's
        contention model.  A small merge/synchronization term covers the
        neighbour-merge barrier.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_chunks is None:
            n_chunks = max(1, n_bytes // self.config.expected_chunk_size)
        scan = n_bytes / (self.host.core_chunking_bandwidth * self.threads)
        alloc = n_chunks * self.allocator.per_alloc_seconds * self.allocator.contention(
            self.threads
        )
        merge = self.threads * 5e-6
        return scan + alloc + merge

    def throughput_bps(self, n_bytes: int = 1 << 30) -> float:
        """Modeled chunking bandwidth (bytes/s) for an ``n_bytes`` stream."""
        return n_bytes / self.estimate_seconds(n_bytes)

    def sequential_reference(self, data: bytes) -> list[Chunk]:
        """Single-threaded chunking with the same config (for verification)."""
        return Chunker(self.config, self.engine).chunk(data)
