"""Threaded Shredder executor: the host driver of §5.2.1, for real.

:class:`ShredderExecutor` runs the four Shredder stages as real threads
connected by bounded queues (via :class:`StreamingPipeline`), moving real
bytes through the simulated GPU:

* **Reader** — splits the input stream into buffers and attaches the
  ``window-1`` byte context tail of the previous buffer (so marker
  windows spanning buffer boundaries are evaluated exactly once);
* **Transfer** — allocates a device buffer and uploads the bytes;
* **Kernel** — launches the chunking kernel, collects *candidate* cuts,
  frees the device buffer;
* **Store** — the only stateful stage: applies min/max selection across
  buffer boundaries and emits hashed :class:`Chunk` records.

The emitted chunks are bit-identical to ``Chunker.chunk_stream`` (tested),
demonstrating that the paper's decomposition — data-parallel candidate
scan on the device, sequential min/max stitch on the host — loses
nothing.  Modeled per-stage times are aggregated alongside, so the
executor doubles as an end-to-end integration of device, buffers and
pipeline machinery.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.chunking import Chunk, ChunkerConfig
from repro.core.pipeline import Stage, StreamingPipeline
from repro.core.shredder import ShredderConfig
from repro.gpu import chunking_kernel as _ck
from repro.gpu.device import GPUDevice
from repro.gpu.dma import Direction, MemoryType

__all__ = ["ShredderExecutor", "ExecutionTotals", "BoundaryStitcher"]


@dataclass
class ExecutionTotals:
    """Aggregated modeled stage times over one execution."""

    buffers: int = 0
    bytes: int = 0
    transfer_seconds: float = 0.0
    kernel_seconds: float = 0.0


class BoundaryStitcher:
    """The Store thread's stateful min/max selection across buffers.

    Receives per-buffer payloads plus their *global* candidate cuts and
    emits chunks with exactly the semantics of the sequential greedy over
    the whole stream.  A cut at the current end of data is emitted only
    if it is a genuine candidate (or an exact max-size boundary) —
    otherwise it waits for more data.
    """

    def __init__(self, config: ChunkerConfig) -> None:
        self.config = config
        self._pending = bytearray()
        self._pending_start = 0  # global offset of _pending[0]
        self._candidates: list[int] = []  # global cuts, > last emitted cut
        self._prev = 0  # last emitted global cut

    def _emit(self, cut: int) -> Chunk:
        rel = cut - self._pending_start
        chunk = Chunk.from_bytes(self._prev, bytes(self._pending[: rel]))
        del self._pending[:rel]
        self._pending_start = cut
        self._prev = cut
        idx = bisect_left(self._candidates, cut + 1)
        del self._candidates[:idx]
        return chunk

    def push(self, payload: bytes, global_candidates: list[int]) -> Iterator[Chunk]:
        """Feed one buffer's payload and candidate cuts; yield ready chunks."""
        self._pending.extend(payload)
        self._candidates.extend(global_candidates)
        end = self._pending_start + len(self._pending)
        min_size, max_size = self.config.min_size, self.config.max_size
        while True:
            cut = None
            for cand in self._candidates:
                if max_size is not None and cand - self._prev > max_size:
                    cut = self._prev + max_size  # forced boundary first
                    break
                if cand - self._prev >= max(min_size, 1):
                    cut = cand
                    break
            if cut is None and max_size is not None and end - self._prev > max_size:
                cut = self._prev + max_size
            if cut is None or cut > end:
                return
            if cut == end:
                # Only emit an end-of-data cut when it cannot move: a real
                # candidate past min, or an exact forced boundary.
                is_candidate = bool(self._candidates) and self._candidates[0] == cut
                forced = max_size is not None and cut - self._prev == max_size
                if not (is_candidate or forced):
                    return
            yield self._emit(cut)

    def finish(self) -> Iterator[Chunk]:
        """End of stream: flush forced cuts and the trailing chunk."""
        end = self._pending_start + len(self._pending)
        if self.config.max_size is not None:
            while end - self._prev > self.config.max_size:
                yield self._emit(self._prev + self.config.max_size)
        if end > self._prev:
            yield self._emit(end)


class ShredderExecutor:
    """Run the Shredder data path with real threads over the simulator."""

    def __init__(
        self, config: ShredderConfig | None = None, device: GPUDevice | None = None
    ) -> None:
        self.config = config or ShredderConfig()
        if self.config.backend != "gpu":
            raise ValueError("the threaded executor drives the GPU backend")
        if self.config.buffer_size < self.config.chunker.window_size:
            raise ValueError("buffer_size must be >= the chunking window")
        self.device = device or GPUDevice()
        from repro.core.chunking import Chunker

        self._chunker = Chunker(self.config.chunker)
        self.kernel = _ck.ChunkingKernel(
            self.config.chunker, engine=self._chunker.engine
        )

    def _read(self, data: bytes | Iterable[bytes]):
        """Reader stage input: (global_offset, context, payload) triples."""
        w = self.config.chunker.window_size
        buffer_size = self.config.buffer_size
        if isinstance(data, (bytes, bytearray, memoryview)):
            data = [bytes(data)]
        pending = bytearray()
        offset = 0
        context = b""
        for piece in data:
            pending.extend(piece)
            while len(pending) >= buffer_size:
                payload = bytes(pending[:buffer_size])
                del pending[:buffer_size]
                yield offset, context, payload
                context = payload[-(w - 1):]
                offset += len(payload)
        if pending:
            yield offset, context, bytes(pending)

    def run(self, data: bytes | Iterable[bytes]) -> tuple[list[Chunk], ExecutionTotals]:
        """Execute; returns chunks identical to ``Chunker.chunk_stream``."""
        totals = ExecutionTotals()
        stitcher = BoundaryStitcher(self.config.chunker)

        def transfer(item):
            offset, context, payload = item
            scan = context + payload
            buf = self.device.alloc(len(scan))
            seconds = self.device.upload(buf, scan, MemoryType.PINNED)
            totals.transfer_seconds += seconds
            return offset, len(context), payload, buf

        def kernel(item):
            offset, context_len, payload, buf = item
            cuts, stats = self.device.launch(
                self.kernel, buf, coalesced=self.config.coalesced_memory
            )
            self.device.free(buf)
            totals.kernel_seconds += stats.kernel_seconds
            global_cuts = [
                offset + c - context_len for c in cuts if c > context_len
            ]
            return offset, payload, global_cuts

        def store(item):
            offset, payload, global_cuts = item
            totals.buffers += 1
            totals.bytes += len(payload)
            return list(stitcher.push(payload, global_cuts))

        pipeline = StreamingPipeline(
            [
                Stage("transfer", transfer),
                Stage("kernel", kernel),
                Stage("store", store),
            ],
            max_in_flight=self.config.ring_slots,
        )
        emitted = pipeline.run(self._read(data))
        chunks = [c for batch in emitted for c in batch]
        chunks.extend(stitcher.finish())
        return chunks, totals
