"""Self-tuning scan geometry: measure the host, don't assume it.

The striped scan's throughput depends on tile size, lane count, fused
roll-step factor, and worker threads in ways that vary with cache sizes,
core counts, and the NumPy build — the same lesson as the lane/vector-
length tuning in "Test-driving RISC-V Vector hardware for HPC"
(PAPERS.md): geometry must be *measured*, not hard-coded.  This module
micro-benchmarks a small grid of :class:`ScanGeometry` candidates by
coordinate descent, persists the per-host winner to a cache file, and
feeds it to every consumer of the fast path:

* :class:`repro.core.engines.VectorEngine` — default ``lanes`` /
  ``tile_bytes`` / ``roll_steps`` (replacing the fixed 4 MiB tiles);
* :func:`repro.core.engines.parallel_candidate_cuts` — the region floor
  follows the tuned tile;
* :func:`repro.core.chunking.pipeline_chunks` — the hash-batch size is
  derived from the tuned tile so one hashing pass covers about one scan
  tile;
* :mod:`repro.core.threads` — the measured thread-sweep winner becomes
  the auto-detected worker default (explicit ``REPRO_THREADS`` /
  ``set_threads`` still win).

Control knobs
-------------
``REPRO_AUTOTUNE=0``
    Disable entirely: static fallback geometry, no benchmarking, no
    file I/O.  CI runs tier-1 this way so a broken tuner can never
    poison the default path.
``REPRO_AUTOTUNE_CACHE=<path>``
    Override the cache file location (default:
    ``$XDG_CACHE_HOME/repro/autotune.json`` or
    ``~/.cache/repro/autotune.json``).

First use (or ``python -m repro tune``) runs a *quick* tune — a few
candidates on a small buffer, well under two seconds — and caches the
winner keyed by a host signature; later processes just read the file.
``python -m repro tune`` (full mode) sweeps a wider grid on a larger
buffer for a higher-confidence answer.  Any tuner failure falls back to
the static defaults rather than raising into the scan path.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.engines import (
    DEFAULT_LANES,
    DEFAULT_ROLL_STEPS,
    DEFAULT_TILE_BYTES,
    VectorEngine,
)
from repro.core.threads import available_cpus, set_default_threads

__all__ = [
    "ScanGeometry",
    "DEFAULT_GEOMETRY",
    "autotune_enabled",
    "cache_path",
    "host_key",
    "get_geometry",
    "set_geometry",
    "clear_geometry",
    "load_cached",
    "save_cached",
    "tune",
    "describe",
]

MB = 1 << 20

#: Marker configuration used for tuning scans — the paper's defaults
#: (13-bit mask, the fixed marker from repro.core.chunking).  Geometry
#: is mask-agnostic (the scan cost is per window position, hits are
#: rare either way); one fixed probe keeps runs comparable.
_TUNE_MASK = (1 << 13) - 1
_TUNE_MARKER = 0x1A2B & _TUNE_MASK


@dataclass(frozen=True)
class ScanGeometry:
    """One striped-scan configuration: the knobs the tuner searches.

    ``threads is None`` means "defer to the process-wide setting"
    (``REPRO_THREADS`` / CPU count); a tuned integer becomes the
    auto-detected default via
    :func:`repro.core.threads.set_default_threads`.
    """

    lanes: int = DEFAULT_LANES
    tile_bytes: int = DEFAULT_TILE_BYTES
    roll_steps: int = DEFAULT_ROLL_STEPS
    threads: int | None = None
    source: str = "default"
    mib_per_s: float | None = None

    def validate(self) -> "ScanGeometry":
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.tile_bytes < 1:
            raise ValueError(f"tile_bytes must be >= 1, got {self.tile_bytes}")
        if self.roll_steps < 1:
            raise ValueError(f"roll_steps must be >= 1, got {self.roll_steps}")
        if self.threads is not None and self.threads < 0:
            raise ValueError(f"threads must be >= 0, got {self.threads}")
        return self


DEFAULT_GEOMETRY = ScanGeometry()

_lock = threading.Lock()
_resolved: ScanGeometry | None = None


def autotune_enabled() -> bool:
    """True unless ``REPRO_AUTOTUNE=0`` disables self-tuning."""
    return os.environ.get("REPRO_AUTOTUNE", "").strip() != "0"


def cache_path() -> Path:
    """Per-host geometry cache file location."""
    override = os.environ.get("REPRO_AUTOTUNE_CACHE", "").strip()
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "autotune.json"


def host_key() -> str:
    """Signature of everything the winning geometry depends on.

    A cache hit on a different machine class (or NumPy build, whose
    gather/dispatch costs set the optimum) would silently apply the
    wrong answer, so all of it keys the cache entry.
    """
    return (
        f"{platform.system()}:{platform.machine()}"
        f":cpus={available_cpus()}"
        f":numpy={np.__version__}"
        f":py={sys.version_info[0]}.{sys.version_info[1]}"
    )


# ----------------------------------------------------------------------
# cache file
# ----------------------------------------------------------------------


def load_cached() -> ScanGeometry | None:
    """Geometry cached for this host, or ``None`` (missing/corrupt)."""
    try:
        raw = json.loads(cache_path().read_text())
        entry = raw["hosts"][host_key()]
        return ScanGeometry(
            lanes=int(entry["lanes"]),
            tile_bytes=int(entry["tile_bytes"]),
            roll_steps=int(entry["roll_steps"]),
            threads=None if entry.get("threads") is None else int(entry["threads"]),
            source="cache",
            mib_per_s=entry.get("mib_per_s"),
        ).validate()
    except (OSError, ValueError, KeyError, TypeError):
        return None


def save_cached(geometry: ScanGeometry, mode: str) -> Path:
    """Merge ``geometry`` into the cache file under this host's key.

    Written atomically (tmp + rename) so a concurrent reader never sees
    a torn file; other hosts' entries are preserved.
    """
    path = cache_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        raw = json.loads(path.read_text())
        if not isinstance(raw.get("hosts"), dict):
            raise ValueError("bad cache shape")
    except (OSError, ValueError):
        raw = {"version": 1, "hosts": {}}
    raw["hosts"][host_key()] = {
        "lanes": geometry.lanes,
        "tile_bytes": geometry.tile_bytes,
        "roll_steps": geometry.roll_steps,
        "threads": geometry.threads,
        "mib_per_s": geometry.mib_per_s,
        "mode": mode,
        "tuned_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(raw, indent=2) + "\n")
    tmp.replace(path)
    return path


# ----------------------------------------------------------------------
# geometry resolution
# ----------------------------------------------------------------------


def get_geometry() -> ScanGeometry:
    """The geometry every defaulted ``VectorEngine`` scans with.

    Resolution (memoized per process): disabled -> static defaults;
    cached for this host -> the cached winner; otherwise run one quick
    tune and persist it.  A tuner failure degrades to the static
    defaults — the scan path never sees an exception from here.
    """
    global _resolved
    if _resolved is not None:
        return _resolved
    with _lock:
        if _resolved is not None:
            return _resolved
        if not autotune_enabled():
            geometry = DEFAULT_GEOMETRY
        else:
            geometry = load_cached()
            if geometry is None:
                try:
                    geometry = tune(quick=True, persist=True)
                except Exception:  # never let tuning break a scan
                    geometry = replace(
                        DEFAULT_GEOMETRY, source="default(tune-failed)"
                    )
        _resolved = geometry
    # Every resolution re-applies its thread answer (None clears), so a
    # stale tuned default can never outlive the geometry that set it.
    _apply_threads(geometry)
    return geometry


def set_geometry(geometry: ScanGeometry | None) -> None:
    """Install (or with ``None`` clear) the process-wide geometry.

    Engines built afterwards with defaulted knobs pick it up; existing
    engines keep what they resolved.  Clearing forces the next
    :func:`get_geometry` to re-resolve from env/cache and retracts any
    tuned thread default so a retired tuner cannot keep steering
    ``get_threads``.
    """
    global _resolved
    if geometry is not None:
        geometry.validate()
    with _lock:
        _resolved = geometry
    if geometry is None:
        set_default_threads(None)
    else:
        _apply_threads(geometry)


def clear_geometry() -> None:
    """Alias for ``set_geometry(None)`` (test/bench convenience)."""
    set_geometry(None)


def _apply_threads(geometry: ScanGeometry) -> None:
    # Unconditional: a geometry with deferred threads must also clear
    # any stale tuned default from an earlier resolution.
    set_default_threads(geometry.threads)


# ----------------------------------------------------------------------
# the tuner
# ----------------------------------------------------------------------


def _measure(
    data: np.ndarray,
    lanes: int,
    tile_bytes: int,
    roll_steps: int,
    threads: int,
    repeats: int,
) -> float:
    """Best-of-``repeats`` scan rate (MiB/s) for one candidate."""
    engine = VectorEngine(
        lanes=lanes, tile_bytes=tile_bytes, threads=threads, roll_steps=roll_steps
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.candidate_cut_array(data, _TUNE_MASK, _TUNE_MARKER)
        best = min(best, time.perf_counter() - t0)
    return data.size / MB / best


def tune(
    quick: bool = True,
    persist: bool = True,
    data_bytes: int | None = None,
    log=None,
) -> ScanGeometry:
    """Search the geometry grid by coordinate descent; return the winner.

    Dimensions are tuned in dependency order — ``roll_steps`` (kernel
    shape), then ``lanes`` (vector width), then ``tile_bytes`` (cache
    blocking), each measured serially because that is what every pool
    worker runs — and finally ``threads`` on the chosen geometry, but
    only when the sweep is honest (multi-CPU host, full mode, buffer
    spanning at least two tiles so the scan really fans out); otherwise
    threads stay deferred to the env/CPU default.  ``quick`` bounds the
    whole run to well under two seconds (small buffer, narrow grid);
    full mode sweeps wider on a larger buffer.  ``log`` (optional
    callable) receives one line per candidate for the CLI.
    """
    cpus = available_cpus()
    if quick:
        size = data_bytes or 4 * MB
        steps_grid = [1, 8, 16, 24]
        lanes_grid = [4096, 8192]
        tile_grid = [2 * MB, 4 * MB]
        # The quick buffer is too small for the scan to fan out (regions
        # are at least one tile wide), so a thread sweep here would just
        # compare serial runs and crown noise; leave threads deferred.
        thread_grid: list[int] = []
        repeats = 2  # best-of-2: scan rates on small buffers are noisy
    else:
        size = data_bytes or 16 * MB
        steps_grid = [1, 4, 8, 16, 24, 32]
        lanes_grid = [2048, 4096, 8192, 16384]
        tile_grid = [MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB]
        thread_grid = sorted({1, 2, 4, cpus} & set(range(1, cpus + 1)))
        repeats = 3
    rng = np.random.default_rng(0xC0FFEE)
    data = rng.integers(0, 256, size, dtype=np.uint8)

    best = {
        "lanes": DEFAULT_LANES,
        "tile_bytes": min(DEFAULT_TILE_BYTES, size),
        "roll_steps": DEFAULT_ROLL_STEPS,
        "threads": 1,
    }
    # Warm the tables and NumPy dispatch outside the measured region.
    _measure(data[: MB // 2], repeats=1, **best)

    best_rate = 0.0
    threads_tuned = False
    for dim, grid in (
        ("roll_steps", steps_grid),
        ("lanes", lanes_grid),
        ("tile_bytes", tile_grid),
        ("threads", thread_grid),
    ):
        if dim == "threads":
            # A thread sweep is only honest when the scan can actually
            # fan out: regions are at least one tile wide, so the
            # buffer must span two tiles or every candidate runs the
            # identical serial code and noise crowns the winner —
            # which _apply_threads would then install process-wide.
            if len(grid) < 2 or best["tile_bytes"] * 2 > size:
                continue
            threads_tuned = True
        if not grid:
            continue
        winner, winner_rate = best[dim], 0.0
        for value in grid:
            candidate = dict(best, **{dim: value})
            rate = _measure(data, repeats=repeats, **candidate)
            if log is not None:
                log(f"  {dim}={value}: {rate:.1f} MiB/s")
            if rate > winner_rate:
                winner, winner_rate = value, rate
        best[dim] = winner
        best_rate = winner_rate

    tuned = ScanGeometry(
        lanes=best["lanes"],
        tile_bytes=best["tile_bytes"],
        roll_steps=best["roll_steps"],
        # Untuned threads stay deferred (env / CPU count), never a
        # guessed constant.
        threads=best["threads"] if threads_tuned else None,
        source="tuned-quick" if quick else "tuned-full",
        mib_per_s=round(best_rate, 3),
    ).validate()
    if persist:
        try:
            save_cached(tuned, mode="quick" if quick else "full")
        except OSError:
            pass  # read-only home: the in-process winner still applies
    return tuned


def describe(geometry: ScanGeometry) -> dict:
    """JSON-ready view of a geometry (for benchmarks and the CLI)."""
    return asdict(geometry)
