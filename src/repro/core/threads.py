"""Process-wide worker-thread configuration and shared pools.

One knob controls every CPU-parallel stage of the data path — the
threaded tile scan (:mod:`repro.core.engines`), the sharded hash pass
(:mod:`repro.core.hashing`), and the SPMD host chunker's region fan-out:

* ``REPRO_THREADS`` environment variable — the session default.
  ``0`` or ``1`` means *serial* (no worker threads anywhere); unset
  falls back to the host CPU count.
* :func:`set_threads` — a runtime override (the CLI's ``--threads``
  flag lands here), taking precedence over the environment.

The two executors are shared across the process so repeated scans reuse
warm threads instead of paying pool construction per call, and both are
torn down by :func:`close_pools` (registered ``atexit``, fixing the
leak where the module-level hash pool was never shut down).  Scan and
hash pools are distinct on purpose: scan-region tasks block waiting on
nothing, but the pipelined backup path hashes one buffer while scanning
the next, and a single shared pool could deadlock if scan tasks ever
fanned out hashing work of their own.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "get_threads",
    "set_threads",
    "set_default_threads",
    "available_cpus",
    "scan_pool",
    "hash_pool",
    "close_pools",
]

#: Hash sharding stops scaling past a handful of cores (memory-bound
#: SHA), so the hash pool is capped independently of the scan pool.
MAX_HASH_WORKERS = 8

_lock = threading.Lock()
_override: int | None = None
_tuned_default: int | None = None
_scan_pool: ThreadPoolExecutor | None = None
_hash_pool: ThreadPoolExecutor | None = None
_pool_width: dict[str, int] = {}
#: Pools replaced by a wider one (or by set_threads) are *retired*, not
#: immediately shut down: a concurrent scan may hold a reference and be
#: about to submit, and shutdown(wait=False) would make that submit
#: raise.  Retired executors are joined on the next set_threads call,
#: in close_pools, and at exit, so the list stays small even under
#: repeated reconfiguration.
_retired: list[ThreadPoolExecutor] = []


def _env_threads() -> int | None:
    raw = os.environ.get("REPRO_THREADS")
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_THREADS must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_THREADS must be >= 0, got {value}")
    return value


def available_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity-aware).

    On containerized or affinity-limited hosts ``os.cpu_count()``
    overstates the real parallelism; scheduling decisions (default
    worker counts, the autotuner's thread grid, benchmark scaling
    gates) should use this instead.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def get_threads() -> int:
    """Effective worker count.

    Precedence: :func:`set_threads` override > ``REPRO_THREADS`` >
    autotuned default (:func:`set_default_threads`, fed by
    :mod:`repro.core.autotune` from the measured thread-sweep winner) >
    available CPU count.

    ``0`` and ``1`` both mean serial; callers treat any value ``<= 1``
    as "do not use worker threads".
    """
    if _override is not None:
        return _override
    env = _env_threads()
    if env is not None:
        return env
    if _tuned_default is not None:
        return _tuned_default
    return available_cpus()


def set_threads(n: int | None) -> None:
    """Override the worker count for this process (``None`` clears it).

    Existing pools are retired (drained, joined at exit) so the next
    parallel call rebuilds them at the new width; in-flight scans keep
    their executor and finish safely.
    """
    global _override, _scan_pool, _hash_pool
    if n is not None and n < 0:
        raise ValueError(f"thread count must be >= 0, got {n}")
    with _lock:
        _override = n
        # Pools retired by *earlier* calls can be joined now: any racer
        # that held one of them submitted long ago (the fetch-to-submit
        # window is a single call frame).  This bounds retirement churn
        # in long-running processes that toggle set_threads repeatedly.
        drain = list(_retired)
        _retired.clear()
        _retired.extend(p for p in (_scan_pool, _hash_pool) if p is not None)
        _scan_pool = None
        _hash_pool = None
        _pool_width.clear()
    for pool in drain:
        pool.shutdown(wait=True)


def set_default_threads(n: int | None) -> None:
    """Install the autotuned worker-count default (``None`` clears it).

    Sits *below* the explicit knobs in :func:`get_threads` precedence:
    a user's ``REPRO_THREADS`` or :func:`set_threads` always wins.
    Unlike :func:`set_threads` this does not retire live pools — it only
    changes what future auto-detected calls see.
    """
    global _tuned_default
    if n is not None and n < 0:
        raise ValueError(f"thread count must be >= 0, got {n}")
    with _lock:
        _tuned_default = n


def _get_pool(which: str, workers: int) -> ThreadPoolExecutor:
    global _scan_pool, _hash_pool
    with _lock:
        pool = _scan_pool if which == "scan" else _hash_pool
        # Grow-only: a pool wide enough for the largest request serves
        # narrower ones too (idle workers are spawned lazily and cost
        # almost nothing).
        if pool is None or _pool_width.get(which, 0) < workers:
            if pool is not None:
                _retired.append(pool)  # never shut down under a racer
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-{which}"
            )
            _pool_width[which] = workers
            if which == "scan":
                _scan_pool = pool
            else:
                _hash_pool = pool
        return pool


def scan_pool(workers: int | None = None) -> ThreadPoolExecutor:
    """Shared executor for scan-region tasks (at least ``workers`` wide)."""
    return _get_pool("scan", max(2, workers or get_threads()))


def hash_pool(workers: int | None = None) -> ThreadPoolExecutor:
    """Shared executor for hash shards (capped at ``MAX_HASH_WORKERS``)."""
    requested = workers if workers is not None else min(
        MAX_HASH_WORKERS, get_threads()
    )
    return _get_pool("hash", max(2, requested))


def close_pools() -> None:
    """Shut down the shared pools, retired ones included (idempotent).

    Call at quiescent points (process exit does it automatically); the
    pools are re-created on next use.
    """
    global _scan_pool, _hash_pool
    with _lock:
        pools = [p for p in (_scan_pool, _hash_pool) if p is not None]
        pools.extend(_retired)
        _retired.clear()
        _scan_pool = None
        _hash_pool = None
        _pool_width.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(close_pools)
