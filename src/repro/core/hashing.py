"""Chunk hashing (step 2 of duplicate identification, §2.1).

After chunk boundaries are found, each chunk is hashed with a
collision-resistant function; the digest is the key used by the matching
step (dedup index, memoization server).  SHA-1 was typical of systems of
the paper's era (LBFS, Venti); SHA-256 is the default here.
"""

from __future__ import annotations

import hashlib
import zlib

__all__ = ["chunk_hash", "short_hash", "weak_checksum", "HASH_SIZE"]

#: Size in bytes of the digest returned by :func:`chunk_hash`.
HASH_SIZE = 32


def chunk_hash(data: bytes) -> bytes:
    """Collision-resistant digest of a chunk (SHA-256, 32 bytes)."""
    return hashlib.sha256(data).digest()


def short_hash(data: bytes) -> int:
    """64-bit truncation of :func:`chunk_hash`, for compact in-memory keys."""
    return int.from_bytes(chunk_hash(data)[:8], "big")


def weak_checksum(data: bytes) -> int:
    """Fast 32-bit checksum (CRC32) used for cheap pre-filtering in indexes."""
    return zlib.crc32(data) & 0xFFFFFFFF
