"""Chunk hashing (step 2 of duplicate identification, §2.1).

After chunk boundaries are found, each chunk is hashed with a
collision-resistant function; the digest is the key used by the matching
step (dedup index, memoization server).  SHA-1 was typical of systems of
the paper's era (LBFS, Venti); SHA-256 is the default here.

The batched entry points (:func:`digest_chunks`, :func:`digest_many`)
hash whole scan batches in one pass over ``memoryview`` slices — no
per-chunk ``bytes`` copies — and, on multi-core hosts, shard the batch
across the shared hash pool (``hashlib`` releases the GIL for buffers
larger than 2 KiB, so SHA throughput scales with cores).  Worker count
follows :mod:`repro.core.threads` (the ``REPRO_THREADS`` env var /
:func:`~repro.core.threads.set_threads`; ``0``/``1`` = serial), and the
pool is shut down at exit via
:func:`~repro.core.threads.close_pools`.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Iterable, Sequence

from repro.core.threads import (
    MAX_HASH_WORKERS,
    close_pools,
    get_threads,
    hash_pool,
)

__all__ = [
    "chunk_hash",
    "short_hash",
    "weak_checksum",
    "digest_chunks",
    "digest_many",
    "digest_views",
    "close_pools",
]

def chunk_hash(data) -> bytes:
    """Collision-resistant digest of a chunk (SHA-256, 32 bytes).

    Accepts any buffer-protocol object, so callers can pass
    ``memoryview`` slices without materializing ``bytes``.
    """
    return hashlib.sha256(data).digest()


def short_hash(data) -> int:
    """64-bit truncation of :func:`chunk_hash`, for compact in-memory keys."""
    return int.from_bytes(chunk_hash(data)[:8], "big")


def weak_checksum(data) -> int:
    """Fast 32-bit checksum (CRC32) used for cheap pre-filtering in indexes."""
    return zlib.crc32(data) & 0xFFFFFFFF


def digest_views(views: Iterable) -> bytes:
    """Digest of the concatenation of buffer views, without concatenating."""
    h = hashlib.sha256()
    for view in views:
        h.update(view)
    return h.digest()


#: Below this many bytes the thread-pool dispatch costs more than it saves.
_PARALLEL_THRESHOLD = 4 << 20


def _hash_workers() -> int:
    """Shards the batch splits into (the shared-pool width, capped)."""
    return min(MAX_HASH_WORKERS, get_threads())


def digest_many(pieces: Sequence, parallel: bool | None = None) -> list[bytes]:
    """SHA-256 digests of a batch of buffers, one pass, optionally threaded.

    ``pieces`` may be any buffer-protocol objects (memoryview slices in
    the fast path).  ``parallel=None`` auto-enables the shared thread
    pool on multi-core hosts for batches worth sharding; with
    ``REPRO_THREADS`` at 0/1 the batch always hashes serially.
    """
    n = len(pieces)
    workers = _hash_workers()
    if parallel is None:
        parallel = (
            workers > 1
            and n >= 2 * workers
            and sum(len(p) for p in pieces) >= _PARALLEL_THRESHOLD
        )
    elif parallel and workers < 2:
        parallel = False  # explicitly serial configuration wins
    if not parallel or n < 2:
        return [hashlib.sha256(p).digest() for p in pieces]
    shard = -(-n // workers)

    def run(lo: int) -> list[bytes]:
        return [hashlib.sha256(p).digest() for p in pieces[lo : lo + shard]]

    parts = hash_pool(workers).map(run, range(0, n, shard))
    return [d for part in parts for d in part]


def digest_chunks(buffer, cuts: Sequence[int], parallel: bool | None = None) -> list[bytes]:
    """Batched digests of the chunks ``buffer[prev:cut]`` implied by ``cuts``.

    ``cuts`` are sorted exclusive end offsets (the first chunk starts at
    offset 0), exactly as produced by boundary selection.  The buffer is
    sliced through one ``memoryview`` — zero copies — and the whole batch
    is hashed in a single pass, so ``Chunker``, the SPMD host chunker and
    the backup server pay one call per scan batch instead of one Python
    round trip per chunk.
    """
    from repro.core.engines import as_byte_view  # local: keep hashing numpy-free

    mv = as_byte_view(buffer)
    slices = []
    prev = 0
    for cut in cuts:
        slices.append(mv[prev:cut])
        prev = cut
    return digest_many(slices, parallel=parallel)
