"""The Shredder framework facade (§3.1, §5).

Ties together the four host-driver modules (Reader, Transfer, Chunking
kernel, Store) over the simulated GPU, with each of the paper's
optimizations individually toggleable:

===================  =======================================  ==========
Config flag          Optimization                              Paper §
===================  =======================================  ==========
double_buffering     concurrent copy & execution               §4.1.1
pinned_ring          circular ring of pinned host buffers      §4.1.2
pipeline_stages      multi-stage streaming pipeline (1-4)      §4.2
coalesced_memory     half-warp cooperative memory fetch        §4.3
===================  =======================================  ==========

Chunks are always computed for real (bit-identical across all presets);
the report carries the modeled execution time from which the Figure 12
throughput bars are regenerated.

Presets
-------
``ShredderConfig.gpu_basic()``           "GPU Basic" bar
``ShredderConfig.gpu_streams()``         "GPU Streams" bar
``ShredderConfig.gpu_streams_memory()``  "GPU Streams + Memory" bar
``ShredderConfig.cpu(hoard=...)``        "CPU w/(o) Hoard" bars
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.core.buffers import PinnedRingBuffer
from repro.core.chunking import (
    Chunk,
    Chunker,
    ChunkerConfig,
    pipeline_chunks,
    stream_chunks,
)
from repro.core.engines import as_byte_view
from repro.core.host_chunker import HOARD, MALLOC, HostParallelChunker
# Imported as a module (not names) to stay robust against the circular
# package-init chain repro.gpu -> chunking_kernel -> repro.core -> here.
from repro.gpu import chunking_kernel as _chunking_kernel
from repro.gpu.device import GPUDevice
from repro.gpu.dma import Direction, MemoryType
from repro.gpu.host_memory import HostMemoryModel
from repro.gpu.specs import HostSpec, XEON_X5650_HOST
from repro.gpu.timeline import (
    PhaseCosts,
    ScheduleResult,
    double_buffered_schedule,
    pipeline_schedule,
    serialized_schedule,
)

__all__ = ["ShredderConfig", "ShredderReport", "Shredder"]

MB = 1 << 20

#: Host-side cost to deliver one chunk boundary upcall (hash enqueue +
#: callback), charged to the Store stage.
PER_CHUNK_UPCALL_S = 0.5e-6
#: Bytes of boundary metadata shipped device-to-host per chunk.
BOUNDARY_RECORD_BYTES = 8


@dataclass(frozen=True)
class ShredderConfig:
    """Configuration of a Shredder instance (see module docstring)."""

    chunker: ChunkerConfig = field(default_factory=ChunkerConfig)
    backend: str = "gpu"  # "gpu" | "cpu"
    buffer_size: int = 32 * MB
    double_buffering: bool = True
    pinned_ring: bool = True
    ring_slots: int = 4
    pipeline_stages: int = 4
    coalesced_memory: bool = True
    host_threads: int = 12
    use_hoard: bool = True
    #: §9 future work: GPUDirect over InfiniBand — the NIC DMAs straight
    #: into device memory, removing the host staging copy and the 2 GBps
    #: SAN reader from the data path.
    gpu_direct: bool = False
    #: §9 future work: data-parallel chunking across several GPUs (each
    #: buffer round-robins to a device with its own PCIe link).
    num_gpus: int = 1
    #: Effective ingest bandwidth when gpu_direct is on (InfiniBand QDR-
    #: class fabric of the paper's era: ~4 GB/s).
    gpu_direct_bandwidth: float = 4e9

    def __post_init__(self) -> None:
        if self.backend not in ("gpu", "cpu"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if not 1 <= self.pipeline_stages <= 4:
            raise ValueError("pipeline_stages must be in [1, 4]")
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")

    # -- presets matching the Figure 12 bars --------------------------------

    @classmethod
    def gpu_basic(cls, **overrides) -> "ShredderConfig":
        """Basic design of §3.1: serialized stages, pageable staging,
        conflict-prone device-memory access."""
        return cls(
            backend="gpu",
            double_buffering=False,
            pinned_ring=False,
            pipeline_stages=1,
            coalesced_memory=False,
            **overrides,
        )

    @classmethod
    def gpu_streams(cls, **overrides) -> "ShredderConfig":
        """§4.1 + §4.2 optimizations (double buffering, ring, pipeline)."""
        return cls(
            backend="gpu",
            double_buffering=True,
            pinned_ring=True,
            pipeline_stages=4,
            coalesced_memory=False,
            **overrides,
        )

    @classmethod
    def gpu_streams_memory(cls, **overrides) -> "ShredderConfig":
        """All optimizations, including §4.3 memory coalescing."""
        return cls(
            backend="gpu",
            double_buffering=True,
            pinned_ring=True,
            pipeline_stages=4,
            coalesced_memory=True,
            **overrides,
        )

    @classmethod
    def cpu(cls, hoard: bool = True, **overrides) -> "ShredderConfig":
        """Host-only pthreads baseline (§5.1)."""
        return cls(backend="cpu", use_hoard=hoard, **overrides)

    def with_chunker(self, chunker: ChunkerConfig) -> "ShredderConfig":
        return replace(self, chunker=chunker)


@dataclass
class ShredderReport:
    """Result metadata for one Shredder run."""

    backend: str
    total_bytes: int = 0
    n_chunks: int = 0
    n_buffers: int = 0
    simulated_seconds: float = 0.0
    setup_seconds: float = 0.0
    schedule: ScheduleResult | None = None
    phase_costs: list[PhaseCosts] = field(default_factory=list)
    kernel_stats: "_chunking_kernel.KernelStats | None" = None

    @property
    def throughput_bps(self) -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return self.total_bytes / self.simulated_seconds

    @property
    def mean_chunk_size(self) -> float:
        return self.total_bytes / self.n_chunks if self.n_chunks else 0.0

    def bottleneck(self) -> str:
        """Which stage limits pipelined throughput."""
        if not self.phase_costs:
            return "none"
        totals = [0.0] * 4
        for p in self.phase_costs:
            for i, v in enumerate(p.as_tuple()):
                totals[i] += v
        names = ("read", "transfer", "kernel", "store")
        return names[max(range(4), key=totals.__getitem__)]


class Shredder:
    """High-performance content-based chunking service.

    >>> shredder = Shredder(ShredderConfig.gpu_streams_memory())
    >>> chunks, report = shredder.process(data)
    >>> report.throughput_bps / 1e9   # modeled GB/s
    """

    def __init__(
        self,
        config: ShredderConfig | None = None,
        device: GPUDevice | None = None,
        host_memory: HostMemoryModel | None = None,
        host: HostSpec = XEON_X5650_HOST,
    ) -> None:
        self.config = config or ShredderConfig()
        self.host = host
        self.host_memory = host_memory or HostMemoryModel(host)
        self._chunker = Chunker(self.config.chunker)
        if self.config.backend == "gpu":
            self.device = device or GPUDevice()
            self.kernel = _chunking_kernel.ChunkingKernel(
                self.config.chunker, engine=self._chunker.engine
            )
            self._ring: PinnedRingBuffer | None = None
            if self.config.pinned_ring:
                self._ring = PinnedRingBuffer(
                    self.host_memory, self.config.buffer_size, self.config.ring_slots
                )
        else:
            self.device = None
            self.kernel = None
            self._ring = None
            self.host_chunker = HostParallelChunker(
                self.config.chunker,
                threads=self.config.host_threads,
                allocator=HOARD if self.config.use_hoard else MALLOC,
                engine=self._chunker.engine,
                host=host,
            )

    # ------------------------------------------------------------------

    def _buffers(self, data) -> Iterator:
        """Split input into buffer_size pieces.

        Buffer-protocol inputs (bytes, bytearray, memoryview, mmap, NumPy
        uint8 arrays, ...) are sliced through one memoryview — zero
        copies; the chunking path scans the views in place.  Arbitrary
        iterables are re-buffered with one copy per byte.
        """
        try:
            mv = as_byte_view(data)
        except TypeError:
            mv = None  # not a buffer: re-buffer the iterable below
        except BufferError:
            # Non-contiguous buffer (e.g. a strided memoryview): views
            # cannot represent it, so pay a one-time flattening copy.
            mv = as_byte_view(bytes(data))
        if mv is not None:
            for off in range(0, len(mv), self.config.buffer_size):
                yield mv[off : off + self.config.buffer_size]
            return
        # Re-buffer an arbitrary stream into buffer_size pieces.
        pending = bytearray()
        for piece in data:
            pending.extend(piece)
            while len(pending) >= self.config.buffer_size:
                yield bytes(pending[: self.config.buffer_size])
                del pending[: self.config.buffer_size]
        if pending:
            yield bytes(pending)

    def _gpu_phase_costs(self, size: int, n_chunks: int) -> PhaseCosts:
        cfg = self.config
        if cfg.gpu_direct:
            # NIC-to-GPU DMA: no host staging, no SAN reader in the path.
            # Ingest and PCIe transfer collapse into one stage running at
            # the slower of the fabric and the (per-GPU) PCIe link.
            wire = max(
                size / cfg.gpu_direct_bandwidth,
                self.device.dma.transfer_time(
                    size // cfg.num_gpus, Direction.HOST_TO_DEVICE, MemoryType.PINNED
                ),
            )
            kernel = self.kernel.estimate(
                self.device, size // cfg.num_gpus, boundary_count=n_chunks,
                coalesced=cfg.coalesced_memory,
            ).kernel_seconds
            store = (
                self.device.download_time(max(1, n_chunks) * BOUNDARY_RECORD_BYTES)
                + n_chunks * PER_CHUNK_UPCALL_S
            )
            return PhaseCosts(0.0, wire, kernel, store)
        read = size / self.host.reader_bandwidth
        if cfg.pinned_ring:
            assert self._ring is not None
            transfer = self._ring.staging_copy_time(size) + self.device.dma.transfer_time(
                size, Direction.HOST_TO_DEVICE, MemoryType.PINNED
            )
        elif cfg.double_buffering:
            # Async copy requires pinned memory; without the ring a pinned
            # buffer is allocated per transfer (the cost Fig. 6 highlights).
            alloc = self.host_memory.alloc_pinned(size)
            self.host_memory.free(alloc)
            transfer = alloc.alloc_seconds + self.device.dma.transfer_time(
                size, Direction.HOST_TO_DEVICE, MemoryType.PINNED
            )
        else:
            transfer = self.device.dma.transfer_time(
                size, Direction.HOST_TO_DEVICE, MemoryType.PAGEABLE
            )
        if cfg.num_gpus > 1:
            # Buffers round-robin across devices: each device sees 1/k of
            # the stream, and each has its own PCIe link.
            transfer /= cfg.num_gpus
        kernel = self.kernel.estimate(
            self.device, max(1, size // cfg.num_gpus), boundary_count=n_chunks,
            coalesced=cfg.coalesced_memory,
        ).kernel_seconds
        store = (
            self.device.download_time(max(1, n_chunks) * BOUNDARY_RECORD_BYTES)
            + n_chunks * PER_CHUNK_UPCALL_S
        )
        return PhaseCosts(read, transfer, kernel, store)

    def process(self, data: bytes | Iterable[bytes]) -> tuple[list[Chunk], ShredderReport]:
        """Chunk a stream; returns real chunks plus the timing report."""
        if self.config.backend == "cpu":
            return self._process_cpu(data)
        return self._process_gpu(data)

    def chunk(self, data: bytes | Iterable[bytes]) -> list[Chunk]:
        """Chunks only (convenience)."""
        return self.process(data)[0]

    def pipeline_batches(
        self,
        data: bytes | Iterable[bytes],
        batch_chunks: int | None = None,
        queue_depth: int = 4,
    ) -> Iterator[list[Chunk]]:
        """Stage-overlapped chunk+hash batches, in stream order.

        Yields digested chunk batches while the scan of later buffers is
        still running (see :func:`repro.core.chunking.pipeline_chunks`);
        concatenated, the batches equal :meth:`chunk` output exactly.
        Both backends route through the same boundary logic as
        :meth:`process`, so chunks are bit-identical to the unpipelined
        path.
        """
        candidate_fn = (
            self._chunker.candidate_cuts
            if self.config.backend == "gpu"
            else self.host_chunker.candidate_cuts
        )
        return pipeline_chunks(
            candidate_fn,
            self.config.chunker,
            self._buffers(data),
            batch_chunks=batch_chunks,
            queue_depth=queue_depth,
        )

    # ------------------------------------------------------------------

    def simulate(self, total_bytes: int, n_chunks: int | None = None) -> ShredderReport:
        """Timing-only run: model chunking ``total_bytes`` without data.

        Used by the figure benchmarks to evaluate paper-scale streams
        (e.g. 1 GB with 16-256 MB buffers) purely through the hardware
        models; chunk counts default to the expected chunk size.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if n_chunks is None:
            n_chunks = max(1, total_bytes // self.config.chunker.expected_chunk_size)
        if self.config.backend == "cpu":
            report = ShredderReport(backend="cpu")
            report.total_bytes = total_bytes
            report.n_chunks = n_chunks
            report.n_buffers = max(
                1, -(-total_bytes // self.config.buffer_size)
            )
            report.simulated_seconds = self.host_chunker.estimate_seconds(
                total_bytes, n_chunks
            )
            return report

        cfg = self.config
        report = ShredderReport(backend="gpu")
        if self._ring is not None:
            report.setup_seconds = self._ring.setup_seconds
        report.total_bytes = total_bytes
        report.n_chunks = n_chunks
        sizes = [cfg.buffer_size] * (total_bytes // cfg.buffer_size)
        if total_bytes % cfg.buffer_size:
            sizes.append(total_bytes % cfg.buffer_size)
        report.n_buffers = len(sizes)
        if not sizes:
            return report
        chunks_per_buffer = max(1, round(n_chunks / len(sizes)))
        report.phase_costs = [
            self._gpu_phase_costs(size, chunks_per_buffer) for size in sizes
        ]
        if cfg.pipeline_stages > 1:
            report.schedule = pipeline_schedule(
                report.phase_costs, stages=cfg.pipeline_stages,
                max_in_flight=cfg.ring_slots,
            )
        elif cfg.double_buffering:
            report.schedule = double_buffered_schedule(report.phase_costs)
        else:
            report.schedule = serialized_schedule(report.phase_costs)
        report.simulated_seconds = report.schedule.total_seconds
        report.kernel_stats = self.kernel.estimate(
            self.device, sizes[0], boundary_count=chunks_per_buffer,
            coalesced=cfg.coalesced_memory,
        )
        return report

    def _process_gpu(self, data) -> tuple[list[Chunk], ShredderReport]:
        cfg = self.config
        report = ShredderReport(backend="gpu")
        if self._ring is not None:
            report.setup_seconds = self._ring.setup_seconds

        chunks: list[Chunk] = []
        buffer_sizes: list[int] = []

        def counting_buffers():
            for buf in self._buffers(data):
                buffer_sizes.append(len(buf))
                yield buf

        chunks = list(self._chunker.chunk_stream(counting_buffers()))
        report.total_bytes = sum(buffer_sizes)
        report.n_chunks = len(chunks)
        report.n_buffers = len(buffer_sizes)
        if report.total_bytes == 0:
            return chunks, report

        mean_chunks_per_buffer = max(1, round(report.n_chunks / max(1, len(buffer_sizes))))
        report.phase_costs = [
            self._gpu_phase_costs(size, mean_chunks_per_buffer) for size in buffer_sizes
        ]
        if cfg.pipeline_stages > 1:
            report.schedule = pipeline_schedule(
                report.phase_costs, stages=cfg.pipeline_stages,
                max_in_flight=cfg.ring_slots,
            )
        elif cfg.double_buffering:
            report.schedule = double_buffered_schedule(report.phase_costs)
        else:
            report.schedule = serialized_schedule(report.phase_costs)
        report.simulated_seconds = report.schedule.total_seconds
        report.kernel_stats = self.kernel.estimate(
            self.device,
            buffer_sizes[0],
            boundary_count=mean_chunks_per_buffer,
            coalesced=cfg.coalesced_memory,
        )
        return chunks, report

    def _process_cpu(self, data) -> tuple[list[Chunk], ShredderReport]:
        report = ShredderReport(backend="cpu")

        def counting_buffers():
            for buf in self._buffers(data):
                report.n_buffers += 1
                report.total_bytes += len(buf)
                yield buf

        # The SPMD library chunks buffer-at-a-time with carry + context,
        # like the GPU path, so boundaries are identical across backends.
        chunks = list(
            stream_chunks(
                self.host_chunker.candidate_cuts,
                self.config.chunker,
                counting_buffers(),
            )
        )
        report.n_chunks = len(chunks)
        report.simulated_seconds = self.host_chunker.estimate_seconds(
            report.total_bytes, report.n_chunks
        )
        return chunks, report

    def close(self) -> None:
        """Release pinned ring slots (idempotent)."""
        if self._ring is not None:
            self._ring.destroy()
            self._ring = None

    def __enter__(self) -> "Shredder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
