"""Parallel min/max boundary selection (the paper's first future-work item).

§9: "we would like to incorporate into the library several optimizations
for parallel content-based chunking [31, 33]" — the Lillibridge patents
on producing chunks with min/max limits *in parallel* rather than by the
Store thread's sequential post-filter.

The sequential rule is a left-to-right greedy (``select_cuts``): from the
previous cut ``p``, the next cut is the first candidate in
``[p + min, p + max]``, else a forced cut at ``p + max``.  Two
observations make this parallelizable:

1.  Between two *candidate* cuts the forced cuts are a pure arithmetic
    progression (``p + max, p + 2*max, ...``), so the selection process
    is fully described by a **candidate-to-candidate jump function**
    ``J(c)`` — the next candidate selected after a cut at ``c`` — plus
    the count of forced cuts in between.

2.  ``J`` depends only on the static candidate list, so all jumps can be
    computed independently, one binary search each — this is the
    data-parallel phase the patents distribute over "a plurality of
    processing elements".

The final walk over ``J`` touches only *selected* cuts (``O(n/min)``)
instead of every candidate, and the expensive per-candidate work runs on
a thread pool.  Output is bit-identical to :func:`select_cuts`
(property-tested).
"""

from __future__ import annotations

from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

__all__ = ["compute_jumps", "parallel_select_cuts"]


@dataclass(frozen=True)
class Jump:
    """Selection step starting from a cut at ``source``.

    ``forced`` holds the arithmetic-progression cuts emitted before
    ``target``; ``target`` is the next *candidate* cut selected, or
    ``None`` when no further candidate is ever selected from here.
    """

    source: int
    forced: tuple[int, ...]
    target: int | None


def _jump_from(
    p: int, candidates: Sequence[int], length: int, min_size: int, max_size: int | None
) -> Jump:
    """The greedy step(s) from a cut at ``p`` to the next candidate cut."""
    source = p
    forced: list[int] = []
    while True:
        lo = bisect_left(candidates, p + max(min_size, 1))
        nxt = candidates[lo] if lo < len(candidates) else None
        if max_size is None:
            return Jump(source, tuple(forced), nxt)
        if nxt is not None and nxt - p <= max_size:
            return Jump(source, tuple(forced), nxt)
        if p + max_size >= length:
            return Jump(source, tuple(forced), None)
        p += max_size
        forced.append(p)


def compute_jumps(
    candidates: Sequence[int],
    length: int,
    min_size: int,
    max_size: int | None,
    workers: int = 4,
) -> dict[int, Jump]:
    """Data-parallel phase: one jump per candidate (plus the origin).

    Each jump is independent, so the candidate list is sharded across
    ``workers`` threads exactly as the patents shard input ranges across
    processing elements.
    """
    sources = [0] + [c for c in candidates if c < length]

    def shard(items: Sequence[int]) -> list[Jump]:
        return [
            _jump_from(p, candidates, length, min_size, max_size) for p in items
        ]

    if workers <= 1 or len(sources) < 32:
        jumps = shard(sources)
    else:
        size = -(-len(sources) // workers)
        shards = [sources[i : i + size] for i in range(0, len(sources), size)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            jumps = [j for part in pool.map(shard, shards) for j in part]
    return {j.source: j for j in jumps}


def parallel_select_cuts(
    candidates: Sequence[int],
    length: int,
    min_size: int = 0,
    max_size: int | None = None,
    workers: int = 4,
) -> list[int]:
    """min/max selection via parallel jump precomputation.

    Bit-identical to :func:`repro.core.chunking.select_cuts`; the
    sequential remainder is a walk over precomputed jumps touching only
    the selected cuts.
    """
    if length == 0:
        return []
    for i in range(1, len(candidates)):
        if candidates[i - 1] > candidates[i]:
            raise ValueError("candidates must be sorted")
    if candidates and candidates[-1] > length:
        raise ValueError(
            f"candidate cut {candidates[-1]} beyond buffer length {length}"
        )
    jumps = compute_jumps(candidates, length, min_size, max_size, workers)
    cuts: list[int] = []
    p = 0
    while True:
        jump = jumps.get(p)
        if jump is None:  # entered a state outside the precomputed set
            jump = _jump_from(p, candidates, length, min_size, max_size)
        cuts.extend(jump.forced)
        if jump.target is None:
            break
        cuts.append(jump.target)
        p = jump.target
    # The final jump already emitted any trailing forced cuts; close the
    # tail with the end-of-buffer cut exactly like the sequential rule.
    if not cuts or cuts[-1] != length:
        cuts.append(length)
    return cuts
