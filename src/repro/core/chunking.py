"""Content-based chunking: turn candidate cuts into chunks (§2.1, §3.1).

The paper's pipeline separates *finding marker windows* (the expensive
scan, offloaded to the GPU) from *selecting chunk boundaries* (applying
minimum / maximum chunk sizes, done by the Store thread).  This module
implements the second step plus the user-facing :class:`Chunker` API.

The whole data path is **zero-copy**: chunkers accept any buffer-protocol
object, :class:`Chunk` records are lazy ``(offset, length)`` views into
the caller's buffers that materialize ``data``/``digest`` on demand, and
the streaming path carries a ring of buffer references instead of
re-concatenated bytestrings.  Because chunks reference the buffers they
were cut from, callers that mutate or recycle those buffers should call
:meth:`Chunk.materialize` first.

Defaults follow §3.1: a 48-byte window whose fingerprint's low-order
13 bits are compared against a fixed marker, giving an expected chunk
size of ``2**13`` bytes, with ``min = 0`` and ``max = ∞`` unless noted.
"""

from __future__ import annotations

import queue
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.engines import (
    Engine,
    SerialEngine,
    VectorEngine,
    as_byte_view,
    default_engine,
)
from repro.core.hashing import chunk_hash, digest_chunks, digest_many, digest_views
from repro.core.rabin import DEFAULT_WINDOW_SIZE, RabinFingerprinter

__all__ = [
    "ChunkerConfig",
    "Chunk",
    "Chunker",
    "chunks_from_cuts",
    "select_cuts",
    "select_cuts_fast",
    "chunk_sizes",
    "ensure_digests",
    "pipeline_chunks",
]

#: Default number of low-order fingerprint bits compared against the marker
#: (§3.1: "the resulting low-order 13 bits").
DEFAULT_MASK_BITS = 13

#: Default marker value (any fixed 13-bit constant works; zero is avoided
#: because long runs of zero bytes would match at every offset).
DEFAULT_MARKER = 0x1A2B & ((1 << DEFAULT_MASK_BITS) - 1)


@dataclass(frozen=True)
class ChunkerConfig:
    """Parameters of a content-based chunker.

    Attributes
    ----------
    window_size:
        Sliding-window width in bytes.
    mask_bits:
        Number of low-order fingerprint bits compared with ``marker``.
        The expected chunk size is ``2**mask_bits`` bytes.
    marker:
        Value the masked fingerprint must equal at a chunk boundary.
    min_size / max_size:
        Minimum and maximum chunk sizes.  ``min_size = 0`` and
        ``max_size = None`` (unbounded) reproduce the paper's default.
    polynomial:
        Irreducible GF(2) polynomial; ``None`` selects the library default.
    """

    window_size: int = DEFAULT_WINDOW_SIZE
    mask_bits: int = DEFAULT_MASK_BITS
    marker: int = DEFAULT_MARKER
    min_size: int = 0
    max_size: int | None = None
    polynomial: int | None = None

    def __post_init__(self) -> None:
        if self.mask_bits < 1 or self.mask_bits > 48:
            raise ValueError(f"mask_bits must be in [1, 48], got {self.mask_bits}")
        if self.marker >> self.mask_bits:
            raise ValueError(
                f"marker {self.marker:#x} does not fit in {self.mask_bits} bits"
            )
        if self.min_size < 0:
            raise ValueError("min_size must be non-negative")
        if self.max_size is not None:
            if self.max_size <= 0:
                raise ValueError("max_size must be positive")
            if self.max_size < self.min_size:
                raise ValueError("max_size must be >= min_size")
            if self.max_size < self.window_size:
                raise ValueError("max_size must be >= window_size")

    @property
    def mask(self) -> int:
        return (1 << self.mask_bits) - 1

    @property
    def expected_chunk_size(self) -> int:
        """Expected chunk size for uniform random data, ignoring min/max."""
        return 1 << self.mask_bits

    def with_limits(self, min_size: int, max_size: int | None) -> "ChunkerConfig":
        """Copy of this config with different min/max limits."""
        return replace(self, min_size=min_size, max_size=max_size)


class Chunk:
    """One content-defined chunk of a stream (lazy).

    ``offset`` is absolute within the stream.  The payload is recorded
    either eagerly (``data``/``digest``) or as zero-copy buffer ``views``
    into the scanned input; ``data`` and ``digest`` then materialize on
    first access (and cache).  Requesting only ``digest`` never builds
    the ``data`` bytestring — duplicate chunks in a dedup flow are
    hashed straight from the source buffer and their payload is never
    copied at all.

    Lazy chunks keep the source buffer alive (and assume it is not
    mutated) until :meth:`materialize` or :meth:`release` is called.
    """

    __slots__ = ("offset", "length", "_data", "_digest", "_views")

    def __init__(
        self,
        offset: int,
        length: int,
        data: bytes | None = None,
        digest: bytes | None = None,
        views: tuple | None = None,
    ) -> None:
        if data is None and digest is None and views is None:
            raise ValueError("Chunk needs data, views, or a digest")
        self.offset = offset
        self.length = length
        if data is not None and not isinstance(data, bytes):
            data = bytes(data)  # repro: lint-ok[zero-copy] API coercion: callers own `data`
        self._data = data
        self._digest = digest
        self._views = views

    @property
    def end(self) -> int:
        return self.offset + self.length

    @property
    def data(self) -> bytes:
        """Chunk payload, materialized (and cached) on first access."""
        if self._data is None:
            if self._views is None:
                raise ValueError(
                    f"chunk at offset {self.offset} carries only a digest; "
                    "its payload was released"
                )
            views = self._views
            self._data = (
                # repro: lint-ok[zero-copy] .data IS the materialization point — one copy, cached
                bytes(views[0]) if len(views) == 1 else b"".join(bytes(v) for v in views)
            )
            self._views = None  # buffer references no longer needed
        return self._data

    @property
    def digest(self) -> bytes:
        """Collision-resistant payload hash, computed lazily without
        materializing ``data`` (hashed straight from the source views)."""
        if self._digest is None:
            if self._data is not None:
                self._digest = chunk_hash(self._data)
            else:
                self._digest = digest_views(self._views)
        return self._digest

    def materialize(self) -> "Chunk":
        """Force ``data`` and ``digest``, dropping source-buffer references."""
        self.data
        self.digest
        return self

    def release(self) -> None:
        """Drop buffer references without copying.

        ``offset``/``length`` (and ``digest``/``data`` if already
        materialized) survive; an unmaterialized payload becomes
        unavailable.  Lets callers unmap the scanned buffer (e.g. an
        ``mmap``) once digests are recorded.
        """
        self.digest  # a chunk without data must still identify its content
        self._views = None

    @staticmethod
    def from_bytes(offset: int, data) -> "Chunk":
        """Eager chunk: copy the payload and hash it immediately."""
        data = bytes(data)  # repro: lint-ok[zero-copy] eager constructor: the copy is the contract
        return Chunk(offset=offset, length=len(data), data=data, digest=chunk_hash(data))

    @staticmethod
    def from_views(offset: int, length: int, views: tuple, digest: bytes | None = None) -> "Chunk":
        """Lazy chunk over zero-copy buffer views."""
        return Chunk(offset=offset, length=length, digest=digest, views=views)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        return (
            self.offset == other.offset
            and self.length == other.length
            and self.digest == other.digest
        )

    def __hash__(self) -> int:
        return hash((self.offset, self.length, self.digest))

    def __repr__(self) -> str:
        return f"Chunk(offset={self.offset}, length={self.length})"

    def __reduce__(self):
        # Views cannot cross process boundaries; pickle the realized form.
        data = self.data if (self._data is not None or self._views is not None) else None
        return (Chunk, (self.offset, self.length, data, self.digest))


def ensure_digests(chunks: Sequence[Chunk], parallel: bool | None = None) -> Sequence[Chunk]:
    """Materialize digests for a whole chunk batch in one pass.

    Chunks that already carry a digest are untouched; the rest are hashed
    together through :func:`repro.core.hashing.digest_many` (sharded
    across the hash thread pool on multi-core hosts).  This is the
    batched-hashing entry point the backup server and cluster lookup
    path use so a scan batch costs one hashing pass, not one call per
    chunk.
    """
    pending = [c for c in chunks if c._digest is None]
    if not pending:
        return chunks
    pieces = []
    for c in pending:
        if c._data is not None:
            pieces.append(c._data)
        elif len(c._views) == 1:
            pieces.append(c._views[0])
        else:
            pieces.append(None)  # multi-view chunks hash incrementally
    digests = digest_many(
        [p for p in pieces if p is not None], parallel=parallel
    )
    it = iter(digests)
    for c, piece in zip(pending, pieces):
        c._digest = next(it) if piece is not None else digest_views(c._views)
    return chunks


def chunks_from_cuts(view: memoryview, cuts: Sequence[int], base_offset: int = 0) -> list[Chunk]:
    """Assemble lazy view chunks for a selected cut list, one digest pass.

    The shared back half of every whole-buffer chunker: slice ``view``
    at ``cuts`` into zero-copy :class:`Chunk` records whose digests are
    computed for the whole batch by :func:`digest_chunks`.
    """
    digests = digest_chunks(view, cuts)
    chunks = []
    prev = 0
    for cut, digest in zip(cuts, digests):
        chunks.append(
            Chunk(base_offset + prev, cut - prev, digest=digest, views=(view[prev:cut],))
        )
        prev = cut
    return chunks


def select_cuts(
    candidates: Sequence[int],
    length: int,
    min_size: int = 0,
    max_size: int | None = None,
) -> list[int]:
    """Apply min/max chunk-size rules to candidate cuts (Store-thread logic).

    ``candidates`` are sorted exclusive end offsets of marker windows in a
    buffer of ``length`` bytes.  Per §2.1: after a boundary, the next
    ``min_size`` bytes cannot end a chunk; a boundary is forced whenever
    ``max_size`` bytes accumulate without a marker.  The final cut at
    ``length`` closes the trailing partial chunk (which may be shorter
    than ``min_size``).

    Returns the selected cuts, ending with ``length``.  Empty input
    (``length == 0``) yields no cuts.

    Pure-Python reference implementation; :func:`select_cuts_fast` is the
    production path (bit-identical, differentially tested).
    """
    if length == 0:
        return []
    cuts: list[int] = []
    prev = 0
    for cut in candidates:
        if cut > length:
            raise ValueError(f"candidate cut {cut} beyond buffer length {length}")
        if max_size is not None:
            while cut - prev > max_size:
                prev += max_size
                cuts.append(prev)
        if cut - prev < min_size or cut == prev:
            continue  # inside the skip region after the previous boundary
        cuts.append(cut)
        prev = cut
    if max_size is not None:
        while length - prev > max_size:
            prev += max_size
            cuts.append(prev)
    if not cuts or cuts[-1] != length:
        cuts.append(length)
    return cuts


def select_cuts_fast(
    candidates,
    length: int,
    min_size: int = 0,
    max_size: int | None = None,
) -> list[int]:
    """Vectorized :func:`select_cuts` (bit-identical output).

    The default configuration (``min_size <= 1``, no maximum) reduces to
    pure array ops.  With limits, the greedy walk jumps candidate-to-
    candidate with ``np.searchsorted`` — ``O(selected · log n)`` instead
    of a Python loop over every candidate — touching only the cuts it
    emits, like the Lillibridge-style jump selection in
    :mod:`repro.core.parallel_minmax`.
    """
    if length == 0:
        return []
    c = np.asarray(candidates, dtype=np.int64)
    n = int(c.size)
    if n and int(c[-1]) > length:
        raise ValueError(
            f"candidate cut {int(c[-1])} beyond buffer length {length}"
        )
    if min_size <= 1 and max_size is None:
        uniq = np.unique(c[c > 0]) if n else c
        out = uniq.tolist()
        if not out or out[-1] != length:
            out.append(length)
        return out
    out: list[int] = []
    prev = 0
    step = max(min_size, 1)
    while True:
        i = int(np.searchsorted(c, prev + step, side="left"))
        nxt = int(c[i]) if i < n else None
        if nxt is not None and (max_size is None or nxt - prev <= max_size):
            out.append(nxt)
            prev = nxt
            continue
        if max_size is not None and (
            nxt is not None or length - prev > max_size
        ):
            prev += max_size
            out.append(prev)
            continue
        break
    if not out or out[-1] != length:
        out.append(length)
    return out


def chunk_sizes(cuts: Iterable[int]) -> list[int]:
    """Chunk lengths implied by a sorted cut list (first cut from offset 0)."""
    sizes = []
    prev = 0
    for cut in cuts:
        sizes.append(cut - prev)
        prev = cut
    return sizes


def stream_chunks(
    candidate_fn,
    config: ChunkerConfig,
    buffers: Iterable,
    carry_limit: int = 1 << 26,
) -> Iterator[Chunk]:
    """Chunk a buffer stream so boundaries match whole-stream chunking.

    Zero-copy streaming: each incoming buffer (any buffer-protocol
    object) is scanned **once**, in place.  The open chunk (*carry*) is a
    ring of buffer references — ``(global_start, memoryview)`` segments —
    never a re-concatenated bytestring, and emitted :class:`Chunk`
    records are lazy views into those segments.  Windows straddling a
    buffer boundary are caught by splicing the final ``window - 1``
    *tail* bytes of the stream onto the first ``window - 1`` bytes of the
    new buffer (a bounded, constant-size copy), so a stream of N
    markerless buffers costs O(total bytes) work and copies — not the
    quadratic re-scan of a growing carry.

    ``candidate_fn(data) -> cuts`` supplies min/max-agnostic marker cuts
    (e.g. ``Chunker.candidate_cuts`` or the SPMD host chunker's); min/max
    selection runs incrementally here against the true previous boundary.

    Zero-copy applies to *read-only* buffers (bytes, read-only
    memoryviews, mmaps).  Writable buffers (bytearray, writable NumPy
    arrays) are snapshotted on arrival — one bounded copy each — because
    producers legitimately refill such buffers between yields (the
    classic read-into-buffer loop), which would silently corrupt aliased
    carry segments.

    ``carry_limit`` bounds memory when no marker appears for a long
    stretch: it acts as an implicit maximum chunk size (default 64 MiB).
    """
    w = config.window_size
    min_size, max_size = config.min_size, config.max_size
    step = max(min_size, 1)
    tail = b""  # final min(w - 1, stream) bytes already scanned
    segments: deque[tuple[int, memoryview]] = deque()  # ring of carry buffer refs
    cands: list[int] = []  # pending global candidate cuts
    ci = 0  # consumed prefix of ``cands``
    prev = 0  # global offset of the open chunk start
    end = 0  # global bytes scanned so far

    def take(hi: int) -> tuple:
        """Split the segment ring at global offset ``hi``; views of [prev, hi)."""
        views = []
        while segments:
            start, mv = segments[0]
            seg_end = start + len(mv)
            if seg_end <= hi:
                views.append(mv)
                segments.popleft()
            else:
                cutoff = hi - start
                if cutoff > 0:
                    views.append(mv[:cutoff])
                    segments[0] = (hi, mv[cutoff:])
                break
        return tuple(views)

    for buf in buffers:
        view = as_byte_view(buf)
        if not view.readonly:
            # repro: lint-ok[zero-copy] snapshot: the producer may refill this writable buffer
            view = memoryview(bytes(view))
        nbytes = len(view)
        if nbytes == 0:
            continue
        start = end
        # Windows straddling the boundary end in (start, start + w - 1]:
        # splice the stream tail onto the head of the new buffer.
        if tail:
            # repro: lint-ok[zero-copy] boundary splice is bounded by the window size, not the input
            splice = tail + bytes(view[: w - 1])
            base = start - len(tail)
            for cut in candidate_fn(splice):
                if base + cut > start:
                    cands.append(base + cut)
        # Windows fully inside the buffer end in [start + w, start + nbytes].
        if nbytes >= w:
            cands.extend(start + cut for cut in candidate_fn(view))
        if nbytes >= w - 1:
            # repro: lint-ok[zero-copy] tail capture copies at most window-1 bytes per buffer
            tail = bytes(view[nbytes - (w - 1) :])
        else:
            tail = (tail + bytes(view))[-(w - 1) :]  # repro: lint-ok[zero-copy] sub-window buffer
        segments.append((start, view))
        end += nbytes

        # Incremental min/max selection (same greedy as select_cuts).  A
        # cut at the current end of data is held back unless it is a real
        # candidate — whole-stream chunking would cut there regardless of
        # what the next buffer holds.
        while True:
            i = bisect_left(cands, prev + step, ci)
            nxt = cands[i] if i < len(cands) else None
            if nxt is not None and (max_size is None or nxt - prev <= max_size):
                cut = nxt
            elif max_size is not None and (nxt is not None or end - prev > max_size):
                cut = prev + max_size  # forced boundary, always < end here
            else:
                break
            yield Chunk(prev, cut - prev, views=take(cut))
            prev = cut
            ci = bisect_left(cands, cut + 1, ci)
            if ci > 1024:  # compact the consumed prefix
                del cands[:ci]
                ci = 0
        if end - prev > carry_limit:
            yield Chunk(prev, end - prev, views=take(end))
            prev = end
            del cands[:]
            ci = 0
    if end > prev:
        yield Chunk(prev, end - prev, views=take(end))


#: Fallback chunks per pipeline batch: at the 8 KiB expected chunk size
#: this is ~2 MiB of payload per hashing pass — big enough to amortize
#: dispatch, small enough that three in-flight batches stay cache-warm.
#: When ``batch_chunks`` is left ``None`` the pipeline derives the batch
#: from the autotuned scan-tile size instead (one hashing pass covers
#: about one scan tile), so the stage boundary follows the measured
#: geometry rather than this constant.
DEFAULT_PIPELINE_BATCH = 256


def _resolve_batch_chunks(config: ChunkerConfig) -> int:
    """Hash-batch size matched to the tuned scan tile.

    ``tile_bytes / expected_chunk_size`` chunks make one hash pass span
    roughly one scan tile, clamped to a sane range so degenerate mask
    settings cannot produce 1-chunk or million-chunk batches.
    """
    from repro.core.autotune import get_geometry

    expected = max(1, config.expected_chunk_size)
    return max(32, min(4096, get_geometry().tile_bytes // expected))

_PIPE_END = object()


class _PipelineHandoff:
    """Bounded queues + stop/error plumbing between pipeline stages.

    Deliberately separate from :class:`repro.core.pipeline.
    StreamingPipeline`: that runs a *finite* item list to completion and
    returns a list, while :func:`pipeline_chunks` must stream batches to
    a consumer generator with backpressure (the consumer is the third
    stage) and survive early ``close()`` — different lifecycle, shared
    error type.
    """

    __slots__ = ("stop", "errors", "_queues")

    def __init__(self, n_queues: int, depth: int) -> None:
        self.stop = threading.Event()
        self.errors: list[BaseException] = []
        self._queues = [queue.Queue(maxsize=depth) for _ in range(n_queues)]

    def put(self, i: int, item) -> bool:
        """Blocking put that aborts when the pipeline is torn down."""
        while not self.stop.is_set():
            try:
                self._queues[i].put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def get(self, i: int):
        """Blocking get that drains queued items even after stop."""
        while True:
            try:
                return self._queues[i].get(timeout=0.05)
            except queue.Empty:
                if self.stop.is_set():
                    return _PIPE_END

    def fail(self, exc: BaseException) -> None:
        self.errors.append(exc)
        self.stop.set()


def pipeline_chunks(
    candidate_fn,
    config: ChunkerConfig,
    buffers: Iterable,
    carry_limit: int = 1 << 26,
    batch_chunks: int | None = None,
    queue_depth: int = 4,
) -> Iterator[list[Chunk]]:
    """Stage-overlapped chunking: scan || hash || consume (§4.2 on the CPU).

    Runs :func:`stream_chunks` on a *scan* worker thread and
    :func:`ensure_digests` on a *hash* worker thread, connected by
    bounded queues, and yields successive **batches** (lists) of
    digested :class:`Chunk` records to the caller — so hashing batch
    ``i`` overlaps scanning batch ``i + 1``, and whatever the caller
    does with a batch (index probes, cluster lookups, shipping)
    overlaps both.  NumPy releases the GIL inside the scan and
    ``hashlib`` inside the hash, so the three stages genuinely run
    concurrently on multi-core hosts.

    Batches preserve stream order exactly: concatenating them yields
    the same chunk sequence (offsets, lengths, digests) as
    ``stream_chunks`` followed by one big ``ensure_digests`` pass.
    ``queue_depth`` bounds in-flight batches per queue (the pinned-ring
    role from the paper's GPU pipeline: bounded buffering, no
    unbounded memory growth when one stage stalls).

    A stage exception tears the pipeline down and re-raises in the
    consumer (as :class:`~repro.core.pipeline.PipelineError`).  Closing
    the generator early stops both workers.

    With the process-wide thread setting at 0/1 (``REPRO_THREADS`` /
    :func:`repro.core.threads.set_threads`) the stages run inline on
    the calling thread — no workers, same batches, same error type —
    so the serial configuration is genuinely single-threaded.

    ``batch_chunks=None`` (the default) sizes batches from the
    autotuned scan-tile geometry (one hashing pass per scan tile, see
    :func:`_resolve_batch_chunks`).  Both stages accumulate wall-clock
    into the ``scan`` / ``hash`` stage timers of
    :mod:`repro.core.stats`, powering ``repro chunk --profile``.
    """
    from repro.core import stats
    from repro.core.pipeline import PipelineError  # shared error type
    from repro.core.threads import get_threads

    if batch_chunks is None:
        batch_chunks = _resolve_batch_chunks(config)
    if batch_chunks < 1:
        raise ValueError("batch_chunks must be >= 1")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")

    if get_threads() <= 1:
        scan_s = hash_s = 0.0
        stream = stream_chunks(
            candidate_fn, config, buffers, carry_limit=carry_limit
        )
        try:
            batch: list[Chunk] = []
            while True:
                t0 = time.perf_counter()
                chunk = next(stream, _PIPE_END)
                scan_s += time.perf_counter() - t0
                if chunk is _PIPE_END:
                    break
                batch.append(chunk)
                if len(batch) >= batch_chunks:
                    t0 = time.perf_counter()
                    ensure_digests(batch)
                    hash_s += time.perf_counter() - t0
                    yield batch
                    batch = []
            if batch:
                t0 = time.perf_counter()
                ensure_digests(batch)
                hash_s += time.perf_counter() - t0
                yield batch
        except Exception as exc:  # KeyboardInterrupt/SystemExit pass through
            raise PipelineError(f"chunk pipeline stage failed: {exc!r}") from exc
        finally:
            stats.record_stage("scan", scan_s)
            stats.record_stage("hash", hash_s)
        return

    handoff = _PipelineHandoff(2, queue_depth)

    def scan_worker() -> None:
        scan_s = 0.0
        stream = stream_chunks(
            candidate_fn, config, buffers, carry_limit=carry_limit
        )
        try:
            batch: list[Chunk] = []
            while True:
                t0 = time.perf_counter()
                chunk = next(stream, _PIPE_END)
                scan_s += time.perf_counter() - t0
                if chunk is _PIPE_END:
                    break
                batch.append(chunk)
                if len(batch) >= batch_chunks:
                    if not handoff.put(0, batch):
                        return
                    batch = []
            if batch:
                handoff.put(0, batch)
        except BaseException as exc:
            handoff.fail(exc)
        finally:
            stats.record_stage("scan", scan_s)
            handoff.put(0, _PIPE_END)

    def hash_worker() -> None:
        hash_s = 0.0
        try:
            while True:
                batch = handoff.get(0)
                if batch is _PIPE_END:
                    return
                t0 = time.perf_counter()
                ensure_digests(batch)
                hash_s += time.perf_counter() - t0
                if not handoff.put(1, batch):
                    return
        except BaseException as exc:
            handoff.fail(exc)
        finally:
            stats.record_stage("hash", hash_s)
            handoff.put(1, _PIPE_END)

    workers = [
        threading.Thread(target=scan_worker, name="chunk-scan", daemon=True),
        threading.Thread(target=hash_worker, name="chunk-hash", daemon=True),
    ]
    for t in workers:
        t.start()
    try:
        while True:
            batch = handoff.get(1)
            if batch is _PIPE_END:
                break
            yield batch
    finally:
        # Stop *before* joining: after a stage failure the scan worker
        # may be blocked inside the caller's buffer iterator (e.g. a
        # live socket), which nothing can interrupt — the bounded join
        # keeps the consumer from hanging on it (workers are daemons).
        handoff.stop.set()
        for t in workers:
            t.join(timeout=5.0)
    if handoff.errors:
        raise PipelineError(
            f"chunk pipeline stage failed: {handoff.errors[0]!r}"
        ) from handoff.errors[0]


class Chunker:
    """User-facing content-based chunker.

    Combines an engine (marker scan) with boundary selection and hashing.
    Accepts any buffer-protocol input and never copies payload bytes:
    the returned chunks are lazy views whose digests are computed for the
    whole batch in one pass.

    >>> chunker = Chunker()
    >>> chunks = chunker.chunk(data)
    >>> b"".join(c.data for c in chunks) == data
    True
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.config = config or ChunkerConfig()
        if engine is None:
            if (
                self.config.polynomial is None
                and self.config.window_size == DEFAULT_WINDOW_SIZE
            ):
                engine = default_engine()
            else:
                fp = RabinFingerprinter(
                    self.config.polynomial, self.config.window_size
                )
                engine = VectorEngine(fp) if self.config.window_size % 2 == 0 else SerialEngine(fp)
        if engine.window_size != self.config.window_size:
            raise ValueError(
                f"engine window size {engine.window_size} != "
                f"config window size {self.config.window_size}"
            )
        self.engine = engine

    # -- boundary-level API -------------------------------------------------

    def candidate_cuts(self, data) -> list[int]:
        """Marker positions only, before min/max selection (GPU-kernel view)."""
        return self.engine.candidate_cuts(data, self.config.mask, self.config.marker)

    def cuts(self, data) -> list[int]:
        """Selected exclusive cut offsets for ``data`` (ends with ``len(data)``)."""
        return select_cuts_fast(
            self.engine.candidate_cut_array(data, self.config.mask, self.config.marker),
            len(as_byte_view(data)),
            self.config.min_size,
            self.config.max_size,
        )

    # -- chunk-level API ----------------------------------------------------

    def chunk(self, data, base_offset: int = 0) -> list[Chunk]:
        """Chunk one in-memory buffer into hashed :class:`Chunk` records.

        Zero-copy: each chunk is a lazy view into ``data``; all digests
        for the scan are computed in one batched pass.  The views alias
        ``data`` even when it is writable (unlike the streaming path,
        which snapshots writable buffers because producers refill them
        mid-iteration): digests identify the content as of this call, so
        a caller that mutates ``data`` afterwards must ``materialize()``
        the chunks first or their ``.data`` will no longer match
        ``.digest`` (the backup agent rejects such payloads).
        """
        mv = as_byte_view(data)
        return chunks_from_cuts(mv, self.cuts(mv), base_offset)

    def chunk_stream(
        self, buffers: Iterable, carry_limit: int = 1 << 26
    ) -> Iterator[Chunk]:
        """Chunk a stream of buffers with correct cross-buffer boundaries.

        Produces exactly the chunks that chunking the concatenated stream
        would.  See :func:`stream_chunks` for the zero-copy carry ring.
        """
        return stream_chunks(
            self.candidate_cuts, self.config, buffers, carry_limit=carry_limit
        )

    def chunk_pipelined(
        self,
        buffers: Iterable,
        carry_limit: int = 1 << 26,
        batch_chunks: int | None = None,
        queue_depth: int = 4,
    ) -> Iterator[Chunk]:
        """Chunk a stream with scan/hash stage overlap; digests prefilled.

        Same chunks in the same order as :meth:`chunk_stream` + batched
        ``ensure_digests``, but the marker scan of buffer ``i + 1``
        overlaps the hashing of buffer ``i`` (and the caller's work
        overlaps both).  See :func:`pipeline_chunks`.
        """
        for batch in pipeline_chunks(
            self.candidate_cuts,
            self.config,
            buffers,
            carry_limit=carry_limit,
            batch_chunks=batch_chunks,
            queue_depth=queue_depth,
        ):
            yield from batch
