"""Content-based chunking: turn candidate cuts into chunks (§2.1, §3.1).

The paper's pipeline separates *finding marker windows* (the expensive
scan, offloaded to the GPU) from *selecting chunk boundaries* (applying
minimum / maximum chunk sizes, done by the Store thread).  This module
implements the second step plus the user-facing :class:`Chunker` API.

Defaults follow §3.1: a 48-byte window whose fingerprint's low-order
13 bits are compared against a fixed marker, giving an expected chunk
size of ``2**13`` bytes, with ``min = 0`` and ``max = ∞`` unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.core.engines import Engine, SerialEngine, VectorEngine, default_engine
from repro.core.hashing import chunk_hash
from repro.core.rabin import DEFAULT_WINDOW_SIZE, RabinFingerprinter

__all__ = ["ChunkerConfig", "Chunk", "Chunker", "select_cuts", "chunk_sizes"]

#: Default number of low-order fingerprint bits compared against the marker
#: (§3.1: "the resulting low-order 13 bits").
DEFAULT_MASK_BITS = 13

#: Default marker value (any fixed 13-bit constant works; zero is avoided
#: because long runs of zero bytes would match at every offset).
DEFAULT_MARKER = 0x1A2B & ((1 << DEFAULT_MASK_BITS) - 1)


@dataclass(frozen=True)
class ChunkerConfig:
    """Parameters of a content-based chunker.

    Attributes
    ----------
    window_size:
        Sliding-window width in bytes.
    mask_bits:
        Number of low-order fingerprint bits compared with ``marker``.
        The expected chunk size is ``2**mask_bits`` bytes.
    marker:
        Value the masked fingerprint must equal at a chunk boundary.
    min_size / max_size:
        Minimum and maximum chunk sizes.  ``min_size = 0`` and
        ``max_size = None`` (unbounded) reproduce the paper's default.
    polynomial:
        Irreducible GF(2) polynomial; ``None`` selects the library default.
    """

    window_size: int = DEFAULT_WINDOW_SIZE
    mask_bits: int = DEFAULT_MASK_BITS
    marker: int = DEFAULT_MARKER
    min_size: int = 0
    max_size: int | None = None
    polynomial: int | None = None

    def __post_init__(self) -> None:
        if self.mask_bits < 1 or self.mask_bits > 48:
            raise ValueError(f"mask_bits must be in [1, 48], got {self.mask_bits}")
        if self.marker >> self.mask_bits:
            raise ValueError(
                f"marker {self.marker:#x} does not fit in {self.mask_bits} bits"
            )
        if self.min_size < 0:
            raise ValueError("min_size must be non-negative")
        if self.max_size is not None:
            if self.max_size <= 0:
                raise ValueError("max_size must be positive")
            if self.max_size < self.min_size:
                raise ValueError("max_size must be >= min_size")
            if self.max_size < self.window_size:
                raise ValueError("max_size must be >= window_size")

    @property
    def mask(self) -> int:
        return (1 << self.mask_bits) - 1

    @property
    def expected_chunk_size(self) -> int:
        """Expected chunk size for uniform random data, ignoring min/max."""
        return 1 << self.mask_bits

    def with_limits(self, min_size: int, max_size: int | None) -> "ChunkerConfig":
        """Copy of this config with different min/max limits."""
        return replace(self, min_size=min_size, max_size=max_size)


@dataclass(frozen=True)
class Chunk:
    """One content-defined chunk of a stream.

    ``offset`` is absolute within the stream; ``data`` holds the chunk
    bytes and ``digest`` a collision-resistant hash of them (step 2 of the
    duplicate-identification recipe in §2.1).
    """

    offset: int
    length: int
    data: bytes = field(repr=False)
    digest: bytes = field(repr=False)

    @property
    def end(self) -> int:
        return self.offset + self.length

    @staticmethod
    def from_bytes(offset: int, data: bytes) -> "Chunk":
        return Chunk(offset=offset, length=len(data), data=data, digest=chunk_hash(data))


def select_cuts(
    candidates: Sequence[int],
    length: int,
    min_size: int = 0,
    max_size: int | None = None,
) -> list[int]:
    """Apply min/max chunk-size rules to candidate cuts (Store-thread logic).

    ``candidates`` are sorted exclusive end offsets of marker windows in a
    buffer of ``length`` bytes.  Per §2.1: after a boundary, the next
    ``min_size`` bytes cannot end a chunk; a boundary is forced whenever
    ``max_size`` bytes accumulate without a marker.  The final cut at
    ``length`` closes the trailing partial chunk (which may be shorter
    than ``min_size``).

    Returns the selected cuts, ending with ``length``.  Empty input
    (``length == 0``) yields no cuts.
    """
    if length == 0:
        return []
    cuts: list[int] = []
    prev = 0
    for cut in candidates:
        if cut > length:
            raise ValueError(f"candidate cut {cut} beyond buffer length {length}")
        if max_size is not None:
            while cut - prev > max_size:
                prev += max_size
                cuts.append(prev)
        if cut - prev < min_size or cut == prev:
            continue  # inside the skip region after the previous boundary
        cuts.append(cut)
        prev = cut
    if max_size is not None:
        while length - prev > max_size:
            prev += max_size
            cuts.append(prev)
    if not cuts or cuts[-1] != length:
        cuts.append(length)
    return cuts


def chunk_sizes(cuts: Iterable[int]) -> list[int]:
    """Chunk lengths implied by a sorted cut list (first cut from offset 0)."""
    sizes = []
    prev = 0
    for cut in cuts:
        sizes.append(cut - prev)
        prev = cut
    return sizes


def stream_chunks(
    candidate_fn,
    config: ChunkerConfig,
    buffers: Iterable[bytes],
    carry_limit: int = 1 << 26,
) -> Iterator[Chunk]:
    """Chunk a buffer stream so boundaries match whole-stream chunking.

    Two pieces of state cross buffer boundaries:

    * ``carry`` — bytes after the last emitted cut (the open chunk);
    * ``context`` — the final ``window - 1`` *already emitted* bytes before
      the carry, needed because a marker window may start inside the
      previous chunk and end inside the carry.

    ``candidate_fn(data) -> cuts`` supplies min/max-agnostic marker cuts
    (e.g. ``Chunker.candidate_cuts`` or the SPMD host chunker's); min/max
    selection runs here against the true previous boundary.

    ``carry_limit`` bounds memory when no marker appears for a long
    stretch: it acts as an implicit maximum chunk size (default 64 MiB).
    """
    w = config.window_size
    carry = b""
    context = b""
    offset = 0
    for buf in buffers:
        data = carry + bytes(buf)
        if not data:
            continue
        scan = context + data
        shift = len(context)
        candidates = [c - shift for c in candidate_fn(scan) if c > shift]
        cuts = select_cuts(candidates, len(data), config.min_size, config.max_size)
        # The final cut is usually an artifact of buffer truncation and is
        # held back -- unless it is a real marker (or an exact max-size
        # boundary), in which case whole-stream chunking would cut here too.
        prev_selected = cuts[-2] if len(cuts) > 1 else 0
        final_is_real = (cuts[-1] in set(candidates) and cuts[-1] - prev_selected >= config.min_size) or (
            config.max_size is not None and cuts[-1] - prev_selected == config.max_size
        )
        emit = cuts if final_is_real else cuts[:-1]
        prev = 0
        for cut in emit:
            yield Chunk.from_bytes(offset + prev, data[prev:cut])
            prev = cut
        carry = data[prev:]
        # Bytes preceding the (new) carry start: whatever preceded this
        # buffer plus everything emitted from it.  Keep the last w-1.
        context = (context + data[:prev])[-(w - 1) :]
        offset += prev
        if len(carry) > carry_limit:
            yield Chunk.from_bytes(offset, carry)
            offset += len(carry)
            context = (context + carry)[-(w - 1) :]
            carry = b""
    if carry:
        yield Chunk.from_bytes(offset, carry)


class Chunker:
    """User-facing content-based chunker.

    Combines an engine (marker scan) with boundary selection and hashing.

    >>> chunker = Chunker()
    >>> chunks = chunker.chunk(data)
    >>> b"".join(c.data for c in chunks) == data
    True
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.config = config or ChunkerConfig()
        if engine is None:
            if (
                self.config.polynomial is None
                and self.config.window_size == DEFAULT_WINDOW_SIZE
            ):
                engine = default_engine()
            else:
                fp = RabinFingerprinter(
                    self.config.polynomial, self.config.window_size
                )
                engine = VectorEngine(fp) if self.config.window_size % 2 == 0 else SerialEngine(fp)
        if engine.window_size != self.config.window_size:
            raise ValueError(
                f"engine window size {engine.window_size} != "
                f"config window size {self.config.window_size}"
            )
        self.engine = engine

    # -- boundary-level API -------------------------------------------------

    def candidate_cuts(self, data: bytes) -> list[int]:
        """Marker positions only, before min/max selection (GPU-kernel view)."""
        return self.engine.candidate_cuts(data, self.config.mask, self.config.marker)

    def cuts(self, data: bytes) -> list[int]:
        """Selected exclusive cut offsets for ``data`` (ends with ``len(data)``)."""
        return select_cuts(
            self.candidate_cuts(data),
            len(data),
            self.config.min_size,
            self.config.max_size,
        )

    # -- chunk-level API ----------------------------------------------------

    def chunk(self, data: bytes, base_offset: int = 0) -> list[Chunk]:
        """Chunk one in-memory buffer into hashed :class:`Chunk` records."""
        chunks = []
        prev = 0
        for cut in self.cuts(data):
            chunks.append(Chunk.from_bytes(base_offset + prev, data[prev:cut]))
            prev = cut
        return chunks

    def chunk_stream(
        self, buffers: Iterable[bytes], carry_limit: int = 1 << 26
    ) -> Iterator[Chunk]:
        """Chunk a stream of buffers with correct cross-buffer boundaries.

        Produces exactly the chunks that chunking the concatenated stream
        would.  See :func:`stream_chunks` for the carry/context mechanics.
        """
        return stream_chunks(
            self.candidate_cuts, self.config, buffers, carry_limit=carry_limit
        )
