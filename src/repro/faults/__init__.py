"""Seeded, deterministic fault injection for chaos drills.

The paper's backup site only earns its keep if a backup that starts
finishes correctly when disks tear records, shard nodes die mid-batch,
and WAN connections stall.  This package is the *injection* half of
that story: a :class:`FaultPlan` parsed from a compact spec string
(``REPRO_FAULTS`` env var or ``repro serve --faults``) drives

* :class:`FaultyBackend` — a decorator implementing the full
  ``ChunkBackend`` protocol that injects I/O errors, latency, torn
  writes, bit flips, and a one-shot node death into any real backend;
* :class:`WireFaultInjector` — per-connection frame faults for the
  backup service (connection drops, stalls, garbled payloads).

Every random draw comes from a ``random.Random`` seeded from the
plan's seed plus the component name, so a given spec replays the same
fault sequence run after run — chaos tests are deterministic, and a CI
failure reproduces locally from the spec string alone.

The *survival* half lives elsewhere: the failure detector and degraded
reads in :mod:`repro.store`, and retry/resume in :mod:`repro.service`.
"""

from repro.faults.backend import FaultyBackend
from repro.faults.overload import drive_overload, flood, slowloris
from repro.faults.plan import (
    FAULTS_ENV,
    BackendFaultSpec,
    FaultPlan,
    FaultStats,
    InjectedFault,
    KillSpec,
    OverloadSpec,
    WireFaultSpec,
)
from repro.faults.wire import WireFaultInjector

__all__ = [
    "FAULTS_ENV",
    "BackendFaultSpec",
    "FaultPlan",
    "FaultStats",
    "FaultyBackend",
    "InjectedFault",
    "KillSpec",
    "OverloadSpec",
    "WireFaultInjector",
    "WireFaultSpec",
    "drive_overload",
    "flood",
    "slowloris",
]
