"""FaultyBackend: a chaos decorator over any ``ChunkBackend``.

Wraps a real backend and injects, per the plan's
:class:`~repro.faults.plan.BackendFaultSpec`:

* **I/O errors** — a data-plane call raises :class:`InjectedFault`
  (an ``OSError``) instead of running;
* **latency** — a call sleeps before running;
* **torn writes** — a multi-item ``put_batch`` applies only a prefix
  of the batch, then raises (the classic torn record: some keys
  landed, the caller saw a failure);
* **bit flips** — ``get_batch`` returns one value with a single bit
  flipped (silent corruption; only digest verification catches it);
* **node death** — from the Nth data-plane op onward every call raises
  (a crashed shard: the failure detector must notice from errors
  alone).

Control-plane surface (``keys``/``__len__``/``value_bytes``/``flush``/
``compact``/``clear``/``close``) passes through unfaulted — except on a
dead node, where everything raises, exactly like a crashed process.
The wrapper preserves the inner backend's ``kind`` and ``stats`` so
stats registries and backend-kind assertions see the real store.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from repro.faults.plan import BackendFaultSpec, FaultStats, InjectedFault

__all__ = ["FaultyBackend"]


class FaultyBackend:
    """``ChunkBackend`` decorator injecting a plan's backend faults."""

    def __init__(
        self,
        inner,
        spec: BackendFaultSpec,
        rng,
        stats: FaultStats,
        name: str = "backend",
        kill_at: int | None = None,
    ) -> None:
        self.inner = inner
        self.spec = spec
        self.name = name
        self.fault_stats = stats
        self._rng = rng
        self._kill_at = kill_at
        self._ops = 0
        self._dead = False

    # The protocol's ``kind``/``stats`` must reflect the real store.
    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def stats(self):
        return self.inner.stats

    @property
    def dead(self) -> bool:
        return self._dead

    # -- injection core ------------------------------------------------

    def _data_plane(self, op: str) -> None:
        """One data-plane op: count it, maybe die, delay, or fail."""
        if self._dead:
            raise InjectedFault(f"{self.name}: node is dead ({op})")
        self._ops += 1
        if self._kill_at is not None and self._ops >= self._kill_at:
            self._dead = True
            self.fault_stats.add("kills")
            raise InjectedFault(
                f"{self.name}: injected node death at op {self._ops} ({op})"
            )
        spec = self.spec
        if spec.latency and self._rng.random() < spec.latency:
            self.fault_stats.add("latencies")
            time.sleep(spec.latency_s)
        if spec.io_error and self._rng.random() < spec.io_error:
            self.fault_stats.add("io_errors")
            raise InjectedFault(f"{self.name}: injected I/O error ({op})")

    def _require_alive(self, op: str) -> None:
        if self._dead:
            raise InjectedFault(f"{self.name}: node is dead ({op})")

    # -- data plane ----------------------------------------------------

    def contains_batch(self, keys: Sequence[bytes]) -> list[bool]:
        self._data_plane("contains_batch")
        return self.inner.contains_batch(keys)

    def __contains__(self, key: bytes) -> bool:
        return self.contains_batch([key])[0]

    def get_batch(self, keys: Sequence[bytes]) -> list[bytes | None]:
        self._data_plane("get_batch")
        values = self.inner.get_batch(keys)
        spec = self.spec
        if spec.bit_flip and self._rng.random() < spec.bit_flip:
            present = [i for i, v in enumerate(values) if v]
            if present:
                i = present[self._rng.randrange(len(present))]
                value = bytearray(values[i])
                bit = self._rng.randrange(len(value) * 8)
                value[bit // 8] ^= 1 << (bit % 8)
                values[i] = bytes(value)
                self.fault_stats.add("bit_flips_injected")
        return values

    def put_batch(
        self, items: Sequence[tuple[bytes, bytes]], *, known_absent: bool = False
    ) -> list[bool]:
        self._data_plane("put_batch")
        spec = self.spec
        if (
            spec.torn_write
            and len(items) > 1
            and self._rng.random() < spec.torn_write
        ):
            keep = self._rng.randrange(1, len(items))
            self.inner.put_batch(items[:keep], known_absent=known_absent)
            self.fault_stats.add("torn_writes")
            raise InjectedFault(
                f"{self.name}: injected torn write "
                f"({keep}/{len(items)} records applied)"
            )
        return self.inner.put_batch(items, known_absent=known_absent)

    def delete_batch(self, keys: Sequence[bytes]) -> list[int]:
        self._data_plane("delete_batch")
        return self.inner.delete_batch(keys)

    # -- control plane -------------------------------------------------

    def keys(self) -> Iterator[bytes]:
        self._require_alive("keys")
        return self.inner.keys()

    def __len__(self) -> int:
        self._require_alive("__len__")
        return len(self.inner)

    @property
    def value_bytes(self) -> int:
        self._require_alive("value_bytes")
        return self.inner.value_bytes

    def flush(self) -> None:
        self._require_alive("flush")
        self.inner.flush()

    def compact(self) -> int:
        self._require_alive("compact")
        return self.inner.compact()

    def clear(self) -> None:
        # Clearing a dead node's wrapper is allowed: StoreNode.fail()
        # drops shard contents as part of declaring the crash.
        self.inner.clear()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self._dead else f"{self._ops} ops"
        return f"FaultyBackend({self.name!r}, {state}, over {self.inner!r})"
