"""Fault-plan spec: grammar, seeded RNG derivation, shared counters.

A plan is a comma-separated list of ``key=value`` clauses::

    seed=42,backend.io_error=0.01,backend.latency=0.05:0.002,
    backend.torn_write=0.01,backend.bit_flip=0.002,
    wire.drop=0.02,wire.stall=0.01:0.05,wire.garble=0.01,
    node.kill=node-1:200

* ``seed`` — integer master seed (default 0).  Every component derives
  its own ``random.Random`` from ``(seed, component name)``, so fault
  sequences are independent per node/connection yet fully reproducible.
* ``backend.io_error`` — probability that a data-plane backend op
  raises :class:`InjectedFault` (an ``OSError``).
* ``backend.latency`` — ``p[:seconds]``: with probability ``p`` the op
  sleeps ``seconds`` (default 1 ms) before running.
* ``backend.torn_write`` — probability that a multi-item ``put_batch``
  applies only a prefix and then raises (a torn record).
* ``backend.bit_flip`` — probability that a ``get_batch`` returns one
  value with a single bit flipped (silent corruption).
* ``wire.drop`` — probability that the service kills the connection
  after reading a frame, before applying it.
* ``wire.stall`` — ``p[:seconds]``: with probability ``p`` the service
  stalls that long before processing a frame (default 50 ms).
* ``wire.garble`` — probability that a frame's payload has one byte
  flipped before dispatch.
* ``node.kill`` — ``<node_id>:<op>``: that node's backend dies
  permanently at its Nth data-plane operation (an injected crash; the
  failure detector must notice without an explicit ``fail_node()``).
  Repeatable — one clause per node lets a drill kill several nodes at
  staggered points (e.g. two deaths against an ``ec 4+2`` placement).
* ``wire.flood`` — ``N[:seconds]``: the overload driver opens ``N``
  hostile connections that spray garbage at the service for that long
  (default 2 s) — admission control and the pre-auth deadline must
  absorb them.
* ``client.slowloris`` — ``N[:seconds]``: ``N`` connections that dial,
  trickle at most the magic, and then hold the socket open silently —
  the handshake timeout must evict them before they pin session slots.

The flood/slowloris clauses describe *client-side* load the drill
driver (:mod:`repro.faults.overload`) generates; the service itself
never reads them.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field, fields

__all__ = [
    "FAULTS_ENV",
    "BackendFaultSpec",
    "FaultPlan",
    "FaultStats",
    "InjectedFault",
    "KillSpec",
    "OverloadSpec",
    "WireFaultSpec",
]

#: Environment variable holding the active fault-plan spec.
FAULTS_ENV = "REPRO_FAULTS"

_DEFAULT_LATENCY_S = 0.001
_DEFAULT_STALL_S = 0.05
_DEFAULT_FLOOD_S = 2.0
_DEFAULT_SLOWLORIS_S = 2.0


class InjectedFault(OSError):
    """An injected fault, distinguishable from a real I/O error.

    Subclasses ``OSError`` so every existing degraded-path handler
    (``except OSError``) treats injected faults exactly like real ones —
    the healing machinery cannot special-case chaos.
    """


@dataclass(frozen=True)
class BackendFaultSpec:
    """Per-operation probabilities for backend data-plane faults."""

    io_error: float = 0.0
    latency: float = 0.0
    latency_s: float = _DEFAULT_LATENCY_S
    torn_write: float = 0.0
    bit_flip: float = 0.0

    @property
    def active(self) -> bool:
        return bool(self.io_error or self.latency or self.torn_write or self.bit_flip)


@dataclass(frozen=True)
class WireFaultSpec:
    """Per-frame probabilities for service wire faults."""

    drop: float = 0.0
    stall: float = 0.0
    stall_s: float = _DEFAULT_STALL_S
    garble: float = 0.0

    @property
    def active(self) -> bool:
        return bool(self.drop or self.stall or self.garble)


@dataclass(frozen=True)
class OverloadSpec:
    """Client-side overload the drill driver generates against the
    service: garbage-spraying flood connections and silent slowloris
    holds (see :mod:`repro.faults.overload`)."""

    flood_conns: int = 0
    flood_s: float = _DEFAULT_FLOOD_S
    slowloris_conns: int = 0
    slowloris_s: float = _DEFAULT_SLOWLORIS_S

    @property
    def active(self) -> bool:
        return bool(self.flood_conns or self.slowloris_conns)


@dataclass(frozen=True)
class KillSpec:
    """A scheduled one-shot node death: ``node_id`` dies at op ``at_op``."""

    node_id: str
    at_op: int


class FaultStats:
    """Shared, lock-guarded counters for every fault the plan injected."""

    _FIELDS = (
        "io_errors",
        "latencies",
        "torn_writes",
        # Injected vs detected: every flip the plan put on the wire, and
        # how many of those digest verification (read path or scrub)
        # actually caught.  A healthy drill drives the gap toward zero.
        "bit_flips_injected",
        "bit_flips_detected",
        "kills",
        "wire_drops",
        "wire_stalls",
        "wire_garbles",
        # Overload driver: hostile connections actually opened.
        "flood_conns",
        "slowloris_conns",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def add(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    @property
    def total(self) -> int:
        with self._lock:
            return sum(getattr(self, name) for name in self._FIELDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"FaultStats({inner})"


def _parse_prob(key: str, raw: str) -> float:
    try:
        p = float(raw)
    except ValueError:
        raise ValueError(f"fault clause {key}={raw!r}: not a probability") from None
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"fault clause {key}={raw!r}: probability outside [0, 1]")
    return p


def _parse_prob_seconds(
    key: str, raw: str, default_s: float
) -> tuple[float, float]:
    """Parse ``p`` or ``p:seconds``."""
    prob_raw, sep, sec_raw = raw.partition(":")
    p = _parse_prob(key, prob_raw)
    if not sep:
        return p, default_s
    try:
        seconds = float(sec_raw)
    except ValueError:
        raise ValueError(f"fault clause {key}={raw!r}: bad seconds") from None
    if seconds < 0:
        raise ValueError(f"fault clause {key}={raw!r}: negative seconds")
    return p, seconds


def _parse_count_seconds(
    key: str, raw: str, default_s: float
) -> tuple[int, float]:
    """Parse ``N`` or ``N:seconds`` (N >= 1)."""
    count_raw, sep, sec_raw = raw.partition(":")
    try:
        count = int(count_raw)
    except ValueError:
        raise ValueError(f"fault clause {key}={raw!r}: not a count") from None
    if count < 1:
        raise ValueError(f"fault clause {key}={raw!r}: count must be >= 1")
    if not sep:
        return count, default_s
    try:
        seconds = float(sec_raw)
    except ValueError:
        raise ValueError(f"fault clause {key}={raw!r}: bad seconds") from None
    if seconds <= 0:
        raise ValueError(f"fault clause {key}={raw!r}: seconds must be positive")
    return count, seconds


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded chaos plan shared by every injection point.

    The plan itself is immutable; the one mutable member is ``stats``,
    the shared injection counters surfaced in ``/metrics``.
    """

    seed: int = 0
    backend: BackendFaultSpec = field(default_factory=BackendFaultSpec)
    wire: WireFaultSpec = field(default_factory=WireFaultSpec)
    overload: OverloadSpec = field(default_factory=OverloadSpec)
    kills: tuple[KillSpec, ...] = ()
    spec: str = ""
    stats: FaultStats = field(default_factory=FaultStats, compare=False)

    @property
    def kill(self) -> KillSpec | None:
        """The first scheduled kill (legacy single-kill accessor)."""
        return self.kills[0] if self.kills else None

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string; raises ``ValueError`` on unknown clauses."""
        seed = 0
        backend: dict[str, float] = {}
        wire: dict[str, float] = {}
        overload: dict[str, int | float] = {}
        kills: list[KillSpec] = []
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, raw = clause.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise ValueError(f"fault clause {clause!r}: expected key=value")
            if key == "seed":
                try:
                    seed = int(raw)
                except ValueError:
                    raise ValueError(f"fault clause {clause!r}: bad seed") from None
            elif key in ("backend.io_error", "backend.torn_write", "backend.bit_flip"):
                backend[key.split(".", 1)[1]] = _parse_prob(key, raw)
            elif key == "backend.latency":
                p, s = _parse_prob_seconds(key, raw, _DEFAULT_LATENCY_S)
                backend["latency"] = p
                backend["latency_s"] = s
            elif key == "wire.flood":
                # Matched before the probability-valued wire.* clauses:
                # flood carries a connection count, not a probability.
                n, s = _parse_count_seconds(key, raw, _DEFAULT_FLOOD_S)
                overload["flood_conns"] = n
                overload["flood_s"] = s
            elif key == "client.slowloris":
                n, s = _parse_count_seconds(key, raw, _DEFAULT_SLOWLORIS_S)
                overload["slowloris_conns"] = n
                overload["slowloris_s"] = s
            elif key in ("wire.drop", "wire.garble"):
                wire[key.split(".", 1)[1]] = _parse_prob(key, raw)
            elif key == "wire.stall":
                p, s = _parse_prob_seconds(key, raw, _DEFAULT_STALL_S)
                wire["stall"] = p
                wire["stall_s"] = s
            elif key == "node.kill":
                node_id, sep2, at_raw = raw.rpartition(":")
                if not sep2:
                    raise ValueError(
                        f"fault clause {clause!r}: expected node.kill=<node_id>:<op>"
                    )
                try:
                    at_op = int(at_raw)
                except ValueError:
                    raise ValueError(f"fault clause {clause!r}: bad op count") from None
                if at_op < 1:
                    raise ValueError(f"fault clause {clause!r}: op count must be >= 1")
                if any(k.node_id == node_id for k in kills):
                    raise ValueError(
                        f"fault clause {clause!r}: duplicate kill for {node_id!r}"
                    )
                kills.append(KillSpec(node_id, at_op))
            else:
                known = sorted(
                    ["seed", "node.kill", "wire.flood", "client.slowloris"]
                    + [f"backend.{f.name}" for f in fields(BackendFaultSpec) if f.name != "latency_s"]
                    + [f"wire.{f.name}" for f in fields(WireFaultSpec) if f.name != "stall_s"]
                )
                raise ValueError(
                    f"unknown fault clause {key!r} (known: {', '.join(known)})"
                )
        return cls(
            seed=seed,
            backend=BackendFaultSpec(**backend),
            wire=WireFaultSpec(**wire),
            overload=OverloadSpec(**overload),
            kills=tuple(kills),
            spec=spec,
        )

    @classmethod
    def from_env(cls, environ: "os._Environ | dict | None" = None) -> "FaultPlan | None":
        """The plan from ``REPRO_FAULTS``, or None when unset/empty."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULTS_ENV, "").strip()
        return cls.parse(spec) if spec else None

    # -- injection points ----------------------------------------------

    def rng(self, component: str) -> random.Random:
        """A deterministic per-component stream: same plan + same
        component name -> same draw sequence, every run."""
        return random.Random(f"{self.seed}/{component}")

    def wrap_backend(self, backend, name: str):
        """Decorate ``backend`` with this plan's backend faults.

        Returns the backend unchanged when the plan injects nothing at
        this name — a plan with only wire faults must not slow or wrap
        the storage path.
        """
        from repro.faults.backend import FaultyBackend

        kill_at = next(
            (ks.at_op for ks in self.kills if ks.node_id == name), None
        )
        if not self.backend.active and kill_at is None:
            return backend
        return FaultyBackend(
            backend,
            self.backend,
            rng=self.rng(f"backend/{name}"),
            stats=self.stats,
            name=name,
            kill_at=kill_at,
        )

    def wire_injector(self, connection: str):
        """A per-connection frame-fault injector, or None when the plan
        has no wire faults."""
        from repro.faults.wire import WireFaultInjector

        if not self.wire.active:
            return None
        return WireFaultInjector(
            self.wire, rng=self.rng(f"wire/{connection}"), stats=self.stats
        )

    def describe(self) -> str:
        return self.spec or "<empty plan>"
