"""Client-side overload drivers: connection floods and slowloris.

The backend/wire injectors corrupt traffic the service *accepted*; this
module is the other half of the chaos story — hostile load at the front
door, driven from the client side so the service's admission control,
pre-auth deadline, and shedding paths are exercised exactly as a real
abusive client would hit them:

* :func:`flood` — ``wire.flood=N[:seconds]``: N connections that send
  the magic and then spray seeded garbage frames as fast as the socket
  accepts them.  The service must answer each with one typed error (or
  drop it at the pre-auth deadline) without wedging real sessions.
* :func:`slowloris` — ``client.slowloris=N[:seconds]``: N connections
  that dial, trickle at most a magic prefix, and then hold the socket
  silently.  The handshake timeout must evict them before they pin
  session slots.

Both are deterministic (seeded per-connection RNG from the plan) and
report through the plan's shared :class:`~repro.faults.plan.FaultStats`
(``flood_conns`` / ``slowloris_conns``).  :func:`drive_overload` runs
whatever the plan's :class:`~repro.faults.plan.OverloadSpec` asks for.
"""

from __future__ import annotations

import asyncio
import random

from repro.faults.plan import FaultPlan, FaultStats, OverloadSpec

__all__ = ["drive_overload", "flood", "slowloris"]

#: Magic the service expects; replicated here so the drivers stay
#: usable against any address without importing the service package.
_MAGIC = b"SHRD1"


async def _flood_one(
    host: str, port: int, duration_s: float, rng: random.Random
) -> None:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        return  # service gone or listen backlog full: nothing to spray
    try:
        writer.write(_MAGIC)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration_s
        while loop.time() < deadline:
            writer.write(rng.randbytes(256))
            try:
                await asyncio.wait_for(
                    writer.drain(), max(0.01, deadline - loop.time())
                )
            except (OSError, asyncio.TimeoutError):
                return  # server answered with an error + close — good
            await asyncio.sleep(0)
    except OSError:
        pass
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def flood(
    host: str,
    port: int,
    spec: OverloadSpec,
    *,
    seed: int = 0,
    stats: FaultStats | None = None,
) -> int:
    """Open ``spec.flood_conns`` garbage-spraying connections; returns
    how many actually dialed."""
    if not spec.flood_conns:
        return 0
    tasks = [
        asyncio.create_task(
            _flood_one(
                host,
                port,
                spec.flood_s,
                random.Random(f"{seed}/flood/{i}"),
            )
        )
        for i in range(spec.flood_conns)
    ]
    await asyncio.gather(*tasks)
    if stats is not None:
        stats.add("flood_conns", spec.flood_conns)
    return spec.flood_conns


async def _slowloris_one(
    host: str, port: int, duration_s: float, rng: random.Random
) -> None:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        return
    try:
        # Trickle a strict prefix of the magic (possibly nothing), then
        # go silent: never enough for the server to classify us.
        prefix = _MAGIC[: rng.randrange(len(_MAGIC))]
        if prefix:
            writer.write(prefix)
            await writer.drain()
        # Hold until the duration elapses or the server evicts us —
        # read() returning EOF is the eviction landing.
        try:
            await asyncio.wait_for(reader.read(64), duration_s)
        except asyncio.TimeoutError:
            pass
    except OSError:
        pass
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def slowloris(
    host: str,
    port: int,
    spec: OverloadSpec,
    *,
    seed: int = 0,
    stats: FaultStats | None = None,
) -> int:
    """Open ``spec.slowloris_conns`` silent holds; returns how many."""
    if not spec.slowloris_conns:
        return 0
    tasks = [
        asyncio.create_task(
            _slowloris_one(
                host,
                port,
                spec.slowloris_s,
                random.Random(f"{seed}/slowloris/{i}"),
            )
        )
        for i in range(spec.slowloris_conns)
    ]
    await asyncio.gather(*tasks)
    if stats is not None:
        stats.add("slowloris_conns", spec.slowloris_conns)
    return spec.slowloris_conns


async def drive_overload(host: str, port: int, plan: FaultPlan) -> dict:
    """Run the plan's flood + slowloris concurrently; returns counts."""
    spec = plan.overload
    flooded, held = await asyncio.gather(
        flood(host, port, spec, seed=plan.seed, stats=plan.stats),
        slowloris(host, port, spec, seed=plan.seed, stats=plan.stats),
    )
    return {"flood_conns": flooded, "slowloris_conns": held}
