"""Per-connection wire-fault injection for the backup service.

The service's session read loop consults one injector per connection
*after* framing a complete message and *before* dispatching it, so an
injected fault is always a whole-frame event:

* **drop** — the server aborts the connection; the frame is discarded
  before any state changes (the client sees a reset mid-backup and must
  reconnect + resume);
* **stall** — the server sleeps before processing (exercises client
  per-op timeouts and the server's own stall eviction);
* **garble** — one payload byte is flipped before dispatch (framing
  stays intact, so the handler sees a syntactically valid but corrupt
  message — digest verification must catch it).

At most one action fires per frame, drawn in drop > stall > garble
order from the connection's seeded RNG.
"""

from __future__ import annotations

from repro.faults.plan import FaultStats, WireFaultSpec

__all__ = ["WireFaultInjector"]

#: Frame actions returned by :meth:`WireFaultInjector.frame_action`.
DROP = "drop"
STALL = "stall"
GARBLE = "garble"


class WireFaultInjector:
    """Seeded per-connection frame-fault decisions."""

    def __init__(self, spec: WireFaultSpec, rng, stats: FaultStats) -> None:
        self.spec = spec
        self._rng = rng
        self.fault_stats = stats

    def frame_action(self) -> tuple | None:
        """The fault (if any) to apply to the next inbound frame.

        Returns ``None``, ``("drop",)``, ``("stall", seconds)`` or
        ``("garble",)``.
        """
        spec = self.spec
        if spec.drop and self._rng.random() < spec.drop:
            self.fault_stats.add("wire_drops")
            return (DROP,)
        if spec.stall and self._rng.random() < spec.stall:
            self.fault_stats.add("wire_stalls")
            return (STALL, spec.stall_s)
        if spec.garble and self._rng.random() < spec.garble:
            self.fault_stats.add("wire_garbles")
            return (GARBLE,)
        return None

    def garble(self, payload: bytes) -> bytes:
        """Flip one bit of a non-empty payload (empty passes through)."""
        if not payload:
            return payload
        corrupt = bytearray(payload)
        bit = self._rng.randrange(len(corrupt) * 8)
        corrupt[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupt)
