"""Systematic Reed–Solomon erasure coding over GF(2^8), pure NumPy.

The cluster's fourth placement scheme stores each chunk as ``k`` data
fragments plus ``m`` parity fragments on ``k + m`` distinct ring nodes
(:class:`~repro.store.schemes.ErasureCodedPlacement`).  This module is
the codec underneath it:

* **Systematic layout** — the ``k`` data fragments are plain slices of
  the chunk (zero-padded to ``k`` equal pieces), so the common
  all-healthy read path is concatenation, never a matrix solve.
* **Cauchy parity** — the ``m`` parity rows come from a Cauchy matrix,
  so the full ``(k+m) x k`` encode matrix has every ``k x k`` submatrix
  invertible: *any* ``k`` of the ``k+m`` fragments reconstruct the
  chunk (the MDS property), and any lost fragment can be rebuilt from
  any ``k`` survivors without materializing the others.
* **Pure NumPy arithmetic** — GF(2^8) multiplication is one gather from
  a precomputed 256x256 product table (``GF_MUL[c][vec]``), so encode
  and decode cost ``k*m`` / ``k*k`` vectorized passes over fragment-
  sized arrays; no per-byte Python.

Fragments travel framed (:func:`pack_fragment` / :func:`unpack_fragment`):
a fixed header carries the fragment index, the ``(k, m)`` geometry, the
original chunk length (padding is trimmed on decode), and a
collision-resistant digest of the fragment payload.  ``unpack_fragment``
re-digests on every read, so a silently corrupted fragment — bit rot, or
an injected ``backend.bit_flip`` — raises
:class:`CorruptFragmentError` instead of feeding garbage into a decode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "CorruptFragmentError",
    "FragmentFormatError",
    "FragmentRecord",
    "ReedSolomonCodec",
    "codec_for",
    "pack_fragment",
    "unpack_fragment",
    "FRAGMENT_HEADER_SIZE",
]

#: The AES / QR-code field polynomial x^8 + x^4 + x^3 + x^2 + 1.
_PRIMITIVE_POLY = 0x11D

# -- field tables (module-level, built once) ---------------------------


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[255:510] = exp[:255]
    # Full product table: one gather replaces log/exp round trips on
    # the hot encode/decode path (64 KiB, shared by every codec).
    mul = np.zeros((256, 256), dtype=np.uint8)
    nz = np.arange(1, 256)
    mul[1:, 1:] = exp[log[nz][:, None] + log[nz][None, :]]
    return exp, log, mul


GF_EXP, GF_LOG, GF_MUL = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Scalar GF(2^8) product."""
    return int(GF_MUL[a, b])


def gf_inv(a: int) -> int:
    """Scalar GF(2^8) multiplicative inverse (``a`` must be nonzero)."""
    if a == 0:
        raise ZeroDivisionError("GF(2^8) zero has no inverse")
    return int(GF_EXP[255 - int(GF_LOG[a])])


def _matrix_invert(rows: Sequence[Sequence[int]]) -> list[list[int]]:
    """Gauss–Jordan inverse of a small GF(2^8) matrix (k x k)."""
    k = len(rows)
    aug = [list(row) + [1 if i == j else 0 for j in range(k)]
           for i, row in enumerate(rows)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:  # cannot happen for an MDS submatrix
            raise ValueError("singular fragment matrix (duplicate indices?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        scale = gf_inv(aug[col][col])
        aug[col] = [gf_mul(scale, v) for v in aug[col]]
        for r in range(k):
            if r == col or not aug[r][col]:
                continue
            factor = aug[r][col]
            aug[r] = [v ^ gf_mul(factor, p) for v, p in zip(aug[r], aug[col])]
    return [row[k:] for row in aug]


# -- fragment framing --------------------------------------------------

#: ``magic | index | k | m | pad | chunk_len | payload_digest``
_HEADER = struct.Struct("!4sBBBxQ32s")
_MAGIC = b"ECF1"
FRAGMENT_HEADER_SIZE = _HEADER.size


class FragmentFormatError(ValueError):
    """Stored bytes are not a parseable fragment record."""


class CorruptFragmentError(ValueError):
    """A fragment payload no longer hashes to its stored digest."""


@dataclass(frozen=True)
class FragmentRecord:
    """One decoded fragment: geometry, position, and verified payload."""

    index: int
    k: int
    m: int
    chunk_len: int
    payload: bytes

    @property
    def is_parity(self) -> bool:
        return self.index >= self.k


def _payload_digest(payload) -> bytes:
    # Lazy import: keeps repro.store import-clean of repro.core (same
    # layering discipline as the cluster's verification hash).
    from repro.core.hashing import chunk_hash

    return chunk_hash(payload)


def pack_fragment(
    index: int, k: int, m: int, chunk_len: int, payload: bytes
) -> bytes:
    """Frame a fragment payload with geometry and its own digest."""
    header = _HEADER.pack(
        _MAGIC, index, k, m, chunk_len, _payload_digest(payload)
    )
    return header + payload


def unpack_fragment(blob: bytes) -> FragmentRecord:
    """Parse and *verify* a fragment record.

    Raises :class:`FragmentFormatError` when the bytes are not a
    fragment record at all, and :class:`CorruptFragmentError` when the
    payload no longer matches its stored digest (bit rot — the record
    must not be trusted).
    """
    if len(blob) < _HEADER.size:
        raise FragmentFormatError(
            f"fragment record truncated ({len(blob)} B < header)"
        )
    magic, index, k, m, chunk_len, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise FragmentFormatError(f"bad fragment magic {magic!r}")
    payload = blob[_HEADER.size:]
    if _payload_digest(payload) != digest:
        raise CorruptFragmentError(
            f"fragment {index} payload fails its digest "
            f"({len(payload)} B)"
        )
    return FragmentRecord(index, k, m, chunk_len, payload)


# -- the codec ---------------------------------------------------------


class ReedSolomonCodec:
    """Systematic ``(k, m)`` Reed–Solomon codec over GF(2^8).

    ``encode`` yields ``k + m`` fragments: the first ``k`` are chunk
    slices (zero-padded to equal length), the last ``m`` are Cauchy
    parity.  ``decode`` reconstructs the chunk from any ``k`` fragments;
    ``rebuild`` re-derives specific lost fragments from any ``k``
    survivors.
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1:
            raise ValueError("k (data fragments) must be >= 1")
        if m < 0:
            raise ValueError("m (parity fragments) must be >= 0")
        if k + m > 255:
            raise ValueError("k + m must be <= 255 over GF(2^8)")
        self.k = k
        self.m = m
        self.n = k + m
        # Encode matrix: identity on top (systematic), Cauchy parity
        # below.  Points x_i = k + i (parity rows) and y_j = j (data
        # columns) are distinct and disjoint, so every square submatrix
        # of the Cauchy block — and therefore every k x k submatrix of
        # the full matrix — is invertible (the MDS property).
        rows = [[1 if j == i else 0 for j in range(k)] for i in range(k)]
        for i in range(m):
            rows.append([gf_inv((k + i) ^ j) for j in range(k)])
        self.matrix: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in rows
        )

    def fragment_size(self, chunk_len: int) -> int:
        """Payload bytes per fragment for a chunk of ``chunk_len``."""
        return -(-chunk_len // self.k) if chunk_len else 0

    # -- encode --------------------------------------------------------

    def encode(self, data) -> list[bytes]:
        """Split ``data`` into ``k`` slices + ``m`` parity fragments."""
        buf = np.frombuffer(data, dtype=np.uint8)
        size = self.fragment_size(buf.size)
        padded = np.zeros(self.k * size, dtype=np.uint8)
        padded[: buf.size] = buf
        grid = padded.reshape(self.k, size)
        fragments = [grid[j].tobytes() for j in range(self.k)]
        for i in range(self.m):
            row = self.matrix[self.k + i]
            acc = np.zeros(size, dtype=np.uint8)
            for j in range(self.k):
                if row[j]:
                    acc ^= GF_MUL[row[j]][grid[j]]
            fragments.append(acc.tobytes())
        return fragments

    # -- decode --------------------------------------------------------

    def _data_grid(self, fragments: Mapping[int, bytes]) -> np.ndarray:
        """Reconstruct the ``k x f`` data grid from any k fragments."""
        # Data fragments pass through; sorting puts them first, so the
        # all-healthy path never pays for a solve.
        indices = sorted(fragments)[: self.k]
        if len(indices) < self.k:
            raise ValueError(
                f"need {self.k} fragments to decode, have {len(fragments)}"
            )
        if any(i < 0 or i >= self.n for i in indices):
            raise ValueError(f"fragment index outside 0..{self.n - 1}")
        size = len(fragments[indices[0]])
        if any(len(fragments[i]) != size for i in indices):
            raise ValueError("fragments differ in length")
        if indices == list(range(self.k)):
            return np.stack(
                [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
            ) if size else np.zeros((self.k, 0), dtype=np.uint8)
        sub = [self.matrix[i] for i in indices]
        inverse = _matrix_invert(sub)
        have = [np.frombuffer(fragments[i], dtype=np.uint8) for i in indices]
        grid = np.zeros((self.k, size), dtype=np.uint8)
        for r in range(self.k):
            row = inverse[r]
            for c in range(self.k):
                if row[c] and size:
                    grid[r] ^= GF_MUL[row[c]][have[c]]
        return grid

    def decode(self, fragments: Mapping[int, bytes], chunk_len: int) -> bytes:
        """The original chunk from any ``k`` of the ``n`` fragments."""
        grid = self._data_grid(fragments)
        return grid.reshape(-1).tobytes()[:chunk_len]

    def rebuild(
        self, fragments: Mapping[int, bytes], targets: Sequence[int]
    ) -> dict[int, bytes]:
        """Re-derive specific fragments from any ``k`` survivors.

        Repair traffic is the point: only the ``targets`` are
        materialized and shipped, never the whole chunk.
        """
        grid = self._data_grid(fragments)
        size = grid.shape[1]
        out: dict[int, bytes] = {}
        for t in targets:
            if t < 0 or t >= self.n:
                raise ValueError(f"fragment index {t} outside 0..{self.n - 1}")
            if t < self.k:
                out[t] = grid[t].tobytes()
                continue
            row = self.matrix[t]
            acc = np.zeros(size, dtype=np.uint8)
            for j in range(self.k):
                if row[j] and size:
                    acc ^= GF_MUL[row[j]][grid[j]]
            out[t] = acc.tobytes()
        return out


_CODEC_CACHE: dict[tuple[int, int], ReedSolomonCodec] = {}


def codec_for(k: int, m: int) -> ReedSolomonCodec:
    """Shared codec instance per ``(k, m)`` (matrices are immutable)."""
    key = (k, m)
    codec = _CODEC_CACHE.get(key)
    if codec is None:
        codec = _CODEC_CACHE[key] = ReedSolomonCodec(k, m)
    return codec
