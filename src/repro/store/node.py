"""One store node: a content-addressed chunk shard with a Bloom front-end.

Each node owns an arc of the consistent-hash ring and keeps its own
digest -> payload map plus a Bloom filter that short-circuits negative
membership probes.  Probe outcomes are classified so the batched lookup
path (:mod:`repro.store.lookup`) can charge the §7.3 timing model
per-outcome: Bloom negatives never touch the index, false positives pay
the full miss cost, hits pay the hit cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.store.bloom import BloomFilter

__all__ = ["NodeDownError", "NodeStats", "ProbeResult", "StoreNode"]


class NodeDownError(RuntimeError):
    """Raised when an operation reaches a failed node."""


class ProbeResult(Enum):
    HIT = "hit"
    BLOOM_NEGATIVE = "bloom_negative"  # filter said absent: no index walk
    FALSE_POSITIVE = "false_positive"  # filter said maybe, index said no


@dataclass
class NodeStats:
    """Per-node operation counters."""

    puts: int = 0
    probes: int = 0
    hits: int = 0
    bloom_negatives: int = 0
    false_positives: int = 0


class StoreNode:
    """In-memory chunk shard; the unit of failure and recovery."""

    def __init__(
        self,
        node_id: str,
        bloom_capacity: int = 1 << 14,
        bloom_fp_rate: float = 0.01,
    ) -> None:
        self.node_id = node_id
        self.alive = True
        self.stats = NodeStats()
        self._bloom_fp_rate = bloom_fp_rate
        self._chunks: dict[bytes, bytes] = {}
        self._bloom = BloomFilter(bloom_capacity, bloom_fp_rate)

    def _require_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(f"node {self.node_id!r} is down")

    # -- chunk operations ----------------------------------------------

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk; returns False if already present on this node."""
        self._require_alive()
        self.stats.puts += 1
        if digest in self._chunks:
            return False
        self._chunks[digest] = bytes(data)
        self._bloom.add(digest)
        if self._bloom.n_added > self._bloom.capacity:
            self._rebuild_bloom(grow=True)
        return True

    def probe(self, digest: bytes) -> ProbeResult:
        """Membership probe, classified for the lookup cost model."""
        self._require_alive()
        self.stats.probes += 1
        if digest not in self._bloom:
            self.stats.bloom_negatives += 1
            return ProbeResult.BLOOM_NEGATIVE
        if digest in self._chunks:
            self.stats.hits += 1
            return ProbeResult.HIT
        self.stats.false_positives += 1
        return ProbeResult.FALSE_POSITIVE

    def has_chunk(self, digest: bytes) -> bool:
        return self.probe(digest) is ProbeResult.HIT

    def holds(self, digest: bytes) -> bool:
        """Raw membership check for the control plane (repair, GC,
        placement): no Bloom probe, no stats — not a data-plane lookup."""
        self._require_alive()
        return digest in self._chunks

    def get_chunk(self, digest: bytes) -> bytes:
        self._require_alive()
        try:
            return self._chunks[digest]
        except KeyError:
            raise KeyError(
                f"chunk {digest.hex()[:16]} missing from node {self.node_id!r}"
            ) from None

    def delete_chunk(self, digest: bytes) -> int:
        """Drop one chunk; returns bytes freed (0 if absent)."""
        self._require_alive()
        data = self._chunks.pop(digest, None)
        return 0 if data is None else len(data)

    def digests(self) -> tuple[bytes, ...]:
        self._require_alive()
        return tuple(self._chunks)

    # -- lifecycle -----------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the node and its shard contents are gone."""
        self.alive = False
        self._chunks.clear()
        self._bloom.clear()

    def sweep(self, live: set[bytes]) -> int:
        """Drop chunks not in ``live``; returns bytes freed.

        Bloom filters cannot delete, so the filter is rebuilt from the
        surviving chunk set — this is why cluster GC batches the sweep.
        """
        self._require_alive()
        freed = 0
        for digest in [d for d in self._chunks if d not in live]:
            freed += len(self._chunks.pop(digest))
        self._rebuild_bloom()
        return freed

    def _rebuild_bloom(self, grow: bool = False) -> None:
        capacity = self._bloom.capacity * (2 if grow else 1)
        self._bloom = BloomFilter(capacity, self._bloom_fp_rate)
        for digest in self._chunks:
            self._bloom.add(digest)

    # -- accounting ----------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def stored_bytes(self) -> int:
        return sum(len(c) for c in self._chunks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return (
            f"StoreNode({self.node_id!r}, {state}, "
            f"{self.chunk_count} chunks, {self.stored_bytes} B)"
        )
