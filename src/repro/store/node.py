"""One store node: a content-addressed chunk shard with a Bloom front-end.

Each node owns an arc of the consistent-hash ring and keeps its shard
contents on a pluggable :class:`~repro.store.backend.ChunkBackend`
(digest -> payload; in-memory by default, the persistent log+LSM
backend when the cluster is opened with ``backend="disk"``), plus a
Bloom filter that short-circuits negative membership probes.  Probe
outcomes are classified so the batched lookup path
(:mod:`repro.store.lookup`) can charge the §7.3 timing model
per-outcome: Bloom negatives never touch the index, false positives pay
the full miss cost, hits pay the hit cost.

The filter is a live front-end, not a fixture: its fill ratio is
tracked in :class:`NodeStats`, and once insertions reach the sized
capacity the filter is rebuilt at twice the size (``bloom_rebuilds``
counts these), so the false-positive rate stays near the configured
target on long-lived shards instead of climbing unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.store.backend import ChunkBackend, make_backend
from repro.store.bloom import BloomFilter
from repro.store.erasure import FragmentRecord, pack_fragment, unpack_fragment

__all__ = ["NodeDownError", "NodeStats", "ProbeResult", "StoreNode"]


def _register_node_stats(stats_obj: "NodeStats") -> None:
    """Enroll this node's counters in the process-wide stats snapshot.

    Lazy import: core.stats sits in a different layer of the import
    graph, same discipline as the backend's stage-timer hook.
    """
    from repro.core import stats

    stats.register_node_stats(stats_obj)


class NodeDownError(RuntimeError):
    """Raised when an operation reaches a failed node."""


class ProbeResult(Enum):
    HIT = "hit"
    BLOOM_NEGATIVE = "bloom_negative"  # filter said absent: no index walk
    FALSE_POSITIVE = "false_positive"  # filter said maybe, index said no


@dataclass
class NodeStats:
    """Per-node operation counters."""

    puts: int = 0
    probes: int = 0
    hits: int = 0
    bloom_negatives: int = 0
    false_positives: int = 0
    #: Filter maintenance: current fill (keys added / sized capacity)
    #: and how many times saturation forced a doubled rebuild.  Routine
    #: rebuilds (post-sweep, reopen seeding) are not counted — this is
    #: the saturation signal, not a rebuild odometer.
    bloom_fill_ratio: float = 0.0
    bloom_rebuilds: int = 0
    #: Health signals: backend operations that raised an I/O error, and
    #: reads this node failed to serve (error or corrupt payload) that a
    #: surviving replica had to cover.
    io_errors: int = 0
    degraded_reads: int = 0


class StoreNode:
    """Chunk shard over a pluggable backend; the unit of failure."""

    def __init__(
        self,
        node_id: str,
        bloom_capacity: int = 1 << 14,
        bloom_fp_rate: float = 0.01,
        backend: ChunkBackend | None = None,
    ) -> None:
        self.node_id = node_id
        self.alive = True
        self.stats = NodeStats()
        _register_node_stats(self.stats)
        self._bloom_fp_rate = bloom_fp_rate
        self._backend = backend if backend is not None else make_backend()
        self._bloom = BloomFilter(bloom_capacity, bloom_fp_rate)
        if len(self._backend) > 0:
            # Reopened shard: seed the filter from the recovered contents
            # (grown to fit — a restart must not inherit a saturated
            # filter).  Not counted as a saturation rebuild.
            capacity = self._bloom.capacity
            while capacity < len(self._backend):
                capacity *= 2
            if capacity != self._bloom.capacity:
                self._bloom = BloomFilter(capacity, bloom_fp_rate)
            for digest in self._backend.keys():
                self._bloom.add(digest)
        self._track_fill()

    def _require_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(f"node {self.node_id!r} is down")

    def _track_fill(self) -> None:
        self.stats.bloom_fill_ratio = self._bloom.n_added / self._bloom.capacity

    # -- chunk operations ----------------------------------------------

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk; returns False if already present on this node."""
        self._require_alive()
        self.stats.puts += 1
        if not self._backend.put_batch([(digest, data)])[0]:
            return False
        self._bloom.add(digest)
        if self._bloom.n_added > self._bloom.capacity:
            self._rebuild_bloom(grow=True)
        self._track_fill()
        return True

    def probe(self, digest: bytes) -> ProbeResult:
        """Membership probe, classified for the lookup cost model."""
        self._require_alive()
        self.stats.probes += 1
        if digest not in self._bloom:
            self.stats.bloom_negatives += 1
            return ProbeResult.BLOOM_NEGATIVE
        if self._backend.contains_batch([digest])[0]:
            self.stats.hits += 1
            return ProbeResult.HIT
        self.stats.false_positives += 1
        return ProbeResult.FALSE_POSITIVE

    def has_chunk(self, digest: bytes) -> bool:
        return self.probe(digest) is ProbeResult.HIT

    def holds(self, digest: bytes) -> bool:
        """Raw membership check for the control plane (repair, GC,
        placement): no Bloom probe, no stats — not a data-plane lookup."""
        self._require_alive()
        return self._backend.contains_batch([digest])[0]

    def get_chunk(self, digest: bytes) -> bytes:
        self._require_alive()
        data = self._backend.get_batch([digest])[0]
        if data is None:
            raise KeyError(
                f"chunk {digest.hex()[:16]} missing from node {self.node_id!r}"
            )
        return data

    # -- erasure-coded fragments ---------------------------------------
    #
    # Under ErasureCodedPlacement a node's value for a chunk digest is
    # one framed fragment record, not the chunk payload.  All membership
    # machinery (Bloom filter, holds, probes, GC sweep, digests) works
    # unchanged because the key is still the chunk digest — one fragment
    # per chunk per node.

    def put_fragment(
        self, digest: bytes, index: int, k: int, m: int,
        chunk_len: int, payload: bytes,
    ) -> bool:
        """Store one framed fragment of ``digest`` (False if present)."""
        return self.put_chunk(
            digest, pack_fragment(index, k, m, chunk_len, payload)
        )

    def get_fragment(self, digest: bytes) -> FragmentRecord:
        """Read, parse, and *verify* this node's fragment of ``digest``.

        Raises ``KeyError`` when absent, ``FragmentFormatError`` when
        the stored bytes are not a fragment record, and
        ``CorruptFragmentError`` when the payload fails its digest —
        every fragment read is an integrity check.
        """
        return unpack_fragment(self.get_chunk(digest))

    def ping(self) -> None:
        """Heartbeat: a minimal backend round trip, no stats charged.

        Raises whatever the backend raises — the failure detector
        classifies the outcome, not the node.
        """
        self._require_alive()
        self._backend.contains_batch([b"\x00heartbeat"])

    def delete_chunk(self, digest: bytes) -> int:
        """Drop one chunk; returns bytes freed (0 if absent)."""
        self._require_alive()
        return self._backend.delete_batch([digest])[0]

    def digests(self) -> tuple[bytes, ...]:
        self._require_alive()
        return tuple(self._backend.keys())

    # -- lifecycle -----------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the node and its shard contents are gone."""
        self.alive = False
        try:
            self._backend.clear()
        except OSError:
            pass  # a crashed backend cannot be cleared; contents are gone regardless
        self._bloom.clear()
        self._track_fill()

    def sweep(self, live: set[bytes]) -> int:
        """Drop chunks not in ``live``; returns bytes freed.

        Bloom filters cannot delete, so the filter is rebuilt from the
        surviving chunk set — this is why cluster GC batches the sweep.
        On a persistent backend the sweep also compacts the chunk log,
        reclaiming the dead records' disk space.
        """
        self._require_alive()
        dead = [d for d in self._backend.keys() if d not in live]
        freed = sum(self._backend.delete_batch(dead))
        self._backend.compact()
        self._rebuild_bloom()
        return freed

    def flush(self) -> None:
        self._require_alive()
        self._backend.flush()

    def close(self) -> None:
        self._backend.close()

    def _rebuild_bloom(self, grow: bool = False) -> None:
        capacity = self._bloom.capacity * (2 if grow else 1)
        self._bloom = BloomFilter(capacity, self._bloom_fp_rate)
        for digest in self._backend.keys():
            self._bloom.add(digest)
        if grow:
            self.stats.bloom_rebuilds += 1
        self._track_fill()

    # -- accounting ----------------------------------------------------

    @property
    def backend(self) -> ChunkBackend:
        return self._backend

    @property
    def bloom_capacity(self) -> int:
        return self._bloom.capacity

    @property
    def chunk_count(self) -> int:
        return len(self._backend)

    @property
    def stored_bytes(self) -> int:
        return self._backend.value_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return (
            f"StoreNode({self.node_id!r}, {state}, "
            f"{self.chunk_count} chunks, {self.stored_bytes} B)"
        )
