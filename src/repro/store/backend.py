"""Pluggable storage backends: one batched key-value protocol.

``DedupIndex._index``, ``ChunkStore._chunks``, and ``StoreNode._chunks``
were three incompatible in-process dicts holding the same key-value
idea.  This module is the seam that unifies them: a batched-first
:class:`ChunkBackend` protocol — the same shape the §7.3 batched lookup
path already charges — with two implementations every state owner
(dedup index, backup-site store, shard node) plugs into unchanged:

* :class:`MemoryBackend` — the extracted dict; behavior- and
  perf-identical default.
* :class:`PersistentBackend` — the paper's backup site as *durable*
  storage (§7): an append-only chunk log of CRC-framed records plus an
  LSM-style digest index (in-memory memtable, sorted on-disk runs with
  per-run Bloom filters — the hash-front-ended lookup structure of
  RVH-style designs — and size-tiered compaction collapsing the run
  set once it exceeds the fanout).  Reopening a directory recovers the
  exact prefix of validly framed records: a torn final record is
  truncated away and reported, never silently decoded.

Durability model: records reach the OS page cache on ``flush``; the
recovery path assumes *prefix* durability (a crash may lose a suffix of
the log, never rewrite its middle), which tail-truncation handles.  Run
files are published by atomic rename; a run that fails validation is
discarded wholesale and the whole log is replayed instead, so index
corruption degrades to a slower open, not wrong answers.  The run
key/offset arrays are held in memory once loaded — the on-disk format,
Bloom front-ends, and merge schedule model the LSM I/O discipline the
same way the GPU layer models device timing.

Backends are not thread-safe; each state owner confines its backend to
the thread that owns it (the pipelined server probes from one stage).
"""

from __future__ import annotations

import bisect
import os
import shutil
import struct
import tempfile
import time
import weakref
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.store.bloom import BloomFilter

if TYPE_CHECKING:  # annotation-only: repro.store stays import-clean of repro.backup
    from repro.backup.store import SnapshotRecipe

__all__ = [
    "BackendStats",
    "ChunkBackend",
    "MemoryBackend",
    "PersistentBackend",
    "RecoveryReport",
    "RecipeStore",
    "BACKEND_KINDS",
    "STORE_BACKEND_ENV",
    "FSYNC_ENV",
    "make_backend",
    "resolve_backend",
]

BACKEND_KINDS = ("memory", "disk")
#: Environment default for every backend resolved without an explicit
#: kind — the CI matrix leg sets ``REPRO_STORE_BACKEND=disk`` to run the
#: whole suite through the persistent path.
STORE_BACKEND_ENV = "REPRO_STORE_BACKEND"
#: Where ephemeral disk backends (disk kind, no directory given) live.
STORE_TMP_ENV = "REPRO_STORE_TMP"
#: Truthy values opt persistent backends into fsync-on-flush durability
#: (crash-safe, not just process-crash-safe) when the constructor does
#: not say either way.
FSYNC_ENV = "REPRO_FSYNC"

_LOG_NAME = "chunks.log"
#: Log record framing: crc32 | op | key_len | value_len, then key+value.
#: The CRC covers everything after itself, so any torn or bit-flipped
#: tail fails closed.
_FRAME = struct.Struct("<IBII")
_OP_PUT = 1
_OP_DEL = 2
_RUN_MAGIC = b"RRUN1\n"
_RUN_HEADER = struct.Struct("<IQQdI")  # n_entries, watermark, capacity, fp_rate, n_added
_RUN_ENTRY = struct.Struct("<HBQI")  # key_len, tombstone, value_offset, value_len


def _record_store(seconds: float) -> None:
    """Feed backend mutation wall-clock to the ``store`` stage timer.

    Lazy import: core.stats sits in a different layer; backends are the
    storage primitive underneath all of them.
    """
    from repro.core import stats

    stats.record_stage("store", seconds)


def _register_stats(stats_obj: "BackendStats") -> None:
    """Enroll this backend's counters in the process-wide snapshot."""
    from repro.core import stats

    stats.register_backend_stats(stats_obj)


@dataclass
class BackendStats:
    """Operation counters shared by every backend implementation.

    The disk-only counters (flushes, compactions, Bloom skips, recovery)
    stay zero on :class:`MemoryBackend`.
    """

    puts: int = 0  # keys newly inserted
    gets: int = 0
    contains: int = 0
    deletes: int = 0  # keys actually removed
    batches: int = 0  # batched calls serviced
    memtable_flushes: int = 0
    fsyncs: int = 0  # device syncs (only with the fsync knob on)
    compactions: int = 0  # run merges
    log_compactions: int = 0  # whole-log rewrites (GC)
    bloom_negatives: int = 0  # run probes skipped by the run's filter
    recovered_records: int = 0
    truncated_bytes: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """What reopening a persistent backend found in the log."""

    valid_bytes: int
    truncated_bytes: int
    replayed_records: int
    replayed_from: int  # log offset covered by the newest run

    @property
    def clean(self) -> bool:
        return self.truncated_bytes == 0


@runtime_checkable
class ChunkBackend(Protocol):
    """Batched-first key-value storage behind every state owner.

    Keys are opaque byte strings (chunk digests, snapshot ids), values
    are byte strings (payloads, encoded offsets, encoded recipes).
    ``put_batch`` is insert-if-absent — content-addressed stores never
    overwrite — and every data-plane entry point takes the whole batch,
    the same shape the §7.3 batched lookup path charges.
    """

    stats: BackendStats

    def contains_batch(self, keys: Sequence[bytes]) -> list[bool]: ...

    def get_batch(self, keys: Sequence[bytes]) -> list[bytes | None]: ...

    def put_batch(
        self, items: Sequence[tuple[bytes, bytes]], *, known_absent: bool = False
    ) -> list[bool]: ...

    def delete_batch(self, keys: Sequence[bytes]) -> list[int]: ...

    def keys(self) -> Iterator[bytes]: ...

    def __len__(self) -> int: ...

    @property
    def value_bytes(self) -> int: ...

    def flush(self) -> None: ...

    def compact(self) -> int: ...

    def clear(self) -> None: ...

    def close(self) -> None: ...


class MemoryBackend:
    """The extracted in-process dict; the behavior-identical default."""

    kind = "memory"

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self._value_bytes = 0
        self.stats = BackendStats()
        _register_stats(self.stats)

    def contains_batch(self, keys: Sequence[bytes]) -> list[bool]:
        self.stats.batches += 1
        self.stats.contains += len(keys)
        data = self._data
        return [k in data for k in keys]

    def __contains__(self, key: bytes) -> bool:
        return self.contains_batch([key])[0]

    def get_batch(self, keys: Sequence[bytes]) -> list[bytes | None]:
        self.stats.batches += 1
        self.stats.gets += len(keys)
        data = self._data
        return [data.get(k) for k in keys]

    def put_batch(
        self, items: Sequence[tuple[bytes, bytes]], *, known_absent: bool = False
    ) -> list[bool]:
        t0 = time.perf_counter()
        self.stats.batches += 1
        data = self._data
        inserted = []
        for key, value in items:  # the dict probe is free; ignore the hint
            if key in data:
                inserted.append(False)
                continue
            value = bytes(value)  # detach from any caller-owned buffer
            data[key] = value
            self._value_bytes += len(value)
            self.stats.puts += 1
            inserted.append(True)
        _record_store(time.perf_counter() - t0)
        return inserted

    def delete_batch(self, keys: Sequence[bytes]) -> list[int]:
        self.stats.batches += 1
        freed = []
        for key in keys:
            value = self._data.pop(key, None)
            if value is None:
                freed.append(0)
            else:
                self._value_bytes -= len(value)
                self.stats.deletes += 1
                freed.append(len(value))
        return freed

    def keys(self) -> Iterator[bytes]:
        return iter(tuple(self._data))

    def __len__(self) -> int:
        return len(self._data)

    @property
    def value_bytes(self) -> int:
        return self._value_bytes

    def flush(self) -> None:
        pass  # nothing buffered; nothing worth metering either

    def compact(self) -> int:
        return 0  # nothing to reclaim: deletes free memory immediately

    def clear(self) -> None:
        self._data.clear()
        self._value_bytes = 0

    def close(self) -> None:
        pass


class _Run:
    """One immutable sorted run of the LSM index, Bloom-fronted."""

    __slots__ = ("path", "seq", "watermark", "keys", "tombs", "offs", "vlens", "bloom")

    def __init__(self, path, seq, watermark, keys, tombs, offs, vlens, bloom):
        self.path = path
        self.seq = seq
        self.watermark = watermark
        self.keys = keys
        self.tombs = tombs
        self.offs = offs
        self.vlens = vlens
        self.bloom = bloom

    def lookup(self, key: bytes):
        """``(offset, vlen) | _TOMBSTONE | None`` (None = not in run)."""
        i = bisect.bisect_left(self.keys, key)
        if i == len(self.keys) or self.keys[i] != key:
            return None
        if self.tombs[i]:
            return _TOMBSTONE
        return self.offs[i], self.vlens[i]


_TOMBSTONE = object()


class PersistentBackend:
    """Append-only CRC-framed chunk log + LSM-style digest index.

    Every mutation appends one framed record to ``chunks.log`` and lands
    in the memtable; once the memtable exceeds ``memtable_limit`` keys
    it is written out as a sorted, Bloom-fronted run file, and once
    ``compact_fanout`` runs accumulate (one size tier — this backend's
    run counts stay within a tier of each other because flushes are
    fixed-size) they merge into a single run, dropping tombstones.
    Reads probe memtable first, then runs newest-to-oldest, each behind
    its own Bloom filter — absent keys usually cost filter probes only.

    Crash recovery: each run records the log offset it covers
    (``watermark``); reopening replays only the log suffix past the
    newest watermark, and a torn or corrupt final record truncates the
    log back to the last valid frame (reported in :attr:`recovery` and
    ``stats.truncated_bytes``).
    """

    kind = "disk"

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        memtable_limit: int = 4096,
        compact_fanout: int = 4,
        bloom_fp_rate: float = 0.01,
        fsync: bool | None = None,
        _ephemeral: bool = False,
    ) -> None:
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be >= 1")
        if compact_fanout < 2:
            raise ValueError("compact_fanout must be >= 2")
        if fsync is None:
            fsync = os.environ.get(FSYNC_ENV, "").strip().lower() in (
                "1",
                "true",
                "yes",
                "on",
            )
        #: When on, ``flush`` syncs the log to the device — full
        #: crash durability instead of the default prefix-durability
        #: (page cache) contract.  Opt-in: it turns every flush into a
        #: device round trip.
        self.fsync = fsync
        self.directory = Path(directory)
        self.memtable_limit = memtable_limit
        self.compact_fanout = compact_fanout
        self.bloom_fp_rate = bloom_fp_rate
        self.stats = BackendStats()
        _register_stats(self.stats)
        self._ephemeral = _ephemeral
        self._closed = False
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log_path = self.directory / _LOG_NAME
        self._log_path.touch(exist_ok=True)
        self._runs: list[_Run] = []
        self._memtable: dict[bytes, tuple[int, int] | None] = {}
        self._live_count = 0
        self._live_bytes = 0
        self._next_seq = 1
        self.recovery = self._open_and_recover()
        self._appender = open(self._log_path, "ab")
        self._reader = open(self._log_path, "rb")
        self._unflushed = False
        # GC-safe cleanup: closes the handles (and removes ephemeral
        # directories) even when the owner never calls close().
        self._finalizer = weakref.finalize(
            self,
            PersistentBackend._cleanup,
            self._appender,
            self._reader,
            self.directory,
            self._ephemeral,
        )

    # -- open / recovery ----------------------------------------------

    def _open_and_recover(self) -> RecoveryReport:
        # A compact() interrupted before publishing leaves its tmp file;
        # it was never the log, so it is dead weight.
        self._log_path.with_suffix(".compact").unlink(missing_ok=True)
        try:
            for path in sorted(self.directory.glob("run-*.run")):
                self._runs.append(self._load_run(path))
        except (ValueError, OSError):
            # Any unreadable run poisons trust in all of them: fall back
            # to replaying the full log (slower open, same answers).
            # Every run *file* goes — the corrupt one must not fail the
            # next open too, and an unloaded stale run left behind would
            # outrank fresh runs once sequence numbers restart.
            self._discard_runs()
        if any(r.watermark > self._log_path.stat().st_size for r in self._runs):
            # A run published after the log's durable tail was lost (we
            # flush, not fsync): its entries point past EOF.  Trust only
            # the log.
            self._discard_runs()
        self._runs.sort(key=lambda r: r.seq)
        if self._runs:
            self._next_seq = self._runs[-1].seq + 1
        start = max((r.watermark for r in self._runs), default=0)
        report = self._replay_log(start)
        self._recount_live()
        self.stats.recovered_records += report.replayed_records
        self.stats.truncated_bytes += report.truncated_bytes
        return report

    def _replay_log(self, start: int) -> RecoveryReport:
        size = self._log_path.stat().st_size
        start = min(start, size)
        records = 0
        with open(self._log_path, "rb") as fh:
            fh.seek(start)
            offset = start
            while True:
                header = fh.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    break
                crc, op, klen, vlen = _FRAME.unpack(header)
                payload = fh.read(klen + vlen)
                if len(payload) < klen + vlen:
                    break
                if zlib.crc32(header[4:] + payload) != crc:
                    break
                key = payload[:klen]
                if op == _OP_PUT:
                    self._memtable[key] = (offset + _FRAME.size + klen, vlen)
                elif op == _OP_DEL:
                    self._memtable[key] = None
                else:
                    break  # unknown op: treat like a torn record
                offset += _FRAME.size + klen + vlen
                records += 1
        truncated = size - offset
        if truncated:
            with open(self._log_path, "r+b") as fh:
                fh.truncate(offset)
        return RecoveryReport(
            valid_bytes=offset,
            truncated_bytes=truncated,
            replayed_records=records,
            replayed_from=start,
        )

    def _discard_runs(self) -> None:
        self._runs = []
        for path in self.directory.glob("run-*.run"):
            path.unlink(missing_ok=True)

    def _recount_live(self) -> None:
        """Rebuild the live key/byte counters from runs + memtable."""
        merged: dict[bytes, int | None] = {}
        for run in self._runs:  # oldest -> newest; newer wins
            for key, tomb, vlen in zip(run.keys, run.tombs, run.vlens):
                merged[key] = None if tomb else vlen
        for key, entry in self._memtable.items():
            merged[key] = None if entry is None else entry[1]
        live = [v for v in merged.values() if v is not None]
        self._live_count = len(live)
        self._live_bytes = sum(live)

    # -- run files -----------------------------------------------------

    def _load_run(self, path: Path) -> _Run:
        raw = path.read_bytes()
        if len(raw) < len(_RUN_MAGIC) + 4 or not raw.startswith(_RUN_MAGIC):
            raise ValueError(f"bad run magic in {path.name}")
        payload, (crc,) = raw[len(_RUN_MAGIC) : -4], struct.unpack("<I", raw[-4:])
        if zlib.crc32(payload) != crc:
            raise ValueError(f"run checksum mismatch in {path.name}")
        n, watermark, capacity, fp_rate, n_added = _RUN_HEADER.unpack_from(payload, 0)
        pos = _RUN_HEADER.size
        (bloom_len,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        bloom = BloomFilter.from_bits(
            int(capacity), fp_rate, payload[pos : pos + bloom_len], n_added
        )
        pos += bloom_len
        keys, tombs, offs, vlens = [], [], [], []
        for _ in range(n):
            klen, tomb, off, vlen = _RUN_ENTRY.unpack_from(payload, pos)
            pos += _RUN_ENTRY.size
            keys.append(payload[pos : pos + klen])
            pos += klen
            tombs.append(bool(tomb))
            offs.append(off)
            vlens.append(vlen)
        seq = int(path.stem.split("-")[1])
        return _Run(path, seq, watermark, keys, tombs, offs, vlens, bloom)

    def _write_run(
        self, entries: list[tuple[bytes, tuple[int, int] | None]], watermark: int
    ) -> _Run:
        """Persist sorted ``(key, entry)`` pairs as the next run file."""
        seq = self._next_seq
        self._next_seq += 1
        bloom = BloomFilter(max(1, len(entries)), self.bloom_fp_rate)
        parts = []
        for key, entry in entries:
            bloom.add(key)
            tomb = entry is None
            off, vlen = (0, 0) if tomb else entry
            parts.append(_RUN_ENTRY.pack(len(key), tomb, off, vlen))
            parts.append(key)
        bits = bytes(bloom._bits)
        payload = b"".join(
            [
                _RUN_HEADER.pack(
                    len(entries), watermark, bloom.capacity,
                    bloom.fp_rate, bloom.n_added,
                ),
                struct.pack("<I", len(bits)),
                bits,
                *parts,
            ]
        )
        path = self.directory / f"run-{seq:08d}.run"
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(_RUN_MAGIC + payload + struct.pack("<I", zlib.crc32(payload)))
        os.replace(tmp, path)  # atomic publish: a torn run never loads
        return _Run(
            path, seq, watermark,
            [k for k, _ in entries],
            [e is None for _, e in entries],
            [0 if e is None else e[0] for _, e in entries],
            [0 if e is None else e[1] for _, e in entries],
            bloom,
        )

    def _flush_memtable(self) -> None:
        if not self._memtable:
            return
        self._appender.flush()
        self._unflushed = False
        watermark = self._appender.tell()
        entries = sorted(self._memtable.items())
        self._runs.append(self._write_run(entries, watermark))
        self._memtable = {}
        self.stats.memtable_flushes += 1
        if len(self._runs) >= self.compact_fanout:
            self._merge_runs()

    def _merge_runs(self) -> None:
        """Size-tiered merge: collapse the accumulated tier of runs.

        The merge output is the only run left, so tombstones — needed
        while older runs might still hold the deleted key — drop out.
        """
        merged: dict[bytes, tuple[int, int] | None] = {}
        for run in self._runs:  # oldest -> newest; newer wins
            for key, tomb, off, vlen in zip(run.keys, run.tombs, run.offs, run.vlens):
                merged[key] = None if tomb else (off, vlen)
        live = sorted((k, e) for k, e in merged.items() if e is not None)
        watermark = max(r.watermark for r in self._runs)
        old = self._runs
        self._runs = [self._write_run(live, watermark)] if live else []
        for run in old:
            run.path.unlink(missing_ok=True)
        self.stats.compactions += 1

    # -- index lookup --------------------------------------------------

    def _lookup(self, key: bytes):
        """``(value_offset, value_len)`` of the live record, or None."""
        entry = self._memtable.get(key, _MISSING)
        if entry is not _MISSING:
            return entry  # may be None (tombstone)
        for run in reversed(self._runs):
            if key not in run.bloom:
                self.stats.bloom_negatives += 1
                continue
            # repro: lint-ok[batched-api] one key walking the LSM runs, not a key batch
            found = run.lookup(key)
            if found is _TOMBSTONE:
                return None
            if found is not None:
                return found
        return None

    def _read_value(self, offset: int, vlen: int) -> bytes:
        if self._unflushed:
            self._appender.flush()
            self._unflushed = False
        self._reader.seek(offset)
        data = self._reader.read(vlen)
        if len(data) != vlen:
            raise ValueError(
                f"short chunk-log read at offset {offset}: wanted {vlen} "
                f"bytes, got {len(data)} — index/log mismatch"
            )
        return data

    # -- batched data plane --------------------------------------------

    def contains_batch(self, keys: Sequence[bytes]) -> list[bool]:
        self._require_open()
        self.stats.batches += 1
        self.stats.contains += len(keys)
        return [self._lookup(k) is not None for k in keys]

    def __contains__(self, key: bytes) -> bool:
        return self.contains_batch([key])[0]

    def get_batch(self, keys: Sequence[bytes]) -> list[bytes | None]:
        self._require_open()
        self.stats.batches += 1
        self.stats.gets += len(keys)
        out: list[bytes | None] = []
        for key in keys:
            entry = self._lookup(key)
            out.append(None if entry is None else self._read_value(*entry))
        return out

    def put_batch(
        self, items: Sequence[tuple[bytes, bytes]], *, known_absent: bool = False
    ) -> list[bool]:
        """Insert-if-absent.  ``known_absent=True`` is the caller's pledge
        that every key was just probed absent (and keys are batch-unique):
        the expensive run probes are skipped, only the memtable is
        checked — the shape ``DedupIndex.lookup_or_insert_batch`` uses so
        a miss is charged one LSM probe, not two."""
        self._require_open()
        t0 = time.perf_counter()
        self.stats.batches += 1
        inserted = []
        for key, value in items:
            existing = (
                self._memtable.get(key) if known_absent else self._lookup(key)
            )
            if existing is not None:
                inserted.append(False)
                continue
            offset = self._append(_OP_PUT, key, value)
            self._memtable[key] = (offset, len(value))
            self._live_count += 1
            self._live_bytes += len(value)
            self.stats.puts += 1
            inserted.append(True)
        if len(self._memtable) >= self.memtable_limit:
            self._flush_memtable()
        _record_store(time.perf_counter() - t0)
        return inserted

    def delete_batch(self, keys: Sequence[bytes]) -> list[int]:
        self._require_open()
        freed = []
        self.stats.batches += 1
        for key in keys:
            entry = self._lookup(key)
            if entry is None:
                freed.append(0)
                continue
            self._append(_OP_DEL, key, b"")
            self._memtable[key] = None
            self._live_count -= 1
            self._live_bytes -= entry[1]
            self.stats.deletes += 1
            freed.append(entry[1])
        if len(self._memtable) >= self.memtable_limit:
            self._flush_memtable()
        return freed

    def _append(self, op: int, key: bytes, value) -> int:
        """Write one framed record; returns the value's log offset."""
        value = bytes(value)
        body = key + value
        crc = zlib.crc32(_FRAME.pack(0, op, len(key), len(value))[4:] + body)
        record_start = self._appender.tell()
        self._appender.write(_FRAME.pack(crc, op, len(key), len(value)))
        self._appender.write(body)
        self._unflushed = True
        return record_start + _FRAME.size + len(key)

    def keys(self) -> Iterator[bytes]:
        self._require_open()
        seen: set[bytes] = set()
        for key, entry in self._memtable.items():
            seen.add(key)
            if entry is not None:
                yield key
        for run in reversed(self._runs):
            for key, tomb in zip(run.keys, run.tombs):
                if key in seen:
                    continue
                seen.add(key)
                if not tomb:
                    yield key

    def __len__(self) -> int:
        return self._live_count

    @property
    def value_bytes(self) -> int:
        return self._live_bytes

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Push buffered log records to the OS (prefix durability).

        With the fsync knob on (constructor arg or ``REPRO_FSYNC``)
        the records are forced to the device as well, making the flush
        a real durability point rather than a page-cache handoff.
        """
        self._require_open()
        t0 = time.perf_counter()
        self._appender.flush()
        if self.fsync:
            os.fsync(self._appender.fileno())
            self.stats.fsyncs += 1
        self._unflushed = False
        _record_store(time.perf_counter() - t0)

    def compact(self) -> int:
        """Rewrite the chunk log with live records only (GC's sweep).

        Returns log bytes reclaimed.  The index collapses to a single
        fresh run covering the rewritten log.
        """
        self._require_open()
        old_size = self._log_end()
        live = sorted(self.keys())
        tmp = self._log_path.with_suffix(".compact")
        entries: list[tuple[bytes, tuple[int, int] | None]] = []
        with open(tmp, "wb") as out:
            for key in live:
                entry = self._lookup(key)
                value = self._read_value(*entry)
                header_less = _FRAME.pack(0, _OP_PUT, len(key), len(value))[4:]
                crc = zlib.crc32(header_less + key + value)
                offset = out.tell() + _FRAME.size + len(key)
                out.write(_FRAME.pack(crc, _OP_PUT, len(key), len(value)))
                out.write(key + value)
                entries.append((key, (offset, len(value))))
        self._appender.close()
        self._reader.close()
        # Drop the old runs BEFORE publishing the rewritten log: their
        # offsets are meaningless against it, and a crash in between
        # must leave either (old log, no runs) or (new log, no runs) —
        # both replay correctly — never stale runs over a new log.
        self._discard_runs()
        os.replace(tmp, self._log_path)
        self._appender = open(self._log_path, "ab")
        self._reader = open(self._log_path, "rb")
        self._replace_finalizer()
        new_size = self._log_end()
        self._runs = [self._write_run(entries, new_size)] if entries else []
        self._memtable = {}
        self._unflushed = False
        self.stats.log_compactions += 1
        return old_size - new_size

    def clear(self) -> None:
        """Drop every record (node crash simulation, tests)."""
        self._require_open()
        self._appender.close()
        self._reader.close()
        open(self._log_path, "wb").close()  # truncate
        self._appender = open(self._log_path, "ab")
        self._reader = open(self._log_path, "rb")
        self._replace_finalizer()
        for run in self._runs:
            run.path.unlink(missing_ok=True)
        self._runs = []
        self._memtable = {}
        self._live_count = 0
        self._live_bytes = 0
        self._unflushed = False

    def close(self) -> None:
        if self._closed:
            return
        if not self._ephemeral:
            self._flush_memtable()  # reopen skips the replay
            self._appender.flush()
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "PersistentBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _log_end(self) -> int:
        self._appender.flush()
        return self._appender.tell()

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError(f"backend at {self.directory} is closed")

    def _replace_finalizer(self) -> None:
        """Re-arm cleanup after the file handles were swapped."""
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self,
            PersistentBackend._cleanup,
            self._appender,
            self._reader,
            self.directory,
            self._ephemeral,
        )

    @staticmethod
    def _cleanup(appender, reader, directory: Path, ephemeral: bool) -> None:
        for fh in (appender, reader):
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        if ephemeral:
            shutil.rmtree(directory, ignore_errors=True)


_MISSING = object()


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def resolve_backend(kind: str | None = None, data_dir=None) -> str:
    """Resolve a backend kind: explicit > implied-by-data_dir > env > memory.

    An explicit ``memory`` with a ``data_dir`` is a contradiction —
    silently accepting it would tell the caller their state is durable
    while persisting nothing — so it is rejected here for every owner.
    """
    if kind is None:
        if data_dir is not None:
            return "disk"
        kind = os.environ.get(STORE_BACKEND_ENV, "").strip() or "memory"
    if kind not in BACKEND_KINDS:
        raise ValueError(
            f"unknown storage backend {kind!r} (expected one of {BACKEND_KINDS})"
        )
    if kind == "memory" and data_dir is not None:
        raise ValueError(
            "backend='memory' cannot persist state to a data_dir; "
            "use backend='disk' (or omit backend)"
        )
    return kind


def make_backend(
    kind: str | None = None, path: str | os.PathLike | None = None, **disk_options
) -> ChunkBackend:
    """Build a backend: ``memory`` or ``disk`` (persistent at ``path``).

    ``kind=None`` follows ``REPRO_STORE_BACKEND`` (default ``memory``),
    or ``disk`` when a ``path`` is given.  A disk backend without a path
    is *ephemeral*: it exercises the full persistent code path in a
    temporary directory (under ``REPRO_STORE_TMP`` if set) that is
    removed on close — or by GC/interpreter exit if never closed, so a
    suite-wide ``REPRO_STORE_BACKEND=disk`` run leaves no stray files.
    """
    kind = resolve_backend(kind, path)
    if kind == "memory":
        return MemoryBackend()
    if path is not None:
        return PersistentBackend(path, **disk_options)
    tmp_root = os.environ.get(STORE_TMP_ENV) or None
    if tmp_root:
        Path(tmp_root).mkdir(parents=True, exist_ok=True)
    directory = tempfile.mkdtemp(prefix="repro-backend-", dir=tmp_root)
    return PersistentBackend(directory, _ephemeral=True, **disk_options)


# ----------------------------------------------------------------------
# recipes on a backend
# ----------------------------------------------------------------------

_RECIPE_HEADER = struct.Struct("<QI")  # total_bytes, n_digests


def encode_recipe(snapshot_id: str, digests: Sequence[bytes], total_bytes: int) -> bytes:
    parts = [_RECIPE_HEADER.pack(total_bytes, len(digests))]
    for digest in digests:
        parts.append(struct.pack("<H", len(digest)))
        parts.append(digest)
    del snapshot_id  # the snapshot id is the key, not part of the value
    return b"".join(parts)


def decode_recipe(snapshot_id: str, blob: bytes) -> tuple[str, tuple[bytes, ...], int]:
    total_bytes, n = _RECIPE_HEADER.unpack_from(blob, 0)
    pos = _RECIPE_HEADER.size
    digests = []
    for _ in range(n):
        (dlen,) = struct.unpack_from("<H", blob, pos)
        pos += 2
        digests.append(blob[pos : pos + dlen])
        pos += dlen
    return snapshot_id, tuple(digests), total_bytes


class RecipeStore:
    """Snapshot recipes on a :class:`ChunkBackend` (id -> encoded recipe).

    Shared by the single-node :class:`~repro.backup.store.ChunkStore`
    and the cluster so both persist recipes through the same seam, with
    the same error surface the dict-backed versions had.
    """

    def __init__(self, backend: ChunkBackend) -> None:
        self._backend = backend

    def put(self, recipe: "SnapshotRecipe") -> None:
        key = recipe.snapshot_id.encode()
        blob = encode_recipe(recipe.snapshot_id, recipe.digests, recipe.total_bytes)
        # put_batch is insert-if-absent: its inserted-flag doubles as
        # the duplicate check, one probe instead of contains + put.
        if not self._backend.put_batch([(key, blob)])[0]:
            raise ValueError(f"snapshot {recipe.snapshot_id!r} already stored")

    def get(self, snapshot_id: str) -> "SnapshotRecipe":
        blob = self._backend.get_batch([snapshot_id.encode()])[0]
        if blob is None:
            raise KeyError(f"no snapshot {snapshot_id!r}")
        from repro.backup.store import SnapshotRecipe

        sid, digests, total = decode_recipe(snapshot_id, blob)
        return SnapshotRecipe(sid, digests, total)

    def delete(self, snapshot_id: str) -> None:
        key = snapshot_id.encode()
        if not self._backend.contains_batch([key])[0]:
            raise KeyError(f"no snapshot {snapshot_id!r}")
        self._backend.delete_batch([key])

    def __contains__(self, snapshot_id: str) -> bool:
        return self._backend.contains_batch([snapshot_id.encode()])[0]

    def __len__(self) -> int:
        return len(self._backend)

    def ids(self) -> list[str]:
        """Sorted snapshot ids without decoding the recipes."""
        return sorted(key.decode() for key in self._backend.keys())

    def __iter__(self) -> Iterator["SnapshotRecipe"]:
        for key in list(self._backend.keys()):
            yield self.get(key.decode())

    def live_digests(self) -> set[bytes]:
        """Every digest referenced by any recipe (GC's mark set)."""
        live: set[bytes] = set()
        for recipe in self:
            live.update(recipe.digests)
        return live

    def flush(self) -> None:
        self._backend.flush()

    def close(self) -> None:
        self._backend.close()
