"""Sharded, replicated, content-addressed chunk-store cluster.

The scale-out generalisation of :class:`repro.backup.store.ChunkStore`:
chunks are partitioned across :class:`~repro.store.node.StoreNode`
shards by a consistent-hash ring, placed according to a pluggable
:class:`~repro.store.schemes.PlacementScheme`, probed through the
batched Bloom-filtered lookup path, and kept durable across node loss
by recipe-driven re-replication.

The cluster exposes the same duck-typed surface as the single-node
``ChunkStore`` (``put_chunk`` / ``has_chunk`` / ``get_chunk`` /
``put_recipe`` / ``restore`` / ``garbage_collect`` / ...), so the
backup-site :class:`~repro.backup.agent.ShredderAgent` runs against
either backend unchanged — that is what makes the single-node and
cluster backup paths byte-identical.

Storage is pluggable per shard (:mod:`repro.store.backend`):
``backend="memory"`` (default) keeps every node in-process;
``backend="disk"`` with a ``data_dir`` gives each node an append-only
chunk log + LSM digest index under ``data_dir/<node_id>`` and persists
recipes under ``data_dir/recipes``, so the cluster can be closed, the
process restarted, and ``ChunkStoreCluster(..., backend="disk",
data_dir=...)`` reopens every shard, recipe, and lookup answer
bit-identical.  Reopen with the same membership you closed with; after
reopening a cluster whose ring changed mid-life (decommission, resize),
run ``repair()``/``rebalance()`` to realign placements.

Failure handling is self-managing: every node operation feeds a
consecutive-error :class:`~repro.store.health.FailureDetector`, so a
node that starts erroring is marked suspect, then declared dead —
dropped from the ring and (by default) immediately re-replicated from
surviving copies — without anyone calling :meth:`fail_node`.  Reads
degrade instead of failing: ``get_chunk`` falls through erroring or
corrupt replicas to any surviving copy (``degraded_reads`` /
``corrupt_reads`` in :class:`ClusterStats`).  Under an active
:class:`~repro.faults.FaultPlan` (the ``REPRO_FAULTS`` env var) every
shard backend is wrapped in a chaos decorator and reads are
digest-verified end to end.

Under :class:`~repro.store.schemes.ErasureCodedPlacement` the unit of
storage is a Reed–Solomon *fragment* (``k`` data slices + ``m`` parity,
:mod:`repro.store.erasure`), one per placement node, keyed by the chunk
digest.  Reads gather whichever ``k`` verified fragments are cheapest
(healthy data fragments first; parity decodes cover up to ``m`` dead
nodes or corrupt fragments), :meth:`repair` rebuilds only the missing
fragments from any ``k`` survivors, and GC / decommission / rebalance
operate on fragments through the same digest-keyed machinery.

:meth:`scrub` is the background integrity loop on top of the same
verify-on-read machinery: it walks shard contents at a bounded rate
(``HealthPolicy.scrub_batch`` items per :meth:`heartbeat`, or a full
pass on demand), re-digests every payload/fragment, quarantines
mismatches, and rebuilds them from parity or surviving replicas —
``scrub_{chunks,corrupt,repaired}`` in :class:`ClusterStats` close the
loop with ``FaultPlan``'s ``backend.bit_flip`` injections.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.faults import FaultPlan
from repro.store.backend import RecipeStore, make_backend, resolve_backend
from repro.store.erasure import (
    CorruptFragmentError,
    FragmentFormatError,
    codec_for,
    unpack_fragment,
)
from repro.store.health import FailureDetector, HealthPolicy, NodeState
from repro.store.lookup import BatchedLookup, BatchLookupStats, LookupCostModel
from repro.store.node import NodeDownError, StoreNode
from repro.store.ring import DEFAULT_VNODES, HashRing
from repro.store.schemes import PlacementScheme, ReplicatedPlacement

if TYPE_CHECKING:  # annotation-only: keeps repro.store import-clean of repro.backup
    from repro.backup.store import SnapshotRecipe

__all__ = [
    "ChunkStoreCluster",
    "RepairReport",
    "MigrationReport",
    "ScrubReport",
    "UnrecoverableChunkError",
]


def _chunk_hash(data: bytes) -> bytes:
    """Digest for read verification (lazy: same layering discipline as
    the lookup path's chunk import)."""
    from repro.core.hashing import chunk_hash

    return chunk_hash(data)


class UnrecoverableChunkError(KeyError):
    """A recipe references chunks no surviving node holds."""

    def __init__(self, digests: tuple[bytes, ...]) -> None:
        self.digests = digests
        preview = ", ".join(d.hex()[:16] for d in digests[:3])
        super().__init__(
            f"{len(digests)} chunk(s) unrecoverable (no surviving replica): "
            f"{preview}{'...' if len(digests) > 3 else ''}"
        )


@dataclass
class RepairReport:
    """Outcome of one recipe-driven re-replication pass."""

    chunks_scanned: int = 0
    chunks_recopied: int = 0
    bytes_copied: int = 0
    unrecoverable: tuple[bytes, ...] = ()

    @property
    def healthy(self) -> bool:
        return not self.unrecoverable


@dataclass
class MigrationReport:
    """Chunks moved by a rebalance or decommission."""

    chunks_moved: int = 0
    bytes_moved: int = 0
    chunks_dropped: int = 0


@dataclass
class ScrubReport:
    """Outcome of one integrity-scrub pass (or heartbeat-driven slice).

    ``corrupt == repaired`` is the healthy end state of a chaos drill:
    every mismatch the scrubber caught was rebuilt from parity or a
    surviving replica.  ``unrepaired`` items were *detected* but had no
    healthy source; the stored copy is left in place (a transient
    read-side fault must not destroy data that may still be good).
    """

    chunks_scanned: int = 0
    bytes_verified: int = 0
    corrupt: int = 0
    repaired: int = 0
    unrepaired: int = 0

    @property
    def healthy(self) -> bool:
        return self.unrepaired == 0


@dataclass
class ClusterStats:
    """Cluster-level health and degraded-path counters."""

    #: Reads served from a surviving replica after at least one replica
    #: failed (I/O error) or returned a corrupt payload.
    degraded_reads: int = 0
    #: Replica reads rejected because the payload no longer hashed to
    #: its digest (bit rot / injected flip); the read fell through.
    corrupt_reads: int = 0
    #: Detector transitions: nodes that entered suspect, nodes declared
    #: dead from errors alone (explicit ``fail_node`` not counted).
    nodes_suspected: int = 0
    nodes_died: int = 0
    #: Automatic repairs triggered by a declared death, and their work.
    repairs_auto: int = 0
    repair_chunks_recopied: int = 0
    repair_unrecoverable: int = 0
    heartbeats: int = 0
    #: Erasure-coded reads that had to decode through parity (a data
    #: fragment was dead, missing, or failed its digest).
    ec_parity_decodes: int = 0
    #: Background integrity scrub: items re-digested, mismatches caught,
    #: mismatches rebuilt (from parity or a surviving replica), and
    #: mismatches left in place because no healthy source survived.
    scrub_chunks: int = 0
    scrub_corrupt: int = 0
    scrub_repaired: int = 0
    scrub_unrepaired: int = 0


class ChunkStoreCluster:
    """Cluster of chunk-store shards behind one ChunkStore-shaped API."""

    def __init__(
        self,
        n_nodes: int = 4,
        scheme: PlacementScheme | None = None,
        vnodes: int = DEFAULT_VNODES,
        bloom_capacity: int = 1 << 14,
        bloom_fp_rate: float = 0.01,
        batch_size: int = 128,
        cost_model: LookupCostModel | None = None,
        node_prefix: str = "node",
        backend: str | None = None,
        data_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | str | None = "env",
        health: HealthPolicy | None = None,
        verify_reads: bool | None = None,
        read_attempts: int | None = None,
        put_attempts: int | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if read_attempts is not None and read_attempts < 1:
            raise ValueError("read_attempts must be >= 1")
        if put_attempts is not None and put_attempts < 1:
            raise ValueError("put_attempts must be >= 1")
        self.read_attempts = (
            self.READ_ATTEMPTS if read_attempts is None else read_attempts
        )
        self.put_attempts = (
            self.PUT_ATTEMPTS if put_attempts is None else put_attempts
        )
        self.backend_kind = resolve_backend(backend, data_dir)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.scheme = scheme or ReplicatedPlacement(min(2, n_nodes))
        self._ec = bool(getattr(self.scheme, "is_erasure", False))
        self._codec = (
            codec_for(self.scheme.k, self.scheme.m) if self._ec else None
        )
        self.ring = HashRing(vnodes=vnodes)
        self._nodes: dict[str, StoreNode] = {}
        self._bloom_capacity = bloom_capacity
        self._bloom_fp_rate = bloom_fp_rate
        # Chaos plumbing: "env" (the default) activates a plan only when
        # REPRO_FAULTS is set, so normal runs pay nothing.  Reads are
        # digest-verified exactly when faults are in play (or on explicit
        # request) — arbitrary test digests must keep working unfaulted.
        if fault_plan == "env":
            fault_plan = FaultPlan.from_env()
        elif isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self.fault_plan: FaultPlan | None = fault_plan
        self.verify_reads = (
            (fault_plan is not None) if verify_reads is None else verify_reads
        )
        self.health = health or HealthPolicy()
        self.detector = FailureDetector(self.health)
        self.stats = ClusterStats()
        self._repairing = False
        self._repair_pending = False
        #: Rolling scrub position: (node_id, digest) pairs still owed a
        #: verification in the current pass; refilled when exhausted.
        self._scrub_cursor: list[tuple[str, bytes]] = []
        self._recipes = RecipeStore(self._make_backend("recipes"))
        self._closed = False
        for i in range(n_nodes):
            self.add_node(f"{node_prefix}-{i}")
        self.scheme.validate(self.ring)
        self.lookup = BatchedLookup(
            self.ring,
            self.scheme,
            self._nodes,
            batch_size,
            cost_model,
            on_probe=self._note,
        )

    def _make_backend(self, name: str):
        path = self.data_dir / name if self.data_dir is not None else None
        return make_backend(self.backend_kind, path)

    # -- health plumbing -----------------------------------------------

    def _note(self, node_id: str, ok: bool) -> None:
        """Feed one op outcome to the failure detector and act on it."""
        transition = self.detector.observe(node_id, ok)
        if transition is NodeState.SUSPECT:
            self.stats.nodes_suspected += 1
        elif transition is NodeState.DEAD:
            self._declare_dead(node_id)

    def _note_detected(self) -> None:
        """Corruption caught by digest verification (read path or scrub).

        Feeds ``faults.bit_flips_detected``, so a chaos run's /metrics
        distinguishes injected flips that were *caught* from silent
        ones — the scrub loop's whole reason to exist.
        """
        if self.fault_plan is not None:
            self.fault_plan.stats.add("bit_flips_detected")

    def _declare_dead(self, node_id: str) -> None:
        """The detector gave up on a node: treat it as crashed."""
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.fail()
        if node_id in self.ring:
            self.ring.remove_node(node_id)
        self.stats.nodes_died += 1
        self._auto_repair()

    def _auto_repair(self) -> None:
        """Re-replicate after a declared death (policy-gated).

        A death declared *while* a repair pass is running (the pass
        itself feeds the detector) queues one follow-up pass instead of
        recursing.
        """
        if not self.health.auto_repair:
            return
        if self._repairing:
            self._repair_pending = True
            return
        while True:
            self._repair_pending = False
            report = self.repair()
            self.stats.repairs_auto += 1
            self.stats.repair_chunks_recopied += report.chunks_recopied
            self.stats.repair_unrecoverable += len(report.unrecoverable)
            if not self._repair_pending:
                break

    def heartbeat(self, scrub: bool = True) -> dict[str, NodeState]:
        """Ping every live node's backend and feed the detector.

        The data path already reports outcomes; the heartbeat catches a
        crashed node that traffic happens to be missing.  Returns the
        post-ping membership view.  ``scrub=False`` skips this beat's
        integrity-scrub slice (the service does that while browned out,
        yielding background verification cycles to live traffic).
        """
        self.stats.heartbeats += 1
        for node in list(self._nodes.values()):
            if not node.alive:
                continue
            try:
                node.ping()
            except NodeDownError:
                continue
            except OSError:
                node.stats.io_errors += 1
                self._note(node.node_id, False)
            else:
                self._note(node.node_id, True)
        if scrub and self.health.scrub_batch:
            # Background integrity: each heartbeat advances the rolling
            # scrub cursor by a bounded slice, so corruption is found in
            # steady state without a stop-the-world verification pass.
            self.scrub(limit=self.health.scrub_batch)
        return {nid: self.detector.state(nid) for nid in self._nodes}

    def health_snapshot(self) -> dict:
        """Membership + degraded-path counters for metrics surfaces."""
        states = {
            nid: (self.detector.state(nid) if node.alive else NodeState.DEAD)
            for nid, node in self._nodes.items()
        }
        doc: dict = {
            "nodes": {nid: state.value for nid, state in states.items()},
            "nodes_total": len(self._nodes),
            "nodes_alive": len(self._alive_nodes()),
            "verify_reads": self.verify_reads,
            "scheme": self.scheme.name,
        }
        if self._ec:
            doc["ec_k"] = self.scheme.k
            doc["ec_m"] = self.scheme.m
        doc.update(asdict(self.stats))
        return doc

    # -- node plumbing -------------------------------------------------

    def _alive_nodes(self) -> list[StoreNode]:
        return [n for n in self._nodes.values() if n.alive]

    def _placement(self, digest: bytes) -> list[StoreNode]:
        """Alive nodes the scheme targets for this digest."""
        return [
            self._nodes[nid]
            for nid in self.scheme.nodes_for(self.ring, digest)
            if self._nodes[nid].alive
        ]

    def _node_holds(self, node: StoreNode, digest: bytes) -> bool:
        """``node.holds`` with detector accounting; errors read as "no"."""
        try:
            held = node.holds(digest)
        except NodeDownError:
            return False
        except OSError:
            node.stats.io_errors += 1
            self._note(node.node_id, False)
            return False
        self._note(node.node_id, True)
        return held

    def _holder(self, digest: bytes) -> StoreNode | None:
        """Any alive node holding the chunk: placement first, then a
        degraded-mode scan (a replica may be off-placement mid-repair)."""
        placed = self._placement(digest)
        for node in placed:
            if self._node_holds(node, digest):
                return node
        for node in self._alive_nodes():
            if node not in placed and self._node_holds(node, digest):
                return node
        return None

    def _read_any(self, digest: bytes) -> bytes | None:
        """A verified copy from any replica, with bounded retries.

        One pass over the candidates can come up empty because every
        surviving holder hit a *transient* fault; that must not read as
        data loss.  The pass is retried while it reports failures —
        ``None`` without a failure means no replica holds the chunk.
        """
        for _attempt in range(self.read_attempts):
            data, failures = (
                self._read_ec_once(digest)
                if self._ec
                else self._read_any_once(digest)
            )
            if data is not None:
                return data
            if not failures:
                break  # genuinely held nowhere; retrying cannot help
        return None

    def _read_any_once(self, digest: bytes) -> tuple[bytes | None, int]:
        """One pass for a verified copy, falling through failures.

        Placement targets are tried first, then every other alive node
        (a copy can survive off-placement mid-repair).  Replicas that
        error or — with ``verify_reads`` — return a payload that no
        longer hashes to its digest are skipped and charged as degraded;
        the read succeeds as long as *some* replica serves a good copy.
        Returns the payload (or ``None``) and the failure count.
        """
        placed = self._placement(digest)
        candidates = placed + [n for n in self._alive_nodes() if n not in placed]
        failures = 0
        for node in candidates:
            try:
                if not node.holds(digest):
                    continue
                data = node.get_chunk(digest)
            except NodeDownError:
                continue
            except KeyError:
                failures += 1  # holds() raced a delete; not a health signal
                continue
            except OSError:
                node.stats.io_errors += 1
                node.stats.degraded_reads += 1
                self._note(node.node_id, False)
                failures += 1
                continue
            self._note(node.node_id, True)
            if self.verify_reads and _chunk_hash(data) != digest:
                self.stats.corrupt_reads += 1
                self._note_detected()
                node.stats.degraded_reads += 1
                failures += 1
                continue
            if failures:
                self.stats.degraded_reads += 1
            return data, failures
        return None, failures

    # -- erasure-coded data path ---------------------------------------

    def _ec_read_order(self, digest: bytes) -> list[StoreNode]:
        """Fragment-read candidate order: cheapest/healthiest first.

        Healthy data-position holders lead (the all-healthy read is then
        pure concatenation), healthy parity positions next, suspects
        after their peers, and finally off-placement alive nodes (a
        fragment can survive off-placement mid-repair/decommission).
        """
        placed = self._placement(digest)
        k = self.scheme.k

        def suspicion(node: StoreNode) -> int:
            return 0 if self.detector.state(node.node_id) is NodeState.ALIVE else 1

        data = sorted(placed[:k], key=suspicion)
        parity = sorted(placed[k:], key=suspicion)
        rest = [n for n in self._alive_nodes() if n not in placed]
        return data + parity + rest

    def _gather_fragments(
        self,
        digest: bytes,
        need: int | None = None,
        exclude: set[str] | None = None,
    ) -> tuple[dict[int, bytes], int | None, dict[str, int | None], int]:
        """Collect verified fragments of ``digest`` from alive nodes.

        Stops once ``need`` distinct fragment indices are in hand
        (``None`` = walk every candidate, for repair/rebalance which
        must see who holds what).  Returns ``(fragments, chunk_len,
        held, failures)`` where ``held`` maps node_id -> fragment index
        for every holder (``None`` for a holder whose record was
        corrupt, unparseable, or from a different geometry).
        """
        codec = self._codec
        fragments: dict[int, bytes] = {}
        held: dict[str, int | None] = {}
        chunk_len: int | None = None
        failures = 0
        for node in self._ec_read_order(digest):
            if exclude is not None and node.node_id in exclude:
                continue
            if need is not None and len(fragments) >= need:
                break
            try:
                if not node.holds(digest):
                    continue
                record = node.get_fragment(digest)
            except NodeDownError:
                continue
            except KeyError:
                failures += 1  # holds() raced a delete; not a health signal
                continue
            except (FragmentFormatError, CorruptFragmentError):
                # The node answered, but its fragment fails verification:
                # detected corruption, not a liveness signal.
                self.stats.corrupt_reads += 1
                node.stats.degraded_reads += 1
                self._note_detected()
                self._note(node.node_id, True)
                held[node.node_id] = None
                failures += 1
                continue
            except OSError:
                node.stats.io_errors += 1
                node.stats.degraded_reads += 1
                self._note(node.node_id, False)
                failures += 1
                continue
            self._note(node.node_id, True)
            if record.k != codec.k or record.m != codec.m:
                held[node.node_id] = None  # stale geometry; unusable
                failures += 1
                continue
            held[node.node_id] = record.index
            if record.index not in fragments:
                fragments[record.index] = record.payload
                chunk_len = record.chunk_len
        return fragments, chunk_len, held, failures

    def _read_ec_once(self, digest: bytes) -> tuple[bytes | None, int]:
        """One erasure-coded read pass: any ``k`` verified fragments.

        Mirrors ``_read_any_once``'s contract — payload or ``None``,
        plus the failure count that decides whether a retry can help.
        """
        codec = self._codec
        fragments, chunk_len, _held, failures = self._gather_fragments(
            digest, need=codec.k
        )
        if len(fragments) < codec.k or chunk_len is None:
            return None, failures
        parity_decode = not all(i in fragments for i in range(codec.k))
        data = codec.decode(fragments, chunk_len)
        if self.verify_reads and _chunk_hash(data) != digest:
            # Fragments verified individually but the assembly does not
            # hash: a stale/mixed fragment set.  Fail the pass; retry
            # may draw a consistent set.
            self.stats.corrupt_reads += 1
            self._note_detected()
            return None, failures + 1
        if parity_decode:
            self.stats.ec_parity_decodes += 1
        if failures or parity_decode:
            self.stats.degraded_reads += 1
        return data, failures

    # -- ChunkStore-compatible surface ---------------------------------

    #: Default write attempts per placement target before the error
    #: propagates (constructor ``put_attempts`` overrides per cluster).
    #: One retry absorbs transient I/O blips locally (the common chaos
    #: case) while a persistently sick target still errors out fast and
    #: keeps feeding the failure detector on every attempt.
    PUT_ATTEMPTS = 2
    #: Default full read passes over the replica set before a chunk is
    #: declared missing (constructor ``read_attempts`` overrides); only
    #: passes that saw at least one replica *fail* (not merely lack the
    #: chunk) are retried.
    READ_ATTEMPTS = 3

    def _put_one(self, node, digest: bytes, data: bytes) -> bool:
        """Write one replica with bounded retry; True iff it landed.

        Raises the final OSError only when the target is still a live
        ring member after exhausting its attempts — a node the failed
        writes killed has left the replica set and is not owed a copy.
        """
        for attempt in range(self.put_attempts):
            try:
                node.put_chunk(digest, data)
            except NodeDownError:
                return False  # raced a declared death; placement shrank
            except OSError as exc:
                node.stats.io_errors += 1
                self._note(node.node_id, False)
                if attempt + 1 < self.put_attempts:
                    continue
                if node.alive:
                    raise
                return False
            else:
                self._note(node.node_id, True)
                return True
        return False

    def _put_fragment_one(
        self, node, digest: bytes, index: int, chunk_len: int, payload: bytes
    ) -> bool:
        """``_put_one`` for a framed fragment: same retry/death contract."""
        codec = self._codec
        for attempt in range(self.put_attempts):
            try:
                node.put_fragment(
                    digest, index, codec.k, codec.m, chunk_len, payload
                )
            except NodeDownError:
                return False
            except OSError as exc:
                node.stats.io_errors += 1
                self._note(node.node_id, False)
                if attempt + 1 < self.put_attempts:
                    continue
                if node.alive:
                    raise
                return False
            else:
                self._note(node.node_id, True)
                return True
        return False

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk on every placement target; False if known.

        Durability is strict: if any placement write errors past its
        retry budget, the error propagates (after every target was
        attempted) — an acked chunk always has its full replica set.
        Copies that did land make the caller's retry a cheap
        content-addressed no-op.
        """
        if self._ec:
            return self._put_chunk_ec(digest, data)
        known = self._holder(digest) is not None
        targets = self._placement(digest)
        if not targets:
            raise NodeDownError(
                f"no alive placement target for chunk {digest.hex()[:16]}"
            )
        last_error: OSError | None = None
        stored = 0
        for node in targets:
            try:
                if self._put_one(node, digest, data):
                    stored += 1
            except OSError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        if stored == 0 and not known:
            # Every target died mid-put without a hard error surviving:
            # re-place on the shrunken ring (bounded by node count).
            return self.put_chunk(digest, data)
        return not known

    def _put_chunk_ec(self, digest: bytes, data: bytes) -> bool:
        """Erasure-coded put: fragment ``i`` to preference position ``i``.

        Same strict-ack contract as the replicated path, with the EC
        twist that an acked chunk needs at least ``k`` fragments landed
        (fewer cannot reconstruct — a partial set that acked would be
        silent data loss on the first degraded read).
        """
        codec = self._codec
        known = self.has_chunk(digest)
        targets = self._placement(digest)
        if len(targets) < codec.k:
            raise NodeDownError(
                f"only {len(targets)} alive placement targets for "
                f"ec({codec.k}+{codec.m}) chunk {digest.hex()[:16]}"
            )
        fragments = codec.encode(data)
        last_error: OSError | None = None
        stored = 0
        for position, node in enumerate(targets):
            try:
                if self._node_holds(node, digest):
                    stored += 1  # content-addressed: fragment already there
                    continue
                if self._put_fragment_one(
                    node, digest, position, len(data), fragments[position]
                ):
                    stored += 1
            except OSError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        if stored < codec.k and not known:
            # Too many targets died mid-put to reconstruct: re-place on
            # the shrunken ring (bounded by node count).
            return self.put_chunk(digest, data)
        return not known

    def has_chunk(self, digest: bytes) -> bool:
        if self._ec:
            return self._fragment_holders(digest) >= self.scheme.k
        return self._holder(digest) is not None

    def _fragment_holders(self, digest: bytes) -> int:
        """Alive nodes holding a fragment of ``digest`` (early exit at
        ``k`` — presence needs reconstructability, not a full census)."""
        need = self.scheme.k
        count = 0
        for node in self._ec_read_order(digest):
            if self._node_holds(node, digest):
                count += 1
                if count >= need:
                    break
        return count

    def put_chunks(self, items) -> list[bool]:
        """Store a batch of ``(digest, data)``; placement is per digest,
        so this is a convenience loop, not a single backend write."""
        return [self.put_chunk(digest, data) for digest, data in items]

    def get_chunk(self, digest: bytes) -> bytes:
        data = self._read_any(digest)
        if data is None:
            raise KeyError(
                f"chunk {digest.hex()[:16]} missing from cluster "
                f"({len(self._alive_nodes())}/{len(self._nodes)} nodes alive)"
            )
        return data

    def put_recipe(self, recipe: SnapshotRecipe) -> None:
        # RecipeStore.put rejects duplicates; only the chunk-presence
        # invariant is the cluster's to enforce.
        present = self.has_chunks(recipe.digests)
        missing = [d for d, ok in zip(recipe.digests, present) if not ok]
        if missing:
            raise ValueError(
                f"recipe {recipe.snapshot_id!r} references {len(missing)} "
                "missing chunks"
            )
        self._recipes.put(recipe)
        if any(not n.alive for n in self._nodes.values()) and not self._repairing:
            # A node died while this snapshot was being written: the
            # auto-repair that ran at death time was recipe-driven, so
            # chunks stored *before* this recipe existed may be down to
            # a single replica.  Heal exactly this snapshot's digests
            # now that they are enumerable.
            report = RepairReport(chunks_scanned=len(recipe.digests))
            self._repairing = True
            try:
                self._repair_digests(recipe.digests, report)
            finally:
                self._repairing = False
            self.stats.repair_chunks_recopied += report.chunks_recopied

    def get_recipe(self, snapshot_id: str) -> SnapshotRecipe:
        return self._recipes.get(snapshot_id)

    def snapshot_ids(self) -> list[str]:
        """Sorted ids of every stored snapshot recipe."""
        return self._recipes.ids()

    def has_chunks(self, digests) -> list[bool]:
        """Batched membership straight through replica resolution."""
        return [self.has_chunk(d) for d in digests]

    def restore(self, snapshot_id: str) -> bytes:
        """Reassemble a snapshot, pulling each chunk from any replica."""
        recipe = self.get_recipe(snapshot_id)
        return b"".join(self.get_chunk(d) for d in recipe.digests)

    def delete_recipe(self, snapshot_id: str) -> None:
        self._recipes.delete(snapshot_id)

    def garbage_collect(self) -> int:
        """Cluster-wide mark-and-sweep; returns physical bytes freed.

        Marks every digest referenced by any recipe, then sweeps each
        alive node (which rebuilds its Bloom filter, since filters
        cannot unlearn deleted keys, and compacts the node's chunk log
        on persistent backends).
        """
        live = self._recipes.live_digests()
        return sum(node.sweep(live) for node in self._alive_nodes())

    # -- background integrity scrub ------------------------------------

    def scrub(self, limit: int | None = None) -> ScrubReport:
        """Re-verify stored payloads/fragments; heal what fails.

        ``limit=None`` runs one full pass over everything currently
        stored (the ``python -m repro scrub`` / drill entry point);
        ``limit=N`` advances a rolling cursor by at most ``N`` items
        (the heartbeat's bounded slice — a full pass eventually
        completes across heartbeats, then starts over).

        Every item is re-read and re-digested.  A mismatch is counted
        (``scrub_corrupt``) and healed by rebuilding from parity (EC) or
        a surviving replica — but the suspect copy is only replaced
        *after* a successful rebuild: under transient read-side faults
        (``backend.bit_flip`` flips the bytes served, not the bytes
        stored) deleting first would turn detected corruption into real
        data loss.
        """
        report = ScrubReport()
        if limit is None:
            for node_id, digest in self._scrub_queue_snapshot():
                self._scrub_one(node_id, digest, report)
            return report
        refilled = False
        scanned = 0
        while scanned < limit:
            if not self._scrub_cursor:
                if refilled:
                    break  # an empty cluster refills empty; don't spin
                self._scrub_cursor = self._scrub_queue_snapshot()
                self._scrub_cursor.reverse()  # pop() walks in order
                refilled = True
                if not self._scrub_cursor:
                    break
            node_id, digest = self._scrub_cursor.pop()
            self._scrub_one(node_id, digest, report)
            scanned += 1
        return report

    def _scrub_queue_snapshot(self) -> list[tuple[str, bytes]]:
        """Every (node, digest) pair owed a verification, in stable order."""
        queue: list[tuple[str, bytes]] = []
        for node_id in sorted(self._nodes):
            node = self._nodes[node_id]
            if not node.alive:
                continue
            try:
                digests = sorted(node.digests())
            except (NodeDownError, OSError):
                continue
            queue.extend((node_id, digest) for digest in digests)
        return queue

    def _scrub_one(
        self, node_id: str, digest: bytes, report: ScrubReport
    ) -> None:
        """Verify one stored item; quarantine-and-heal on mismatch."""
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        try:
            raw = node.get_chunk(digest)
        except (NodeDownError, KeyError):
            return  # gone (death, GC, repair moved it): nothing to verify
        except OSError:
            node.stats.io_errors += 1
            self._note(node.node_id, False)
            return
        self._note(node.node_id, True)
        report.chunks_scanned += 1
        report.bytes_verified += len(raw)
        self.stats.scrub_chunks += 1
        if self._ec:
            try:
                unpack_fragment(raw)
                return  # parsed and digest-verified: healthy
            except (FragmentFormatError, CorruptFragmentError):
                pass
        elif _chunk_hash(raw) == digest:
            return
        report.corrupt += 1
        self.stats.scrub_corrupt += 1
        self._note_detected()
        if self._scrub_heal(node, digest):
            report.repaired += 1
            self.stats.scrub_repaired += 1
        else:
            report.unrepaired += 1
            self.stats.scrub_unrepaired += 1

    def _scrub_heal(self, node: StoreNode, digest: bytes) -> bool:
        """Replace one failed-verification item from a healthy source.

        Rebuild first, replace after — if no healthy source survives,
        the suspect copy stays put (it may itself be a transient
        read-side fault, and even a genuinely rotten fragment can still
        help a later decode if enough of it is intact... but a verified
        rebuild always supersedes it).
        """
        if self._ec:
            codec = self._codec
            targets = self._placement(digest)
            position = next(
                (p for p, n in enumerate(targets) if n is node), None
            )
            if position is None:
                # Off-placement stray that fails verification: dropping
                # it *is* the heal — placement holds the real set.
                try:
                    node.delete_chunk(digest)
                except (NodeDownError, OSError):
                    return False
                return True
            fragments: dict[int, bytes] = {}
            chunk_len: int | None = None
            for _attempt in range(self.read_attempts):
                fragments, chunk_len, _held, failures = self._gather_fragments(
                    digest, need=codec.k, exclude={node.node_id}
                )
                if len(fragments) >= codec.k or not failures:
                    break
            if len(fragments) < codec.k or chunk_len is None:
                return False
            payload = codec.rebuild(fragments, [position])[position]
            try:
                node.delete_chunk(digest)
                return self._put_fragment_one(
                    node, digest, position, chunk_len, payload
                )
            except (NodeDownError, OSError):
                return False
        data = self._read_verified_excluding(digest, {node.node_id})
        if data is None:
            return False
        try:
            node.delete_chunk(digest)
            return self._put_one(node, digest, data)
        except (NodeDownError, OSError):
            return False

    def _read_verified_excluding(
        self, digest: bytes, exclude: set[str]
    ) -> bytes | None:
        """A digest-verified whole-chunk copy from any other replica.

        Verification is unconditional here (unlike the data path's
        ``verify_reads`` gate): the scrubber must never heal from an
        unverified source.
        """
        for _attempt in range(self.read_attempts):
            failures = 0
            for candidate in self._alive_nodes():
                if candidate.node_id in exclude:
                    continue
                try:
                    if not candidate.holds(digest):
                        continue
                    data = candidate.get_chunk(digest)
                except (NodeDownError, KeyError):
                    continue
                except OSError:
                    candidate.stats.io_errors += 1
                    self._note(candidate.node_id, False)
                    failures += 1
                    continue
                self._note(candidate.node_id, True)
                if _chunk_hash(data) == digest:
                    return data
                failures += 1
            if not failures:
                break
        return None

    # -- batched lookup ------------------------------------------------

    def lookup_batch(
        self, digests
    ) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Batched, Bloom-filtered membership query (see lookup.py)."""
        return self.lookup.lookup_batch(digests)

    def lookup_chunks(self, chunks) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Batched membership query straight from chunk records.

        Digests for the whole batch are materialized in one hashing pass
        before the probe — lazy zero-copy chunks never pay a per-chunk
        Python hashing round trip on the lookup path.
        """
        return self.lookup.lookup_chunks(chunks)

    # -- membership / failure / recovery -------------------------------

    def add_node(self, node_id: str | None = None) -> str:
        """Register a fresh node on the ring; no data moves until
        :meth:`rebalance` runs.  On a disk cluster the node's backend
        opens (or reopens) ``data_dir/<node_id>``."""
        if node_id is None:
            node_id = f"node-{len(self._nodes)}"
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already exists")
        backend = self._make_backend(node_id)
        if self.fault_plan is not None:
            backend = self.fault_plan.wrap_backend(backend, node_id)
        self._nodes[node_id] = StoreNode(
            node_id,
            self._bloom_capacity,
            self._bloom_fp_rate,
            backend=backend,
        )
        self.detector.forget(node_id)  # a replacement starts with a clean slate
        self.ring.add_node(node_id)
        return node_id

    def fail_node(self, node_id: str) -> None:
        """Crash a node: its shard contents are lost and it leaves the
        ring, so placements immediately stop targeting it.

        This is the *explicit* drill entry point — the detector records
        the death, but no automatic repair runs; the operator (or test)
        drives :meth:`repair` and observes the degraded window."""
        node = self._node(node_id)
        node.fail()
        self.detector.mark_dead(node_id)
        self.ring.remove_node(node_id)

    def decommission(self, node_id: str) -> MigrationReport:
        """Gracefully drain a node: re-place its chunks, then retire it."""
        node = self._node(node_id)
        if not node.alive:
            raise ValueError(f"node {node_id!r} is down; use repair()")
        self.ring.remove_node(node_id)
        self.scheme.validate(self.ring)
        report = MigrationReport()
        if self._ec:
            # A retiring node's lone fragment per chunk cannot re-derive
            # the other indices by itself, so EC drains via the fragment
            # repair path: the node is off-ring but still alive, so the
            # gather reads it as an off-placement source while each new
            # target gets exactly its own fragment rebuilt.
            affected = node.digests()
            repair_report = RepairReport(chunks_scanned=len(affected))
            self._repairing = True
            try:
                self._repair_digests_ec(affected, repair_report)
            finally:
                self._repairing = False
            report.chunks_moved = repair_report.chunks_recopied
            report.bytes_moved = repair_report.bytes_copied
            report.chunks_dropped = len(affected)
            node.fail()
            return report
        for digest in node.digests():
            data = node.get_chunk(digest)
            for target in self._placement(digest):
                if target.put_chunk(digest, data):
                    report.chunks_moved += 1
                    report.bytes_moved += len(data)
            report.chunks_dropped += 1
        node.fail()  # retire: contents dropped after migration
        return report

    def repair(self) -> RepairReport:
        """Recipe-driven re-replication after failures or ring changes.

        Walks every digest referenced by any recipe, re-derives its
        placement on the current ring, and copies from any surviving
        replica to targets that lack it.  Digests with no surviving
        replica are reported as unrecoverable (the data is gone; the
        snapshot cannot be restored).
        """
        live = self._recipes.live_digests()
        report = RepairReport(chunks_scanned=len(live))
        self._repairing = True
        try:
            lost = self._repair_digests(live, report)
        finally:
            self._repairing = False
        report.unrecoverable = tuple(lost)
        return report

    def _repair_digests(self, digests, report: RepairReport) -> list[bytes]:
        """Re-replicate the given digests onto their current placement.

        Copies from any surviving replica to targets that lack it,
        accumulating work into ``report``; returns the digests with no
        surviving replica at all.  (Erasure-coded clusters rebuild
        fragments instead — see :meth:`_repair_digests_ec`.)
        """
        if self._ec:
            return self._repair_digests_ec(digests, report)
        lost: list[bytes] = []
        for digest in digests:
            data = self._read_any(digest)
            if data is None:
                lost.append(digest)
                continue
            for target in self._placement(digest):
                if self._node_holds(target, digest):
                    continue
                try:
                    target.put_chunk(digest, data)
                except NodeDownError:
                    continue
                except OSError:
                    # Copy lost to a fault: the replica stays short
                    # this pass; the next repair pass recopies it.
                    target.stats.io_errors += 1
                    self._note(target.node_id, False)
                    continue
                self._note(target.node_id, True)
                report.chunks_recopied += 1
                report.bytes_copied += len(data)
        return lost

    def _ec_assignments(
        self,
        targets: list[StoreNode],
        held: dict[str, int | None],
    ) -> list[tuple[StoreNode, int, bool]]:
        """Plan fragment writes so the targets cover distinct indices.

        A valid fragment is fine *wherever* it sits in the target set —
        rewriting every fragment whose preference position shifted after
        ring churn would ship more bytes than whole-chunk repair.  Only
        targets holding nothing usable (no record, a corrupt/stale one,
        or a duplicate of an index another target covers) are assigned a
        *missing* index, preferring their own position's index.  Returns
        ``(node, index, had_record)`` write orders.
        """
        codec = self._codec
        covered: set[int] = set()
        needy: list[tuple[int, StoreNode]] = []
        for position, node in enumerate(targets):
            index = held.get(node.node_id)
            if index is not None and index not in covered:
                covered.add(index)
            else:
                needy.append((position, node))
        missing = [i for i in range(codec.n) if i not in covered]
        orders: list[tuple[StoreNode, int, bool]] = []
        for position, node in needy:
            if not missing:
                break
            if position in missing:
                index = position  # position's own index, when available
                missing.remove(position)
            else:
                index = missing.pop(0)
            orders.append((node, index, node.node_id in held))
        return orders

    def _repair_digests_ec(self, digests, report: RepairReport) -> list[bytes]:
        """Fragment repair: rebuild only the *missing* fragment indices.

        For each digest, gather any ``k`` verified fragments, work out
        which of the ``k + m`` indices the placement targets no longer
        cover, and ship each uncovered target exactly one rebuilt
        fragment — never the whole chunk.  ``bytes_copied`` therefore
        counts fragment payloads, the whole point of erasure-coded
        repair traffic.  Digests with fewer than ``k`` surviving
        fragments anywhere are unrecoverable.
        """
        codec = self._codec
        lost: list[bytes] = []
        for digest in digests:
            fragments: dict[int, bytes] = {}
            chunk_len: int | None = None
            held: dict[str, int | None] = {}
            for _attempt in range(self.read_attempts):
                fragments, chunk_len, held, failures = self._gather_fragments(
                    digest
                )
                if len(fragments) >= codec.k or not failures:
                    break
            if len(fragments) < codec.k or chunk_len is None:
                lost.append(digest)
                continue
            orders = self._ec_assignments(self._placement(digest), held)
            if not orders:
                continue
            rebuilt = codec.rebuild(fragments, [i for _, i, _ in orders])
            for node, index, had_record in orders:
                payload = rebuilt[index]
                try:
                    if had_record:
                        # Corrupt/stale/duplicate record under this key:
                        # replace, don't accrete.
                        node.delete_chunk(digest)
                    if self._put_fragment_one(
                        node, digest, index, chunk_len, payload
                    ):
                        report.chunks_recopied += 1
                        report.bytes_copied += len(payload)
                except NodeDownError:
                    continue
                except OSError:
                    # Fragment lost to a fault: the placement stays
                    # short this pass; the next repair pass rebuilds it.
                    node.stats.io_errors += 1
                    self._note(node.node_id, False)
                    continue
        return lost

    def rebalance(self) -> MigrationReport:
        """Move chunks to their current placement after a ring resize.

        Copies each chunk to placement targets missing it and drops
        copies from nodes the scheme no longer targets.  Erasure-coded
        clusters move *fragments*: each target gets the fragment its
        preference-list position calls for, rebuilt from any ``k``
        survivors.
        """
        report = MigrationReport()
        if self._ec:
            return self._rebalance_ec(report)
        for digest in self.digests():
            targets = self._placement(digest)
            data = self._read_any(digest)
            if data is None:
                continue  # every replica erroring; repair() owns recovery
            for target in targets:
                if target.put_chunk(digest, data):
                    report.chunks_moved += 1
                    report.bytes_moved += len(data)
            for node in self._alive_nodes():
                if node not in targets and node.holds(digest):
                    node.delete_chunk(digest)
                    report.chunks_dropped += 1
        return report

    def _rebalance_ec(self, report: MigrationReport) -> MigrationReport:
        codec = self._codec
        for digest in self.digests():
            fragments, chunk_len, held, _failures = self._gather_fragments(
                digest
            )
            if len(fragments) < codec.k or chunk_len is None:
                continue  # short on survivors; repair() owns recovery
            targets = self._placement(digest)
            orders = self._ec_assignments(targets, held)
            if orders:
                rebuilt = codec.rebuild(fragments, [i for _, i, _ in orders])
                for node, index, had_record in orders:
                    payload = rebuilt[index]
                    try:
                        if had_record:
                            node.delete_chunk(digest)
                        if self._put_fragment_one(
                            node, digest, index, chunk_len, payload
                        ):
                            report.chunks_moved += 1
                            report.bytes_moved += len(payload)
                    except (NodeDownError, OSError):
                        continue
            target_ids = {node.node_id for node in targets}
            for node in self._alive_nodes():
                if node.node_id not in target_ids and node.holds(digest):
                    node.delete_chunk(digest)
                    report.chunks_dropped += 1
        return report

    def _node(self, node_id: str) -> StoreNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r}") from None

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Push buffered log records on every shard (disk backends)."""
        for node in self._alive_nodes():
            node.flush()
        self._recipes.flush()

    def close(self) -> None:
        """Close every shard backend and the recipe store.

        On a disk cluster this persists the memtables, so a subsequent
        ``ChunkStoreCluster(backend="disk", data_dir=...)`` with the
        same membership reopens without replaying the logs.
        """
        if self._closed:
            return
        self._closed = True
        for node in self._nodes.values():
            node.close()
        self._recipes.close()

    def __enter__(self) -> "ChunkStoreCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ----------------------------------------------------

    def digests(self) -> set[bytes]:
        """Distinct digests held anywhere in the cluster."""
        out: set[bytes] = set()
        for node in self._alive_nodes():
            out.update(node.digests())
        return out

    @property
    def nodes(self) -> dict[str, StoreNode]:
        return dict(self._nodes)

    @property
    def n_nodes_alive(self) -> int:
        return len(self._alive_nodes())

    @property
    def chunk_count(self) -> int:
        """Distinct chunks (replicas counted once), matching ChunkStore."""
        return len(self.digests())

    @property
    def stored_bytes(self) -> int:
        """Physical bytes across all replicas on all alive nodes."""
        return sum(node.stored_bytes for node in self._alive_nodes())

    @property
    def unique_bytes(self) -> int:
        """Logical bytes: one copy per distinct chunk."""
        return sum(len(self.get_chunk(d)) for d in self.digests())

    @property
    def snapshot_count(self) -> int:
        return len(self._recipes)

    def replica_count(self, digest: bytes) -> int:
        return sum(1 for n in self._alive_nodes() if n.holds(digest))
