"""Sharded, replicated, content-addressed chunk-store cluster.

The scale-out generalisation of :class:`repro.backup.store.ChunkStore`:
chunks are partitioned across :class:`~repro.store.node.StoreNode`
shards by a consistent-hash ring, placed according to a pluggable
:class:`~repro.store.schemes.PlacementScheme`, probed through the
batched Bloom-filtered lookup path, and kept durable across node loss
by recipe-driven re-replication.

The cluster exposes the same duck-typed surface as the single-node
``ChunkStore`` (``put_chunk`` / ``has_chunk`` / ``get_chunk`` /
``put_recipe`` / ``restore`` / ``garbage_collect`` / ...), so the
backup-site :class:`~repro.backup.agent.ShredderAgent` runs against
either backend unchanged — that is what makes the single-node and
cluster backup paths byte-identical.

Storage is pluggable per shard (:mod:`repro.store.backend`):
``backend="memory"`` (default) keeps every node in-process;
``backend="disk"`` with a ``data_dir`` gives each node an append-only
chunk log + LSM digest index under ``data_dir/<node_id>`` and persists
recipes under ``data_dir/recipes``, so the cluster can be closed, the
process restarted, and ``ChunkStoreCluster(..., backend="disk",
data_dir=...)`` reopens every shard, recipe, and lookup answer
bit-identical.  Reopen with the same membership you closed with; after
reopening a cluster whose ring changed mid-life (decommission, resize),
run ``repair()``/``rebalance()`` to realign placements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.store.backend import RecipeStore, make_backend, resolve_backend
from repro.store.lookup import BatchedLookup, BatchLookupStats, LookupCostModel
from repro.store.node import StoreNode
from repro.store.ring import DEFAULT_VNODES, HashRing
from repro.store.schemes import PlacementScheme, ReplicatedPlacement

if TYPE_CHECKING:  # annotation-only: keeps repro.store import-clean of repro.backup
    from repro.backup.store import SnapshotRecipe

__all__ = [
    "ChunkStoreCluster",
    "RepairReport",
    "MigrationReport",
    "UnrecoverableChunkError",
]


class UnrecoverableChunkError(KeyError):
    """A recipe references chunks no surviving node holds."""

    def __init__(self, digests: tuple[bytes, ...]) -> None:
        self.digests = digests
        preview = ", ".join(d.hex()[:16] for d in digests[:3])
        super().__init__(
            f"{len(digests)} chunk(s) unrecoverable (no surviving replica): "
            f"{preview}{'...' if len(digests) > 3 else ''}"
        )


@dataclass
class RepairReport:
    """Outcome of one recipe-driven re-replication pass."""

    chunks_scanned: int = 0
    chunks_recopied: int = 0
    bytes_copied: int = 0
    unrecoverable: tuple[bytes, ...] = ()

    @property
    def healthy(self) -> bool:
        return not self.unrecoverable


@dataclass
class MigrationReport:
    """Chunks moved by a rebalance or decommission."""

    chunks_moved: int = 0
    bytes_moved: int = 0
    chunks_dropped: int = 0


class ChunkStoreCluster:
    """Cluster of chunk-store shards behind one ChunkStore-shaped API."""

    def __init__(
        self,
        n_nodes: int = 4,
        scheme: PlacementScheme | None = None,
        vnodes: int = DEFAULT_VNODES,
        bloom_capacity: int = 1 << 14,
        bloom_fp_rate: float = 0.01,
        batch_size: int = 128,
        cost_model: LookupCostModel | None = None,
        node_prefix: str = "node",
        backend: str | None = None,
        data_dir: str | os.PathLike | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.backend_kind = resolve_backend(backend, data_dir)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.scheme = scheme or ReplicatedPlacement(min(2, n_nodes))
        self.ring = HashRing(vnodes=vnodes)
        self._nodes: dict[str, StoreNode] = {}
        self._bloom_capacity = bloom_capacity
        self._bloom_fp_rate = bloom_fp_rate
        self._recipes = RecipeStore(self._make_backend("recipes"))
        self._closed = False
        for i in range(n_nodes):
            self.add_node(f"{node_prefix}-{i}")
        self.scheme.validate(self.ring)
        self.lookup = BatchedLookup(
            self.ring, self.scheme, self._nodes, batch_size, cost_model
        )

    def _make_backend(self, name: str):
        path = self.data_dir / name if self.data_dir is not None else None
        return make_backend(self.backend_kind, path)

    # -- node plumbing -------------------------------------------------

    def _alive_nodes(self) -> list[StoreNode]:
        return [n for n in self._nodes.values() if n.alive]

    def _placement(self, digest: bytes) -> list[StoreNode]:
        """Alive nodes the scheme targets for this digest."""
        return [
            self._nodes[nid]
            for nid in self.scheme.nodes_for(self.ring, digest)
            if self._nodes[nid].alive
        ]

    def _holder(self, digest: bytes) -> StoreNode | None:
        """Any alive node holding the chunk: placement first, then a
        degraded-mode scan (a replica may be off-placement mid-repair)."""
        placed = self._placement(digest)
        for node in placed:
            if node.holds(digest):
                return node
        for node in self._alive_nodes():
            if node not in placed and node.holds(digest):
                return node
        return None

    # -- ChunkStore-compatible surface ---------------------------------

    def put_chunk(self, digest: bytes, data: bytes) -> bool:
        """Store a chunk on every placement target; False if known."""
        known = self._holder(digest) is not None
        for node in self._placement(digest):
            node.put_chunk(digest, data)
        return not known

    def has_chunk(self, digest: bytes) -> bool:
        return self._holder(digest) is not None

    def put_chunks(self, items) -> list[bool]:
        """Store a batch of ``(digest, data)``; placement is per digest,
        so this is a convenience loop, not a single backend write."""
        return [self.put_chunk(digest, data) for digest, data in items]

    def get_chunk(self, digest: bytes) -> bytes:
        node = self._holder(digest)
        if node is None:
            raise KeyError(
                f"chunk {digest.hex()[:16]} missing from cluster "
                f"({len(self._alive_nodes())}/{len(self._nodes)} nodes alive)"
            )
        return node.get_chunk(digest)

    def put_recipe(self, recipe: SnapshotRecipe) -> None:
        # RecipeStore.put rejects duplicates; only the chunk-presence
        # invariant is the cluster's to enforce.
        missing = [d for d in recipe.digests if not self.has_chunk(d)]
        if missing:
            raise ValueError(
                f"recipe {recipe.snapshot_id!r} references {len(missing)} "
                "missing chunks"
            )
        self._recipes.put(recipe)

    def get_recipe(self, snapshot_id: str) -> SnapshotRecipe:
        return self._recipes.get(snapshot_id)

    def snapshot_ids(self) -> list[str]:
        """Sorted ids of every stored snapshot recipe."""
        return self._recipes.ids()

    def has_chunks(self, digests) -> list[bool]:
        """Batched membership straight through replica resolution."""
        return [self._holder(d) is not None for d in digests]

    def restore(self, snapshot_id: str) -> bytes:
        """Reassemble a snapshot, pulling each chunk from any replica."""
        recipe = self.get_recipe(snapshot_id)
        return b"".join(self.get_chunk(d) for d in recipe.digests)

    def delete_recipe(self, snapshot_id: str) -> None:
        self._recipes.delete(snapshot_id)

    def garbage_collect(self) -> int:
        """Cluster-wide mark-and-sweep; returns physical bytes freed.

        Marks every digest referenced by any recipe, then sweeps each
        alive node (which rebuilds its Bloom filter, since filters
        cannot unlearn deleted keys, and compacts the node's chunk log
        on persistent backends).
        """
        live = self._recipes.live_digests()
        return sum(node.sweep(live) for node in self._alive_nodes())

    # -- batched lookup ------------------------------------------------

    def lookup_batch(
        self, digests
    ) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Batched, Bloom-filtered membership query (see lookup.py)."""
        return self.lookup.lookup_batch(digests)

    def lookup_chunks(self, chunks) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Batched membership query straight from chunk records.

        Digests for the whole batch are materialized in one hashing pass
        before the probe — lazy zero-copy chunks never pay a per-chunk
        Python hashing round trip on the lookup path.
        """
        return self.lookup.lookup_chunks(chunks)

    # -- membership / failure / recovery -------------------------------

    def add_node(self, node_id: str | None = None) -> str:
        """Register a fresh node on the ring; no data moves until
        :meth:`rebalance` runs.  On a disk cluster the node's backend
        opens (or reopens) ``data_dir/<node_id>``."""
        if node_id is None:
            node_id = f"node-{len(self._nodes)}"
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already exists")
        self._nodes[node_id] = StoreNode(
            node_id,
            self._bloom_capacity,
            self._bloom_fp_rate,
            backend=self._make_backend(node_id),
        )
        self.ring.add_node(node_id)
        return node_id

    def fail_node(self, node_id: str) -> None:
        """Crash a node: its shard contents are lost and it leaves the
        ring, so placements immediately stop targeting it."""
        node = self._node(node_id)
        node.fail()
        self.ring.remove_node(node_id)

    def decommission(self, node_id: str) -> MigrationReport:
        """Gracefully drain a node: re-place its chunks, then retire it."""
        node = self._node(node_id)
        if not node.alive:
            raise ValueError(f"node {node_id!r} is down; use repair()")
        self.ring.remove_node(node_id)
        self.scheme.validate(self.ring)
        report = MigrationReport()
        for digest in node.digests():
            data = node.get_chunk(digest)
            for target in self._placement(digest):
                if target.put_chunk(digest, data):
                    report.chunks_moved += 1
                    report.bytes_moved += len(data)
            report.chunks_dropped += 1
        node.fail()  # retire: contents dropped after migration
        return report

    def repair(self) -> RepairReport:
        """Recipe-driven re-replication after failures or ring changes.

        Walks every digest referenced by any recipe, re-derives its
        placement on the current ring, and copies from any surviving
        replica to targets that lack it.  Digests with no surviving
        replica are reported as unrecoverable (the data is gone; the
        snapshot cannot be restored).
        """
        live = self._recipes.live_digests()
        report = RepairReport(chunks_scanned=len(live))
        lost: list[bytes] = []
        for digest in live:
            holder = self._holder(digest)
            if holder is None:
                lost.append(digest)
                continue
            data = holder.get_chunk(digest)
            for target in self._placement(digest):
                if not target.holds(digest):
                    target.put_chunk(digest, data)
                    report.chunks_recopied += 1
                    report.bytes_copied += len(data)
        report.unrecoverable = tuple(lost)
        return report

    def rebalance(self) -> MigrationReport:
        """Move chunks to their current placement after a ring resize.

        Copies each chunk to placement targets missing it and drops
        copies from nodes the scheme no longer targets.
        """
        report = MigrationReport()
        for digest in self.digests():
            targets = self._placement(digest)
            holder = self._holder(digest)
            data = holder.get_chunk(digest)
            for target in targets:
                if target.put_chunk(digest, data):
                    report.chunks_moved += 1
                    report.bytes_moved += len(data)
            for node in self._alive_nodes():
                if node not in targets and node.holds(digest):
                    node.delete_chunk(digest)
                    report.chunks_dropped += 1
        return report

    def _node(self, node_id: str) -> StoreNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r}") from None

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Push buffered log records on every shard (disk backends)."""
        for node in self._alive_nodes():
            node.flush()
        self._recipes.flush()

    def close(self) -> None:
        """Close every shard backend and the recipe store.

        On a disk cluster this persists the memtables, so a subsequent
        ``ChunkStoreCluster(backend="disk", data_dir=...)`` with the
        same membership reopens without replaying the logs.
        """
        if self._closed:
            return
        self._closed = True
        for node in self._nodes.values():
            node.close()
        self._recipes.close()

    def __enter__(self) -> "ChunkStoreCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ----------------------------------------------------

    def digests(self) -> set[bytes]:
        """Distinct digests held anywhere in the cluster."""
        out: set[bytes] = set()
        for node in self._alive_nodes():
            out.update(node.digests())
        return out

    @property
    def nodes(self) -> dict[str, StoreNode]:
        return dict(self._nodes)

    @property
    def n_nodes_alive(self) -> int:
        return len(self._alive_nodes())

    @property
    def chunk_count(self) -> int:
        """Distinct chunks (replicas counted once), matching ChunkStore."""
        return len(self.digests())

    @property
    def stored_bytes(self) -> int:
        """Physical bytes across all replicas on all alive nodes."""
        return sum(node.stored_bytes for node in self._alive_nodes())

    @property
    def unique_bytes(self) -> int:
        """Logical bytes: one copy per distinct chunk."""
        return sum(len(self.get_chunk(d)) for d in self.digests())

    @property
    def snapshot_count(self) -> int:
        return len(self._recipes)

    def replica_count(self, digest: bytes) -> int:
        return sum(1 for n in self._alive_nodes() if n.holds(digest))
