"""Consistent-hash ring mapping chunk digests to store nodes.

The backup site's chunk store scales out by partitioning the digest
space across nodes.  A consistent-hash ring with virtual nodes keeps
the digest -> node mapping stable under membership changes: adding or
removing one node only remaps the ``~1/n`` fraction of digests whose
ring arcs that node's virtual nodes cover, which is what makes online
resize and failure recovery affordable (§7.2's backup site, scaled out).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per physical node.  More vnodes smooth the load spread
#: at the cost of a larger (still tiny) sorted position table.
DEFAULT_VNODES = 64


def _position(key: bytes) -> int:
    """64-bit ring position of an arbitrary key."""
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


class HashRing:
    """Sorted ring of virtual-node positions over a 64-bit key space."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._positions: list[int] = []  # sorted vnode positions
        self._owners: dict[int, str] = {}  # position -> node id

    # -- membership ----------------------------------------------------

    def add_node(self, node_id: str) -> None:
        if node_id in self.node_ids:
            raise ValueError(f"node {node_id!r} already on ring")
        for i in range(self.vnodes):
            pos = _position(f"{node_id}#{i}".encode())
            while pos in self._owners:  # vanishingly rare 64-bit collision
                pos = (pos + 1) & ((1 << 64) - 1)
            self._owners[pos] = node_id
            bisect.insort(self._positions, pos)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self.node_ids:
            raise KeyError(f"node {node_id!r} not on ring")
        dropped = {p for p, n in self._owners.items() if n == node_id}
        self._positions = [p for p in self._positions if p not in dropped]
        for pos in dropped:
            del self._owners[pos]

    @property
    def node_ids(self) -> set[str]:
        return set(self._owners.values())

    def __len__(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.node_ids

    # -- placement -----------------------------------------------------

    def digest_position(self, digest: bytes) -> int:
        return _position(digest)

    def node_for(self, digest: bytes) -> str:
        """The primary owner: first vnode clockwise of the digest."""
        return self.preference_list(digest, 1)[0]

    def preference_list(self, digest: bytes, n: int) -> tuple[str, ...]:
        """First ``n`` *distinct* nodes clockwise of the digest.

        This is the classic replica preference list: replicas land on
        the next distinct physical nodes around the ring, so losing one
        node scatters its re-replication work across the whole cluster.
        """
        if not self._positions:
            raise LookupError("ring has no nodes")
        if n < 1:
            raise ValueError("n must be >= 1")
        if n > len(self):
            raise LookupError(
                f"ring has {len(self)} nodes, cannot pick {n} distinct"
            )
        start = bisect.bisect_right(self._positions, _position(digest))
        picked: list[str] = []
        seen: set[str] = set()
        total = len(self._positions)
        for step in range(total):
            owner = self._owners[self._positions[(start + step) % total]]
            if owner not in seen:
                seen.add(owner)
                picked.append(owner)
                if len(picked) == n:
                    break
        return tuple(picked)
