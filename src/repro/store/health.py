"""Failure detection for the chunk-store cluster.

Before this module, node failure was an *explicit* event: somebody
called ``fail_node()``.  Real shards crash silently — the only signal
is errors on the data path (or missed heartbeats).  The
:class:`FailureDetector` turns those signals into membership state with
a simple consecutive-error discipline:

* every node operation reports its outcome (``observe``);
* ``suspect_after`` consecutive errors mark a node **suspect** (still
  probed, still serving — an advisory state surfaced in health
  snapshots);
* ``dead_after`` consecutive errors mark it **dead** — the cluster
  then drops the node from the ring and (with ``auto_repair``)
  immediately re-replicates from surviving copies;
* any success resets the error run, so transient fault storms (a
  recoverable I/O hiccup) never escalate to a death.

Dead is sticky: a crashed shard's contents are gone, so a later
"success" cannot resurrect it — recovery is ``add_node`` + ``repair``,
not a detector transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["NodeState", "HealthPolicy", "FailureDetector"]


class NodeState(Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the consecutive-error failure detector."""

    #: Consecutive errors before a node is marked suspect.
    suspect_after: int = 2
    #: Consecutive errors before a node is declared dead.
    dead_after: int = 4
    #: Re-replicate automatically the moment a death is declared.
    auto_repair: bool = True
    #: Stored items the background scrubber re-verifies per heartbeat
    #: (0 disables heartbeat-driven scrubbing; ``cluster.scrub()`` can
    #: still run full passes on demand).
    scrub_batch: int = 0

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.dead_after < self.suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        if self.scrub_batch < 0:
            raise ValueError("scrub_batch must be >= 0")


class FailureDetector:
    """Consecutive-error membership state, one entry per node."""

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy or HealthPolicy()
        self._errors: dict[str, int] = {}
        self._state: dict[str, NodeState] = {}

    def observe(self, node_id: str, ok: bool) -> NodeState | None:
        """Record one operation outcome.

        Returns the node's new state when this observation *changed* it
        (``SUSPECT``/``DEAD`` escalations, ``ALIVE`` on recovery from
        suspect), else ``None``.  Dead nodes are sticky: their
        observations are ignored.
        """
        state = self._state.get(node_id, NodeState.ALIVE)
        if state is NodeState.DEAD:
            return None
        if ok:
            self._errors[node_id] = 0
            if state is not NodeState.ALIVE:
                self._state[node_id] = NodeState.ALIVE
                return NodeState.ALIVE
            return None
        errors = self._errors.get(node_id, 0) + 1
        self._errors[node_id] = errors
        new = state
        if errors >= self.policy.dead_after:
            new = NodeState.DEAD
        elif errors >= self.policy.suspect_after:
            new = NodeState.SUSPECT
        if new is not state:
            self._state[node_id] = new
            return new
        return None

    def mark_dead(self, node_id: str) -> None:
        """Force a node dead (explicit ``fail_node``, declared crash)."""
        self._state[node_id] = NodeState.DEAD
        self._errors.pop(node_id, None)

    def forget(self, node_id: str) -> None:
        """Drop detector state (a node re-added after replacement)."""
        self._state.pop(node_id, None)
        self._errors.pop(node_id, None)

    def state(self, node_id: str) -> NodeState:
        return self._state.get(node_id, NodeState.ALIVE)

    def error_run(self, node_id: str) -> int:
        """Current consecutive-error count (0 after any success)."""
        return self._errors.get(node_id, 0)
