"""Sharded content-addressed chunk-store cluster (scale-out backup site).

Layers, bottom up: :mod:`~repro.store.ring` (consistent hashing),
:mod:`~repro.store.bloom` (negative-lookup filters),
:mod:`~repro.store.node` (per-shard stores), :mod:`~repro.store.schemes`
(pluggable placement), :mod:`~repro.store.lookup` (batched async
probes), :mod:`~repro.store.cluster` (the ChunkStore-compatible facade
with failure recovery and cluster-wide GC).
"""

from repro.store.bloom import BloomFilter
from repro.store.cluster import (
    ChunkStoreCluster,
    MigrationReport,
    RepairReport,
    UnrecoverableChunkError,
)
from repro.store.lookup import BatchedLookup, BatchLookupStats, LookupCostModel
from repro.store.node import NodeDownError, NodeStats, ProbeResult, StoreNode
from repro.store.ring import DEFAULT_VNODES, HashRing
from repro.store.schemes import (
    PlacementScheme,
    ReplicatedPlacement,
    StripedPlacement,
    VanillaPlacement,
    make_scheme,
)

__all__ = [
    "BloomFilter",
    "ChunkStoreCluster",
    "MigrationReport",
    "RepairReport",
    "UnrecoverableChunkError",
    "BatchedLookup",
    "BatchLookupStats",
    "LookupCostModel",
    "NodeDownError",
    "NodeStats",
    "ProbeResult",
    "StoreNode",
    "DEFAULT_VNODES",
    "HashRing",
    "PlacementScheme",
    "ReplicatedPlacement",
    "StripedPlacement",
    "VanillaPlacement",
    "make_scheme",
]
