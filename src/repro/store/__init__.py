"""Sharded content-addressed chunk-store cluster (scale-out backup site).

Layers, bottom up: :mod:`~repro.store.backend` (the batched
``ChunkBackend`` storage protocol — in-memory and persistent log+LSM —
behind every state owner), :mod:`~repro.store.ring` (consistent
hashing), :mod:`~repro.store.bloom` (negative-lookup filters),
:mod:`~repro.store.node` (per-shard stores), :mod:`~repro.store.schemes`
(pluggable placement), :mod:`~repro.store.lookup` (batched async
probes), :mod:`~repro.store.cluster` (the ChunkStore-compatible facade
with failure recovery, persistence, and cluster-wide GC).
"""

from repro.store.backend import (
    BackendStats,
    ChunkBackend,
    MemoryBackend,
    PersistentBackend,
    RecipeStore,
    RecoveryReport,
    make_backend,
    resolve_backend,
)
from repro.store.bloom import BloomFilter
from repro.store.cluster import (
    ChunkStoreCluster,
    MigrationReport,
    RepairReport,
    ScrubReport,
    UnrecoverableChunkError,
)
from repro.store.erasure import (
    CorruptFragmentError,
    FragmentFormatError,
    FragmentRecord,
    ReedSolomonCodec,
    codec_for,
)
from repro.store.lookup import BatchedLookup, BatchLookupStats, LookupCostModel
from repro.store.node import NodeDownError, NodeStats, ProbeResult, StoreNode
from repro.store.ring import DEFAULT_VNODES, HashRing
from repro.store.schemes import (
    ErasureCodedPlacement,
    PlacementScheme,
    ReplicatedPlacement,
    StripedPlacement,
    VanillaPlacement,
    make_scheme,
)

__all__ = [
    "BackendStats",
    "ChunkBackend",
    "MemoryBackend",
    "PersistentBackend",
    "RecipeStore",
    "RecoveryReport",
    "make_backend",
    "resolve_backend",
    "BloomFilter",
    "ChunkStoreCluster",
    "MigrationReport",
    "RepairReport",
    "ScrubReport",
    "UnrecoverableChunkError",
    "CorruptFragmentError",
    "FragmentFormatError",
    "FragmentRecord",
    "ReedSolomonCodec",
    "codec_for",
    "BatchedLookup",
    "BatchLookupStats",
    "LookupCostModel",
    "NodeDownError",
    "NodeStats",
    "ProbeResult",
    "StoreNode",
    "DEFAULT_VNODES",
    "HashRing",
    "ErasureCodedPlacement",
    "PlacementScheme",
    "ReplicatedPlacement",
    "StripedPlacement",
    "VanillaPlacement",
    "make_scheme",
]
