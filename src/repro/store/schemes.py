"""Pluggable chunk placement schemes over the consistent-hash ring.

Follows the jewel storage-scheme idiom (SNIPPETS.md): a small base
class fixes the contract — given a ring and a digest, name the nodes
that must hold the chunk — and each concrete scheme is one policy:

* :class:`VanillaPlacement` — one copy on the primary owner;
* :class:`StripedPlacement` — one copy striped across a window of the
  preference list, spreading hot digest ranges over several nodes;
* :class:`ReplicatedPlacement` — ``r`` copies on the first ``r``
  distinct successors, the scheme that survives node loss.

Schemes are deterministic functions of (ring membership, digest), so
every component — writer, batched lookup, repair — independently
derives identical placements without a central directory.
"""

from __future__ import annotations

from repro.store.ring import HashRing

__all__ = [
    "PlacementScheme",
    "VanillaPlacement",
    "StripedPlacement",
    "ReplicatedPlacement",
    "make_scheme",
]


class PlacementScheme:
    """Base class: maps a chunk digest to the node ids that store it."""

    #: Short scheme identifier (CLI / config facing).
    name: str = "base"
    #: Copies kept per chunk; failure tolerance is ``copies - 1``.
    copies: int = 1

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        """Distinct node ids that must hold ``digest``."""
        raise NotImplementedError

    def validate(self, ring: HashRing) -> None:
        """Reject rings too small for this scheme's copy count."""
        if len(ring) < self.copies:
            raise ValueError(
                f"{self.name} placement needs >= {self.copies} nodes, "
                f"ring has {len(ring)}"
            )


class VanillaPlacement(PlacementScheme):
    """One copy on the ring's primary owner — the minimal sharding."""

    name = "vanilla"

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        return (ring.node_for(digest),)


class StripedPlacement(PlacementScheme):
    """One copy striped across a window of successor nodes.

    A secondary hash of the digest picks one node out of the first
    ``stripe_width`` successors, so a hot arc of the digest space is
    served by several nodes instead of one — striping without paying
    for redundancy.
    """

    name = "striped"

    def __init__(self, stripe_width: int = 4) -> None:
        if stripe_width < 1:
            raise ValueError("stripe_width must be >= 1")
        self.stripe_width = stripe_width

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        width = min(self.stripe_width, len(ring))
        window = ring.preference_list(digest, width)
        lane = int.from_bytes(digest[-4:], "big") % width
        return (window[lane],)


class ReplicatedPlacement(PlacementScheme):
    """``r`` copies on the first ``r`` distinct ring successors."""

    name = "replicated"

    def __init__(self, replicas: int = 2) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas

    @property
    def copies(self) -> int:  # type: ignore[override]
        return self.replicas

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        # Clamp to the ring size so a cluster that has lost nodes below
        # the replica count keeps serving degraded (fewer copies)
        # instead of failing every read; validate() still enforces the
        # full count at construction time.
        return ring.preference_list(digest, min(self.replicas, len(ring)))


def make_scheme(name: str, replicas: int = 2, stripe_width: int = 4) -> PlacementScheme:
    """Config-string constructor used by the backup server and CLI."""
    if name == "vanilla":
        return VanillaPlacement()
    if name == "striped":
        return StripedPlacement(stripe_width)
    if name == "replicated":
        return ReplicatedPlacement(replicas)
    raise ValueError(f"unknown placement scheme {name!r}")
