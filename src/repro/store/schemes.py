"""Pluggable chunk placement schemes over the consistent-hash ring.

Follows the jewel storage-scheme idiom (SNIPPETS.md): a small base
class fixes the contract — given a ring and a digest, name the nodes
that must hold the chunk — and each concrete scheme is one policy:

* :class:`VanillaPlacement` — one copy on the primary owner;
* :class:`StripedPlacement` — one copy striped across a window of the
  preference list, spreading hot digest ranges over several nodes;
* :class:`ReplicatedPlacement` — ``r`` copies on the first ``r``
  distinct successors, the scheme that survives node loss;
* :class:`ErasureCodedPlacement` — ``k + m`` Reed–Solomon *fragments*
  (``k`` data slices + ``m`` parity) on the first ``k + m`` distinct
  successors: reads and repair need any ``k`` of them, so ``m`` node
  losses cost ``m/k`` extra storage instead of whole replicas.

Schemes are deterministic functions of (ring membership, digest), so
every component — writer, batched lookup, repair — independently
derives identical placements without a central directory.
"""

from __future__ import annotations

from repro.store.ring import HashRing

__all__ = [
    "PlacementScheme",
    "VanillaPlacement",
    "StripedPlacement",
    "ReplicatedPlacement",
    "ErasureCodedPlacement",
    "make_scheme",
]


class PlacementScheme:
    """Base class: maps a chunk digest to the node ids that store it."""

    #: Short scheme identifier (CLI / config facing).
    name: str = "base"
    #: Copies kept per chunk; failure tolerance is ``copies - 1``.
    copies: int = 1
    #: True when nodes hold erasure-coded fragments instead of whole
    #: chunks — the cluster routes reads/writes/repair accordingly.
    is_erasure: bool = False
    #: Replicas (or fragments) that must answer before a digest counts
    #: as present: 1 for whole-chunk schemes, ``k`` for erasure coding
    #: (fewer than ``k`` surviving fragments cannot reconstruct, so a
    #: dedup hit on them would silently lose data).
    min_fragments: int = 1

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        """Distinct node ids that must hold ``digest``."""
        raise NotImplementedError

    def validate(self, ring: HashRing) -> None:
        """Reject rings too small for this scheme's copy count."""
        if len(ring) < self.copies:
            raise ValueError(
                f"{self.name} placement needs >= {self.copies} nodes, "
                f"ring has {len(ring)}"
            )


class VanillaPlacement(PlacementScheme):
    """One copy on the ring's primary owner — the minimal sharding."""

    name = "vanilla"

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        return (ring.node_for(digest),)


class StripedPlacement(PlacementScheme):
    """One copy striped across a window of successor nodes.

    A secondary hash of the digest picks one node out of the first
    ``stripe_width`` successors, so a hot arc of the digest space is
    served by several nodes instead of one — striping without paying
    for redundancy.
    """

    name = "striped"

    def __init__(self, stripe_width: int = 4) -> None:
        if stripe_width < 1:
            raise ValueError("stripe_width must be >= 1")
        self.stripe_width = stripe_width

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        width = min(self.stripe_width, len(ring))
        window = ring.preference_list(digest, width)
        lane = int.from_bytes(digest[-4:], "big") % width
        return (window[lane],)


class ReplicatedPlacement(PlacementScheme):
    """``r`` copies on the first ``r`` distinct ring successors."""

    name = "replicated"

    def __init__(self, replicas: int = 2) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas

    @property
    def copies(self) -> int:  # type: ignore[override]
        return self.replicas

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        # Clamp to the ring size so a cluster that has lost nodes below
        # the replica count keeps serving degraded (fewer copies)
        # instead of failing every read; validate() still enforces the
        # full count at construction time.
        return ring.preference_list(digest, min(self.replicas, len(ring)))


class ErasureCodedPlacement(PlacementScheme):
    """``k`` data + ``m`` parity fragments on ``k + m`` distinct nodes.

    Fragment ``i`` of a chunk lands on position ``i`` of the digest's
    preference list (position *is* the intended fragment index; the
    stored record also carries its index, so reads survive ring churn).
    Any ``k`` fragments reconstruct the chunk, so the scheme tolerates
    ``m`` node losses at ``(k + m) / k`` storage overhead — e.g. 1.5x
    for (4, 2) where 3-way replication pays 3x for the same tolerance.
    """

    name = "ec"
    is_erasure = True

    def __init__(self, k: int = 4, m: int = 2) -> None:
        if k < 1:
            raise ValueError("k (data fragments) must be >= 1")
        if m < 0:
            raise ValueError("m (parity fragments) must be >= 0")
        if k + m > 255:
            raise ValueError("k + m must be <= 255")
        self.k = k
        self.m = m

    @property
    def copies(self) -> int:  # type: ignore[override]
        return self.k + self.m

    @property
    def min_fragments(self) -> int:  # type: ignore[override]
        return self.k

    def nodes_for(self, ring: HashRing, digest: bytes) -> tuple[str, ...]:
        # Clamp like ReplicatedPlacement: a ring that has dropped below
        # k + m keeps serving with fewer fragments (reduced tolerance)
        # instead of failing every operation.
        return ring.preference_list(digest, min(self.k + self.m, len(ring)))


def make_scheme(
    name: str,
    replicas: int = 2,
    stripe_width: int = 4,
    ec_k: int = 4,
    ec_m: int = 2,
) -> PlacementScheme:
    """Config-string constructor used by the backup server and CLI."""
    if name == "vanilla":
        return VanillaPlacement()
    if name == "striped":
        return StripedPlacement(stripe_width)
    if name == "replicated":
        return ReplicatedPlacement(replicas)
    if name == "ec":
        return ErasureCodedPlacement(ec_k, ec_m)
    raise ValueError(f"unknown placement scheme {name!r}")
