"""Bloom-filter front-end for negative chunk lookups.

§7.3 charges a *miss* ~6x the cost of a hit: an absent digest walks the
full on-disk index before the store can conclude "new chunk".  A Bloom
filter in front of each node answers "definitely absent" from memory,
so the common negative lookup (every unique chunk of every snapshot)
costs one probe instead of one full index walk — the standard trick of
deduplicating stores since Data Domain.
"""

from __future__ import annotations

import hashlib
import math

__all__ = ["BloomFilter"]


class BloomFilter:
    """Classic Bloom filter over byte-string keys.

    Sized from ``capacity`` and ``fp_rate`` via the textbook formulas;
    uses double hashing (Kirsch-Mitzenmacher) to derive the ``k`` probe
    positions from one 128-bit hash.  No false negatives, ever.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.n_bits = max(8, math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2))
        self.n_hashes = max(1, round(self.n_bits / capacity * math.log(2)))
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.n_added = 0

    @classmethod
    def from_bits(
        cls, capacity: int, fp_rate: float, bits: bytes, n_added: int = 0
    ) -> "BloomFilter":
        """Reconstruct a filter from its serialized bit array.

        Used by the persistent backend's run files: the sizing formulas
        are re-derived from ``(capacity, fp_rate)``, so a bit array of
        the wrong length (a corrupt run) is rejected here rather than
        silently mis-probed.
        """
        bloom = cls(capacity, fp_rate)
        if len(bits) != len(bloom._bits):
            raise ValueError(
                f"bit array length {len(bits)} does not match capacity "
                f"{capacity} (expected {len(bloom._bits)})"
            )
        bloom._bits = bytearray(bits)
        bloom.n_added = n_added
        return bloom

    def _probes(self, key: bytes):
        h = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(h[:8], "big")
        h2 = int.from_bytes(h[8:], "big") | 1  # odd, so probes cycle
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, key: bytes) -> None:
        for pos in self._probes(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.n_added += 1

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._probes(key)
        )

    def clear(self) -> None:
        self._bits = bytearray(len(self._bits))
        self.n_added = 0

    @property
    def saturation(self) -> float:
        """Fraction of bits set; above ~0.5 the fp rate degrades."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.n_bits
