"""Batched, Bloom-filtered, async chunk-index lookups.

§7.3 blames the *unoptimized index lookup + network shipping* stage for
backup bandwidth collapsing as snapshot similarity drops: every digest
pays a synchronous per-lookup round trip, and every unique chunk pays
the expensive full-index miss.  This module implements the two standard
fixes and the timing model that prices them:

* **Batching** — digests are grouped into batches, each batch is
  partitioned by owning node, and the per-node sub-batches are probed
  concurrently (``asyncio``).  One round trip is charged per *batch*
  instead of per digest, so the dispatch overhead amortizes as
  ``batch_rtt_s / batch_size``.
* **Bloom filtering** — each node answers "definitely absent" from its
  in-memory filter, so negative lookups (every unique chunk) cost a
  memory probe instead of a full index walk.  Only Bloom false
  positives still pay the miss price.

The unbatched baseline is the degenerate configuration: batch size 1,
no filter — exactly the per-digest ``hit_s``/``miss_s`` charges the
backup server's single-node path uses.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.store.node import NodeDownError, ProbeResult, StoreNode
from repro.store.ring import HashRing
from repro.store.schemes import PlacementScheme

__all__ = ["LookupCostModel", "BatchLookupStats", "BatchedLookup"]


@dataclass(frozen=True)
class LookupCostModel:
    """Per-outcome costs of the index-lookup stage (§7.3 extended).

    ``hit_s`` / ``miss_s`` match the backup server's unoptimized
    defaults; ``bloom_probe_s`` is the in-memory filter probe; and
    ``batch_rtt_s`` is the fixed dispatch + round-trip cost paid once
    per batch (per digest in the unbatched baseline).
    """

    hit_s: float = 2e-6
    miss_s: float = 12e-6
    bloom_probe_s: float = 2e-7
    batch_rtt_s: float = 5e-5

    def batched_seconds(self, stats: "BatchLookupStats") -> float:
        """Modeled stage time for a batched, Bloom-filtered run."""
        return (
            stats.n_batches * self.batch_rtt_s
            + stats.bloom_probes * self.bloom_probe_s
            + stats.hits * self.hit_s
            + stats.index_walks * self.miss_s
        )

    def per_digest_seconds(self, hits: int, misses: int) -> float:
        """The unoptimized baseline: every digest pays a full lookup."""
        return hits * self.hit_s + misses * self.miss_s


@dataclass
class BatchLookupStats:
    """Outcome counters for one or more batched lookups."""

    #: Per-digest outcomes: every input digest is exactly one of hit,
    #: bloom_negative (no replica's filter admitted it), or
    #: false_positive (some filter admitted it but no replica had it).
    n_digests: int = 0
    n_batches: int = 0
    n_node_batches: int = 0
    hits: int = 0
    bloom_negatives: int = 0
    false_positives: int = 0
    #: Per-probe work: filter probes issued and full-index walks paid
    #: (a multi-replica miss can probe several filters for one digest).
    bloom_probes: int = 0
    index_walks: int = 0
    #: Probes a replica failed with an I/O error (the replica is treated
    #: as unavailable for that digest; surviving replicas still answer).
    probe_errors: int = 0

    @property
    def misses(self) -> int:
        return self.bloom_negatives + self.false_positives

    def merge(self, other: "BatchLookupStats") -> None:
        self.n_digests += other.n_digests
        self.n_batches += other.n_batches
        self.n_node_batches += other.n_node_batches
        self.hits += other.hits
        self.bloom_negatives += other.bloom_negatives
        self.false_positives += other.false_positives
        self.bloom_probes += other.bloom_probes
        self.index_walks += other.index_walks
        self.probe_errors += other.probe_errors


class BatchedLookup:
    """Routes digest batches to their owning nodes and probes them.

    Probing walks the placement scheme's preference list in order: a
    digest is a *hit* as soon as ``scheme.min_fragments`` alive replicas
    hold it — one for whole-chunk schemes (so a copy that survives
    off-primary, post-failure or mid-repair, still answers), ``k`` for
    erasure coding (fewer surviving fragments cannot reconstruct, so a
    dedup hit on them would silently lose the chunk).  A digest is a
    miss only after the quota provably cannot be met.
    """

    def __init__(
        self,
        ring: HashRing,
        scheme: PlacementScheme,
        nodes: Mapping[str, StoreNode],
        batch_size: int = 128,
        cost_model: LookupCostModel | None = None,
        on_probe=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.ring = ring
        self.scheme = scheme
        self.nodes = nodes
        self.batch_size = batch_size
        self.cost_model = cost_model or LookupCostModel()
        #: Optional ``(node_id, ok)`` observer — the cluster wires its
        #: failure detector here so probe outcomes drive membership.
        self.on_probe = on_probe

    # -- probing -------------------------------------------------------

    def _probe_one(
        self,
        digest: bytes,
        placement: tuple[str, ...],
        stats: BatchLookupStats,
    ) -> bool:
        """Probe the digest's replica set; True iff enough replicas
        (``scheme.min_fragments``) have it."""
        need = getattr(self.scheme, "min_fragments", 1)
        probed = False
        saw_false_positive = False
        node_hits = 0
        for node_id in placement:
            node = self.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            try:
                # repro: lint-ok[batched-api] one digest across its replicas, not a digest batch
                result = node.probe(digest)
            except NodeDownError:
                continue  # raced a mid-batch death; try the next replica
            except OSError:
                # A replica that errors is unavailable for this digest,
                # not a verdict: surviving replicas still answer.
                node.stats.io_errors += 1
                stats.probe_errors += 1
                if self.on_probe is not None:
                    self.on_probe(node_id, False)
                continue
            probed = True
            stats.bloom_probes += 1
            if self.on_probe is not None:
                self.on_probe(node_id, True)
            if result is ProbeResult.HIT:
                node_hits += 1
                if node_hits >= need:
                    stats.hits += 1
                    return True
                continue  # fragment quota not met yet; keep probing
            if result is ProbeResult.FALSE_POSITIVE:
                saw_false_positive = True
                stats.index_walks += 1
        if not probed:
            raise NodeDownError(
                f"no alive replica for chunk {digest.hex()[:16]}"
            )
        if node_hits:
            # Some fragments exist but too few to reconstruct: the chunk
            # must be re-shipped.  The partial holders paid index walks
            # for a miss verdict, the same shape as a false positive.
            stats.index_walks += node_hits
            stats.false_positives += 1
        elif saw_false_positive:
            stats.false_positives += 1
        else:
            stats.bloom_negatives += 1
        return False

    async def _probe_node_batch(
        self,
        group: Sequence[tuple[bytes, tuple[str, ...]]],
        stats: BatchLookupStats,
    ) -> list[bool]:
        stats.n_node_batches += 1
        await asyncio.sleep(0)  # yield: node sub-batches interleave
        return [self._probe_one(d, placement, stats) for d, placement in group]

    async def lookup_batch_async(
        self, digests: Sequence[bytes]
    ) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Resolve digest membership in node-partitioned concurrent batches.

        Returns ``(hit_map, stats)``; ``hit_map[d]`` is True iff some
        alive replica already stores ``d``.  Duplicate digests in the
        input resolve once.
        """
        stats = BatchLookupStats()
        unique = list(dict.fromkeys(digests))
        stats.n_digests = len(unique)
        hit_map: dict[bytes, bool] = {}
        for start in range(0, len(unique), self.batch_size):
            batch = unique[start : start + self.batch_size]
            stats.n_batches += 1
            # Partition by primary owner, carrying the preference list
            # along so the probe does not recompute placement.
            by_node: dict[str, list[tuple[bytes, tuple[str, ...]]]] = {}
            for d in batch:
                placement = self.scheme.nodes_for(self.ring, d)
                by_node.setdefault(placement[0], []).append((d, placement))
            groups = list(by_node.values())
            results = await asyncio.gather(
                *(self._probe_node_batch(g, stats) for g in groups)
            )
            for group, answers in zip(groups, results):
                hit_map.update(zip((d for d, _ in group), answers))
        return hit_map, stats

    def lookup_batch(
        self, digests: Sequence[bytes]
    ) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Synchronous wrapper around :meth:`lookup_batch_async`."""
        return asyncio.run(self.lookup_batch_async(digests))

    def lookup_chunks(self, chunks) -> tuple[dict[bytes, bool], BatchLookupStats]:
        """Batched lookup of chunk records (digests hashed in one pass).

        Entry point for the zero-copy chunking path: lazy chunks carry
        buffer views, and their digests for the whole batch are computed
        together (``ensure_digests``) before the node probes run.
        """
        from repro.core.chunking import ensure_digests

        ensure_digests(chunks)
        return self.lookup_batch([c.digest for c in chunks])

    # -- costing -------------------------------------------------------

    def modeled_seconds(self, stats: BatchLookupStats) -> float:
        return self.cost_model.batched_seconds(stats)
