"""Memoization-aware (affinity) task scheduler — Incoop's scheduler.

Incoop modifies Hadoop's scheduler so that a map task whose result (or
input split) is memoized on some node is preferentially scheduled *on
that node*: reusing a memoized result locally is a dictionary lookup,
while reusing it remotely costs a network fetch.  The scheduler trades a
little load-balance slack for locality.

This module provides a standalone :class:`AffinityScheduler` that
:class:`~repro.mapreduce.incoop.IncoopRuntime` can plug in; it keeps a
memo-location map across runs and reports the locality rate achieved.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field

__all__ = ["AffinityScheduler", "ScheduleOutcome"]


@dataclass
class ScheduleOutcome:
    """Result of scheduling one wave of tasks."""

    makespan_seconds: float
    local_tasks: int
    remote_tasks: int
    assignments: dict[str, int] = field(default_factory=dict)

    @property
    def locality_rate(self) -> float:
        total = self.local_tasks + self.remote_tasks
        return self.local_tasks / total if total else 0.0


@dataclass
class AffinityScheduler:
    """Greedy LPT scheduler with memo-location affinity.

    ``remote_fetch_s`` is added to a task that runs away from the node
    holding its memoized result; ``slack`` controls how much later a
    preferred node may become free before the scheduler gives up locality
    (Incoop's "delay scheduling" knob).
    """

    nodes: int = 20
    slots_per_node: int = 2
    remote_fetch_s: float = 20e-3
    slack_s: float = 50e-3
    _locations: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.slots_per_node < 1:
            raise ValueError("nodes and slots_per_node must be >= 1")

    # ------------------------------------------------------------------

    def location_of(self, task_id: str) -> int | None:
        """Node remembered as holding this task's memoized result."""
        return self._locations.get(task_id)

    def default_node(self, task_id: str) -> int:
        """Deterministic first-run placement (consistent hashing)."""
        return zlib.crc32(task_id.encode()) % self.nodes

    def schedule(self, tasks: list[tuple[str, float]]) -> ScheduleOutcome:
        """Schedule ``(task_id, seconds)`` tasks onto the cluster.

        Tasks with a remembered location prefer that node; others go to
        the least-loaded node.  Locations are updated so the *next* run
        finds results where this run left them.
        """
        slot_free: list[list[float]] = [
            [0.0] * self.slots_per_node for _ in range(self.nodes)
        ]

        def node_earliest(node: int) -> float:
            return min(slot_free[node])

        def run_on(node: int, seconds: float) -> float:
            slot = min(range(self.slots_per_node), key=lambda s: slot_free[node][s])
            start = slot_free[node][slot]
            slot_free[node][slot] = start + seconds
            return start + seconds

        outcome = ScheduleOutcome(0.0, 0, 0)
        # LPT order bounds the greedy makespan.
        for task_id, seconds in sorted(tasks, key=lambda t: -t[1]):
            preferred = self._locations.get(task_id)
            best_node = min(range(self.nodes), key=node_earliest)
            if preferred is None:
                chosen = self.default_node(task_id)
                if node_earliest(chosen) > node_earliest(best_node) + self.slack_s:
                    chosen = best_node
                finish = run_on(chosen, seconds)
                outcome.remote_tasks += 1  # first placement: data not local yet
            elif node_earliest(preferred) <= node_earliest(best_node) + self.slack_s:
                chosen = preferred
                finish = run_on(chosen, seconds)
                outcome.local_tasks += 1
            else:
                chosen = best_node
                finish = run_on(chosen, seconds + self.remote_fetch_s)
                outcome.remote_tasks += 1
            self._locations[task_id] = chosen
            outcome.assignments[task_id] = chosen
            outcome.makespan_seconds = max(outcome.makespan_seconds, finish)
        return outcome
