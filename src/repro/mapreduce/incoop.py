"""Incoop: incremental MapReduce via memoization + contraction (§6.1).

Two reuse mechanisms from the Incoop paper, driven by Inc-HDFS's stable
content-defined splits:

* **Map-task memoization** — a map task's output is stored under
  ``(job, params, split digest)``.  Re-running the job on changed input
  re-executes only map tasks whose split content changed.
* **Contraction tree** — when the job has a combiner, each reduce
  partition's inputs are folded through a binary tree of combine nodes
  whose memo keys derive from their children; a changed leaf re-computes
  only the ``O(log n)`` nodes on its path to the root.

The combiner must be associative/commutative and satisfy
``reduce(k, [combine(k, vs)]) == reduce(k, vs)`` — the standard Hadoop
combiner contract — which makes incremental output *identical* to a
from-scratch run (tested property).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.hdfs.client import HDFSClient
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.memo import MemoServer, memo_key
from repro.mapreduce.runtime import ClusterModel, MapReduceRuntime, RunResult, RunStats

__all__ = ["IncoopRuntime"]

#: Cost of fetching a memoized result instead of re-running the task
#: (a memo-server lookup plus reading the stored output).
MEMO_FETCH_S = 5e-3
#: Cost of a reused contraction node (key check only).
CONTRACT_FETCH_S = 2e-4


class IncoopRuntime(MapReduceRuntime):
    """Incremental MapReduce engine with a persistent memo server.

    The same instance must be used across successive runs of a job for
    reuse to occur (the memo server is the cross-run state, like Incoop's
    memoization server).
    """

    def __init__(
        self,
        client: HDFSClient,
        cluster: ClusterModel | None = None,
        memo: MemoServer | None = None,
        scheduler=None,
    ) -> None:
        super().__init__(client, cluster)
        # `is not None`: an empty MemoServer is falsy (it has __len__),
        # so `memo or MemoServer()` would silently discard a caller's
        # (initially empty) persistent server.
        self.memo = memo if memo is not None else MemoServer()
        #: Optional memoization-aware scheduler
        #: (:class:`repro.mapreduce.scheduler.AffinityScheduler`).  When
        #: set, the map wave is placed with locality affinity and its
        #: makespan replaces the plain LPT estimate.
        self.scheduler = scheduler
        #: Locality outcome of the most recent scheduled map wave.
        self.last_schedule = None

    # ------------------------------------------------------------------

    def run_incremental(self, job: MapReduceJob, path: str) -> RunResult:
        """Run ``job`` over ``path``, reusing memoized sub-computations."""
        stats = RunStats()
        splits = self.client.get_splits(path)
        stats.n_splits = len(splits)

        # -- map phase with memoization --------------------------------------
        leaf_outputs: list[tuple[str, dict[int, list[tuple]]]] = []
        scheduled_tasks: list[tuple[str, float]] = []
        for split in splits:
            key = memo_key(job.name, job.params, split.split_id)
            partitions = self.memo.get(key)
            if partitions is None:
                data = self.client.read_split(split)
                partitions = self.run_map_task(job, data)
                self.memo.put(key, partitions)
                records = len(job.input_format(data))
                stats.map_tasks_run += 1
                seconds = self.cluster.map_task_seconds(
                    split.length, records, job.compute_weight
                )
            else:
                stats.map_tasks_reused += 1
                seconds = MEMO_FETCH_S
            stats.map_task_seconds.append(seconds)
            scheduled_tasks.append((key, seconds))
            leaf_outputs.append((key, partitions))

        # -- reduce phase -----------------------------------------------------
        output: dict[Any, Any] = {}
        for p in range(job.n_reducers):
            leaves = [
                (f"{key}:{p}", partitions.get(p, []))
                for key, partitions in leaf_outputs
            ]
            if job.combine_fn is not None:
                pairs = self._contract(job, leaves, stats)
            else:
                pairs = [kv for _, leaf_pairs in leaves for kv in leaf_pairs]
            output.update(self.run_reduce_task(job, pairs))
            stats.reduce_tasks += 1
            stats.reduce_task_seconds.append(
                self.cluster.reduce_task_seconds(len(pairs))
            )

        if self.scheduler is not None:
            self.last_schedule = self.scheduler.schedule(scheduled_tasks)
            map_makespan = self.last_schedule.makespan_seconds
        else:
            map_makespan = self.cluster.makespan(
                stats.map_task_seconds, self.cluster.map_slots
            )
        stats.makespan_seconds = map_makespan + self.cluster.makespan(
            stats.reduce_task_seconds, self.cluster.reduce_slots
        )
        return RunResult(output, stats)

    # ------------------------------------------------------------------

    def _contract(
        self,
        job: MapReduceJob,
        leaves: list[tuple[str, list[tuple]]],
        stats: RunStats,
    ) -> list[tuple]:
        """Fold leaves through a memoized binary combine tree."""
        level = leaves
        while len(level) > 1:
            nxt: list[tuple[str, list[tuple]]] = []
            for i in range(0, len(level) - 1, 2):
                (key_a, pairs_a), (key_b, pairs_b) = level[i], level[i + 1]
                node_key = "contract:" + hashlib.sha256(
                    (key_a + "|" + key_b).encode()
                ).hexdigest()[:32]
                cached = self.memo.get(node_key)
                if cached is None:
                    merged = self._combine_pairs(job, list(pairs_a) + list(pairs_b))
                    self.memo.put(node_key, merged)
                    stats.combine_nodes_run += 1
                    stats.reduce_task_seconds.append(
                        self.cluster.combine_seconds(len(pairs_a) + len(pairs_b))
                    )
                else:
                    merged = cached
                    stats.combine_nodes_reused += 1
                    stats.reduce_task_seconds.append(CONTRACT_FETCH_S)
                nxt.append((node_key, merged))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return list(level[0][1]) if level else []

    # ------------------------------------------------------------------

    def speedup_vs_full(self, job: MapReduceJob, path: str) -> tuple[RunResult, float]:
        """Incremental run plus its speedup over a from-scratch run.

        The from-scratch cost is evaluated with the same cluster model, as
        the Fig. 15 experiment does (speedup w.r.t. plain Hadoop).
        """
        full = MapReduceRuntime(self.client, self.cluster).run(job, path)
        inc = self.run_incremental(job, path)
        if inc.stats.makespan_seconds <= 0:
            raise RuntimeError("incremental makespan is zero; cannot compute speedup")
        return inc, full.stats.makespan_seconds / inc.stats.makespan_seconds
